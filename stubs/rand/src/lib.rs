//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no crates.io access, so
//! `[patch.crates-io]` in the workspace manifest swaps the real `rand` for
//! this self-contained subset. It reproduces exactly the API surface the
//! workspace uses — [`Rng`], [`SeedableRng`], [`rngs::StdRng`],
//! [`seq::SliceRandom`] — with a deterministic SplitMix64 core, so every
//! seeded draw in the simulator stays reproducible run to run and machine
//! to machine (the property the workspace actually relies on; no code here
//! asks for cryptographic strength).
//!
//! The output *stream* differs from upstream `rand`'s ChaCha-based
//! `StdRng`, which is fine: the workspace's tests assert statistical and
//! same-seed-same-result properties, never specific upstream draws.

/// Core of every generator: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (upper half of
    /// [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// Deterministic generator with a SplitMix64 core.
    ///
    /// Passes the statistical smoke the workspace needs (uniform `f64`s,
    /// unbiased small ranges) at one add + three xor-multiply-shifts per
    /// draw. Not the upstream ChaCha `StdRng` — see the crate docs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // One scrambling round so nearby seeds (0, 1, 2, …) do not
            // produce correlated opening draws.
            let mut rng = StdRng {
                state: state ^ 0x5851_f42d_4c95_7f2d,
            };
            let _ = crate::RngCore::next_u64(&mut rng);
            rng
        }
    }
}

/// Types producible uniformly from raw generator bits (the subset of
/// upstream's `Standard` distribution the workspace uses).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types sampleable uniformly from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `lo < hi` checked by the caller.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded draw; the modulo bias of a 64-bit
                // draw over the spans this workspace uses (< 2^32) is
                // far below anything its statistical tests can see.
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        lo + (hi - lo) * f64::draw(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        lo + (hi - lo) * f32::draw(rng)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniform draw from the range; panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on an empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_inclusive_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on an empty range");
                // The closed/half-open distinction is below float
                // resolution for the spans this workspace draws.
                lo + (hi - lo) * <$t>::draw(rng)
            }
        }
    )*};
}
impl_sample_range_inclusive_float!(f32, f64);

/// Convenience methods over any [`RngCore`], mirroring upstream `rand`.
pub trait Rng: RngCore {
    /// Uniform value of a [`Standard`]-producible type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers.
pub mod seq {
    use crate::RngCore;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly chosen element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
