//! Offline stand-in for `proptest`, selected via `[patch.crates-io]`.
//!
//! Unlike a pure compile-shim, this stub is *functional*: the [`proptest!`]
//! macro really parses the `pat in strategy` argument syntax, samples each
//! strategy from a per-test deterministic RNG (seeded from the test's
//! module path and name), and runs the body for `ProptestConfig::cases`
//! cases — so property tests still exercise randomized inputs in an
//! environment with no crates.io access. What it does **not** do is
//! shrinking or failure persistence: a failing case panics with its case
//! index, and re-running reproduces it exactly (the stream is a pure
//! function of the test name).

/// Test-case plumbing: config, RNG, and the error type assertions return.
pub mod test_runner {
    /// Error carried by a failing property-test case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// An assertion failure with `msg`.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// What one case of a property test returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of randomized cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 generator feeding strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `name` (FNV-1a
        /// over the bytes), so every test owns a stable, independent
        /// stream.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h = (h ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, span)`; `span > 0`.
        pub fn below(&mut self, span: u128) -> u128 {
            (self.next_u64() as u128) % span
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Strategies: deterministic samplers for test inputs.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A sampler producing values of [`Strategy::Value`]. The stub keeps
    /// proptest's combinator shape but samples directly — no value trees,
    /// no shrinking.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Types sampleable uniformly from range bounds.
    pub trait RangeSample: Copy {
        /// Uniform draw from `[lo, hi)`.
        fn half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
        /// Uniform draw from `[lo, hi]`.
        fn inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_range_sample_int {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn half_open(lo: $t, hi: $t, rng: &mut TestRng) -> $t {
                    assert!(lo < hi, "strategy over an empty range");
                    let span = (hi as i128 - lo as i128) as u128;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
                fn inclusive(lo: $t, hi: $t, rng: &mut TestRng) -> $t {
                    assert!(lo <= hi, "strategy over an empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_sample_float {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn half_open(lo: $t, hi: $t, rng: &mut TestRng) -> $t {
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
                fn inclusive(lo: $t, hi: $t, rng: &mut TestRng) -> $t {
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    impl_range_sample_float!(f32, f64);

    impl<T: RangeSample> Strategy for std::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::half_open(self.start, self.end, rng)
        }
    }

    impl<T: RangeSample> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::inclusive(*self.start(), *self.end(), rng)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_strategy_tuple!(A);
    impl_strategy_tuple!(A, B);
    impl_strategy_tuple!(A, B, C);
    impl_strategy_tuple!(A, B, C, D);
    impl_strategy_tuple!(A, B, C, D, E);
    impl_strategy_tuple!(A, B, C, D, E, F);
    impl_strategy_tuple!(A, B, C, D, E, F, G);
    impl_strategy_tuple!(A, B, C, D, E, F, G, H);
}

/// `any::<T>()` and the types it can produce.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            rng.unit_f64() as f32
        }
    }

    /// The strategy behind [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specifications accepted by [`vec`]: an exact length or an
    /// integer range.
    pub trait SizeRange {
        /// Inclusive `(min, max)` bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "vec strategy over an empty range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Output of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u128) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform over `{false, true}`.
    pub const ANY: AnyBool = AnyBool;
}

/// Index-into-a-collection strategy (`prop::sample::Index`).
pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A size-agnostic index: draw once, project onto any length later.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        /// This index projected onto a collection of `len` elements.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64() as usize)
        }
    }
}

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. Parses both argument forms — `pat in strategy`
/// and the `name: Type` Arbitrary shorthand — samples each strategy
/// deterministically, and runs the body for `ProptestConfig::cases`
/// cases. No shrinking: failures panic with their case index, and the
/// per-test stream is stable across runs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr)) => {};
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..cfg.cases {
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $crate::proptest!(@bind rng $($params)*);
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), case, cfg.cases, e
                    );
                }
            }
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    // Parameter muncher: one `let` per argument, in declaration order (the
    // sampling order is part of the deterministic stream).
    (@bind $rng:ident) => {};
    (@bind $rng:ident $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    (@bind $rng:ident $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };
    (@bind $rng:ident $arg:ident : $ty:ty) => {
        let $arg =
            $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
    (@bind $rng:ident $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg =
            $crate::strategy::Strategy::sample(&$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };
    // A failed inner match must not fall back into the public entry arm —
    // that would re-wrap `@fns`/`@bind` tokens forever. Surface it.
    (@$($rest:tt)*) => {
        compile_error!(concat!(
            "proptest stub: unsupported syntax near: ",
            stringify!($($rest)*)
        ));
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Silently discards the current case unless `cond` holds (the stub
/// counts a discarded case as run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0usize..=4, f in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            (a, b) in (0u8..4, 0u8..4),
            v in prop::collection::vec(any::<u8>(), 1..=6),
        ) {
            prop_assert!(a < 4 && b < 4);
            prop_assert!(!v.is_empty() && v.len() <= 6);
        }
    }

    #[test]
    fn streams_are_stable_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x::y");
        let mut b = crate::test_runner::TestRng::deterministic("x::y");
        let mut c = crate::test_runner::TestRng::deterministic("x::z");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn prop_map_applies() {
        use crate::strategy::Strategy;
        let s = (0u32..5).prop_map(|v| v * 2);
        let mut rng = crate::test_runner::TestRng::deterministic("map");
        for _ in 0..20 {
            let v = s.sample(&mut rng);
            assert!(v % 2 == 0 && v < 10);
        }
    }
}
