//! No-op `Serialize`/`Deserialize` derives for the offline `serde`
//! stand-in: the attributes compile, generate nothing, and every
//! serializer in the workspace writes its JSON by hand instead (see
//! `tsm_trace::json`).

use proc_macro::TokenStream;

/// Accepts `#[derive(serde::Serialize)]` (and `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(serde::Deserialize)]` (and `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
