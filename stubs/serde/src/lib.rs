//! Offline stand-in for `serde`, selected via `[patch.crates-io]`.
//!
//! The workspace's build environment has no crates.io access, so the
//! `#[derive(serde::Serialize, serde::Deserialize)]` attributes scattered
//! through the ISA/topology/plan types resolve to the no-op derives in the
//! sibling `serde_derive` stub, and these marker traits exist only so
//! bounds and imports compile. Actual serialization in this workspace is
//! hand-rolled JSON (`tsm_trace::json`, `CompiledPlan::to_json`,
//! `ScheduleDump::to_json`) — by design, so the data formats are
//! dependency-free and auditable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of serde's `Serialize`; implemented by nothing and
/// required by nothing — present so `use`/bound sites compile.
pub trait SerializeMarker {}

/// Marker counterpart of serde's `Deserialize`.
pub trait DeserializeMarker<'de> {}
