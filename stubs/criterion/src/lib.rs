//! Offline stand-in for `criterion`, selected via `[patch.crates-io]`.
//!
//! Keeps the `criterion_group!`/`criterion_main!`/`bench_function` surface
//! the workspace's benches use, but replaces the statistics engine with a
//! short timed loop: each bench closure runs `sample_size` iterations and
//! the mean wall time is printed to stderr. That makes `cargo bench`
//! (and `cargo build --benches`, which tier-1 clippy covers) work with no
//! crates.io access; serious measurement lives in `repro bench-cosim`,
//! which has its own best-of-N loop.

use std::time::Instant;

/// Opaque value barrier, same contract as criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration timing harness handed to bench closures.
pub struct Bencher {
    samples: u32,
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Runs `f` for this bench's sample budget, accumulating wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total_ns += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

/// Top-level bench driver; collects groups and prints per-function means.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default iteration count per bench function.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u32;
        self
    }

    /// Starts a named group of bench functions.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Runs a single bench function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }
}

/// A named group of bench functions sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u32>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u32);
        self
    }

    /// Times `f` under `<group>/<id>`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&format!("{}/{}", self.name, id), samples, f);
        self
    }

    /// Ends the group (printing happens eagerly per function).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: u32, mut f: F) {
    let mut b = Bencher {
        samples: samples.max(1),
        total_ns: 0,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        eprintln!(
            "bench {id}: mean {} ns over {} iters",
            b.total_ns / u128::from(b.iters),
            b.iters
        );
    } else {
        eprintln!("bench {id}: closure never called Bencher::iter");
    }
}

/// Declares a bench group: a fn-list the [`criterion_main!`] entry runs.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closure_sample_size_times() {
        let mut count = 0u32;
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(7);
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.finish();
        assert_eq!(count, 7);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
