//! # tsm — a software-defined tensor streaming multiprocessor
//!
//! A from-scratch Rust reproduction of *"A Software-defined Tensor
//! Streaming Multiprocessor for Large-scale Machine Learning"* (Abts et
//! al., ISCA 2022): the deterministic, compiler-scheduled scale-out system
//! built from Groq TSP processing elements and a software-scheduled
//! Dragonfly interconnect.
//!
//! The repository models the complete stack — chips, links, packaging,
//! clock synchronization, the software-scheduled network, the
//! parallelizing compiler, fault tolerance, and the paper's evaluation
//! workloads — as deterministic, cycle-resolved simulation. See
//! `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.
//!
//! Quick start:
//!
//! ```
//! use tsm::prelude::*;
//!
//! // An 8-TSP node, fully connected by 28 C2C cables.
//! let system = System::single_node();
//!
//! // Compile a tiny two-device pipeline.
//! let mut graph = Graph::new();
//! let a = graph
//!     .add(TspId(0), OpKind::Gemm { shape: GemmShape::new(320, 320, 320), ty: ElemType::F16 }, vec![])
//!     .unwrap();
//! let t = graph
//!     .add(TspId(0), OpKind::Transfer { to: TspId(1), bytes: 204_800, allow_nonminimal: true }, vec![a])
//!     .unwrap();
//! graph.add(TspId(1), OpKind::Gemm { shape: GemmShape::new(320, 320, 320), ty: ElemType::F16 }, vec![t])
//!     .unwrap();
//!
//! let program = system.compile(&graph, CompileOptions::default()).unwrap();
//! let report = system.execute_with_graph(&program, &graph, 0);
//! assert!(report.succeeded);
//! ```

pub use tsm_baseline as baseline;
pub use tsm_chip as chip;
pub use tsm_compiler as compiler;
pub use tsm_core as core;
pub use tsm_fault as fault;
pub use tsm_isa as isa;
pub use tsm_link as link;
pub use tsm_mem as mem;
pub use tsm_net as net;
pub use tsm_sync as sync;
pub use tsm_topology as topology;
pub use tsm_trace as trace;
pub use tsm_workloads as workloads;

/// The names most programs need.
pub mod prelude {
    pub use tsm_chip::mxm::GemmShape;
    pub use tsm_compiler::graph::{Graph, OpId, OpKind};
    pub use tsm_compiler::schedule::{CompileOptions, CompiledProgram, OptLevel};
    pub use tsm_core::{
        ExecMode, ExecutionReport, Request, Runtime, ServeConfig, Server, SparePolicy, System,
        SystemConfig, WorkQueue,
    };
    pub use tsm_isa::ElemType;
    pub use tsm_topology::{NodeId, RackId, Topology, TspId};
    pub use tsm_trace::{NullSink, RingSink, RunMetrics, TraceSink};
    pub use tsm_workloads::bert::BertConfig;
    pub use tsm_workloads::cholesky::CholeskyPlan;
    pub use tsm_workloads::{merge_arrivals, poisson_arrivals, poisson_arrivals_in};
}
