//! Elasticity: inference and training tenants sharing one fabric.
//!
//! The abstract's promise — "a parallel machine learning system with
//! elasticity to support a variety of workloads, both training and
//! inference" — as a running demo: two inference tenants co-scheduled
//! conflict-free on one node (with a Gantt view of the interleaved
//! schedule), then a data-parallel training sweep showing weak scaling.
//!
//! ```sh
//! cargo run --release --example elasticity
//! ```

use tsm::compiler::dump::ScheduleDump;
use tsm::compiler::gantt;
use tsm::compiler::tenancy::compile_tenants;
use tsm::prelude::*;
use tsm::workloads::training::{weak_scaling_sweep, TrainingConfig};

fn inference_tenant(first: u32, second: u32, bytes: u64) -> Graph {
    let mut g = Graph::new();
    let a = g
        .add(TspId(first), OpKind::Compute { cycles: 40_000 }, vec![])
        .expect("valid");
    let t = g
        .add(
            TspId(first),
            OpKind::Transfer {
                to: TspId(second),
                bytes,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .expect("valid");
    g.add(TspId(second), OpKind::Compute { cycles: 40_000 }, vec![t])
        .expect("valid");
    g
}

fn main() {
    // --- two tenants, one node ----------------------------------------------
    let topo = Topology::single_node();
    let tenant_a = inference_tenant(0, 1, 2_000_000);
    let tenant_b = inference_tenant(4, 5, 2_000_000);
    let programs = compile_tenants(&[&tenant_a, &tenant_b], &topo, CompileOptions::default())
        .expect("disjoint tenants co-schedule");
    println!("== two inference tenants on one 8-TSP node ==");
    for (i, p) in programs.iter().enumerate() {
        println!(
            "tenant {i}: span {} cycles ({:.1} µs), comm fraction {:.0}%",
            p.span_cycles,
            p.estimated_seconds() * 1e6,
            p.comm_fraction() * 100.0
        );
    }
    println!("\nschedule of tenant B (its transfers interleave with tenant A's on shared links):");
    print!(
        "{}",
        gantt::render(&ScheduleDump::capture(&tenant_b, &programs[1]), 72)
    );

    // --- weak-scaling training sweep -----------------------------------------
    println!("\n== data-parallel BERT-Large training (batch 8 per replica) ==");
    println!("{:>6} {:>14} {:>12}", "TSPs", "samples/s", "efficiency");
    let rows = weak_scaling_sweep(TrainingConfig::bert_large(8), &[1, 2, 4, 8, 16])
        .expect("sweep schedules");
    for (tsps, throughput, eff) in rows {
        println!("{tsps:>6} {throughput:>14.1} {:>11.1}%", eff * 100.0);
    }
    println!("\neach added node brings replicas AND links: throughput scales while the");
    println!("gradient all-reduce is hidden behind the backward pass (weak scaling).");
}
