//! Clock synchronization walkthrough (paper §3): link characterization
//! (Table 2), HAC convergence, initial program alignment, and runtime
//! deskew.
//!
//! ```sh
//! cargo run --release --example synchronization
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsm::link::LatencyModel;
use tsm::prelude::*;
use tsm::sync::align::{align_pair, characterize_link, InitialAlignment};
use tsm::sync::clock::LocalClock;
use tsm::sync::deskew::RuntimeDeskew;
use tsm::topology::CableClass;

fn main() {
    // --- Table 2: characterize the 7 intra-node links --------------------
    println!("== link latency characterization (100K HAC reflections per link) ==");
    println!(
        "{:>4} {:>5} {:>8} {:>5} {:>6}",
        "link", "min", "mean", "max", "std"
    );
    let model = LatencyModel::for_class(CableClass::IntraNode);
    let mut rng = StdRng::seed_from_u64(2022);
    for link in ["A", "B", "C", "D", "E", "F", "G"] {
        let s = characterize_link(&model, 100_000, &mut rng);
        println!(
            "{:>4} {:>5} {:>8.2} {:>5} {:>6.2}",
            link, s.min, s.mean, s.max, s.std
        );
    }

    // --- HAC parent/child convergence ------------------------------------
    println!("\n== HAC alignment of a child running 80 ppm fast ==");
    let trace = align_pair(
        &model,
        217,
        LocalClock::with_ppm(80.0),
        100,
        4,
        120,
        &mut rng,
    );
    for (i, e) in trace.errors.iter().enumerate().step_by(15) {
        println!("exchange {i:>3}: |error| = {e:>5.1} cycles");
    }
    println!(
        "converged to the jitter neighborhood after {} exchanges",
        trace.converged_after.expect("converges")
    );

    // --- initial program alignment over a 264-TSP system ------------------
    println!("\n== initial program alignment (33 nodes / 264 TSPs) ==");
    let topo = Topology::fully_connected_nodes(33).expect("fits");
    let plan = InitialAlignment::plan(&topo, TspId(0));
    println!(
        "spanning tree height {}, worst link {} cycles -> overhead {} epochs ({:.2} µs)",
        plan.tree.height,
        plan.max_link_latency,
        plan.overhead_epochs,
        plan.overhead_cycles as f64 / 900.0e6 * 1e6
    );

    // --- runtime deskew ----------------------------------------------------
    println!("\n== runtime deskew across 50 segments of 1M cycles at 100 ppm ==");
    let deskew = RuntimeDeskew::new(500);
    let drifts = deskew.simulate_program(LocalClock::with_ppm(100.0), 1_000_000, 50);
    let max = drifts.iter().cloned().fold(0.0, f64::max);
    println!("max drift before any deskew: {max:.1} cycles (never accumulates)");
    assert!(max < 101.0);
}
