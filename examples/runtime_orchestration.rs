//! The runtime's view: launch a logical program, survive a marginal cable.
//!
//! Demonstrates the full §4.5/§5.1 operational loop: initial alignment,
//! logical→physical mapping with a hot spare held back, execution with
//! health monitoring, blame, failover, recompilation and replay — all
//! without the program author doing anything.
//!
//! ```sh
//! cargo run --release --example runtime_orchestration
//! ```

use tsm::core::{Runtime, SparePolicy};
use tsm::prelude::*;
use tsm::topology::LinkId;

fn logical_program() -> Graph {
    // A logical 2-node pipeline: compute on logical node 0, ship 640 KB,
    // compute on logical node 1.
    let mut g = Graph::new();
    let a = g
        .add(TspId(0), OpKind::Compute { cycles: 50_000 }, vec![])
        .expect("valid");
    let t = g
        .add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(8),
                bytes: 640_000,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .expect("valid");
    g.add(TspId(8), OpKind::Compute { cycles: 50_000 }, vec![t])
        .expect("valid");
    g
}

fn main() {
    let system = System::with_nodes(4).expect("4-node system");
    let mut runtime = Runtime::new(system, SparePolicy::PerSystem);
    println!(
        "deployment: 4 physical nodes, {} logical TSPs, {} spare node(s)",
        runtime.logical_tsps(),
        runtime.spare_plan().spares_left()
    );

    // --- healthy launch ----------------------------------------------------
    let out = runtime
        .launch(&logical_program(), 1)
        .expect("healthy launch");
    println!(
        "\nhealthy launch: {} attempt(s), alignment {} cycles, span {} cycles, fec {:?}",
        out.attempts(),
        out.alignment_cycles,
        out.span_cycles,
        out.fec()
    );

    // --- a cable on node 1 goes marginal ------------------------------------
    println!("\n*** degrading every cable on physical node 1 (marginal hardware) ***");
    // The wiring is deterministic, so an identically-built system gives the
    // same cable table to pick victims from.
    let system_view = System::with_nodes(4).expect("same wiring");
    for (i, l) in system_view.topology().links().iter().enumerate() {
        if l.a.node() == NodeId(1) || l.b.node() == NodeId(1) {
            runtime.degrade_link(LinkId(i as u32));
        }
    }

    let out = runtime
        .launch(&logical_program(), 2)
        .expect("recovers via spare");
    println!(
        "recovered launch: {} attempts, failovers {:?}",
        out.attempts(),
        out.failovers
    );
    println!(
        "logical TSP 8 now lives on physical {} (the spare node)",
        runtime.physical_tsp(TspId(8))
    );
    println!("final run was clean: {}", out.fec().is_clean_run());
    assert!(out.fec().is_clean_run());
    assert!(!out.failovers.is_empty());
}
