//! Deterministic multi-tenant serving over one TSM runtime.
//!
//! Two tenants share a 4-stage BERT pipeline: tenant 0 offers a steady
//! low-rate stream at high priority, tenant 1 is quiet until it floods a
//! Poisson burst at lower priority mid-story. The serving frontend
//! batches requests under a window, orders the queue by
//! `(priority, deadline, insertion seq)`, sheds on backpressure, and —
//! because everything runs in seeded virtual time — reproduces the whole
//! story bit-for-bit on every run.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use tsm::core::serving::{Request, ServeConfig, Server};
use tsm::core::{ExecMode, Runtime, SparePolicy};
use tsm::prelude::*;
use tsm::trace::telemetry::series;
use tsm::trace::{sparkline, CycleHistogram, Telemetry, TelemetryConfig};
use tsm::workloads::{merge_arrivals, poisson_arrivals, poisson_arrivals_in};

/// A 4-encoder BERT-shaped pipeline across 4 TSPs; the serving frontend
/// passes the batch size in.
fn bert(batch: u32) -> Graph {
    BertConfig {
        batch: u64::from(batch),
        ..BertConfig::with_encoders(4)
    }
    .build_pipeline_graph(4)
}

/// ASCII rendering of a latency histogram: one row per occupied
/// power-of-two bucket.
fn render(h: &CycleHistogram) -> Vec<String> {
    let peak = h.buckets.iter().copied().max().unwrap_or(1).max(1);
    h.buckets
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(i, &n)| {
            let (lo, hi) = CycleHistogram::bucket_bounds(i);
            let bar = "#".repeat((n * 40).div_ceil(peak) as usize);
            format!("    [{lo:>9}, {hi:>9}) {n:>4} {bar}")
        })
        .collect()
}

/// ASCII sparkline dashboard over the run's windowed telemetry:
/// per-tenant throughput and whole-run SLO attainment, the queue-depth
/// gauge, and the per-link / per-chip utilization heatmaps.
fn dashboard(tel: &Telemetry, server: &Server, tenants: &[tsm::core::serving::TenantStats]) {
    let last = tel.last_window().unwrap_or(0);
    println!();
    println!(
        "telemetry: {} windows of {} cycles each",
        last + 1,
        tel.window
    );
    for t in tenants {
        let label = server.tenant_label(t.tenant);
        let tp = tel
            .get(series::SERVE_THROUGHPUT, &label)
            .map(|s| s.dense(0, last))
            .unwrap_or_default();
        let met = tel.get(series::SLO_MET, &label).map_or(0, |s| s.total());
        let missed = tel.get(series::SLO_MISSED, &label).map_or(0, |s| s.total());
        let slo = if met + missed == 0 {
            1.0
        } else {
            met as f64 / (met + missed) as f64
        };
        println!(
            "  {label:>8} throughput |{}| slo {:5.1}%",
            sparkline(&tp),
            slo * 100.0
        );
    }
    if let Some(depth) = tel.get(series::SERVE_QUEUE_DEPTH, "") {
        println!(
            "  {:>8} gauge      |{}| peak {}",
            "queue",
            sparkline(&depth.dense(0, last)),
            depth.total()
        );
    }
    for name in [series::LINK_DELIVERIES, series::CHIP_BUSY] {
        for label in tel.labels(name) {
            let s = tel.get(name, label).expect("listed label");
            println!(
                "  {label:>8} {:<10} |{}| total {}",
                name.split_once('.').map_or(name, |(_, tail)| tail),
                sparkline(&s.dense(0, last)),
                s.total()
            );
        }
    }
}

fn main() {
    // Calibrate the service time so the offered rates mean something.
    let mut probe = Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem)
        .with_exec_mode(ExecMode::Datapath);
    let service = probe.launch(&bert(1), 0).unwrap().timeline_cycles;
    let horizon = service * 40;

    // Tenant 0: steady 0.3μ at priority 0 over the whole horizon.
    // Tenant 1: a 2μ Poisson burst at priority 1 over the middle third.
    let steady = poisson_arrivals(11, 0.3 / service as f64, horizon, 0, 0, 4 * service);
    let burst = poisson_arrivals_in(
        12,
        2.0 / service as f64,
        horizon / 3,
        2 * horizon / 3,
        1,
        1,
        4 * service,
    );
    let offered: Vec<Request> = merge_arrivals(&[steady, burst])
        .iter()
        .map(|a| Request {
            at: a.at,
            tenant: a.tenant,
            model: 0,
            priority: a.priority,
            deadline_slack: a.deadline_slack,
        })
        .collect();

    let cfg = ServeConfig {
        batch_window: service / 2,
        max_batch: 8,
        queue_capacity: 32,
        tenant_quota: 12, // the burst cannot squeeze tenant 0 out
        seed: 7,
        // Non-certified launches put their link/chip heatmaps on the
        // serving timeline; certify-mode replays run off-timeline.
        certify: false,
        telemetry: Some(TelemetryConfig {
            window: service / 2,
            slo_permille: 990,
        }),
        // Attribution joins every served request to the stages that
        // consumed its cycles; the breakdowns sum exactly to latency.
        attribution: true,
        flight: None,
    };
    let rt = Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem)
        .with_exec_mode(ExecMode::Datapath);
    let mut server = Server::new(rt, cfg);
    server.add_model(bert);
    server.name_tenant(0, "steady");
    server.name_tenant(1, "burst");
    let report = server.serve(&offered).expect("serving run");

    println!(
        "service time {} cycles; {} offered over {} cycles — {} served, {} shed, {} batches",
        service,
        report.offered,
        horizon,
        report.served,
        report.shed,
        report.batches.len()
    );
    println!(
        "global latency: p50 {:.0}  p99 {:.0}  p999 {:.0} cycles",
        report.latency.percentile(0.50),
        report.latency.percentile(0.99),
        report.latency.percentile(0.999)
    );

    for t in &report.tenants {
        println!();
        println!(
            "tenant {} — {} offered, {} served, {} shed; p50 {:.0}  p99 {:.0} cycles",
            t.tenant,
            t.offered,
            t.served,
            t.shed,
            t.latency.percentile(0.50),
            t.latency.percentile(0.99)
        );
        for line in render(&t.latency) {
            println!("{line}");
        }
    }

    // The telemetry dashboard: every series below is sampled in virtual
    // time, so it is as reproducible as the report itself.
    let tel = report.telemetry.as_ref().expect("telemetry is on");
    dashboard(tel, &server, &report.tenants);

    // Causal attribution: the three slowest requests, decomposed into
    // the stages that consumed their cycles. The components sum exactly
    // to each latency (verified by the serve run itself).
    let attr = report.attribution.as_ref().expect("attribution is on");
    let mut slowest: Vec<&tsm::trace::LatencyBreakdown> = attr.breakdowns.iter().collect();
    slowest.sort_by_key(|b| std::cmp::Reverse((b.latency(), b.request)));
    println!();
    println!("slowest requests (stage breakdown, cycles):");
    for b in slowest.iter().take(3) {
        let stages: Vec<String> = tsm::trace::Stage::ALL
            .iter()
            .filter_map(|&s| {
                let c = b.component(s);
                (c > 0).then(|| format!("{} {}", s.as_str(), c))
            })
            .collect();
        println!(
            "  req {:>3} ({}) batch {:>2}: {:>8} = {}  [critical: {}]",
            b.request,
            server.tenant_label(b.tenant),
            b.batch,
            b.latency(),
            stages.join(" + "),
            b.critical_stage().as_str()
        );
    }

    // Virtual time means this whole story is a pure function of its
    // seeds: rerun it and the report is bit-identical.
    let rt2 = Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem)
        .with_exec_mode(ExecMode::Datapath);
    let mut again = Server::new(rt2, cfg);
    again.add_model(bert);
    again.name_tenant(0, "steady");
    again.name_tenant(1, "burst");
    assert_eq!(again.serve(&offered).unwrap(), report);
    println!();
    println!("rerun reproduced the report bit-for-bit");
}
