//! 8-way All-Reduce bandwidth (paper §5.3, Fig 16).
//!
//! Sweeps the tensor size and prints the realized bus bandwidth of the
//! TSP's scheduled all-reduce against the NCCL-ring model of an 8×A100
//! node — raw and pin-normalized.
//!
//! ```sh
//! cargo run --release --example allreduce
//! ```

use tsm::baseline::nccl;
use tsm::compiler::collective::allreduce_intra_node;
use tsm::prelude::*;

fn main() {
    let topo = Topology::single_node();
    println!(
        "{:>12} {:>14} {:>14} {:>16}",
        "bytes", "TSP bus GB/s", "A100 bus GB/s", "A100-norm GB/s"
    );
    let mut crossover_reported = false;
    for shift in [10u32, 12, 14, 16, 18, 20, 22, 24, 26] {
        let bytes = 1u64 << shift;
        let tsp = allreduce_intra_node(&topo, NodeId(0), bytes).expect("schedules");
        let a100 = nccl::allreduce_bus_gbs(bytes);
        let a100_norm = nccl::allreduce_bus_gbs_pin_normalized(bytes, 87.5);
        println!(
            "{:>12} {:>14.2} {:>14.2} {:>16.2}",
            bytes, tsp.bus_gbs, a100, a100_norm
        );
        if !crossover_reported && a100 > tsp.bus_gbs {
            crossover_reported = true;
            println!(
                "{:>12}   ^ raw A100 overtakes on sheer pin bandwidth here",
                ""
            );
        }
    }
    println!();
    println!("small tensors: the TSP's barrier-free schedule wins (no launch/fence overhead);");
    println!("large tensors: pin-normalized A100 converges to the TSP (Fig 16 zoom).");
}
