//! BERT-Large on 4 TSPs: the Fig 17 latency histogram.
//!
//! Runs one compiled inference 24,240 times (the paper's count), bins the
//! measured latencies into 5 µs buckets, and reports the compiler
//! estimate's accuracy.
//!
//! ```sh
//! cargo run --release --example bert_inference
//! ```

use tsm::prelude::*;

fn main() {
    let config = BertConfig::large();
    let graph = config.build_pipeline_graph(4);
    let system = System::single_node();
    let program = system
        .compile(&graph, CompileOptions::default())
        .expect("compiles");
    let estimate_us = program.estimated_seconds() * 1e6;
    println!(
        "BERT-Large ({} encoders, hidden {}) on 4 TSPs",
        config.encoders, config.hidden
    );
    println!("compiler estimate: {estimate_us:.0} µs");

    const RUNS: usize = 24_240;
    let reports = system.execute_many(&program, &graph, RUNS, 2022);

    // 5 µs bins, like the paper's histogram.
    let mut bins = std::collections::BTreeMap::<u64, u32>::new();
    let mut latencies: Vec<f64> = Vec::with_capacity(RUNS);
    for r in &reports {
        let us = r.measured_seconds() * 1e6;
        latencies.push(us);
        *bins.entry((us / 5.0) as u64 * 5).or_insert(0) += 1;
    }
    latencies.sort_by(f64::total_cmp);
    let p50 = latencies[RUNS / 2];
    let p99 = latencies[RUNS * 99 / 100];
    let max = latencies[RUNS - 1];

    println!("runs: {RUNS}");
    println!("p50 {p50:.0} µs | p99 {p99:.0} µs | max {max:.0} µs");
    println!(
        "all runs return by the estimate: {}",
        max <= estimate_us + 0.5
    );
    let within_2pct = reports
        .iter()
        .filter(|r| r.estimate_error() <= 0.02)
        .count();
    println!(
        "estimate within 2% of measurement in {:.1}% of runs",
        within_2pct as f64 / RUNS as f64 * 100.0
    );

    println!("\nhistogram (5 µs bins):");
    let peak = *bins.values().max().unwrap_or(&1);
    for (bin, count) in &bins {
        let bar = "#".repeat((count * 60 / peak) as usize);
        println!("{bin:>6} µs |{bar} {count}");
    }
}
