//! Cholesky factorization on multiple TSPs (paper §5.5, Fig 19).
//!
//! Validates the kernel numerically against the reference factorization,
//! then prints the Fig 19(c) scaling table.
//!
//! ```sh
//! cargo run --release --example cholesky
//! ```

use tsm::prelude::*;
use tsm::workloads::linalg::{cholesky, Matrix};

fn main() {
    // --- numerical check ---------------------------------------------------
    let a = Matrix::spd(64);
    let l = cholesky(&a);
    let err = a.max_abs_diff(&l.matmul(&l.transpose()));
    println!("reference Cholesky on a 64x64 SPD matrix: |A - LLᵀ|max = {err:.2e}");
    assert!(err < 1e-9);

    // --- block-cyclic distribution -----------------------------------------
    let plan = CholeskyPlan::new(3200, 4);
    println!(
        "3200x3200 over 4 TSPs: TSP0 owns 320-row blocks {:?}",
        plan.blocks_of(0)
    );

    // --- Fig 19(c): execution time vs problem size ---------------------------
    println!(
        "\n{:>7} {:>12} {:>12} {:>12} {:>12}",
        "p", "1 TSP (ms)", "2 TSPs", "4 TSPs", "8 TSPs"
    );
    for p in [1024u64, 2048, 4096, 8192, 16384] {
        let ms: Vec<f64> = [1u64, 2, 4, 8]
            .iter()
            .map(|&k| CholeskyPlan::new(p, k).seconds() * 1e3)
            .collect();
        println!(
            "{:>7} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            p, ms[0], ms[1], ms[2], ms[3]
        );
    }

    println!("\nspeedups at p = 8192:");
    for k in [2u64, 4, 8] {
        let plan = CholeskyPlan::new(8192, k);
        println!(
            "  {k} TSPs: {:.2}x speedup, {:.1} FP16 TFLOPs",
            plan.speedup(),
            plan.tflops()
        );
    }
    println!("\nthe loop-carried pivot chain keeps scaling strongly sublinear (Fig 19c).");
}
