//! Multi-chip co-simulation: the full compile → assemble → execute loop.
//!
//! Schedules tensor movements on the software-scheduled network, lowers
//! them to per-TSP instruction programs, assembles one program into the
//! binary format, and co-executes all chips with real vector payloads —
//! verifying bit-exact delivery at the scheduled cycles.
//!
//! ```sh
//! cargo run --release --example cosim
//! ```

use tsm::core::cosim::{run_transfers, CosimTransfer};
use tsm::isa::encode as asm;
use tsm::isa::{Instruction, StreamId, Vector};
use tsm::prelude::*;

fn main() {
    let topo = Topology::fully_connected_nodes(2).expect("two nodes");

    // Three concurrent tensor movements, including a cross-node one that
    // must be forwarded through an intermediate TSP.
    let transfers = vec![
        CosimTransfer {
            from: TspId(0),
            to: TspId(3),
            src_slice: 0,
            src_offset: 0,
            dst_slice: 2,
            dst_offset: 0,
            data: (0..64).map(|i| Vector::splat(i as u8)).collect(),
        },
        CosimTransfer {
            from: TspId(5),
            to: TspId(6),
            src_slice: 1,
            src_offset: 100,
            dst_slice: 1,
            dst_offset: 200,
            data: (0..32)
                .map(|i| Vector::from_fn(|b| (b as u8).wrapping_mul(i as u8)))
                .collect(),
        },
        CosimTransfer {
            from: TspId(1),
            to: TspId(9), // other node, not directly cabled to TSP 1's peer set
            src_slice: 3,
            src_offset: 0,
            dst_slice: 3,
            dst_offset: 0,
            data: (0..16).map(|i| Vector::splat(0xA0 | i as u8)).collect(),
        },
    ];

    let report = run_transfers(&topo, &transfers).expect("co-simulation succeeds");
    println!(
        "co-simulated {} transfers over {} chips",
        transfers.len(),
        report.retire_cycles.len()
    );
    println!("{} instructions lowered in total", report.instructions);
    for (i, arrival) in report.arrivals.iter().enumerate() {
        println!(
            "transfer {i}: last vector arrives at cycle {arrival} ({:.2} µs) — bit-exact (verified)",
            *arrival as f64 / 900.0
        );
    }

    // The assembler view (paper Fig 12): a tiny hand-written program and
    // its machine-code binary.
    let program = vec![
        (0u64, Instruction::Deskew),
        (
            252,
            Instruction::Read {
                slice: 0,
                offset: 0,
                stream: StreamId::new(0).unwrap(),
                dir: tsm::isa::Direction::East,
            },
        ),
        (
            257,
            Instruction::Send {
                port: 2,
                stream: StreamId::new(0).unwrap(),
            },
        ),
        (300, Instruction::Sync),
        (350, Instruction::Notify),
    ];
    let binary = asm::assemble(&program);
    println!(
        "\nassembled {} instructions into {} bytes:",
        program.len(),
        binary.len()
    );
    for rec in binary.chunks(16) {
        let hex: String = rec.iter().map(|b| format!("{b:02x}")).collect();
        println!("  {hex}");
    }
    let back = asm::disassemble(&binary).expect("round trips");
    assert_eq!(back, program);
    println!("disassembly round-trips: ok");
}
