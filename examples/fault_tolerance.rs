//! Fault tolerance walkthrough (paper §4.5): FEC, software replay, and
//! N+1 hot-spare failover.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use tsm::fault::spare::SparePlan;
use tsm::prelude::*;

fn main() {
    // --- FEC + replay on a noisy link -----------------------------------
    println!("== FEC and software replay ==");
    let mut graph = Graph::new();
    graph
        .add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(1),
                bytes: 3_200_000,
                allow_nonminimal: true,
            },
            vec![],
        )
        .expect("valid graph");

    for ber in [0.0, 1e-7, 1e-5] {
        let system = System::single_node().with_config(SystemConfig {
            bit_error_rate: ber,
            ..Default::default()
        });
        let program = system
            .compile(&graph, CompileOptions::default())
            .expect("compiles");
        let r = system.execute_with_graph(&program, &graph, 11);
        println!(
            "BER {ber:>8.0e}: {} packets — {} clean, {} corrected in situ, {} uncorrectable, {} replays, success={}",
            r.fec().total(),
            r.fec().clean,
            r.fec().corrected,
            r.fec().uncorrectable,
            r.replays(),
            r.succeeded
        );
    }

    // --- hot-spare failover ----------------------------------------------
    println!("\n== N+1 hot-spare failover (33-node system) ==");
    let mut system = System::with_nodes(33).expect("33 nodes fit the regime");
    let mut plan = SparePlan::per_system(system.topology());
    println!(
        "logical nodes {}, spares {}, overhead {:.1}%",
        plan.logical_nodes(),
        plan.spares_left(),
        plan.overhead() * 100.0
    );
    let failed = NodeId(7);
    let spare = plan
        .fail_over(system.topology_mut(), failed)
        .expect("spare available");
    println!("node {failed} failed -> remapped onto spare {spare}");
    println!(
        "logical TSP 7*8+3 now lives on physical {}",
        plan.physical_tsp(TspId(7 * 8 + 3))
    );
    let connected = plan.verify_connectivity(system.topology());
    println!("network fully connected after failover: {connected}");
    assert!(connected);
}
