//! Renders one faulty datapath launch as a Chrome-trace timeline.
//!
//! A marginal node's cables run at a BER that defeats SEC-DED; the
//! runtime replays, blames the node, fails over to the spare, and
//! relaunches — and every stage of that story lands in the trace: the
//! alignment window, each replay epoch, per-chip execution/delivery
//! spans, link-level FEC events, the blame vote, and the failover.
//!
//! Run with `cargo run --example trace_demo`, then open the written
//! `trace_demo.trace.json` in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.

use std::sync::Arc;
use tsm::core::{ExecMode, Runtime, SparePolicy};
use tsm::prelude::*;
use tsm::topology::LinkId;
use tsm::trace::profile::profile;
use tsm::trace::{chrome_trace_json, RingSink};

fn logical_pipeline() -> Graph {
    let mut g = Graph::new();
    let a = g
        .add(TspId(0), OpKind::Compute { cycles: 10_000 }, vec![])
        .unwrap();
    let t = g
        .add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(15),
                bytes: 32_000,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .unwrap();
    g.add(TspId(15), OpKind::Compute { cycles: 1_000 }, vec![t])
        .unwrap();
    g
}

fn faulty_runtime(victim: NodeId) -> Runtime {
    let mut rt = Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem)
        .with_exec_mode(ExecMode::Datapath);
    // Healthy cables perfect; the victim's cables at a BER where two
    // flips routinely land in one 2560-bit packet.
    rt.set_ber(0.0, 2e-4);
    let marginal: Vec<LinkId> = rt
        .system()
        .topology()
        .links()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.a.node() == victim || l.b.node() == victim)
        .map(|(i, _)| LinkId(i as u32))
        .collect();
    for l in marginal {
        rt.degrade_link(l);
    }
    rt
}

fn main() {
    let victim = NodeId(1);
    let graph = logical_pipeline();

    // Scan a few seeds for a launch that exercises the full recovery
    // story (replay + failover); any seed's trace is valid, this just
    // makes the demo timeline interesting.
    let mut best: Option<(u64, Arc<RingSink>, tsm::core::LaunchOutcome, Runtime)> = None;
    for seed in 0..16u64 {
        let sink = Arc::new(RingSink::new(1 << 16));
        let mut rt = faulty_runtime(victim).with_trace_sink(sink.clone());
        let Ok(out) = rt.launch(&graph, seed) else {
            continue;
        };
        let full_story = out.attempts() > 1 && out.failovers == vec![victim];
        let keep = full_story || best.is_none();
        if keep {
            let done = full_story;
            best = Some((seed, sink, out, rt));
            if done {
                break;
            }
        }
    }
    let (seed, sink, out, rt) = best.expect("some seed launches successfully");

    let events = sink.sorted_events();
    let json = chrome_trace_json(&events);
    let path = "trace_demo.trace.json";
    std::fs::write(path, &json).expect("write trace file");

    println!(
        "seed {seed}: launch finished in {} attempt(s)",
        out.attempts()
    );
    println!("  failovers:       {:?}", out.failovers);
    println!("  compiles/reuses: {}/{}", out.compiles(), out.reuses());
    println!(
        "  fec (all runs):  clean={} corrected={} uncorrectable={}",
        out.fec_total().clean,
        out.fec_total().corrected,
        out.fec_total().uncorrectable
    );
    println!("  trace events:    {} (0 dropped)", events.len());
    println!("  metrics:         {}", out.metrics.to_json());
    println!("wrote {path} — open it at https://ui.perfetto.dev");

    // Plan-vs-actual conformance: join the trace against the (final,
    // post-failover) compiled plan's delivery schedule. A launch that
    // replayed and failed over cannot certify — the profile itemizes how
    // far each delivery landed from its planned cycle.
    let planned = rt.planned_timeline().expect("datapath launch compiled");
    match profile(&planned, &events, sink.dropped()) {
        Ok(prof) => {
            println!();
            print!("{}", prof.render());
        }
        Err(e) => println!("profiler refused the trace: {e}"),
    }
}
