//! Distributed matrix multiplication (paper §5.2, Fig 14).
//!
//! Decomposes the paper's [800×32576]×[32576×8192] operation with 8
//! column-wise splits and a growing number of row-wise splits, printing
//! the latency/throughput scaling table of Fig 14.
//!
//! ```sh
//! cargo run --release --example distributed_matmul
//! ```

use tsm::compiler::partition::build_distributed_gemm;
use tsm::compiler::schedule::{compile, CompileOptions};
use tsm::prelude::*;

fn main() {
    let shape = GemmShape::new(800, 32_576, 8192);
    println!(
        "operation: [800x32576] x [32576x8192]  ({} GFLOP)",
        shape.flops() / 1_000_000_000
    );
    println!();
    println!(
        "{:>5} {:>6} {:>12} {:>12} {:>10}",
        "TSPs", "rows", "latency(µs)", "TFLOPs", "util %"
    );

    let mut prev_latency = f64::INFINITY;
    for row_splits in [1u64, 2, 4, 8, 13] {
        let tsps = 8 * row_splits;
        let graph = build_distributed_gemm(shape, 8, row_splits, ElemType::F16);
        let max_dev = graph.devices().iter().map(|d| d.index()).max().unwrap_or(0);
        let nodes = (max_dev + 1).div_ceil(8).max(1);
        let topo = if nodes == 1 {
            Topology::single_node()
        } else {
            Topology::fully_connected_nodes(nodes).expect("fits the regime")
        };
        let program = compile(&graph, &topo, CompileOptions::default()).expect("compiles");
        let latency_us = program.estimated_seconds() * 1e6;
        let tflops = program.realized_tflops(graph.total_flops());
        let peak = tsps as f64 * 184.32;
        println!(
            "{:>5} {:>6} {:>12.1} {:>12.1} {:>10.1}",
            tsps,
            row_splits,
            latency_us,
            tflops,
            tflops / peak * 100.0
        );
        if row_splits <= 8 {
            assert!(
                latency_us < prev_latency,
                "latency must fall as TSPs are added"
            );
        } else {
            // Beyond one node per cluster the reduction gains a cross-node
            // step; our cost model flattens here (see EXPERIMENTS.md).
            assert!(
                latency_us < prev_latency * 1.3,
                "latency must not regress sharply"
            );
        }
        prev_latency = latency_us;
    }
    println!();
    println!("latency falls as TSPs are added (each TSP brings compute AND C2C links),");
    println!("flattening once clusters span nodes and the reduction pays a cross-node hop.");
}
