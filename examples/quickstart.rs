//! Quickstart: build a system, compile a graph, execute it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tsm::prelude::*;

fn main() {
    // An 8-TSP GroqNode: 28 intra-node C2C cables, fully connected.
    let system = System::single_node();
    let topo = system.topology();
    println!(
        "system: {} TSPs, {} cables, {} GiB global SRAM",
        topo.num_tsps(),
        topo.links().len(),
        topo.global_memory_bytes() / (1 << 30)
    );

    // One-time initial program alignment (paper §3.2).
    let align = system.plan_alignment();
    println!(
        "initial alignment: spanning tree height {}, overhead {} epochs ({} cycles)",
        align.tree.height, align.overhead_epochs, align.overhead_cycles
    );

    // A three-op pipeline: GEMM on TSP0 -> ship activations -> GEMM on TSP1.
    let mut graph = Graph::new();
    let a = graph
        .add(
            TspId(0),
            OpKind::Gemm {
                shape: GemmShape::new(800, 1024, 1024),
                ty: ElemType::F16,
            },
            vec![],
        )
        .expect("valid graph");
    let t = graph
        .add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(1),
                bytes: 800 * 1024 * 2,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .expect("valid graph");
    graph
        .add(
            TspId(1),
            OpKind::Gemm {
                shape: GemmShape::new(800, 1024, 1024),
                ty: ElemType::F16,
            },
            vec![t],
        )
        .expect("valid graph");

    let program = system
        .compile(&graph, CompileOptions::default())
        .expect("compiles");
    println!(
        "compiled: span {} cycles ({:.2} µs), comm fraction {:.1}%",
        program.span_cycles,
        program.estimated_seconds() * 1e6,
        program.comm_fraction() * 100.0
    );

    // Execute three times: the network is deterministic, so without host
    // I/O every run measures exactly the estimate.
    for seed in 0..3 {
        let report = system.execute_with_graph(&program, &graph, seed);
        println!(
            "run {}: measured {} cycles, estimate error {:.3}%, fec: {} clean / {} corrected",
            seed,
            report.measured_cycles,
            report.estimate_error() * 100.0,
            report.fec().clean,
            report.fec().corrected,
        );
        assert!(report.succeeded);
    }
}
