#!/usr/bin/env bash
# Tier-1 gate: everything must build, every test must pass, clippy must be
# clean at -D warnings. Run from the repo root.
#
# Offline environments: the workspace pulls rand/serde/proptest/criterion
# from crates.io, so a machine without network access needs a vendored
# registry first —
#   cargo vendor vendor/ && mkdir -p .cargo &&
#   printf '[source.crates-io]\nreplace-with = "vendored-sources"\n\n[source.vendored-sources]\ndirectory = "vendor"\n' >> .cargo/config.toml
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test --workspace -q
cargo clippy --workspace -- -D warnings
