#!/usr/bin/env bash
# Tier-1 gate: everything must build, every test must pass, clippy must be
# clean at -D warnings. Run from the repo root.
#
# Offline environments: the workspace's external-looking deps
# (rand/serde/proptest/criterion) resolve to the in-repo crates under
# stubs/ via [patch.crates-io] in the root Cargo.toml, so no network or
# vendored registry is needed — `cargo build --offline` just works.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test --workspace -q
# The compile-once / execute-many contract (plan reuse, payload isolation,
# serde round-trip) has its own integration suite; run it by name so a
# filtered `cargo test` invocation can never silently skip it.
cargo test -p tsm-core --test plan_reuse -q
# The persistent worker pool behind the parallel engine: serial≡parallel
# bit-identity and trace identity across randomized workloads and worker
# counts, pool rebuilds on a live executor, TSM_THREADS resolution.
cargo test -p tsm-core --test pool_determinism -q
# Likewise the fault path: datapath BER injection, FEC bit-for-bit
# verification, and the replay/blame/failover recovery loop.
cargo test -p tsm-core --test fault_path -q
# The observability layer: the trace crate itself, the serial≡parallel
# trace-identity contract, and the fault-path timeline assertions.
cargo test -p tsm-trace -q
cargo test -p tsm-core --test trace_identity -q
cargo test -p tsm-core --test trace_fault -q
# The plan-vs-actual conformance invariant: fault-free runs certify with
# zero skew (executor and full launch), replays itemize deterministic
# skew, lossy traces are refused.
cargo test -p tsm-core --test profile_conformance -q
# The serving runtime: launch-vs-serve-of-one bit/trace identity (both
# exec modes, fault-free and replay paths), WorkQueue total-order
# proptests, and batch-width independence of serving outcomes.
cargo test -p tsm-core --test serve_identity -q
cargo test -p tsm-core --test serving_queue -q
# The plan-residency layer: multi-model reuse, budget-0 single-entry
# equivalence, pre-residency trace-shape pinning, failover epoch drops,
# the warm-start tier round trip, and the LRU-vs-reference proptest.
cargo test -p tsm-core --test residency -q
# The windowed telemetry layer: launch/serve off-identity (sampling off is
# bit-identical to pre-feature behaviour), heatmap-vs-trace agreement,
# SLO-series accounting, JSON bit-reproducibility, and hostile-label
# escaping through both exporters.
cargo test -p tsm-core --test telemetry -q
# The causal attribution layer: every served request's stage breakdown
# sums exactly to its latency (clean, replaying, and certified paths),
# aggregation is the exact fold of the breakdowns, off-identity holds,
# and the JSON round trip is byte-stable.
cargo test -p tsm-core --test attribution -q
# The incident flight recorder: trigger coverage (shed/expiry/SLO-miss/
# fault), bounded capture, off-identity, byte-reproducible incidents,
# and telemetry-window bracketing.
cargo test -p tsm-core --test flight -q
cargo test -p tsm-fault -q
cargo test -p tsm-link -q
# Fast bench smoke: one sample of the canonical workload plus the small
# end of the scaling curve, with bit-identity and trace-identity asserted
# at every point. Writes no files, so it cannot clobber BENCH_cosim.json.
cargo run --release -p tsm-bench --bin repro bench-cosim-smoke
# Fast serving smoke: a small load×window sweep with certification on
# every launch, overload backpressure, bit-reproducibility, and a
# multi-model alternation that must report residency-cache hits.
# Writes no files.
cargo run --release -p tsm-bench --bin repro serve-smoke
# Fast residency smoke: the cache-thrash scenario at warm/thrash/single
# budgets with exact hit-rate and warm-start-tier assertions. Writes no
# files.
cargo run --release -p tsm-bench --bin repro residency-smoke
# Fast telemetry smoke: windowed sampling must reproduce byte-for-byte
# from its seed and, when off, be bit-identical to the pre-feature
# event sequences and reports. Writes no files.
cargo run --release -p tsm-bench --bin repro telemetry-smoke
# Fast attribution smoke: a fault-injected serve whose every breakdown
# must sum exactly to its latency, with byte-reproducible incident
# capture and the off-is-off identity for both features. Writes no files.
cargo run --release -p tsm-bench --bin repro attribution-smoke
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check
# Rustdoc is part of the contract: broken intra-doc links and bad doc
# syntax fail the gate, same as clippy.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
