//! Distributed matrix multiplication computed *numerically* through the
//! chip executors: weights install into the MXM arrays, activations stream
//! through, partial products cross the C2C fabric, and the recomposed
//! result matches the f64 reference — the §5.2 decomposition as running
//! machine code, not just a timing model.

use tsm::chip::exec::{ChipProgram, ChipSim};
use tsm::chip::gemm_program::{gemm_program, pack_matrix, GemmLayout};
use tsm::chip::vxm::to_f32_lanes;
use tsm::isa::instr::{Instruction, VectorOpcode};
use tsm::isa::{Direction, StreamId};
use tsm::workloads::linalg::Matrix;

const K: usize = 80; // inner dimension (the FP32-lane array height)
const M: usize = 10; // activation rows

fn a_matrix() -> Vec<Vec<f32>> {
    (0..M)
        .map(|r| {
            (0..K)
                .map(|c| (((r * 13 + c * 7) % 9) as f32 - 4.0) * 0.5)
                .collect()
        })
        .collect()
}

fn w_matrix(cols: usize, salt: usize) -> Vec<Vec<f32>> {
    (0..K)
        .map(|r| {
            (0..cols)
                .map(|c| (((r * 3 + c * 5 + salt) % 11) as f32 - 5.0) * 0.25)
                .collect()
        })
        .collect()
}

fn reference(a: &[Vec<f32>], w: &[Vec<f32>]) -> Matrix {
    let am = Matrix::from_fn(M, K, |r, c| a[r][c] as f64);
    let wm = Matrix::from_fn(K, w[0].len(), |r, c| w[r][c] as f64);
    am.matmul(&wm)
}

/// Runs one device's share of a column-split GEMM and returns its C rows.
fn run_device_gemm(a: &[Vec<f32>], w: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let cols = w[0].len();
    let mut sim = ChipSim::new();
    for (i, row) in pack_matrix(K, cols, |r, c| w[r][c]).into_iter().enumerate() {
        sim.preload(0, i as u16, row);
    }
    for (i, row) in pack_matrix(M, K, |r, c| a[r][c]).into_iter().enumerate() {
        sim.preload(1, i as u16, row);
    }
    let layout = GemmLayout {
        weight_slice: 0,
        act_slice: 1,
        out_slice: 2,
        k: K as u16,
        m: M as u16,
    };
    let (prog, _) = gemm_program(layout, 0);
    sim.run(&prog).unwrap();
    (0..M)
        .map(|r| to_f32_lanes(sim.sram(2, r as u16).unwrap())[..cols].to_vec())
        .collect()
}

#[test]
fn column_split_gemm_concatenates_to_the_reference() {
    // [M×80]×[80×160]: W's columns split across two devices, each
    // computing an [M×80] half; the concatenation is the full product.
    let a = a_matrix();
    let w0 = w_matrix(80, 0);
    let w1 = w_matrix(80, 1);
    let c0 = run_device_gemm(&a, &w0);
    let c1 = run_device_gemm(&a, &w1);

    // reference of the combined [80×160] weight matrix
    let w_full: Vec<Vec<f32>> = (0..K)
        .map(|r| w0[r].iter().chain(w1[r].iter()).copied().collect())
        .collect();
    let expect = reference(&a, &w_full);

    for r in 0..M {
        for c in 0..160 {
            let got = if c < 80 { c0[r][c] } else { c1[r][c - 80] } as f64;
            assert!(
                (got - expect.get(r, c)).abs() < 1e-3,
                "C[{r}][{c}]: {got} vs {}",
                expect.get(r, c)
            );
        }
    }
}

#[test]
fn row_split_gemm_reduces_across_chips_with_real_transfers() {
    // [M×160]×[160×80] split row-wise: device 0 holds W rows 0..80 and A
    // columns 0..80, device 1 the rest. Device 1's partial product crosses
    // the wire (Send → Receive), and device 0 sums the partials on its VXM
    // — the §5.2 row-split reduction as actual instructions.
    let a_full: Vec<Vec<f32>> = (0..M)
        .map(|r| {
            (0..160)
                .map(|c| (((r * 11 + c * 3) % 7) as f32 - 3.0) * 0.5)
                .collect()
        })
        .collect();
    let w_full: Vec<Vec<f32>> = (0..160)
        .map(|r| {
            (0..80)
                .map(|c| (((r * 5 + c * 2) % 13) as f32 - 6.0) * 0.125)
                .collect()
        })
        .collect();

    // per-device shards
    let a0: Vec<Vec<f32>> = a_full.iter().map(|r| r[..80].to_vec()).collect();
    let a1: Vec<Vec<f32>> = a_full.iter().map(|r| r[80..].to_vec()).collect();
    let w0 = &w_full[..80];
    let w1 = &w_full[80..];

    // Device 1 computes its partial and sends each row out port 0.
    let mut dev1 = ChipSim::new();
    for (i, row) in pack_matrix(80, 80, |r, c| w1[r][c]).into_iter().enumerate() {
        dev1.preload(0, i as u16, row);
    }
    for (i, row) in pack_matrix(M, 80, |r, c| a1[r][c]).into_iter().enumerate() {
        dev1.preload(1, i as u16, row);
    }
    let layout = GemmLayout {
        weight_slice: 0,
        act_slice: 1,
        out_slice: 2,
        k: 80,
        m: M as u16,
    };
    let (mut prog1, end1) = gemm_program(layout, 0);
    let s_tx = StreamId::new(5).unwrap();
    for r in 0..M as u16 {
        let t = end1 + r as u64 * 8;
        prog1.push(
            t,
            Instruction::Read {
                slice: 2,
                offset: r,
                stream: s_tx,
                dir: Direction::East,
            },
        );
        prog1.push(
            t + 6,
            Instruction::Send {
                port: 0,
                stream: s_tx,
            },
        );
    }
    dev1.run(&prog1).unwrap();
    // Shared payload handles: re-delivering them to device 0 below costs a
    // pointer clone per row, not a 320-byte copy.
    let partial_rows: Vec<tsm::chip::exec::Payload> =
        dev1.emissions().iter().map(|e| e.vector.clone()).collect();
    assert_eq!(partial_rows.len(), M);

    // Device 0 computes its partial, receives device 1's rows (delivered
    // with a link latency), and adds them lane-wise.
    let mut dev0 = ChipSim::new();
    for (i, row) in pack_matrix(80, 80, |r, c| w0[r][c]).into_iter().enumerate() {
        dev0.preload(0, i as u16, row);
    }
    for (i, row) in pack_matrix(M, 80, |r, c| a0[r][c]).into_iter().enumerate() {
        dev0.preload(1, i as u16, row);
    }
    let (prog0_base, end0) = gemm_program(layout, 0);
    let mut prog0 = ChipProgram::new();
    for ti in prog0_base.sorted() {
        prog0.push(ti.cycle, ti.instr);
    }
    let wire = 252u64; // one intra-node hop
    let reduce_start = end0.max(end1 + 8 * M as u64 + wire) + 16;
    let s_rx = StreamId::new(6).unwrap();
    let s_loc = StreamId::new(7).unwrap();
    let s_sum = StreamId::new(8).unwrap();
    for (r, row) in partial_rows.iter().enumerate() {
        let arrive = reduce_start + r as u64 * 24;
        dev0.deliver(3, arrive, row.clone());
        prog0.push(
            arrive,
            Instruction::Receive {
                port: 3,
                stream: s_rx,
            },
        );
        prog0.push(
            arrive + 1,
            Instruction::Read {
                slice: 2,
                offset: r as u16,
                stream: s_loc,
                dir: Direction::East,
            },
        );
        prog0.push(
            arrive + 8,
            Instruction::VectorOp {
                op: VectorOpcode::Add,
                a: s_rx,
                b: s_loc,
                dest: s_sum,
            },
        );
        prog0.push(
            arrive + 13,
            Instruction::Write {
                slice: 3,
                offset: r as u16,
                stream: s_sum,
            },
        );
    }
    dev0.run(&prog0).unwrap();

    // The reduced rows equal the full product.
    let am = Matrix::from_fn(M, 160, |r, c| a_full[r][c] as f64);
    let wm = Matrix::from_fn(160, 80, |r, c| w_full[r][c] as f64);
    let expect = am.matmul(&wm);
    for r in 0..M {
        let got = to_f32_lanes(dev0.sram(3, r as u16).unwrap());
        for (c, &g) in got.iter().enumerate().take(80) {
            assert!(
                (g as f64 - expect.get(r, c)).abs() < 1e-2,
                "C[{r}][{c}]: {} vs {}",
                g,
                expect.get(r, c)
            );
        }
    }
}
