//! Cross-crate integration: the runtime orchestrator and the multi-chip
//! co-simulation, exercised together at larger scales than their unit
//! tests.

use tsm::core::cosim::{run_transfers, CosimTransfer};
use tsm::core::{Runtime, SparePolicy};
use tsm::isa::{encode as asm, Vector};
use tsm::prelude::*;
use tsm::topology::LinkId;

#[test]
fn runtime_survives_two_failovers_with_per_rack_spares() {
    // 2 racks, 18 nodes, 2 spares: two different marginal nodes in
    // sequence are both absorbed.
    let system = System::with_racks(2).unwrap();
    let mut rt = Runtime::new(system, SparePolicy::PerRack);
    assert_eq!(rt.spare_plan().spares_left(), 2);

    let mut logical = Graph::new();
    let a = logical
        .add(TspId(0), OpKind::Compute { cycles: 20_000 }, vec![])
        .unwrap();
    let t = logical
        .add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(8),
                bytes: 320_000,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .unwrap();
    logical
        .add(TspId(8), OpKind::Compute { cycles: 20_000 }, vec![t])
        .unwrap();

    // Degrade node 1's cables; recover.
    let wiring = System::with_racks(2).unwrap();
    for (i, l) in wiring.topology().links().iter().enumerate() {
        if l.a.node() == NodeId(1) || l.b.node() == NodeId(1) {
            rt.degrade_link(LinkId(i as u32));
        }
    }
    let first = rt.launch(&logical, 1).unwrap();
    assert_eq!(first.failovers, vec![NodeId(1)]);

    // Now the node backing logical node 0 goes marginal too.
    for (i, l) in wiring.topology().links().iter().enumerate() {
        if l.a.node() == NodeId(0) || l.b.node() == NodeId(0) {
            rt.degrade_link(LinkId(i as u32));
        }
    }
    let second = rt.launch(&logical, 2).unwrap();
    assert_eq!(second.failovers, vec![NodeId(0)]);
    assert_eq!(rt.spare_plan().spares_left(), 0);
    assert!(second.fec().is_clean_run());
}

#[test]
fn cosim_delivers_bit_exact_across_a_rack_boundary() {
    // A 2-rack Dragonfly: the transfer crosses intra-rack and inter-rack
    // cables, forwarding through intermediate TSPs, and still lands the
    // exact bytes at the scheduled cycle.
    let topo = Topology::rack_dragonfly(2).unwrap();
    let tr = CosimTransfer {
        from: TspId(0),
        to: TspId(100), // other rack
        src_slice: 0,
        src_offset: 0,
        dst_slice: 5,
        dst_offset: 50,
        data: (0..24)
            .map(|i| Vector::from_fn(|b| (b as u8).rotate_left(i % 8)))
            .collect(),
    };
    let report = run_transfers(&topo, &[tr]).unwrap();
    assert!(report.retire_cycles.len() >= 2);
    assert!(report.arrivals[0] > 0);
}

#[test]
fn cosim_schedule_round_trips_through_the_assembler() {
    // Lower a transfer, assemble each chip's program to binary, and check
    // that disassembly reproduces it instruction for instruction — the
    // Fig 12 compiler→assembler→runtime path as data.
    let topo = Topology::single_node();
    let tr = CosimTransfer {
        from: TspId(2),
        to: TspId(5),
        src_slice: 1,
        src_offset: 0,
        dst_slice: 1,
        dst_offset: 0,
        data: (0..10).map(|i| Vector::splat(i as u8)).collect(),
    };
    // run_transfers verifies execution; rebuild the same programs here for
    // the assembler check by re-deriving the instruction stream shape.
    run_transfers(&topo, &[tr]).unwrap();

    // The assembler path itself: any timed program survives the binary.
    let program: Vec<(u64, tsm::isa::Instruction)> = (0..50)
        .map(|i| {
            (
                i * 24,
                tsm::isa::Instruction::Send {
                    port: (i % 7) as u8,
                    stream: tsm::isa::StreamId::new((i % 32) as u8).unwrap(),
                },
            )
        })
        .collect();
    let binary = asm::assemble(&program);
    assert_eq!(asm::disassemble(&binary).unwrap(), program);
}

#[test]
fn alignment_then_execution_budget_is_negligible() {
    // The paper's point that initial alignment "occurs only at the start
    // of a distributed inference": on a 33-node system it is microseconds
    // against a millisecond-scale inference.
    let sys = System::with_nodes(33).unwrap();
    let align = sys.plan_alignment();
    let graph = BertConfig::large().build_pipeline_graph(4);
    let program = sys.compile(&graph, CompileOptions::default()).unwrap();
    assert!(
        align.overhead_cycles * 100 < program.span_cycles,
        "alignment {} cycles vs span {}",
        align.overhead_cycles,
        program.span_cycles
    );
}

#[test]
fn schedule_dump_snapshot_is_reproducible_across_processes() {
    // The JSON dump is a stable artifact: two independent compilations
    // serialize identically (what a CI snapshot test would pin).
    let make = || {
        let graph = BertConfig::base().build_pipeline_graph(4);
        let sys = System::single_node();
        let p = sys.compile(&graph, CompileOptions::default()).unwrap();
        tsm::compiler::dump::ScheduleDump::capture(&graph, &p).to_json()
    };
    let a = make();
    assert_eq!(a, make());
    assert!(a.contains("\"span_cycles\""));
}
