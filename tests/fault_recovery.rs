//! Fault-path integration: FEC statistics flow through execution, replay
//! absorbs transient faults, and hot-spare failover keeps a compiled
//! program runnable.

use tsm::fault::spare::SparePlan;
use tsm::prelude::*;

fn transfer_graph(bytes: u64) -> Graph {
    let mut g = Graph::new();
    g.add(
        TspId(0),
        OpKind::Transfer {
            to: TspId(1),
            bytes,
            allow_nonminimal: true,
        },
        vec![],
    )
    .unwrap();
    g
}

#[test]
fn clean_links_report_clean_runs() {
    let sys = System::single_node().with_config(SystemConfig {
        bit_error_rate: 0.0,
        ..Default::default()
    });
    let g = transfer_graph(1 << 20);
    let p = sys.compile(&g, CompileOptions::default()).unwrap();
    let r = sys.execute_with_graph(&p, &g, 0);
    assert!(r.succeeded);
    let fec = r.fec();
    assert_eq!(fec.corrected, 0);
    assert_eq!(fec.uncorrectable, 0);
    assert!(fec.clean > 3000, "1 MiB is ~3300 vectors: {}", fec.clean);
}

#[test]
fn single_bit_errors_are_invisible_to_the_application() {
    let sys = System::single_node().with_config(SystemConfig {
        bit_error_rate: 2e-7,
        ..Default::default()
    });
    let g = transfer_graph(4 << 20);
    let p = sys.compile(&g, CompileOptions::default()).unwrap();
    let r = sys.execute_with_graph(&p, &g, 1);
    assert!(r.succeeded);
    assert!(
        r.fec().corrected > 0,
        "expected in-situ corrections: {:?}",
        r.fec()
    );
    assert_eq!(r.replays(), 0, "corrected errors must not trigger replay");
    // and timing is untouched: FEC is constant-latency
    assert_eq!(r.measured_cycles, r.estimated_cycles);
}

#[test]
fn uncorrectable_errors_consume_replays() {
    let sys = System::single_node().with_config(SystemConfig {
        bit_error_rate: 2e-4,
        max_replays: 2,
        ..Default::default()
    });
    let g = transfer_graph(1 << 20);
    let p = sys.compile(&g, CompileOptions::default()).unwrap();
    let r = sys.execute_with_graph(&p, &g, 2);
    // At this BER every run sees multi-bit errors: the budget exhausts.
    assert!(!r.succeeded);
    assert_eq!(r.replays(), 2);
}

#[test]
fn failover_then_recompile_runs_on_the_spare() {
    // A node dies; the spare takes its logical place; the *recompiled*
    // program routes around the failure and executes.
    let mut sys = System::with_nodes(4).unwrap();
    let mut plan = SparePlan::per_system(sys.topology());
    assert_eq!(plan.logical_nodes(), 3);

    let spare = plan.fail_over(sys.topology_mut(), NodeId(1)).unwrap();
    assert_eq!(spare, NodeId(3));
    assert!(plan.verify_connectivity(sys.topology()));

    // Logical program: TSP on logical node 0 sends to logical node 1 —
    // physically now node 3.
    let src = plan.physical_tsp(TspId(0));
    let dst = plan.physical_tsp(TspId(8)); // logical node 1, slot 0
    assert_eq!(dst, TspId(24));
    let mut g = Graph::new();
    g.add(
        src,
        OpKind::Transfer {
            to: dst,
            bytes: 320_000,
            allow_nonminimal: true,
        },
        vec![],
    )
    .unwrap();
    let p = sys.compile(&g, CompileOptions::default()).unwrap();
    // no path may touch the failed node
    for res in p.occupancy.reservations() {
        let link = sys.topology().link(res.link);
        assert_ne!(link.a.node(), NodeId(1));
        assert_ne!(link.b.node(), NodeId(1));
    }
    let r = sys.execute_with_graph(&p, &g, 4);
    assert!(r.succeeded);
}

#[test]
fn spare_exhaustion_is_surfaced() {
    let mut sys = System::with_nodes(3).unwrap();
    let mut plan = SparePlan::per_system(sys.topology());
    plan.fail_over(sys.topology_mut(), NodeId(0)).unwrap();
    let second = plan.fail_over(sys.topology_mut(), NodeId(1));
    assert!(
        second.is_err(),
        "second failure must report no spare available"
    );
}
