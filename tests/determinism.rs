//! End-to-end determinism: the property the whole paper is built on.
//!
//! The software-scheduled system must be bit-reproducible — identical
//! schedules, identical cycle counts, identical data — while the
//! conventionally-routed baseline shows run-to-run variance under the same
//! offered traffic.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsm::net::dynamic;
use tsm::net::ssn::{completion, LinkOccupancy};
use tsm::prelude::*;
use tsm::topology::route::edge_disjoint_paths;
use tsm::workloads::traffic;

#[test]
fn ssn_schedules_are_bit_identical_across_runs() {
    let topo = Topology::fully_connected_nodes(4).unwrap();
    let build = || {
        let mut occ = LinkOccupancy::new();
        let mut arrivals = Vec::new();
        for (i, src) in topo.tsps().enumerate().take(16) {
            let dst = TspId(((src.0 + 9) as usize % topo.num_tsps()) as u32);
            let paths = edge_disjoint_paths(&topo, src, dst, 7);
            let shards = occ
                .schedule_spread(&topo, &paths, 100 + i as u64, 0)
                .unwrap();
            arrivals.push(completion(&shards));
        }
        (arrivals, occ.reservations().len())
    };
    assert_eq!(build(), build());
}

#[test]
fn compiled_bert_program_is_identical_across_compilations() {
    let graph = BertConfig::large().build_pipeline_graph(4);
    let sys = System::single_node();
    let a = sys.compile(&graph, CompileOptions::default()).unwrap();
    let b = sys.compile(&graph, CompileOptions::default()).unwrap();
    assert_eq!(a.span_cycles, b.span_cycles);
    assert_eq!(a.op_start, b.op_start);
    assert_eq!(a.op_end, b.op_end);
    assert_eq!(a.occupancy.reservations(), b.occupancy.reservations());
}

#[test]
fn network_only_execution_has_zero_variance() {
    // No host I/O -> every run measures exactly the compiler estimate.
    let sys = System::single_node();
    let mut g = Graph::new();
    let mut prev = None;
    for i in 0..6u32 {
        let deps = prev.into_iter().collect();
        prev = Some(
            g.add(
                TspId(i % 8),
                OpKind::Transfer {
                    to: TspId((i + 1) % 8),
                    bytes: 64_000,
                    allow_nonminimal: true,
                },
                deps,
            )
            .unwrap(),
        );
    }
    let p = sys.compile(&g, CompileOptions::default()).unwrap();
    let measured: Vec<u64> = (0..50)
        .map(|s| sys.execute_with_graph(&p, &g, s).measured_cycles)
        .collect();
    assert!(
        measured.iter().all(|&m| m == measured[0]),
        "SSN execution must not vary"
    );
    assert_eq!(measured[0], p.span_cycles);
}

#[test]
fn dynamic_baseline_varies_where_ssn_does_not() {
    // Same offered traffic through the conventionally-routed network:
    // different seeds (different physical jitter) give different latencies.
    let topo = Topology::fully_connected_nodes(2).unwrap();
    let offered = traffic::all_to_all(&topo, 4, 12);
    let lat = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        dynamic::simulate(&topo, &offered, &mut rng)
            .delivered
            .iter()
            .map(|d| d.latency)
            .collect::<Vec<_>>()
    };
    assert_eq!(lat(1), lat(1));
    let a = lat(1);
    let b = lat(2);
    assert_ne!(a, b, "dynamic network must show run-to-run variance");
    // and the variance is not trivial: some packet differs by >1 cycle
    assert!(
        a.iter().zip(&b).any(|(x, y)| x.abs_diff(*y) > 2),
        "expected visible latency differences"
    );
}

#[test]
fn full_execution_reports_reproduce_given_seed() {
    let graph = BertConfig::base().build_pipeline_graph(1);
    let sys = System::single_node();
    let p = sys.compile(&graph, CompileOptions::default()).unwrap();
    let a = sys.execute_with_graph(&p, &graph, 777);
    let b = sys.execute_with_graph(&p, &graph, 777);
    assert_eq!(a, b);
}
