//! The paper's evaluation workloads, end to end: compile, execute, and
//! check both timing structure and numerical correctness.

use tsm::compiler::collective::allreduce_hierarchical;
use tsm::compiler::partition::{build_cluster_gemm, build_distributed_gemm};
use tsm::compiler::schedule::{compile, OptLevel};
use tsm::prelude::*;
use tsm::workloads::linalg::{allreduce_sum, cholesky, Matrix};

#[test]
fn distributed_matmul_scales_and_schedules_cleanly() {
    let shape = GemmShape::new(800, 32_576, 8192);
    let mut spans = Vec::new();
    for row_splits in [1u64, 2, 4, 8] {
        let g = build_distributed_gemm(shape, 8, row_splits, ElemType::F16);
        assert_eq!(g.total_flops(), shape.flops(), "splits must conserve FLOPs");
        let nodes = ((8 * row_splits) as usize).div_ceil(8).max(2);
        let topo = Topology::fully_connected_nodes(nodes).unwrap();
        let p = compile(&g, &topo, CompileOptions::default()).unwrap();
        spans.push(p.span_cycles);
    }
    for w in spans.windows(2) {
        assert!(
            w[1] < w[0],
            "Fig 14: latency falls with row splits: {spans:?}"
        );
    }
}

#[test]
fn matmul_split_numerics_match_reference() {
    // The decomposition the scheduler times is numerically exact: checked
    // on a small instance through the f64 reference.
    let a = Matrix::from_fn(8, 12, |r, c| ((r * 13 + c * 7) % 5) as f64 - 2.0);
    let b = Matrix::from_fn(12, 10, |r, c| ((r * 3 + c) % 7) as f64 * 0.5);
    let full = a.matmul(&b);
    // 2 column splits x 3 row splits, reduced then concatenated
    let mut cols = Vec::new();
    for (clo, chi) in [(0, 5), (5, 10)] {
        let bcol = b.col_slice(clo, chi);
        let mut acc: Option<Matrix> = None;
        for (rlo, rhi) in [(0, 4), (4, 8), (8, 12)] {
            let partial = a.col_slice(rlo, rhi).matmul(&bcol.row_slice(rlo, rhi));
            acc = Some(match acc {
                None => partial,
                Some(s) => s.add(&partial),
            });
        }
        cols.push(acc.unwrap());
    }
    let recomposed = Matrix::hcat(&cols);
    assert!(full.max_abs_diff(&recomposed) < 1e-12);
}

#[test]
fn cluster_gemm_throughput_grows_with_cluster_size() {
    // Fig 15: larger clusters sustain more TFLOPs on big square GEMMs —
    // near-linearly while compute-bound, then flattening once the
    // per-device PCIe stream becomes the bottleneck (the §5.2 traversal
    // discussion: compute-bound needs N ≳ 5850·X at Gen4 ×16 rates; the
    // paper's N = 650,000 sits right at that edge for hundreds of TSPs).
    let n = 650_000;
    let tflops: Vec<f64> = [50usize, 100, 200]
        .iter()
        .map(|&x| {
            let g = build_cluster_gemm(n, x as u64, ElemType::F16);
            let topo = Topology::fully_connected_nodes(x.div_ceil(8).max(2)).unwrap();
            let p = compile(&g, &topo, CompileOptions::default()).unwrap();
            p.realized_tflops(g.total_flops())
        })
        .collect();
    // compute-bound doubling from 50 -> 100 TSPs
    assert!(tflops[1] > tflops[0] * 1.8, "{tflops:?}");
    // diminishing but positive gain once PCIe streaming binds
    assert!(tflops[2] > tflops[1] * 1.05, "{tflops:?}");
    // and the 100-TSP cluster alone is an order of magnitude above the
    // 432-GPU V100 reference (Fig 15 discussion)
    assert!(
        tsm::baseline::v100::tsp_speedup(tflops[1]) > 5.0,
        "{tflops:?}"
    );
}

#[test]
fn bert_pipeline_runs_on_two_nodes() {
    // 16-TSP (two-node) pipeline: cross-node activation transfers ride
    // global links; the program still compiles conflict-free and executes.
    let config = BertConfig::with_encoders(48);
    let graph = config.build_pipeline_graph(16);
    let sys = System::with_nodes(2).unwrap();
    let p = sys.compile(&graph, CompileOptions::default()).unwrap();
    let r = sys.execute_with_graph(&p, &graph, 5);
    assert!(r.succeeded);
    assert!(r.measured_cycles <= r.estimated_cycles);
}

#[test]
fn hierarchical_allreduce_schedules_at_scale() {
    let topo = Topology::fully_connected_nodes(8).unwrap();
    let small = allreduce_hierarchical(&topo, 64 << 10).unwrap();
    let large = allreduce_hierarchical(&topo, 16 << 20).unwrap();
    assert_eq!(small.participants, 64);
    assert!(large.bus_gbs > small.bus_gbs, "bandwidth grows with size");
    assert!(
        large.seconds < 0.01,
        "16 MB all-reduce stays in milliseconds"
    );
}

#[test]
fn allreduce_numerics_reference() {
    let buffers: Vec<Vec<f64>> = (0..8)
        .map(|d| (0..64).map(|i| (d * 64 + i) as f64).collect())
        .collect();
    let sum = allreduce_sum(&buffers);
    assert_eq!(sum[0], (0..8).map(|d| (d * 64) as f64).sum::<f64>());
    assert_eq!(sum.len(), 64);
}

#[test]
fn cholesky_numerics_and_timing_model_agree_on_shape() {
    // Numerics: exact factorization.
    let a = Matrix::spd(48);
    let l = cholesky(&a);
    assert!(a.max_abs_diff(&l.matmul(&l.transpose())) < 1e-9);
    // Timing: speedups monotone in TSPs, sublinear (Fig 19(c)).
    let p = 4096;
    let speedups: Vec<f64> = [2u64, 4, 8]
        .iter()
        .map(|&k| CholeskyPlan::new(p, k).speedup())
        .collect();
    assert!(speedups.windows(2).all(|w| w[1] > w[0]), "{speedups:?}");
    assert!(speedups[2] < 4.0, "{speedups:?}");
}

#[test]
fn fig20_optimization_levels_differ_as_measured() {
    // The unoptimized (FLOPs-only) compiler yields a longer pipeline beat
    // on BERT-Large over 4 TSPs; the paper measured ≈26 % improvement.
    let costs = BertConfig::large().layer_costs();
    let slow = tsm::compiler::balance::partition_stages(&costs, 4, OptLevel::FlopsOnly);
    let fast = tsm::compiler::balance::partition_stages(&costs, 4, OptLevel::SpatialAware);
    let speedup = slow.beat_cycles as f64 / fast.beat_cycles as f64;
    assert!(speedup > 1.0, "optimized compiler must win: {speedup}");
    assert!(
        speedup < 2.0,
        "overlap can at most double throughput: {speedup}"
    );
}
