//! Scale invariants: construction, routing, synchronization and memory at
//! every packaging regime, up to the maximal 10,440-TSP configuration.

use tsm::mem::{system_capacity_bytes, GlobalAddress, VECTORS_PER_DEVICE};
use tsm::prelude::*;
use tsm::sync::align::{InitialAlignment, SpanningTree};
use tsm::topology::route::{eccentricity, shortest_path};

#[test]
fn every_regime_constructs_and_routes() {
    let configs: Vec<Topology> = vec![
        Topology::single_node(),
        Topology::fully_connected_nodes(2).unwrap(),
        Topology::fully_connected_nodes(33).unwrap(),
        Topology::rack_dragonfly(2).unwrap(),
        Topology::rack_dragonfly(5).unwrap(),
    ];
    for topo in &configs {
        let n = topo.num_tsps() as u32;
        // spot-check routes between far corners
        for (a, b) in [(0, n - 1), (1, n / 2), (n / 3, n - 2)] {
            let p = shortest_path(topo, TspId(a), TspId(b)).unwrap();
            assert!(p.hops() <= tsm::topology::route::diameter_bound(topo));
        }
    }
}

#[test]
fn max_configuration_structural_invariants() {
    let topo = Topology::rack_dragonfly(145).unwrap();
    assert_eq!(topo.num_tsps(), 10_440);
    assert_eq!(topo.num_nodes(), 145 * 9);
    // every TSP uses exactly 7 local links
    for t in [TspId(0), TspId(5_000), TspId(10_439)] {
        let locals = topo
            .neighbors(t)
            .iter()
            .filter(|&&(l, _)| !topo.link(l).is_global())
            .count();
        assert_eq!(locals, 7);
    }
    // TSP-level eccentricity within the bound (chassis bound 5 + 2)
    assert!(eccentricity(&topo, TspId(0)) <= 7);
}

#[test]
fn max_configuration_sync_overhead_is_microseconds() {
    // Initial program alignment on the largest machine stays trivial
    // relative to any inference: tree height ~7, a few epochs per hop.
    let topo = Topology::rack_dragonfly(145).unwrap();
    let plan = InitialAlignment::plan(&topo, TspId(0));
    assert_eq!(plan.tree.reached(), 10_440);
    let us = plan.overhead_cycles as f64 / 900.0;
    assert!(us < 10.0, "alignment overhead {us} µs");
}

#[test]
fn spanning_tree_covers_every_regime() {
    for topo in [
        Topology::single_node(),
        Topology::fully_connected_nodes(16).unwrap(),
        Topology::rack_dragonfly(3).unwrap(),
    ] {
        let tree = SpanningTree::build(&topo, TspId(0));
        assert_eq!(tree.reached(), topo.num_tsps());
        assert!(tree.height <= tsm::topology::route::diameter_bound(&topo));
    }
}

#[test]
fn global_memory_addressing_spans_the_full_machine() {
    // 10,440 devices x 220 MiB = 2.25 TB; the rank-5 address walks it all.
    assert!(system_capacity_bytes(10_440) > 2_250_000_000_000);
    let last = GlobalAddress::from_device_linear(TspId(10_439), VECTORS_PER_DEVICE - 1).unwrap();
    assert_eq!(last.system_linear(), 10_440 * VECTORS_PER_DEVICE - 1);
    assert_eq!(last.hemisphere, 1);
    assert_eq!(last.slice, 43);
    assert_eq!(last.bank, 1);
    assert_eq!(last.offset, 4095);
}

#[test]
fn compile_executes_on_a_rack_scale_system() {
    // A cross-rack pipeline on a 144-TSP, 2-rack Dragonfly.
    let sys = System::with_racks(2).unwrap();
    let mut g = Graph::new();
    let a = g
        .add(TspId(0), OpKind::Compute { cycles: 10_000 }, vec![])
        .unwrap();
    let t = g
        .add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(100),
                bytes: 640_000,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .unwrap();
    g.add(TspId(100), OpKind::Compute { cycles: 10_000 }, vec![t])
        .unwrap();
    let p = sys.compile(&g, CompileOptions::default()).unwrap();
    let r = sys.execute_with_graph(&p, &g, 9);
    assert!(r.succeeded);
    // cross-rack transfer must traverse at least one optical cable
    let has_optical = p
        .occupancy
        .reservations()
        .iter()
        .any(|res| sys.topology().link(res.link).class == tsm::topology::CableClass::InterRack);
    assert!(has_optical);
}
