//! The paper's headline numeric claims, asserted against the model.
//!
//! Each test names the table/figure/section it reproduces; EXPERIMENTS.md
//! carries the full paper-vs-measured record.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsm::baseline::{a100, nccl};
use tsm::compiler::collective::{allreduce_intra_node, pipelined_allreduce_latency_ns};
use tsm::compiler::spread::{crossover_bytes, nonminimal_benefit};
use tsm::link::LatencyModel;
use tsm::prelude::*;
use tsm::sync::align::characterize_link;
use tsm::topology::bandwidth::global_bandwidth_per_tsp_gbs;
use tsm::topology::CableClass;

#[test]
fn abstract_max_system_scale_and_memory() {
    // "up to 10,440 TSPs and more than 2 TeraBytes of global memory"
    let topo = Topology::rack_dragonfly(145).unwrap();
    assert_eq!(topo.num_tsps(), 10_440);
    assert!(topo.global_memory_bytes() > 2_000_000_000_000);
}

#[test]
fn abstract_end_to_end_latency_under_3us() {
    // "accessible in less than 3 microseconds of end-to-end system
    // latency": worst-case 5 chassis-level hops at 722 ns plus intra-node
    // adjustment stays under... the paper's own §5.6 arithmetic counts
    // pipelined hops; 3 hops ≈ 2.1 µs, the 264-TSP all-reduce bound.
    assert!(pipelined_allreduce_latency_ns(3) < 3000.0);
    // A full cross-system minimal route (≤5 counted hops) at 722 ns/hop:
    assert!((pipelined_allreduce_latency_ns(5) / 1000.0 - 3.61).abs() < 0.01);
}

#[test]
fn fig2_bandwidth_profile_plateaus() {
    // >100 GB/s inside the node, 50 GB/s to 264 TSPs, ~14 GB/s at max.
    assert!(global_bandwidth_per_tsp_gbs(8) > 100.0);
    assert_eq!(global_bandwidth_per_tsp_gbs(264), 50.0);
    let max = global_bandwidth_per_tsp_gbs(10_440);
    assert!(max > 10.0 && max < 15.0, "{max}");
}

#[test]
fn sec22_packaging_arithmetic() {
    // 33 nodes x 8 = 264 TSPs with 56 GiB; 145 racks x 72 = 10,440.
    let t264 = Topology::fully_connected_nodes(33).unwrap();
    assert_eq!(t264.num_tsps(), 264);
    assert_eq!(t264.global_memory_bytes() >> 30, 56);
    // 28 intra-node cables; 44 of 60 cables per node are electrical
    // (intra-node 28 + intra-rack share): checked structurally instead —
    // every intra-node cable class is electrical.
    assert!(Topology::single_node()
        .links()
        .iter()
        .all(|l| l.class == CableClass::IntraNode));
}

#[test]
fn table2_link_characterization_statistics() {
    // min 209-211, mean 216.27-217.35, max 225-228, std ~2.6-2.9 over
    // 100K iterations, for each of 7 links.
    let model = LatencyModel::for_class(CableClass::IntraNode);
    let mut rng = StdRng::seed_from_u64(1);
    for link in 0..7 {
        let s = characterize_link(&model, 100_000, &mut rng);
        assert!((208..=212).contains(&s.min), "link {link} min {}", s.min);
        assert!(
            (215.5..218.0).contains(&s.mean),
            "link {link} mean {}",
            s.mean
        );
        assert!((222..=229).contains(&s.max), "link {link} max {}", s.max);
        assert!((1.5..3.2).contains(&s.std), "link {link} std {}", s.std);
    }
}

#[test]
fn fig10_nonminimal_crossover_near_8kb() {
    let topo = Topology::single_node();
    let x = crossover_bytes(&topo, TspId(0), TspId(1), 7);
    assert!(
        (4 << 10..16 << 10).contains(&x),
        "crossover {x} B vs paper ~8 KB"
    );
    // below: no benefit; above: growing benefit
    assert!(nonminimal_benefit(&topo, TspId(0), TspId(1), 2 << 10, 7) <= 1.0);
    assert!(nonminimal_benefit(&topo, TspId(0), TspId(1), 256 << 10, 7) > 3.0);
}

#[test]
fn fig11_wire_format_efficiency() {
    // "encoding efficiency of 97.5% (320/328 bytes)"
    assert_eq!(tsm::isa::packet::WIRE_BYTES, 328);
    let eff = tsm::isa::packet::ENCODING_EFFICIENCY;
    assert!((eff - 0.9756).abs() < 0.001);
}

#[test]
fn fig13_tsp_beats_a100_utilization_consistency() {
    // TSP ≥80 % for all N in [1376, 3500]; A100 dips below.
    let tsp_min = tsm::chip::mxm::fig13_sweep((1376..=3500).step_by(4))
        .into_iter()
        .map(|(_, u)| u)
        .fold(f64::INFINITY, f64::min);
    assert!(tsp_min >= 0.80, "TSP min {tsp_min}");
    let a100_min = a100::fig13_sweep((1376..=3500).step_by(4))
        .into_iter()
        .map(|(_, u)| u)
        .fold(f64::INFINITY, f64::min);
    assert!(a100_min < 0.80, "A100 min {a100_min}");
}

#[test]
fn fig16_tsp_wins_small_messages_matches_normalized_at_large() {
    let topo = Topology::single_node();
    // small: TSP >> A100
    let tsp_small = allreduce_intra_node(&topo, NodeId(0), 4096)
        .unwrap()
        .bus_gbs;
    assert!(tsp_small > 5.0 * nccl::allreduce_bus_gbs(4096));
    // large: pin-normalized A100 within ~15% of TSP
    let big = 64 << 20;
    let tsp_big = allreduce_intra_node(&topo, NodeId(0), big).unwrap().bus_gbs;
    let a100_norm = nccl::allreduce_bus_gbs_pin_normalized(big, 87.5);
    assert!(
        (tsp_big / a100_norm - 1.0).abs() < 0.15,
        "tsp {tsp_big} vs norm {a100_norm}"
    );
}

#[test]
fn fig17_estimate_bounds_measurement() {
    let graph = BertConfig::large().build_pipeline_graph(4);
    let sys = System::single_node();
    let p = sys.compile(&graph, CompileOptions::default()).unwrap();
    let reports = sys.execute_many(&p, &graph, 1000, 17);
    assert!(reports
        .iter()
        .all(|r| r.measured_cycles <= r.estimated_cycles));
    let within2 = reports
        .iter()
        .filter(|r| r.estimate_error() <= 0.021)
        .count();
    assert!(
        within2 * 2 > reports.len(),
        "estimate within 2% in the majority of runs ({within2}/1000)"
    );
}

#[test]
fn sec54_bert_base_single_tsp_estimate_tracks_measurement() {
    // "When executing BERT-Base on a single TSP, we see a similar
    // relationship between the estimated and measured latency, where their
    // results are within 2% of each other."
    let graph = BertConfig::base().build_pipeline_graph(1);
    let sys = System::single_node();
    let p = sys.compile(&graph, CompileOptions::default()).unwrap();
    let reports = sys.execute_many(&p, &graph, 500, 54);
    let within2 = reports
        .iter()
        .filter(|r| r.estimate_error() <= 0.021)
        .count();
    assert!(within2 * 2 > reports.len(), "{within2}/500 within 2%");
    assert!(reports
        .iter()
        .all(|r| r.measured_cycles <= r.estimated_cycles));
}

#[test]
fn fig18_linear_scaling_of_bert_encoders() {
    let beats: Vec<f64> = [(6usize, 1usize), (24, 4), (48, 8), (96, 16)]
        .iter()
        .map(|&(enc, tsps)| {
            let costs = BertConfig::with_encoders(enc).layer_costs();
            tsm::compiler::balance::partition_stages(&costs, tsps, OptLevel::SpatialAware)
                .beat_cycles as f64
        })
        .collect();
    // same per-stage work at every scale -> same beat -> linear TOPs
    for b in &beats[1..] {
        assert!((b / beats[0] - 1.0).abs() < 0.02, "{beats:?}");
    }
}

#[test]
fn sec56_allreduce_pipelined_latency() {
    // "722 ns per hop × 3 hops = 2,166 ns, or ≈2.1 µsec"
    assert_eq!(pipelined_allreduce_latency_ns(3), 2166.0);
    // and our per-hop model is calibrated to exactly that figure
    assert_eq!(tsm::isa::timing::hop_latency_cycles(), 650);
}

#[test]
fn sec45_spare_overhead_claims() {
    // "reducing the overhead from 11% to 3%, leaving 32 nodes (256 TSPs)"
    let topo = Topology::fully_connected_nodes(33).unwrap();
    let per_system = tsm::fault::spare::SparePlan::per_system(&topo);
    assert_eq!(per_system.logical_nodes() * 8, 256);
    assert!(per_system.overhead() < 0.031);
    let rack_topo = Topology::rack_dragonfly(2).unwrap();
    let per_rack = tsm::fault::spare::SparePlan::per_rack(&rack_topo).unwrap();
    assert!((per_rack.overhead() - 0.111).abs() < 0.001);
}
