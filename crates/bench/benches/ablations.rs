//! Criterion bench running the design-choice ablations.
//!
//! Prints each ablation's findings once, then measures regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tsm_bench::ablations;

fn bench(c: &mut Criterion) {
    for f in [
        ablations::local_group,
        ablations::spreading,
        ablations::routing_determinism,
        ablations::fec_vs_retry,
    ] {
        for line in f() {
            eprintln!("{line}");
        }
        eprintln!();
    }
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("local_group", |b| b.iter(ablations::local_group));
    group.bench_function("spreading", |b| b.iter(ablations::spreading));
    group.bench_function("routing_determinism", |b| {
        b.iter(ablations::routing_determinism)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
