//! Criterion bench regenerating Fig 17 (BERT-Large latency histogram).
//!
//! Prints the series once (so `cargo bench` logs carry the
//! paper-vs-measured data), then measures regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tsm_bench::figures;

fn bench(c: &mut Criterion) {
    for line in figures::fig17(2_000) {
        eprintln!("{line}");
    }
    let mut group = c.benchmark_group("fig17_bert_histogram");
    group.sample_size(10);
    group.bench_function("regenerate", |b| b.iter(|| figures::fig17(100)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
