//! Criterion bench for the single-pass co-simulation engine.
//!
//! The canonical workload (2-node system, 16 concurrent multi-hop
//! transfers — see `tsm_bench::cosim_bench`) runs through both the serial
//! and the parallel engine; the same workload backs the `BENCH_cosim.json`
//! record emitted by `repro bench-cosim`, so criterion's statistics and
//! the tracked JSON number come from identical work.

use criterion::{criterion_group, criterion_main, Criterion};
use tsm::core::cosim::{run_transfers, run_transfers_serial};
use tsm_bench::cosim_bench;

fn bench(c: &mut Criterion) {
    for line in cosim_bench::lines() {
        eprintln!("{line}");
    }
    let (topo, transfers) = cosim_bench::workload();
    let mut group = c.benchmark_group("cosim_throughput");
    group.sample_size(20);
    group.bench_function("serial", |b| {
        b.iter(|| run_transfers_serial(&topo, &transfers).expect("serial run"))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| run_transfers(&topo, &transfers).expect("parallel run"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
