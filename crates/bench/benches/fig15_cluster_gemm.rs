//! Criterion bench regenerating Fig 15 (cluster GEMM TFLOPs).
//!
//! Prints the series once (so `cargo bench` logs carry the
//! paper-vs-measured data), then measures regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tsm_bench::figures;

fn bench(c: &mut Criterion) {
    for line in figures::fig15() {
        eprintln!("{line}");
    }
    let mut group = c.benchmark_group("fig15_cluster_gemm");
    group.sample_size(10);
    group.bench_function("regenerate", |b| b.iter(figures::fig15));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
