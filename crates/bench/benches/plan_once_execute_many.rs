//! Criterion bench for the compile-once / execute-many pipeline.
//!
//! Three functions over the canonical workload (2-node system, 16
//! concurrent multi-hop transfers — see `tsm_bench::cosim_bench`):
//!
//! * `compile_plan` — the cost paid once per transfer-shape set,
//! * `cold` — one full one-shot invocation from the transfer
//!   descriptors: shape extraction, payload materialization, compile,
//!   fresh executor, one execution (what every one-shot call pays),
//! * `warm` — one execution against a pre-compiled plan on a reused
//!   executor (the amortized per-invocation cost).
//!
//! The warm/cold gap is the payoff of the [`CompiledPlan`] split; the same
//! numbers are recorded by `repro bench-cosim` into `BENCH_cosim.json`.
//!
//! [`CompiledPlan`]: tsm::core::cosim::CompiledPlan

use criterion::{criterion_group, criterion_main, Criterion};
use tsm::core::cosim::{compile_plan, CosimTransfer, PlanExecutor, TransferShape};
use tsm_bench::cosim_bench;

fn bench(c: &mut Criterion) {
    let (topo, transfers) = cosim_bench::workload();
    let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
    let payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();

    let mut group = c.benchmark_group("plan_once_execute_many");
    group.sample_size(20);
    group.bench_function("compile_plan", |b| {
        b.iter(|| compile_plan(&topo, &shapes).expect("plan compiles"))
    });
    group.bench_function("cold", |b| {
        b.iter(|| {
            let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
            let payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();
            let plan = compile_plan(&topo, &shapes).expect("plan compiles");
            PlanExecutor::new()
                .execute_serial(&plan, &payloads)
                .expect("cold execute")
        })
    });
    let plan = compile_plan(&topo, &shapes).expect("plan compiles");
    let mut executor = PlanExecutor::new();
    group.bench_function("warm", |b| {
        b.iter(|| {
            executor
                .execute_serial(&plan, &payloads)
                .expect("warm execute")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
