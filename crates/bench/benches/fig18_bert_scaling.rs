//! Criterion bench regenerating Fig 18 (BERT encoder scaling).
//!
//! Prints the series once (so `cargo bench` logs carry the
//! paper-vs-measured data), then measures regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tsm_bench::figures;

fn bench(c: &mut Criterion) {
    for line in figures::fig18() {
        eprintln!("{line}");
    }
    let mut group = c.benchmark_group("fig18_bert_scaling");
    group.sample_size(20);
    group.bench_function("regenerate", |b| b.iter(figures::fig18));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
