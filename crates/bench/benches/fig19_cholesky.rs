//! Criterion bench regenerating Fig 19 (Cholesky factorization).
//!
//! Prints the series once (so `cargo bench` logs carry the
//! paper-vs-measured data), then measures regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tsm_bench::figures;

fn bench(c: &mut Criterion) {
    for line in figures::fig19() {
        eprintln!("{line}");
    }
    let mut group = c.benchmark_group("fig19_cholesky");
    group.sample_size(10);
    group.bench_function("regenerate", |b| b.iter(figures::fig19));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
