//! Criterion bench regenerating Fig 14 (distributed matmul).
//!
//! Prints the series once (so `cargo bench` logs carry the
//! paper-vs-measured data), then measures regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tsm_bench::figures;

fn bench(c: &mut Criterion) {
    for line in figures::fig14() {
        eprintln!("{line}");
    }
    let mut group = c.benchmark_group("fig14_distributed_matmul");
    group.sample_size(10);
    group.bench_function("regenerate", |b| b.iter(figures::fig14));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
