//! Criterion bench regenerating Table 2 (HAC latency characterization).
//!
//! Prints the series once (so `cargo bench` logs carry the
//! paper-vs-measured data), then measures regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tsm_bench::figures;

fn bench(c: &mut Criterion) {
    for line in figures::table2(100_000) {
        eprintln!("{line}");
    }
    let mut group = c.benchmark_group("table2_hac_latency");
    group.sample_size(20);
    group.bench_function("regenerate", |b| b.iter(|| figures::table2(10_000)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
