//! Criterion bench regenerating Fig 10 (non-minimal routing benefit).
//!
//! Prints the series once (so `cargo bench` logs carry the
//! paper-vs-measured data), then measures regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tsm_bench::figures;

fn bench(c: &mut Criterion) {
    for line in figures::fig10() {
        eprintln!("{line}");
    }
    let mut group = c.benchmark_group("fig10_nonminimal");
    group.sample_size(30);
    group.bench_function("regenerate", |b| b.iter(figures::fig10));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
