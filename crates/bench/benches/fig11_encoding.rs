//! Criterion bench regenerating Fig 11 (wire-format efficiency).
//!
//! Prints the series once (so `cargo bench` logs carry the
//! paper-vs-measured data), then measures regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tsm_bench::figures;

fn bench(c: &mut Criterion) {
    for line in figures::fig11() {
        eprintln!("{line}");
    }
    let mut group = c.benchmark_group("fig11_encoding");
    group.sample_size(100);
    group.bench_function("regenerate", |b| b.iter(encode_decode_roundtrip));
    group.finish();
}

/// The timed kernel: frame and parse one vector (the per-flit cost the
/// 97.5% efficiency buys).
fn encode_decode_roundtrip() -> u16 {
    use tsm::isa::{packet::WirePacket, Vector};
    let p = WirePacket::data(0x1234, Vector::splat(0x5A));
    WirePacket::decode(&p.encode())
        .expect("roundtrips")
        .sequence
}

criterion_group!(benches, bench);
criterion_main!(benches);
