//! Criterion bench regenerating Fig 2 (bandwidth profile).
//!
//! Prints the series once (so `cargo bench` logs carry the
//! paper-vs-measured data), then measures regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tsm_bench::figures;

fn bench(c: &mut Criterion) {
    for line in figures::fig2() {
        eprintln!("{line}");
    }
    let mut group = c.benchmark_group("fig02_bandwidth_profile");
    group.sample_size(100);
    group.bench_function("regenerate", |b| b.iter(figures::fig2));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
