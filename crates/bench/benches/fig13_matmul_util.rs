//! Criterion bench regenerating Fig 13 (GEMM utilization TSP vs A100).
//!
//! Prints the series once (so `cargo bench` logs carry the
//! paper-vs-measured data), then measures regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tsm_bench::figures;

fn bench(c: &mut Criterion) {
    for line in figures::fig13(59) {
        eprintln!("{line}");
    }
    let mut group = c.benchmark_group("fig13_matmul_util");
    group.sample_size(50);
    group.bench_function("regenerate", |b| b.iter(|| figures::fig13(59)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
