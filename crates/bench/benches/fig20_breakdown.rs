//! Criterion bench regenerating Fig 20 (compiler optimization breakdown).
//!
//! Prints the series once (so `cargo bench` logs carry the
//! paper-vs-measured data), then measures regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tsm_bench::figures;

fn bench(c: &mut Criterion) {
    for line in figures::fig20() {
        eprintln!("{line}");
    }
    let mut group = c.benchmark_group("fig20_breakdown");
    group.sample_size(20);
    group.bench_function("regenerate", |b| b.iter(figures::fig20));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
