//! Plan-residency benchmark: the multi-model cache-thrash scenario.
//!
//! K BERT models of different depths round-robin through one
//! [`Server`] in datapath mode, so every request needs a full compiled
//! plan. Three budget variants run the identical offered timeline:
//!
//! - **warm**   — budget = Σ per-model plan bytes: every model stays
//!   resident, so after the K cold compiles every request is a cache
//!   hit (hit rate exactly `(N-K)/N`).
//! - **thrash** — budget = Σ − 1 byte: the LRU victim is always the
//!   model the round-robin needs next, so every request recompiles.
//! - **single** — budget = 0: the pre-residency single-entry cache,
//!   same pathology.
//!
//! The warm-over-thrash wall-clock ratio is the bench's headline
//! (`warm_speedup_*`). A second scenario round-trips the warm-start
//! tier: the warm run's resident plans are exported, imported into a
//! fresh runtime, and served again — every model must warm-start and
//! the launch records must be bit-identical to a cold runtime's. The
//! `"residency"` block of `BENCH_cosim.json` records all of it.

use std::time::Instant;

use tsm::core::runtime::{ExecMode, Runtime, SparePolicy};
use tsm::core::serving::{Request, ServeConfig, ServeReport, Server};
use tsm::core::system::System;
use tsm::trace::{names, JsonWriter};
use tsm::workloads::BertConfig;

/// One budget variant of the round-robin scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidencyVariant {
    /// Variant name: `warm`, `thrash`, or `single`.
    pub name: &'static str,
    /// Plan-cache budget, bytes.
    pub budget_bytes: u64,
    /// Cache hits over the serve run (`residency.hits` delta).
    pub hits: u64,
    /// Cache misses (each one is a full recompile).
    pub misses: u64,
    /// Evictions forced by the budget.
    pub evictions: u64,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
    /// Wall-clock time of the serve run, nanoseconds (host-dependent;
    /// the deterministic fields above are the comparable record).
    pub serve_ns: u64,
}

/// The full residency benchmark record.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidencyBenchResult {
    /// Model count K.
    pub models: usize,
    /// Round-robin rounds; N = `models × rounds` requests.
    pub rounds: u64,
    /// Requests offered per variant.
    pub requests: u64,
    /// Per-model compiled-plan bytes (ascending), learned from an
    /// unbounded probe run; the warm budget is their sum.
    pub model_bytes: Vec<u64>,
    /// `(N - K) / N` — what the warm variant must achieve.
    pub expected_warm_hit_rate: f64,
    /// Budget = Σ bytes: everything resident.
    pub warm: ResidencyVariant,
    /// Budget = Σ − 1: LRU always evicts the next model needed.
    pub thrash: ResidencyVariant,
    /// Budget = 0: the pre-residency single-entry cache.
    pub single: ResidencyVariant,
    /// Wall-clock `thrash.serve_ns / warm.serve_ns`.
    pub warm_speedup_vs_thrash: f64,
    /// Wall-clock `single.serve_ns / warm.serve_ns`.
    pub warm_speedup_vs_single: f64,
    /// Warm-start tier: plans imported into a fresh runtime that
    /// short-circuited a compile (`residency.warm_starts` delta; must
    /// equal K).
    pub warm_starts: u64,
    /// Whether the warm-started run's launch records are bit-identical
    /// to a cold runtime's (outcomes, batches, latency, makespan).
    pub warm_tier_identical: bool,
    /// Whether rerunning the warm variant reproduced its report bit for
    /// bit.
    pub reproducible: bool,
}

/// Model `m` is a BERT pipeline `4 × (m + 1)` encoders deep over 4 TSPs
/// (the stage balancer needs the depth to split evenly), so every model
/// has a distinct graph fingerprint and plan size.
fn model_graph(m: usize, batch: u32) -> tsm::compiler::graph::Graph {
    BertConfig {
        batch: u64::from(batch),
        ..BertConfig::with_encoders(4 * (m + 1))
    }
    .build_pipeline_graph(4)
}

/// A fresh datapath runtime with the given plan budget.
fn runtime(budget_bytes: u64) -> Runtime {
    Runtime::new(
        System::with_nodes(4).expect("4 nodes"),
        SparePolicy::PerSystem,
    )
    .with_exec_mode(ExecMode::Datapath)
    .with_plan_budget(budget_bytes)
}

/// A server with `models` registered, wrapping `rt`.
fn server(rt: Runtime, models: usize, seed: u64) -> Server {
    let mut s = Server::new(
        rt,
        ServeConfig {
            batch_window: 0,
            max_batch: 1,
            queue_capacity: usize::MAX,
            tenant_quota: usize::MAX,
            seed,
            certify: false,
            telemetry: None,
            attribution: false,
            flight: None,
        },
    );
    for m in 0..models {
        s.add_model(move |b| model_graph(m, b));
    }
    s
}

/// The round-robin offered timeline: request `i` wants model `i mod K`.
fn round_robin(models: usize, rounds: u64) -> Vec<Request> {
    (0..rounds * models as u64)
        .map(|i| Request {
            at: i * 1_000,
            tenant: 0,
            model: (i % models as u64) as u32,
            priority: 0,
            deadline_slack: 1 << 40,
        })
        .collect()
}

/// Serves `offered` under `budget_bytes` and folds the run's residency
/// counters into a [`ResidencyVariant`]. Also returns the report and the
/// finished runtime (for warm-tier export).
fn run_variant(
    name: &'static str,
    budget_bytes: u64,
    models: usize,
    offered: &[Request],
    seed: u64,
) -> (ResidencyVariant, ServeReport, Runtime) {
    let mut server = server(runtime(budget_bytes), models, seed);
    let start = Instant::now();
    let report = server.serve(offered).expect("residency serve run");
    let serve_ns = start.elapsed().as_nanos() as u64;
    let hits = report.metrics.counter(names::RES_HITS);
    let misses = report.metrics.counter(names::RES_MISSES);
    let variant = ResidencyVariant {
        name,
        budget_bytes,
        hits,
        misses,
        evictions: report.metrics.counter(names::RES_EVICTIONS),
        hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        serve_ns,
    };
    (variant, report, server.into_runtime())
}

/// The launch-record fields of two reports, compared without the
/// run-metrics (which legitimately differ between a cold run and a
/// warm-started one: only the latter counts `residency.warm_starts`).
fn launches_identical(a: &ServeReport, b: &ServeReport) -> bool {
    a.outcomes == b.outcomes
        && a.batches == b.batches
        && a.latency == b.latency
        && a.makespan == b.makespan
}

/// Measures the full residency record: the three budget variants over
/// the same round-robin timeline, the warm-start tier round trip, and
/// the reproducibility check.
pub fn measure_residency(models: usize, rounds: u64, seed: u64) -> ResidencyBenchResult {
    let requests = rounds * models as u64;
    let offered = round_robin(models, rounds);

    // Probe: one unbounded pass over each model learns the per-model
    // plan bytes the budgets are expressed in.
    let (_, _, probe_rt) = run_variant("probe", u64::MAX, models, &round_robin(models, 1), seed);
    let mut model_bytes: Vec<u64> = probe_rt
        .residency()
        .resident()
        .iter()
        .map(|r| r.bytes)
        .collect();
    model_bytes.sort_unstable();
    assert_eq!(
        model_bytes.len(),
        models,
        "every model left a resident plan"
    );
    let warm_budget: u64 = model_bytes.iter().sum();

    let (warm, warm_report, warm_rt) = run_variant("warm", warm_budget, models, &offered, seed);
    let (thrash, _, _) = run_variant("thrash", warm_budget - 1, models, &offered, seed);
    let (single, _, _) = run_variant("single", 0, models, &offered, seed);

    // Warm-start tier: export the warm run's resident plans, import them
    // into a fresh runtime, and serve one request per model. Every model
    // must warm-start, and the launch records must be bit-identical to a
    // cold runtime's (the plans really are the same plans).
    let exported = warm_rt.residency().export_warm();
    let mut warm_tier_rt = runtime(warm_budget);
    let imported = warm_tier_rt
        .residency_mut()
        .import_warm(&exported)
        .expect("warm tier round-trips");
    assert_eq!(imported, models, "one exported plan per model");
    let one_each = round_robin(models, 1);
    let warm_tier_report = server(warm_tier_rt, models, seed)
        .serve(&one_each)
        .expect("warm-started serve run");
    let warm_starts = warm_tier_report.metrics.counter(names::RES_WARM_STARTS);
    let cold_report = server(runtime(warm_budget), models, seed)
        .serve(&one_each)
        .expect("cold serve run");
    let warm_tier_identical = launches_identical(&warm_tier_report, &cold_report);

    // Bit-reproducibility: the warm variant, rerun from scratch, must
    // reproduce its entire report.
    let (_, again, _) = run_variant("warm", warm_budget, models, &offered, seed);
    let reproducible = again == warm_report;

    let speedup = |other: &ResidencyVariant| other.serve_ns as f64 / warm.serve_ns.max(1) as f64;
    ResidencyBenchResult {
        models,
        rounds,
        requests,
        model_bytes,
        expected_warm_hit_rate: (requests - models as u64) as f64 / requests as f64,
        warm_speedup_vs_thrash: speedup(&thrash),
        warm_speedup_vs_single: speedup(&single),
        warm,
        thrash,
        single,
        warm_starts,
        warm_tier_identical,
        reproducible,
    }
}

fn variant_fields(w: &mut JsonWriter, v: &ResidencyVariant) {
    w.key(v.name).begin_object();
    w.field_u64("budget_bytes", v.budget_bytes)
        .field_u64("hits", v.hits)
        .field_u64("misses", v.misses)
        .field_u64("evictions", v.evictions)
        .field_raw("hit_rate", &format!("{:.4}", v.hit_rate))
        .field_u64("serve_ns", v.serve_ns)
        .end_object();
}

impl ResidencyBenchResult {
    /// The `"residency"` JSON block spliced into `BENCH_cosim.json`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field_u64("models", self.models as u64)
            .field_u64("rounds", self.rounds)
            .field_u64("requests", self.requests);
        w.key("model_bytes").begin_array();
        for &b in &self.model_bytes {
            w.u64(b);
        }
        w.end_array();
        w.field_raw(
            "expected_warm_hit_rate",
            &format!("{:.4}", self.expected_warm_hit_rate),
        );
        variant_fields(&mut w, &self.warm);
        variant_fields(&mut w, &self.thrash);
        variant_fields(&mut w, &self.single);
        w.field_raw(
            "warm_speedup_vs_thrash",
            &format!("{:.2}", self.warm_speedup_vs_thrash),
        )
        .field_raw(
            "warm_speedup_vs_single",
            &format!("{:.2}", self.warm_speedup_vs_single),
        );
        w.key("warm_tier").begin_object();
        w.field_u64("warm_starts", self.warm_starts);
        w.key("identical_to_cold").bool(self.warm_tier_identical);
        w.end_object();
        w.key("reproducible").bool(self.reproducible);
        w.end_object();
        w.finish()
    }
}

/// Printable report lines for the `repro` binary.
pub fn lines_for(r: &ResidencyBenchResult) -> Vec<String> {
    let mut out = vec![
        format!(
            "{} BERT models (plan bytes {:?}), {} rounds round-robin = {} requests per variant",
            r.models, r.model_bytes, r.rounds, r.requests
        ),
        format!(
            "expected warm hit rate (N-K)/N = {:.4}",
            r.expected_warm_hit_rate
        ),
    ];
    for v in [&r.warm, &r.thrash, &r.single] {
        out.push(format!(
            "  {:<6} budget {:>8} B: {:>3} hits, {:>3} misses, {:>3} evictions, hit rate {:.4}, {:>12} ns",
            v.name, v.budget_bytes, v.hits, v.misses, v.evictions, v.hit_rate, v.serve_ns
        ));
    }
    out.push(format!(
        "warm speedup: {:.2}x vs thrash, {:.2}x vs single (wall clock)",
        r.warm_speedup_vs_thrash, r.warm_speedup_vs_single
    ));
    out.push(format!(
        "warm-start tier: {} of {} launches warm-started, bit-identical to cold: {}",
        r.warm_starts, r.models, r.warm_tier_identical
    ));
    out.push(format!(
        "warm variant bit-reproducible from seed: {}",
        r.reproducible
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny end-to-end measure: 2 shallow models, 3 rounds. Asserts the
    /// acceptance shape — warm hit rate is exactly (N-K)/N, both starved
    /// budgets thrash to zero hits, the warm tier warm-starts every
    /// model bit-identically, and the warm variant reproduces.
    #[test]
    fn tiny_measure_hits_warm_and_thrashes_starved() {
        let r = measure_residency(2, 3, 11);
        assert_eq!(r.requests, 6);
        assert_eq!(r.model_bytes.len(), 2);
        assert_eq!(r.warm.hits + r.warm.misses, r.requests);
        assert_eq!(r.warm.misses, 2, "one cold compile per model");
        assert!(
            (r.warm.hit_rate - r.expected_warm_hit_rate).abs() < 1e-9,
            "warm hit rate {} != expected {}",
            r.warm.hit_rate,
            r.expected_warm_hit_rate
        );
        assert_eq!(r.warm.evictions, 0, "full budget never evicts");
        assert_eq!(r.thrash.hits, 0, "LRU always evicts the next model");
        assert!(r.thrash.evictions > 0);
        assert_eq!(r.single.hits, 0, "single-entry cache can't alternate");
        assert_eq!(r.warm_starts, 2, "every model warm-starts");
        assert!(r.warm_tier_identical, "warm-started launches == cold");
        assert!(r.reproducible, "warm variant must reproduce bit-for-bit");
        let json = r.to_json();
        assert!(json.contains("\"warm\""));
        assert!(json.contains("\"thrash\""));
        assert!(json.contains("\"warm_starts\": 2"));
        assert!(json.contains("\"reproducible\": true"));
    }
}
