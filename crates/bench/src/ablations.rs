//! Ablations of the design choices DESIGN.md calls out.
//!
//! Each function isolates one decision the paper made and quantifies the
//! alternative on the same substrate:
//!
//! * full-mesh vs torus local group (§2.2 vs §4.4),
//! * minimal-only vs non-minimally spread routing (§4.3),
//! * software-scheduled vs dynamically-routed networking (§4, Fig 8),
//! * forward error correction vs link-layer retry (§4.5).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsm::compiler::collective::allreduce_intra_node;
use tsm::link::{Channel, FecOutcome, LatencyModel};
use tsm::net::dynamic;
use tsm::net::ssn::{completion, vector_slot_cycles, LinkOccupancy};
use tsm::prelude::*;
use tsm::topology::route::{edge_disjoint_paths, shortest_path};
use tsm::topology::CableClass;
use tsm::workloads::traffic;

/// Mesh vs torus local group: nearest-neighbor streaming and 8-way
/// all-reduce on the two §2.2/§4.4 node organizations.
pub fn local_group() -> Vec<String> {
    let mesh = Topology::single_node();
    let torus = Topology::torus_node();
    let vectors = 4096; // a 1.3 MB tensor per TSP

    // Nearest-neighbor: every TSP streams to its successor concurrently.
    // `minimal_only` restricts each pair to its direct (1-hop) links —
    // the §4.4 setting in which the torus's triple links pay off.
    let nn = |topo: &Topology, minimal_only: bool| -> u64 {
        let mut occ = LinkOccupancy::new();
        let mut done = 0;
        for i in 0..8u32 {
            let mut paths = edge_disjoint_paths(topo, TspId(i), TspId((i + 1) % 8), 7);
            if minimal_only {
                paths.retain(|p| p.hops() == 1);
            }
            let shards = occ.schedule_spread(topo, &paths, vectors, 0).unwrap();
            done = done.max(completion(&shards));
        }
        done
    };
    let nn_mesh_min = nn(&mesh, true);
    let nn_torus_min = nn(&torus, true);
    let nn_mesh_spread = nn(&mesh, false);
    let nn_torus_spread = nn(&torus, false);

    let ar_mesh = allreduce_intra_node(&mesh, NodeId(0), vectors * 320).unwrap();
    let ar_torus = allreduce_intra_node(&torus, NodeId(0), vectors * 320).unwrap();

    vec![
        format!("{:>32} {:>12} {:>12}", "workload", "mesh", "torus"),
        format!(
            "{:>32} {:>8} cyc {:>8} cyc",
            "NN stream (minimal routing)", nn_mesh_min, nn_torus_min
        ),
        format!(
            "{:>32} {:>8} cyc {:>8} cyc",
            "NN stream (non-minimal spread)", nn_mesh_spread, nn_torus_spread
        ),
        format!(
            "{:>32} {:>7.1} GB/s {:>7.1} GB/s",
            "8-way all-reduce bus bw", ar_mesh.bus_gbs, ar_torus.bus_gbs
        ),
        format!(
            "minimal routing: torus triple links win NN by {:.2}x (the §4.4 claim);",
            nn_mesh_min as f64 / nn_torus_min as f64
        ),
        format!(
            "with full spreading the mesh's 28 cables claw back ({:.2}x vs torus);",
            nn_torus_spread as f64 / nn_mesh_spread as f64
        ),
        format!(
            "and the mesh wins the all-to-all collective by {:.2}x.",
            ar_torus.completion_cycles as f64 / ar_mesh.completion_cycles as f64
        ),
    ]
}

/// Minimal-only vs spread routing for one large intra-node tensor.
pub fn spreading() -> Vec<String> {
    let topo = Topology::single_node();
    let vectors = 16_384; // 5.2 MB
    let paths = edge_disjoint_paths(&topo, TspId(0), TspId(1), 7);
    let mut a = LinkOccupancy::new();
    let minimal = a
        .schedule_transfer(&topo, &paths[0], vectors, 0)
        .unwrap()
        .last_arrival;
    let mut b = LinkOccupancy::new();
    let spread = completion(&b.schedule_spread(&topo, &paths, vectors, 0).unwrap());
    vec![
        format!("5.2 MB tensor, TSP0 -> TSP1"),
        format!("minimal path only: {:>8} cycles", minimal),
        format!(
            "7-way spread:      {:>8} cycles ({:.2}x)",
            spread,
            minimal as f64 / spread as f64
        ),
    ]
}

/// Software-scheduled vs dynamically-routed networking under contention:
/// the determinism ablation of Fig 8.
pub fn routing_determinism() -> Vec<String> {
    let topo = Topology::fully_connected_nodes(2).unwrap();
    let offered = traffic::all_to_all(&topo, 6, 12);

    // Dynamic: three seeds = three "runs" of the same program.
    let runs: Vec<dynamic::DynamicRun> = (0..3)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(s);
            dynamic::simulate(&topo, &offered, &mut rng)
        })
        .collect();

    // SSN: schedule the same flows; completion is a single exact number.
    let mut occ = LinkOccupancy::new();
    let mut ssn_done = 0;
    for p in &offered {
        let path = shortest_path(&topo, p.src, p.dst).unwrap();
        let s = occ.schedule_transfer(&topo, &path, 1, p.inject).unwrap();
        ssn_done = ssn_done.max(s.last_arrival);
    }

    let mut out = vec![format!(
        "{:>8} {:>12} {:>10} {:>10}",
        "run", "mean (cyc)", "std", "max"
    )];
    for (i, r) in runs.iter().enumerate() {
        out.push(format!(
            "{:>8} {:>12.1} {:>10.2} {:>10}",
            format!("dyn #{i}"),
            r.mean_latency(),
            r.latency_std(),
            r.max_latency()
        ));
    }
    out.push(format!(
        "{:>8} {:>12} {:>10} {:>10}",
        "SSN", ssn_done, 0, ssn_done
    ));
    out.push("SSN: zero variance across runs by construction; the dynamic network's".into());
    out.push("per-packet latencies differ run to run (same offered traffic).".into());
    out
}

/// Forward error correction vs a link-layer retry protocol (§4.5): both
/// deliver correct data; only FEC delivers it at a *fixed* time.
pub fn fec_vs_retry() -> Vec<String> {
    let ber = 3e-6;
    let packets = 50_000u32;
    let model = LatencyModel::for_class(CableClass::IntraNode);
    let rtt = 2 * model.base_cycles + 2 * vector_slot_cycles();
    let channel = Channel::new(model, ber);
    let mut rng = StdRng::seed_from_u64(42);
    let packet = tsm::isa::WirePacket::data(0, tsm::isa::Vector::splat(9));

    let mut fec_latencies = Vec::with_capacity(packets as usize);
    let mut retry_latencies = Vec::with_capacity(packets as usize);
    let mut corrected = 0u32;
    for _ in 0..packets {
        let d = channel.transmit(&packet, 0, &mut rng);
        // FEC: arrival time is the wire time, error or not.
        fec_latencies.push(d.arrival_cycle);
        // Retry: any detected error (FEC would have corrected it or not —
        // a retry link retransmits on *any* CRC failure) costs one RTT per
        // attempt.
        let mut t = d.arrival_cycle;
        let mut outcome = d.outcome;
        while outcome != FecOutcome::Clean {
            corrected += 1;
            t += rtt;
            outcome = channel.transmit(&packet, 0, &mut rng).outcome;
        }
        retry_latencies.push(t);
    }
    let stats = |v: &mut Vec<u64>| -> (u64, u64, f64) {
        v.sort_unstable();
        let mean = v.iter().sum::<u64>() as f64 / v.len() as f64;
        (v[v.len() / 2], v[v.len() - 1], mean)
    };
    let (fec_p50, fec_max, fec_mean) = stats(&mut fec_latencies);
    let (r_p50, r_max, r_mean) = stats(&mut retry_latencies);
    vec![
        format!(
            "{} packets at BER {:.0e} ({} saw errors)",
            packets, ber, corrected
        ),
        format!("{:>8} {:>8} {:>8} {:>10}", "", "p50", "max", "mean"),
        format!(
            "{:>8} {:>8} {:>8} {:>10.1}",
            "FEC", fec_p50, fec_max, fec_mean
        ),
        format!("{:>8} {:>8} {:>8} {:>10.1}", "retry", r_p50, r_max, r_mean),
        format!(
            "retry adds a {}-cycle tail ({}x the FEC worst case) — the nondeterminism §4.5 rejects",
            r_max - fec_max,
            r_max / fec_max
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_group_tradeoff_holds() {
        let rows = local_group();
        assert_eq!(rows.len(), 7);
        // the headline claim is inside the last row; recompute directly
        let mesh = Topology::single_node();
        let torus = Topology::torus_node();
        let ar_mesh = allreduce_intra_node(&mesh, NodeId(0), 1 << 20).unwrap();
        let ar_torus = allreduce_intra_node(&torus, NodeId(0), 1 << 20).unwrap();
        assert!(
            ar_mesh.completion_cycles < ar_torus.completion_cycles,
            "mesh must win the all-to-all collective"
        );
    }

    #[test]
    fn torus_wins_nearest_neighbor_under_minimal_routing() {
        // The §4.4 claim: with minimal routing, the torus's 3 parallel
        // neighbor links give ~3x the throughput of the mesh's single
        // direct link. (Under full non-minimal spreading the mesh's larger
        // cable count wins back — reported by the ablation.)
        let vectors = 4096;
        let nn = |topo: &Topology| {
            let mut occ = LinkOccupancy::new();
            let mut done = 0;
            for i in 0..8u32 {
                let mut paths = edge_disjoint_paths(topo, TspId(i), TspId((i + 1) % 8), 7);
                paths.retain(|p| p.hops() == 1);
                let shards = occ.schedule_spread(topo, &paths, vectors, 0).unwrap();
                done = done.max(completion(&shards));
            }
            done
        };
        let mesh = nn(&Topology::single_node());
        let torus = nn(&Topology::torus_node());
        let ratio = mesh as f64 / torus as f64;
        assert!((2.5..=3.5).contains(&ratio), "expected ~3x, got {ratio}");
    }

    #[test]
    fn spreading_rows_report_speedup() {
        let rows = spreading();
        assert!(rows[2].contains("x)"));
    }

    #[test]
    fn determinism_ablation_shows_variance_gap() {
        let rows = routing_determinism();
        assert!(rows.len() >= 6);
    }

    #[test]
    fn retry_has_heavier_tail_than_fec() {
        let rows = fec_vs_retry();
        assert!(rows.last().unwrap().contains("tail"));
    }
}
