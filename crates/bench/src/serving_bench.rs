//! Serving-runtime benchmark: offered load × batch window over BERT.
//!
//! The serving frontend's whole claim is deterministic tail latency, so
//! the benchmark is an open-loop sweep: Poisson arrivals (virtual time,
//! seeded) offered at fixed fractions of the measured service rate μ,
//! crossed with batch windows, over the BERT pipeline in datapath mode
//! with conformance certification on *every* launch. Each point reports
//! p50/p99/p999 enqueue→complete latency from the run's
//! [`CycleHistogram`], plus an overload point (admission control must
//! shed) and a two-tenant burst scenario (quota must protect the steady
//! tenant). The whole sweep is bit-reproducible from its seed — the
//! smoke section and a unit test assert it by rerunning a point.
//!
//! [`CycleHistogram`]: tsm::trace::CycleHistogram

use std::time::Instant;
use tsm::core::runtime::{ExecMode, Runtime, SparePolicy};
use tsm::core::serving::{Request, ServeConfig, ServeReport, Server};
use tsm::core::system::System;
use tsm::trace::telemetry::series;
use tsm::trace::{names, sparkline, JsonWriter, Telemetry, TelemetryConfig};
use tsm::workloads::{
    merge_arrivals, poisson_arrivals, poisson_arrivals_in, ArrivalEvent, BertConfig,
};

/// Offered loads swept, as fractions of the service rate μ = 1/service
/// cycles (a batch-1 launch's timeline width).
pub const LOADS: &[f64] = &[0.2, 0.5, 0.8];

/// Overload point: twice the service rate, against a short queue.
pub const OVERLOAD: f64 = 2.0;

/// Requests folded into one launch at most.
pub const MAX_BATCH: usize = 8;

/// One point of the load × window sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ServePoint {
    /// Offered load as a fraction of μ.
    pub load: f64,
    /// Batch window, cycles.
    pub batch_window: u64,
    /// Requests offered / served / shed.
    pub offered: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests refused by admission control.
    pub shed: u64,
    /// Requests dropped at dispatch time (deadline already passed).
    pub expired: u64,
    /// Launches dispatched.
    pub batches: u64,
    /// Mean requests per launch.
    pub mean_batch: f64,
    /// Median enqueue→complete latency, cycles (bucket-interpolated).
    pub p50: f64,
    /// 99th percentile latency, cycles.
    pub p99: f64,
    /// 99.9th percentile latency, cycles.
    pub p999: f64,
    /// Deepest queue backlog seen.
    pub max_queue_depth: u64,
    /// Whether every dispatched launch came back CERTIFIED from the
    /// plan-vs-actual conformance profiler.
    pub all_certified: bool,
}

/// One tenant's slice of the burst scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPoint {
    /// Tenant id (0 = steady, 1 = bursting).
    pub tenant: u32,
    /// Requests offered / served / shed for this tenant.
    pub offered: u64,
    /// Requests served.
    pub served: u64,
    /// Requests shed.
    pub shed: u64,
    /// Sheds caused by queue backpressure.
    pub shed_queue_full: u64,
    /// Sheds caused by the tenant quota — the burst scenario asserts the
    /// bursting tenant is stopped by its quota, not by backpressure.
    pub shed_over_quota: u64,
    /// Median latency, cycles.
    pub p50: f64,
    /// 99th percentile latency, cycles.
    pub p99: f64,
}

/// The full serving benchmark record.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingBenchResult {
    /// Model description, derived from the swept configuration.
    pub model: String,
    /// Master seed the whole sweep derives from.
    pub seed: u64,
    /// Measured batch-1 service time (launch timeline width), cycles.
    pub service_cycles: u64,
    /// Arrival horizon, cycles.
    pub horizon: u64,
    /// The load × batch-window grid.
    pub sweep: Vec<ServePoint>,
    /// The 2μ point against a short queue: backpressure must fire.
    pub overload: ServePoint,
    /// The two-tenant burst scenario, per tenant.
    pub burst_tenants: Vec<TenantPoint>,
    /// Whether every burst-scenario launch certified.
    pub burst_certified: bool,
    /// Whether rerunning the first sweep point reproduced its report bit
    /// for bit.
    pub reproducible: bool,
}

/// BERT-shaped pipeline over 4 TSPs, `encoders` deep. `batch` arrives
/// from the serving frontend.
fn bert_graph(encoders: usize, batch: u32) -> tsm::compiler::graph::Graph {
    BertConfig {
        batch: u64::from(batch),
        ..BertConfig::with_encoders(encoders)
    }
    .build_pipeline_graph(4)
}

/// A fresh datapath runtime for one sweep point — every point starts from
/// the same state, so points are independent and individually
/// reproducible.
fn runtime() -> Runtime {
    Runtime::new(
        System::with_nodes(4).expect("4 nodes"),
        SparePolicy::PerSystem,
    )
    .with_exec_mode(ExecMode::Datapath)
}

/// Runs one serving point over `offered` and folds the report into a
/// [`ServePoint`].
fn run_point(
    encoders: usize,
    offered: &[Request],
    cfg: ServeConfig,
    load: f64,
) -> (ServePoint, ServeReport) {
    let mut server = Server::new(runtime(), cfg);
    server.add_model(move |b| bert_graph(encoders, b));
    let report = server.serve(offered).expect("serving run");
    let point = ServePoint {
        load,
        batch_window: cfg.batch_window,
        offered: report.offered,
        served: report.served,
        shed: report.shed,
        expired: report.expired,
        batches: report.batches.len() as u64,
        mean_batch: if report.batches.is_empty() {
            0.0
        } else {
            report.served as f64 / report.batches.len() as f64
        },
        p50: report.latency.percentile(0.50),
        p99: report.latency.percentile(0.99),
        p999: report.latency.percentile(0.999),
        max_queue_depth: report.metrics.gauge(names::SERVE_QUEUE_DEPTH).unwrap_or(0),
        all_certified: !report.batches.is_empty()
            && report.batches.iter().all(|b| b.certified == Some(true)),
    };
    (point, report)
}

fn to_requests(arrivals: &[ArrivalEvent]) -> Vec<Request> {
    arrivals
        .iter()
        .map(|a| Request {
            at: a.at,
            tenant: a.tenant,
            model: 0,
            priority: a.priority,
            deadline_slack: a.deadline_slack,
        })
        .collect()
}

/// Measures the full serving record: the load × window sweep, the
/// overload point, and the tenant-burst scenario. `encoders` sizes the
/// model (24 = BERT-Large; fewer for a fast smoke), `horizon_services`
/// sizes the arrival horizon in multiples of the measured service time.
pub fn measure_serving(encoders: usize, horizon_services: u64, seed: u64) -> ServingBenchResult {
    // Calibrate μ: one standalone batch-1 launch measures the service
    // time everything else is expressed against.
    let service_cycles = runtime()
        .launch(&bert_graph(encoders, 1), seed)
        .expect("calibration launch")
        .timeline_cycles;
    let horizon = service_cycles * horizon_services;
    let windows = [0u64, service_cycles / 2];

    let cfg = |batch_window, queue_capacity, tenant_quota| ServeConfig {
        batch_window,
        max_batch: MAX_BATCH,
        queue_capacity,
        tenant_quota,
        seed,
        certify: true,
        telemetry: None,
        attribution: false,
        flight: None,
    };

    let mut sweep = Vec::new();
    let mut first: Option<(Vec<Request>, ServeConfig, ServeReport)> = None;
    for (li, &load) in LOADS.iter().enumerate() {
        let rate = load / service_cycles as f64;
        let offered = to_requests(&poisson_arrivals(
            seed.wrapping_add(li as u64),
            rate,
            horizon,
            0,
            0,
            4 * service_cycles,
        ));
        for &w in &windows {
            let c = cfg(w, 256, usize::MAX);
            let (point, report) = run_point(encoders, &offered, c, load);
            if first.is_none() {
                first = Some((offered.clone(), c, report));
            }
            sweep.push(point);
        }
    }

    // Bit-reproducibility: the first sweep point, rerun from scratch on a
    // fresh runtime, must reproduce its entire report.
    let (f_offered, f_cfg, f_report) = first.expect("sweep is non-empty");
    let (_, again) = run_point(encoders, &f_offered, f_cfg, LOADS[0]);
    let reproducible = again == f_report;

    // Overload: 2μ against an 8-deep queue. Batching does not raise
    // throughput here (service time scales with batch size for a
    // compute-bound model), so the backlog grows ~1 per service time and
    // admission control must shed.
    let over_offered = to_requests(&poisson_arrivals(
        seed.wrapping_add(101),
        OVERLOAD / service_cycles as f64,
        horizon,
        0,
        0,
        4 * service_cycles,
    ));
    let (overload, _) = run_point(
        encoders,
        &over_offered,
        cfg(windows[1], 8, usize::MAX),
        OVERLOAD,
    );

    // Tenant burst: tenant 0 offers steady 0.4μ at priority 0 for the
    // whole horizon; tenant 1 floods 2.5μ at priority 1 over the second
    // quarter. A 16-entry tenant quota keeps the burst from squeezing the
    // steady tenant out of the queue.
    let steady = poisson_arrivals(
        seed.wrapping_add(201),
        0.4 / service_cycles as f64,
        horizon,
        0,
        0,
        4 * service_cycles,
    );
    let burst = poisson_arrivals_in(
        seed.wrapping_add(202),
        2.5 / service_cycles as f64,
        horizon / 4,
        horizon / 2,
        1,
        1,
        4 * service_cycles,
    );
    let burst_offered = to_requests(&merge_arrivals(&[steady, burst]));
    let (_, burst_report) = run_point(
        encoders,
        &burst_offered,
        cfg(windows[1], 64, 16),
        0.4 + 2.5 / 4.0,
    );
    let burst_tenants = burst_report
        .tenants
        .iter()
        .map(|t| TenantPoint {
            tenant: t.tenant,
            offered: t.offered,
            served: t.served,
            shed: t.shed,
            shed_queue_full: t.shed_queue_full,
            shed_over_quota: t.shed_over_quota,
            p50: t.latency.percentile(0.50),
            p99: t.latency.percentile(0.99),
        })
        .collect();
    let burst_certified = !burst_report.batches.is_empty()
        && burst_report
            .batches
            .iter()
            .all(|b| b.certified == Some(true));

    ServingBenchResult {
        model: format!(
            "BERT {encoders}x{} hidden, 4-stage pipeline, batch<=: {MAX_BATCH}",
            BertConfig::large().hidden
        ),
        seed,
        service_cycles,
        horizon,
        sweep,
        overload,
        burst_tenants,
        burst_certified,
        reproducible,
    }
}

/// Wall-clock samples taken (best-of) when measuring sampler overhead.
pub const OVERHEAD_SAMPLES: u32 = 3;

/// Per-tenant SLO summary of the telemetry bench point.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSlo {
    /// Tenant id.
    pub tenant: u32,
    /// Requests served / expired for this tenant.
    pub served: u64,
    /// Requests expired at dispatch.
    pub expired: u64,
    /// Whole-run SLO attainment: `met / (met + missed)` summed over every
    /// window (1.0 when the tenant saw no terminal requests).
    pub attainment: f64,
}

/// The `"telemetry"` bench record: one non-certified serve run with
/// windowed sampling on, the identity and reproducibility verdicts the
/// feature promises, and the sampler's measured wall-clock overhead —
/// the observational analogue of the NullSink/RingSink trace baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryBenchResult {
    /// Master seed of the run.
    pub seed: u64,
    /// Measured batch-1 service time, cycles.
    pub service_cycles: u64,
    /// Sampling window, cycles.
    pub window: u64,
    /// Requests offered / served / expired / shed.
    pub offered: u64,
    /// Requests served.
    pub served: u64,
    /// Requests expired at dispatch.
    pub expired: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Windows the run spanned (`last_window + 1`).
    pub sampled_windows: u64,
    /// Distinct `(name, label)` series recorded.
    pub series_count: u64,
    /// Links with a delivery heatmap.
    pub link_labels: u64,
    /// Chips with a busy-cycles heatmap.
    pub chip_labels: u64,
    /// Per-tenant SLO summaries, ascending tenant id.
    pub tenants: Vec<TenantSlo>,
    /// Whether a rerun reproduced the report and its telemetry JSON byte
    /// for byte.
    pub reproducible: bool,
    /// Whether a sampling-off run was bit-identical to the sampling-on
    /// run minus the telemetry fields.
    pub off_identical: bool,
    /// Best-of-[`OVERHEAD_SAMPLES`] wall ratio of a sampling-on serve to
    /// a sampling-off serve.
    pub sampler_overhead: f64,
    /// The run's full telemetry record (embedded in the JSON block).
    pub telemetry: Telemetry,
}

/// Measures the telemetry bench point: a two-tenant serve run — one
/// comfortable, one with deadlines tight enough to miss — with windowed
/// sampling on, in datapath mode without certification so the launches'
/// link/chip heatmaps land on the serving timeline.
pub fn measure_telemetry(
    encoders: usize,
    horizon_services: u64,
    seed: u64,
) -> TelemetryBenchResult {
    let service_cycles = runtime()
        .launch(&bert_graph(encoders, 1), seed)
        .expect("calibration launch")
        .timeline_cycles;
    let horizon = service_cycles * horizon_services;
    // Tenant 0 offers steady 0.5μ with ample deadlines; tenant 1 offers
    // 0.3μ with half-a-service slack, so some of its requests miss their
    // SLO and some expire unlaunched — the attainment series has to show
    // real misses, not a flat 100%.
    let steady = poisson_arrivals(
        seed.wrapping_add(301),
        0.5 / service_cycles as f64,
        horizon,
        0,
        0,
        8 * service_cycles,
    );
    let tight = poisson_arrivals(
        seed.wrapping_add(302),
        0.3 / service_cycles as f64,
        horizon,
        1,
        1,
        service_cycles / 2,
    );
    let offered = to_requests(&merge_arrivals(&[steady, tight]));
    let tel_cfg = TelemetryConfig {
        window: (service_cycles / 2).max(1),
        slo_permille: 990,
    };
    let cfg = |telemetry| ServeConfig {
        batch_window: service_cycles / 2,
        max_batch: MAX_BATCH,
        queue_capacity: 256,
        tenant_quota: usize::MAX,
        seed,
        certify: false,
        telemetry,
        attribution: false,
        flight: None,
    };
    let serve_once = |telemetry: Option<TelemetryConfig>| {
        let mut server = Server::new(runtime(), cfg(telemetry));
        server.add_model(move |b| bert_graph(encoders, b));
        server.serve(&offered).expect("serving run")
    };

    let on = serve_once(Some(tel_cfg));
    let telemetry = on.telemetry.clone().expect("sampling was on");

    // Bit-reproducibility: a rerun from scratch must reproduce the whole
    // report, and its telemetry must serialize byte-identically.
    let again = serve_once(Some(tel_cfg));
    let reproducible = again == on
        && again
            .telemetry
            .as_ref()
            .is_some_and(|t| t.to_json() == telemetry.to_json());

    // Off-identity: sampling off must be bit-identical to sampling on
    // minus the telemetry fields themselves.
    let off = serve_once(None);
    let mut stripped = on.clone();
    stripped.telemetry = None;
    for b in &mut stripped.batches {
        b.outcome.telemetry = None;
    }
    let off_identical = off.telemetry.is_none() && stripped == off;

    // Sampler overhead, best-of-N: identical serve runs, sampling off vs
    // on — reported alongside the trace layer's NullSink/RingSink
    // baselines in BENCH_cosim.json.
    let (mut off_ns, mut on_ns) = (u128::MAX, u128::MAX);
    for _ in 0..OVERHEAD_SAMPLES {
        let t = Instant::now();
        let _ = serve_once(None);
        off_ns = off_ns.min(t.elapsed().as_nanos());
        let t = Instant::now();
        let _ = serve_once(Some(tel_cfg));
        on_ns = on_ns.min(t.elapsed().as_nanos());
    }
    let sampler_overhead = on_ns as f64 / off_ns as f64;

    let total = |name: &str, label: &str| telemetry.get(name, label).map_or(0, |s| s.total());
    let tenants = on
        .tenants
        .iter()
        .map(|t| {
            let label = format!("tenant{}", t.tenant);
            let met = total(series::SLO_MET, &label);
            let missed = total(series::SLO_MISSED, &label);
            TenantSlo {
                tenant: t.tenant,
                served: t.served,
                expired: t.expired,
                attainment: if met + missed == 0 {
                    1.0
                } else {
                    met as f64 / (met + missed) as f64
                },
            }
        })
        .collect();

    TelemetryBenchResult {
        seed,
        service_cycles,
        window: tel_cfg.window,
        offered: on.offered,
        served: on.served,
        expired: on.expired,
        shed: on.shed,
        sampled_windows: telemetry.last_window().map_or(0, |w| w + 1),
        series_count: telemetry.series.len() as u64,
        link_labels: telemetry.labels(series::LINK_DELIVERIES).len() as u64,
        chip_labels: telemetry.labels(series::CHIP_BUSY).len() as u64,
        tenants,
        reproducible,
        off_identical,
        sampler_overhead,
        telemetry,
    }
}

impl TelemetryBenchResult {
    /// The `"telemetry"` JSON block spliced into `BENCH_cosim.json`. The
    /// embedded `series` object is [`Telemetry::to_json`] verbatim, so
    /// the same seed reproduces it byte for byte (only the wall-clock
    /// `sampler_overhead` field varies across machines).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field_u64("seed", self.seed)
            .field_u64("service_cycles", self.service_cycles)
            .field_u64("window_cycles", self.window)
            .field_u64("offered", self.offered)
            .field_u64("served", self.served)
            .field_u64("expired", self.expired)
            .field_u64("shed", self.shed)
            .field_u64("sampled_windows", self.sampled_windows)
            .field_u64("series_count", self.series_count)
            .field_u64("link_labels", self.link_labels)
            .field_u64("chip_labels", self.chip_labels);
        w.key("tenants").begin_array();
        for t in &self.tenants {
            w.begin_object()
                .field_u64("tenant", u64::from(t.tenant))
                .field_u64("served", t.served)
                .field_u64("expired", t.expired)
                .field_raw("slo_attainment", &format!("{:.4}", t.attainment))
                .end_object();
        }
        w.end_array();
        w.key("reproducible").bool(self.reproducible);
        w.key("off_identical").bool(self.off_identical);
        w.field_raw("sampler_overhead", &format!("{:.3}", self.sampler_overhead));
        w.field_raw(
            "series",
            &crate::cosim_bench::indent_block(&self.telemetry.to_json(), 2),
        );
        w.end_object();
        w.finish()
    }
}

/// Printable report lines for `repro telemetry` output, with ASCII
/// sparklines over the sampled windows.
pub fn telemetry_lines(r: &TelemetryBenchResult) -> Vec<String> {
    let t = &r.telemetry;
    let last = t.last_window().unwrap_or(0);
    let mut out = vec![
        format!(
            "window {} cycles x {} sampled; {} series over {} links, {} chips; seed {}",
            r.window, r.sampled_windows, r.series_count, r.link_labels, r.chip_labels, r.seed
        ),
        format!(
            "offered {}, served {}, expired {}, shed {}",
            r.offered, r.served, r.expired, r.shed
        ),
    ];
    for ten in &r.tenants {
        let label = format!("tenant{}", ten.tenant);
        let tp = t
            .get(series::SERVE_THROUGHPUT, &label)
            .map(|s| s.dense(0, last))
            .unwrap_or_default();
        out.push(format!(
            "  {label}: throughput |{}| slo attainment {:5.1}%",
            sparkline(&tp),
            ten.attainment * 100.0
        ));
    }
    if let Some(depth) = t.get(series::SERVE_QUEUE_DEPTH, "") {
        out.push(format!(
            "  queue depth |{}|",
            sparkline(&depth.dense(0, last))
        ));
    }
    out.push(format!(
        "bit-reproducible: {}; sampling-off identical: {}; sampler overhead {:.3}x (best of {})",
        r.reproducible, r.off_identical, r.sampler_overhead, OVERHEAD_SAMPLES
    ));
    out
}

/// Replaces (or appends) the top-level `"telemetry"` key of an existing
/// `BENCH_cosim.json` document with `block`.
pub fn splice_telemetry(existing: &str, block: &str) -> String {
    splice_block(existing, "telemetry", block)
}

fn point_fields(w: &mut JsonWriter, p: &ServePoint) {
    w.begin_object()
        .field_raw("load", &format!("{:.2}", p.load))
        .field_u64("batch_window", p.batch_window)
        .field_u64("offered", p.offered)
        .field_u64("served", p.served)
        .field_u64("shed", p.shed)
        .field_u64("expired", p.expired)
        .field_u64("batches", p.batches)
        .field_raw("mean_batch", &format!("{:.3}", p.mean_batch))
        .field_raw("p50_cycles", &format!("{:.0}", p.p50))
        .field_raw("p99_cycles", &format!("{:.0}", p.p99))
        .field_raw("p999_cycles", &format!("{:.0}", p.p999))
        .field_u64("max_queue_depth", p.max_queue_depth);
    w.key("all_certified").bool(p.all_certified);
    w.end_object();
}

impl ServingBenchResult {
    /// The `"serving"` JSON block spliced into `BENCH_cosim.json`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field_str("model", &self.model)
            .field_u64("seed", self.seed)
            .field_u64("service_cycles", self.service_cycles)
            .field_u64("horizon_cycles", self.horizon);
        w.key("sweep").begin_array();
        for p in &self.sweep {
            point_fields(&mut w, p);
        }
        w.end_array();
        w.key("overload");
        point_fields(&mut w, &self.overload);
        w.key("tenant_burst").begin_object();
        w.key("all_certified").bool(self.burst_certified);
        w.key("tenants").begin_array();
        for t in &self.burst_tenants {
            w.begin_object()
                .field_u64("tenant", u64::from(t.tenant))
                .field_u64("offered", t.offered)
                .field_u64("served", t.served)
                .field_u64("shed", t.shed)
                .field_u64("shed_queue_full", t.shed_queue_full)
                .field_u64("shed_over_quota", t.shed_over_quota)
                .field_raw("p50_cycles", &format!("{:.0}", t.p50))
                .field_raw("p99_cycles", &format!("{:.0}", t.p99))
                .end_object();
        }
        w.end_array();
        w.end_object();
        w.key("reproducible").bool(self.reproducible);
        w.end_object();
        w.finish()
    }
}

/// Printable report lines for the `repro` binary.
pub fn lines_for(r: &ServingBenchResult) -> Vec<String> {
    let mut out = vec![
        format!("model: {}", r.model),
        format!(
            "service time μ⁻¹ = {} cycles (batch-1 launch), horizon {} cycles, seed {}",
            r.service_cycles, r.horizon, r.seed
        ),
        "load×window sweep (open-loop Poisson, every launch certified):".to_string(),
    ];
    for p in &r.sweep {
        out.push(format!(
            "  load {:.2}μ window {:>8}: {:>3} offered, {:>3} served, {} shed, {:>3} batches (mean {:.2}), p50 {:>9.0} p99 {:>9.0} p999 {:>9.0} cycles, depth {} certified={}",
            p.load, p.batch_window, p.offered, p.served, p.shed, p.batches, p.mean_batch,
            p.p50, p.p99, p.p999, p.max_queue_depth, p.all_certified
        ));
    }
    let o = &r.overload;
    out.push(format!(
        "overload {:.1}μ, queue 8: {} offered, {} served, {} shed (backpressure), p99 {:.0} cycles, certified={}",
        o.load, o.offered, o.served, o.shed, o.p99, o.all_certified
    ));
    out.push("tenant burst (0 = steady 0.4μ prio 0; 1 = burst 2.5μ prio 1, quota 16):".to_string());
    for t in &r.burst_tenants {
        out.push(format!(
            "  tenant {}: {:>3} offered, {:>3} served, {} shed ({} backpressure, {} quota), p50 {:>9.0} p99 {:>9.0} cycles",
            t.tenant, t.offered, t.served, t.shed, t.shed_queue_full, t.shed_over_quota, t.p50, t.p99
        ));
    }
    out.push(format!(
        "burst launches certified: {}; sweep bit-reproducible from seed: {}",
        r.burst_certified, r.reproducible
    ));
    out
}

/// Replaces (or appends) the top-level `"serving"` key of an existing
/// `BENCH_cosim.json` document with `block`, leaving every other field
/// byte-identical — so `repro serve` can update its section without
/// re-running the co-simulation bench.
pub fn splice_serving(existing: &str, block: &str) -> String {
    splice_block(existing, "serving", block)
}

/// Replaces (or appends) the top-level `"key"` of an existing
/// `BENCH_cosim.json` document with `block`, leaving every other field
/// byte-identical — each bench section owns one top-level key and can
/// refresh it without re-running the others.
pub fn splice_block(existing: &str, key: &str, block: &str) -> String {
    let without = remove_top_level_key(existing, key);
    let trimmed = without.trim_end();
    let body = trimmed.strip_suffix('}').unwrap_or(trimmed).trim_end();
    let sep = if body.ends_with('{') { "\n" } else { ",\n" };
    format!(
        "{body}{sep}  \"{key}\": {}\n}}\n",
        crate::cosim_bench::indent_block(block, 2)
    )
}

/// Removes a top-level `"key": <value>` pair (object, array, or scalar
/// value) from a JSON object document, swallowing the separating comma.
/// Returns the input unchanged when the key is absent at depth 1.
fn remove_top_level_key(s: &str, key: &str) -> String {
    let bytes = s.as_bytes();
    let pat = format!("\"{key}\"");
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            if esc {
                esc = false;
            } else if c == b'\\' {
                esc = true;
            } else if c == b'"' {
                in_str = false;
            }
            i += 1;
            continue;
        }
        match c {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            b'"' => {
                if depth == 1 && s[i..].starts_with(&pat) {
                    // Value starts after the colon; scan to its end.
                    let mut j = i + pat.len();
                    while bytes[j].is_ascii_whitespace() || bytes[j] == b':' {
                        j += 1;
                    }
                    let end = value_end(s, j);
                    // Swallow a following comma, else the preceding one.
                    let cut_start;
                    let mut cut_end = end;
                    let mut k = end;
                    while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                        k += 1;
                    }
                    let lead = s[..i].trim_end().len();
                    if k < bytes.len() && bytes[k] == b',' {
                        cut_start = lead;
                        cut_end = k + 1;
                    } else if s[..lead].ends_with(',') {
                        cut_start = lead - 1;
                    } else {
                        cut_start = lead;
                    }
                    return format!("{}{}", &s[..cut_start], &s[cut_end..]);
                }
                in_str = true;
            }
            _ => {}
        }
        i += 1;
    }
    s.to_string()
}

/// The byte index one past the JSON value starting at `from`.
fn value_end(s: &str, from: usize) -> usize {
    let bytes = s.as_bytes();
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    let mut i = from;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            if esc {
                esc = false;
            } else if c == b'\\' {
                esc = true;
            } else if c == b'"' {
                in_str = false;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
            continue;
        }
        match c {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => {
                if depth == 0 {
                    return i; // scalar value ends at enclosing close
                }
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            b',' if depth == 0 => return i,
            b'"' => in_str = true,
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "{\n  \"bench\": \"cosim\",\n  \"chips\": 16\n}\n";

    #[test]
    fn splice_appends_when_absent() {
        let out = splice_serving(DOC, "{\n  \"seed\": 1\n}");
        assert!(out.contains("\"chips\": 16,"));
        assert!(out.contains("\"serving\": {"));
        assert!(out.trim_end().ends_with('}'));
        // Other fields byte-identical.
        assert!(out.starts_with("{\n  \"bench\": \"cosim\",\n  \"chips\": 16"));
    }

    #[test]
    fn splice_replaces_and_is_idempotent() {
        let once = splice_serving(DOC, "{\n  \"seed\": 1\n}");
        let twice = splice_serving(&once, "{\n  \"seed\": 2\n}");
        assert!(
            !twice.contains("\"seed\": 1"),
            "old block replaced:\n{twice}"
        );
        assert!(twice.contains("\"seed\": 2"));
        let thrice = splice_serving(&twice, "{\n  \"seed\": 2\n}");
        assert_eq!(twice, thrice, "splicing the same block is idempotent");
    }

    #[test]
    fn splice_survives_a_mid_document_serving_key() {
        let doc = "{\n  \"serving\": {\n    \"old\": [1, 2, {\"x\": \"a}b\"}]\n  },\n  \"chips\": 16\n}\n";
        let out = splice_serving(doc, "{\n  \"seed\": 3\n}");
        assert!(
            !out.contains("\"old\""),
            "mid-document block removed:\n{out}"
        );
        assert!(out.contains("\"chips\": 16,"));
        assert!(out.contains("\"seed\": 3"));
    }

    #[test]
    fn splice_handles_empty_and_scalar_values() {
        let out = splice_serving("{}\n", "{\n  \"seed\": 4\n}");
        assert!(out.starts_with("{\n  \"serving\": {"));
        let doc = "{\n  \"serving\": 7,\n  \"chips\": 16\n}\n";
        let out = splice_serving(doc, "{\n  \"seed\": 5\n}");
        assert!(!out.contains("\"serving\": 7"));
        assert!(out.contains("\"chips\": 16,"));
        assert!(out.contains("\"seed\": 5"));
    }

    /// Tiny end-to-end measure: a 4-encoder model over a short horizon.
    /// Asserts the acceptance shape — ≥3 loads × ≥2 windows, every launch
    /// certified, overload sheds, burst quota protects the steady tenant,
    /// and the sweep reproduces from its seed.
    #[test]
    fn tiny_measure_is_certified_shedding_and_reproducible() {
        let r = measure_serving(4, 12, 9);
        assert_eq!(r.sweep.len(), LOADS.len() * 2);
        assert!(r.sweep.iter().all(|p| p.offered > 0));
        assert!(r.sweep.iter().all(|p| p.all_certified), "{:#?}", r.sweep);
        assert!(
            r.sweep.iter().all(|p| p.shed == 0),
            "ample queue at <=0.8 load"
        );
        for p in &r.sweep {
            assert!(p.p50 <= p.p99 && p.p99 <= p.p999);
            assert!(p.p50 > 0.0, "served requests take time");
        }
        assert!(
            r.overload.shed > 0,
            "2x load against an 8-deep queue must shed"
        );
        assert!(r.overload.all_certified);
        assert!(r.reproducible, "sweep point must reproduce bit-for-bit");
        assert!(r.burst_certified);
        assert_eq!(r.burst_tenants.len(), 2);
        assert_eq!(r.burst_tenants[0].shed, 0, "steady tenant is protected");
        let burst = &r.burst_tenants[1];
        assert_eq!(
            burst.shed,
            burst.shed_queue_full + burst.shed_over_quota,
            "shed splits exactly into its two causes"
        );
        if burst.shed > 0 {
            assert_eq!(
                burst.shed_queue_full, 0,
                "a 64-deep queue never backpressures the burst; its quota does"
            );
        }
        let json = r.to_json();
        assert!(json.contains("\"sweep\""));
        assert!(json.contains("\"p999_cycles\""));
        assert!(json.contains("\"reproducible\": true"));
    }

    /// Tiny telemetry measure: sampling must change nothing but the
    /// telemetry fields, reproduce bit-for-bit, and carry per-tenant SLO
    /// series plus link/chip heatmaps into the JSON block.
    #[test]
    fn tiny_telemetry_measure_is_identical_off_and_reproducible_on() {
        let r = measure_telemetry(4, 8, 9);
        assert!(r.reproducible, "same seed, same bytes");
        assert!(r.off_identical, "sampling off is bit-identical");
        assert!(r.offered > 0 && r.served > 0);
        assert!(r.sampled_windows > 1, "run spans multiple windows");
        assert!(r.series_count > 0);
        assert!(
            r.link_labels > 0 && r.chip_labels > 0,
            "non-certified datapath launches put heatmaps on the timeline"
        );
        assert_eq!(r.tenants.len(), 2);
        assert!(
            r.tenants.iter().any(|t| t.attainment < 1.0) || r.expired > 0,
            "the tight tenant must show real SLO pressure"
        );
        for t in &r.tenants {
            assert!((0.0..=1.0).contains(&t.attainment));
        }
        let json = r.to_json();
        for key in [
            "\"window_cycles\"",
            "\"sampled_windows\"",
            "\"tenants\"",
            "\"slo_attainment\"",
            "\"sampler_overhead\"",
            "\"series\"",
            "\"off_identical\": true",
            "\"reproducible\": true",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(json.contains(series::LINK_DELIVERIES));
        assert!(json.contains(series::CHIP_BUSY));
        let lines = telemetry_lines(&r);
        assert!(lines.iter().any(|l| l.contains("throughput")));
        assert!(lines.iter().any(|l| l.contains("sampler overhead")));
    }
}
