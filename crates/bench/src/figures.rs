//! One function per paper table/figure, each returning printable rows.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tsm::baseline::{a100, nccl};
use tsm::compiler::balance::{partition_stages, LayerCost};
use tsm::compiler::collective::{allreduce_intra_node, pipelined_allreduce_latency_ns};
use tsm::compiler::partition::{build_cluster_gemm, build_distributed_gemm};
use tsm::compiler::schedule::compile;
use tsm::compiler::spread::{crossover_bytes, nonminimal_benefit};
use tsm::link::LatencyModel;
use tsm::prelude::*;
use tsm::sync::align::{align_pair, characterize_link};
use tsm::sync::clock::LocalClock;
use tsm::topology::bandwidth::bandwidth_profile;
use tsm::topology::CableClass;

/// Fig 2 — global bandwidth per TSP vs system size.
pub fn fig2() -> Vec<String> {
    let mut out = vec![format!("{:>8} {:>16}", "TSPs", "GB/s per TSP")];
    for p in bandwidth_profile() {
        out.push(format!("{:>8} {:>16.1}", p.tsps, p.gbs_per_tsp));
    }
    out
}

/// Table 2 — HAC latency characterization of 7 intra-node links.
pub fn table2(iterations: usize) -> Vec<String> {
    let mut out = vec![format!(
        "{:>4} {:>5} {:>8} {:>5} {:>6}",
        "link", "min", "mean", "max", "std"
    )];
    let model = LatencyModel::for_class(CableClass::IntraNode);
    let mut rng = StdRng::seed_from_u64(2022);
    for name in ["A", "B", "C", "D", "E", "F", "G"] {
        let s = characterize_link(&model, iterations, &mut rng);
        out.push(format!(
            "{:>4} {:>5} {:>8.2} {:>5} {:>6.2}",
            name, s.min, s.mean, s.max, s.std
        ));
    }
    out
}

/// Fig 7 — HAC alignment convergence trace (validation series).
pub fn fig7() -> Vec<String> {
    let model = LatencyModel::for_class(CableClass::IntraNode);
    let mut rng = StdRng::seed_from_u64(7);
    let trace = align_pair(
        &model,
        217,
        LocalClock::with_ppm(80.0),
        100,
        4,
        120,
        &mut rng,
    );
    let mut out = vec![format!("{:>9} {:>10}", "exchange", "|error|")];
    for (i, e) in trace.errors.iter().enumerate().step_by(10) {
        out.push(format!("{:>9} {:>10.1}", i, e));
    }
    out.push(format!(
        "converged after {:?} exchanges",
        trace.converged_after
    ));
    out
}

/// Fig 9 — communication model: request/reply ("pull") vs scheduled push.
pub fn fig9() -> Vec<String> {
    use tsm::net::pushpull;
    let topo = Topology::single_node();
    let mut out = vec![format!(
        "{:>10} {:>12} {:>12} {:>10}",
        "bytes", "pull (cyc)", "push (cyc)", "advantage"
    )];
    for bytes in [320u64, 2048, 32_768, 1 << 20] {
        let pull = pushpull::pull_latency(&topo, TspId(0), TspId(5), bytes).expect("route");
        let push = pushpull::push_latency(&topo, TspId(0), TspId(5), bytes).expect("route");
        out.push(format!(
            "{:>10} {:>12} {:>12} {:>9.2}x",
            bytes,
            pull,
            push,
            pull as f64 / push as f64
        ));
    }
    out.push("the push model eliminates the request leg (paper Fig 9(b))".into());
    out
}

/// Extension — data-parallel training weak scaling (abstract: "both
/// training and inference").
pub fn ext_training() -> Vec<String> {
    use tsm::workloads::training::{weak_scaling_sweep, TrainingConfig};
    let mut out = vec![format!(
        "{:>6} {:>14} {:>12}",
        "TSPs", "samples/s", "efficiency"
    )];
    for (tsps, thr, eff) in
        weak_scaling_sweep(TrainingConfig::bert_large(2), &[1, 2, 4, 8, 16, 33]).expect("sweep")
    {
        out.push(format!("{tsps:>6} {thr:>14.1} {:>11.1}%", eff * 100.0));
    }
    out
}

/// Extension — LSTM (batch-1 vector-matrix regime, §5's seq2seq mention).
pub fn ext_lstm() -> Vec<String> {
    use tsm::workloads::lstm::LstmConfig;
    let c = LstmConfig::translation();
    let util = tsm::chip::mxm::gemm_timing(c.step_gemms()[0], ElemType::F16).utilization;
    vec![
        format!(
            "LSTM {}x{} seq {}, batch {}",
            c.layers, c.hidden, c.seq_len, c.batch
        ),
        format!(
            "per-step MXM utilization at batch 1: {:.2}% (install-bound)",
            util * 100.0
        ),
        format!(
            "per-step activation transfer: {} B = {} vectors",
            c.activation_bytes(),
            tsm::isa::vector::vectors_for_bytes(c.activation_bytes())
        ),
        format!("total inference: {:.1} GFLOP", c.total_flops() as f64 / 1e9),
    ]
}

/// Fig 10 — benefit of non-minimal routing vs message size and path count.
pub fn fig10() -> Vec<String> {
    let topo = Topology::single_node();
    let mut out = vec![format!(
        "{:>10} {:>8} {:>8} {:>8} {:>8}",
        "bytes", "1 path", "3 paths", "5 paths", "7 paths"
    )];
    for shift in [10u32, 12, 13, 14, 16, 18, 20, 22, 24] {
        let bytes = 1u64 << shift;
        let row: Vec<f64> = [1usize, 3, 5, 7]
            .iter()
            .map(|&k| nonminimal_benefit(&topo, TspId(0), TspId(1), bytes, k))
            .collect();
        out.push(format!(
            "{:>10} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            bytes, row[0], row[1], row[2], row[3]
        ));
    }
    out.push(format!(
        "crossover (7 paths): {} bytes (paper: ~8 KB)",
        crossover_bytes(&topo, TspId(0), TspId(1), 7)
    ));
    out
}

/// Fig 11 — wire format efficiency.
pub fn fig11() -> Vec<String> {
    vec![
        format!(
            "payload {} B / wire {} B",
            tsm::isa::vector::VECTOR_BYTES,
            tsm::isa::packet::WIRE_BYTES
        ),
        format!(
            "encoding efficiency {:.2}% (paper: 97.5%)",
            tsm::isa::packet::ENCODING_EFFICIENCY * 100.0
        ),
    ]
}

/// Fig 13 — single-chip GEMM utilization, TSP vs A100, for
/// [2304×4096]×[4096×N].
pub fn fig13(step: usize) -> Vec<String> {
    let mut out = vec![format!("{:>6} {:>10} {:>10}", "N", "TSP util", "A100 util")];
    let tsp = tsm::chip::mxm::fig13_sweep((1376..=3500).step_by(step));
    let gpu = a100::fig13_sweep((1376..=3500).step_by(step));
    for ((n, t), (_, g)) in tsp.into_iter().zip(gpu) {
        out.push(format!("{:>6} {:>9.1}% {:>9.1}%", n, t * 100.0, g * 100.0));
    }
    out
}

/// Fig 14 — distributed [800×32576]×[32576×8192]: latency and throughput
/// vs TSP count.
pub fn fig14() -> Vec<String> {
    let shape = GemmShape::new(800, 32_576, 8192);
    let mut out = vec![format!(
        "{:>6} {:>6} {:>13} {:>10}",
        "TSPs", "rows", "latency (µs)", "TFLOPs"
    )];
    for row_splits in [1u64, 2, 4, 8, 13] {
        let graph = build_distributed_gemm(shape, 8, row_splits, ElemType::F16);
        let max_dev = graph.devices().iter().map(|d| d.index()).max().unwrap_or(0);
        let nodes = (max_dev + 1).div_ceil(8).max(1);
        let topo = if nodes == 1 {
            Topology::single_node()
        } else {
            Topology::fully_connected_nodes(nodes).expect("fits")
        };
        let p = compile(&graph, &topo, CompileOptions::default()).expect("compiles");
        out.push(format!(
            "{:>6} {:>6} {:>13.1} {:>10.1}",
            8 * row_splits,
            row_splits,
            p.estimated_seconds() * 1e6,
            p.realized_tflops(graph.total_flops())
        ));
    }
    out
}

/// Fig 15 — cluster GEMM FP16 TFLOPs vs matrix size for 100/200/300 TSPs.
pub fn fig15() -> Vec<String> {
    let mut out = vec![format!(
        "{:>9} {:>10} {:>10} {:>10}",
        "N", "100 TSPs", "200 TSPs", "300 TSPs"
    )];
    for n in [65_000u64, 130_000, 260_000, 450_000, 650_000] {
        let row: Vec<f64> = [100u64, 200, 300]
            .iter()
            .map(|&x| {
                let g = build_cluster_gemm(n, x, ElemType::F16);
                let nodes = (x as usize).div_ceil(8);
                // 300 TSPs exceed the 33-node fully-connected regime: the
                // cluster deploys as a rack-Dragonfly (paper §2.2).
                let topo = if nodes <= 33 {
                    Topology::fully_connected_nodes(nodes).expect("fits")
                } else {
                    Topology::rack_dragonfly(nodes.div_ceil(9)).expect("fits")
                };
                let p = compile(&g, &topo, CompileOptions::default()).expect("compiles");
                p.realized_tflops(g.total_flops())
            })
            .collect();
        out.push(format!(
            "{:>9} {:>10.0} {:>10.0} {:>10.0}",
            n, row[0], row[1], row[2]
        ));
    }
    out.push(format!(
        "V100 cluster reference: {:.0} fp64 TFLOPs on 432 GPUs at N=650,000",
        tsm::baseline::v100::CLUSTER_FP64_TFLOPS
    ));
    out
}

/// Fig 16 — 8-way all-reduce realized bus bandwidth vs tensor size.
pub fn fig16() -> Vec<String> {
    let topo = Topology::single_node();
    let mut out = vec![format!(
        "{:>12} {:>13} {:>14} {:>16}",
        "bytes", "TSP (GB/s)", "A100 (GB/s)", "A100-norm (GB/s)"
    )];
    for shift in [10u32, 12, 14, 16, 18, 20, 22, 24, 26] {
        let bytes = 1u64 << shift;
        let tsp = allreduce_intra_node(&topo, NodeId(0), bytes).expect("schedules");
        out.push(format!(
            "{:>12} {:>13.2} {:>14.2} {:>16.2}",
            bytes,
            tsp.bus_gbs,
            nccl::allreduce_bus_gbs(bytes),
            nccl::allreduce_bus_gbs_pin_normalized(bytes, 87.5)
        ));
    }
    out
}

/// Fig 17 — BERT-Large latency histogram over `runs` executions.
pub fn fig17(runs: usize) -> Vec<String> {
    let config = BertConfig::large();
    let graph = config.build_pipeline_graph(4);
    let system = System::single_node();
    let program = system
        .compile(&graph, CompileOptions::default())
        .expect("compiles");
    let reports = system.execute_many(&program, &graph, runs, 2022);
    let mut lat: Vec<f64> = reports.iter().map(|r| r.measured_seconds() * 1e6).collect();
    lat.sort_by(f64::total_cmp);
    let est = program.estimated_seconds() * 1e6;
    let within2 = reports
        .iter()
        .filter(|r| r.estimate_error() <= 0.02)
        .count();
    vec![
        format!("runs: {runs}"),
        format!("compiler estimate: {est:.0} µs"),
        format!(
            "p50 {:.0} µs  p99 {:.0} µs  max {:.0} µs",
            lat[runs / 2],
            lat[runs * 99 / 100],
            lat[runs - 1]
        ),
        format!(
            "all runs bounded by the estimate: {}",
            lat[runs - 1] <= est + 0.5
        ),
        format!(
            "estimate within 2% of measurement: {:.1}% of runs",
            within2 as f64 / runs as f64 * 100.0
        ),
    ]
}

/// Fig 18 — BERT encoder scaling on 1/4/8/16 TSPs, normalized TOPs.
pub fn fig18() -> Vec<String> {
    let mut out = vec![format!(
        "{:>9} {:>6} {:>14} {:>12}",
        "encoders", "TSPs", "TOPs (abs)", "normalized"
    )];
    let mut first = None;
    for (enc, tsps) in [(6usize, 1usize), (24, 4), (48, 8), (96, 16)] {
        let c = BertConfig::with_encoders(enc);
        let plan = partition_stages(&c.layer_costs(), tsps, OptLevel::SpatialAware);
        let tops = plan.throughput_per_second() * c.total_flops() as f64 / 1e12;
        let norm = first.map(|f: f64| tops / f).unwrap_or(1.0);
        if first.is_none() {
            first = Some(tops);
        }
        out.push(format!(
            "{:>9} {:>6} {:>14.2} {:>12.2}",
            enc, tsps, tops, norm
        ));
    }
    out
}

/// Fig 19 — Cholesky: execution time vs problem size and TSP count, plus
/// speedups and TFLOPs.
pub fn fig19() -> Vec<String> {
    let mut out = vec![format!(
        "{:>7} {:>11} {:>11} {:>11} {:>11}",
        "p", "1 TSP (ms)", "2 TSPs", "4 TSPs", "8 TSPs"
    )];
    for p in [1024u64, 2048, 4096, 8192, 16384] {
        let ms: Vec<f64> = [1u64, 2, 4, 8]
            .iter()
            .map(|&k| CholeskyPlan::new(p, k).seconds() * 1e3)
            .collect();
        out.push(format!(
            "{:>7} {:>11.2} {:>11.2} {:>11.2} {:>11.2}",
            p, ms[0], ms[1], ms[2], ms[3]
        ));
    }
    for k in [2u64, 4, 8] {
        let plan = CholeskyPlan::new(4096, k);
        out.push(format!(
            "p=4096, {k} TSPs: speedup {:.2}x (paper: 1.2/1.4/1.5), {:.1} TFLOPs",
            plan.speedup(),
            plan.tflops()
        ));
    }
    out
}

/// Fig 20 — BERT-Large 4-TSP breakdown: FLOPs-only vs spatial-aware.
pub fn fig20() -> Vec<String> {
    let costs: Vec<LayerCost> = BertConfig::large().layer_costs();
    let slow = partition_stages(&costs, 4, OptLevel::FlopsOnly);
    let fast = partition_stages(&costs, 4, OptLevel::SpatialAware);
    let speedup = slow.beat_cycles as f64 / fast.beat_cycles as f64;
    vec![
        format!("FLOPs-only compiler:    beat {} cycles", slow.beat_cycles),
        format!("spatial-aware compiler: beat {} cycles", fast.beat_cycles),
        format!(
            "realized-throughput improvement: {:.1}% (paper: ~26%)",
            (speedup - 1.0) * 100.0
        ),
    ]
}

/// §5.6 — hierarchical all-reduce pipelined latency.
pub fn sec56() -> Vec<String> {
    vec![
        format!(
            "722 ns/hop × 3 hops = {:.0} ns ≈ 2.1 µs (256-TSP all-reduce)",
            pipelined_allreduce_latency_ns(3)
        ),
        format!(
            "per-hop model: {} cycles at 900 MHz",
            tsm::isa::timing::hop_latency_cycles()
        ),
    ]
}

/// Abstract — maximal system scale, memory, latency.
pub fn abstract_claims() -> Vec<String> {
    let topo = Topology::rack_dragonfly(145).expect("max config");
    vec![
        format!("TSPs: {} (paper: 10,440)", topo.num_tsps()),
        format!(
            "global SRAM: {:.2} TB (paper: >2 TB)",
            topo.global_memory_bytes() as f64 / 1e12
        ),
        format!(
            "pipelined end-to-end: {:.1} µs over 3 hops (paper: <3 µs)",
            pipelined_allreduce_latency_ns(3) / 1000.0
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_produces_rows() {
        assert!(fig2().len() > 10);
        assert!(table2(1000).len() == 8);
        assert!(fig7().len() > 5);
        assert!(fig10().len() > 5);
        assert_eq!(fig11().len(), 2);
        assert!(fig13(211).len() > 5);
        assert!(fig14().len() == 6);
        assert!(fig16().len() == 10);
        assert!(fig17(50).len() == 5);
        assert!(fig18().len() == 5);
        assert!(fig19().len() > 5);
        assert_eq!(fig20().len(), 3);
        assert_eq!(sec56().len(), 2);
        assert_eq!(abstract_claims().len(), 3);
    }
}
