//! Co-simulation engine throughput benchmark.
//!
//! One canonical workload — a 2-node system with 16 concurrent multi-hop
//! transfers (every TSP sources one flow to a non-adjacent TSP on the
//! other node, so each flow forwards through an intermediate chip) —
//! shared by the `cosim_throughput` criterion bench and the `repro`
//! binary's `BENCH_cosim.json` emitter, so the perf trajectory of the
//! single-pass engine is tracked by one number series from PR to PR.
//!
//! [`measure_scaling`] sweeps the same engine up the paper's deployment
//! ladder — 16, 72, 288, and 10,440 chips (§2.2's 145-rack system) —
//! timing warm serial vs parallel execution at each size and asserting
//! report bit-identity *and* trace identity at every point.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;
use tsm::core::cosim::{
    compile_plan, run_transfers, run_transfers_serial, CosimError, CosimTransfer, LinkFaultModel,
    PlanExecutor, TransferShape,
};
use tsm::fault::inject::FecStats;
use tsm::isa::Vector;
use tsm::topology::{ScaleRegime, Topology, TspId, NODES_PER_RACK};
use tsm::trace::profile::profile;
use tsm::trace::{JsonWriter, NullSink, RingSink, RunMetrics};

/// Builds the canonical benchmark workload: 16 concurrent multi-hop
/// transfers on a 2-node fully-connected system. Destinations are chosen
/// deterministically (first unused non-adjacent cross-node TSP), so the
/// workload — and therefore the measured schedule — is identical on every
/// run and every machine.
pub fn workload() -> (Topology, Vec<CosimTransfer>) {
    let topo = Topology::fully_connected_nodes(2).expect("two nodes");
    let mut taken: HashSet<TspId> = HashSet::new();
    let transfers: Vec<CosimTransfer> = (0..16u32)
        .map(|i| {
            let from = TspId(i);
            let to = topo
                .tsps()
                .find(|&t| {
                    t.node() != from.node()
                        && !taken.contains(&t)
                        && topo.links_between(from, t).is_empty()
                })
                .expect("non-adjacent cross-node peer");
            taken.insert(to);
            CosimTransfer {
                from,
                to,
                src_slice: 0,
                src_offset: (i * 32) as u16,
                dst_slice: 2,
                dst_offset: (i * 32) as u16,
                data: (0..8 + (i as usize % 4))
                    .map(|v| {
                        Vector::from_fn(|b| {
                            (b as u8) ^ (i as u8).wrapping_mul(31).wrapping_add(v as u8)
                        })
                    })
                    .collect(),
            }
        })
        .collect();
    (topo, transfers)
}

/// Derives the human-readable workload description from the actual system
/// parameters, so the string recorded in `BENCH_cosim.json` can never
/// drift from the topology and transfer count that were measured.
pub fn workload_label(topo: &Topology, transfers: usize) -> String {
    let system = match topo.regime() {
        ScaleRegime::SingleNode => "single-node".to_string(),
        ScaleRegime::TorusNode => "single-node torus".to_string(),
        ScaleRegime::FullyConnectedNodes => {
            format!("{}-node fully-connected", topo.num_nodes())
        }
        ScaleRegime::RackDragonfly => {
            format!("{}-rack dragonfly", topo.num_nodes() / NODES_PER_RACK)
        }
    };
    format!("{system}, {transfers} concurrent multi-hop transfers")
}

/// Chip counts swept by [`measure_scaling`]: the canonical 2-node system,
/// a 9-node fully-connected group, a 4-rack Dragonfly, and the paper's
/// full 145-rack deployment (§2.2: 145 × 9 × 8 = 10,440 TSPs).
pub const SCALING_CHIPS: &[usize] = &[16, 72, 288, 10_440];

/// Builds the half-stride scaling workload for `topo`: TSP `i` streams two
/// vectors to TSP `i + N/2`, so every chip is an endpoint of exactly one
/// transfer and every flow crosses nodes (the half-stride exceeds a node
/// for every swept topology). Fully deterministic, so the measured
/// schedule is identical on every run and every machine.
fn paired_workload(topo: &Topology) -> Vec<CosimTransfer> {
    let half = (topo.num_tsps() / 2) as u32;
    (0..half)
        .map(|i| CosimTransfer {
            from: TspId(i),
            to: TspId(i + half),
            src_slice: 0,
            src_offset: 0,
            dst_slice: 2,
            dst_offset: 0,
            data: (0..2u8)
                .map(|v| {
                    Vector::from_fn(|b| (b as u8) ^ (i as u8).wrapping_mul(29).wrapping_add(v))
                })
                .collect(),
        })
        .collect()
}

/// The system and workload for one point of the scaling sweep.
fn scale_system(chips: usize) -> (Topology, Vec<CosimTransfer>) {
    match chips {
        16 => workload(),
        72 => {
            let topo = Topology::fully_connected_nodes(9).expect("nine nodes");
            let transfers = paired_workload(&topo);
            (topo, transfers)
        }
        288 => {
            let topo = Topology::rack_dragonfly(4).expect("four racks");
            let transfers = paired_workload(&topo);
            (topo, transfers)
        }
        10_440 => {
            let topo = Topology::rack_dragonfly(145).expect("145 racks");
            let transfers = paired_workload(&topo);
            (topo, transfers)
        }
        other => unreachable!("no scaling workload defined for {other} chips"),
    }
}

/// One point on the engine's scaling curve.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Chips in the system (the half-stride workload touches all of them).
    pub chips: usize,
    /// Workload description derived from the measured system parameters.
    pub workload: String,
    /// Concurrent transfers in flight.
    pub transfers: usize,
    /// Instructions lowered across all chips.
    pub instructions: usize,
    /// Worker threads the parallel engine resolved to.
    pub threads: usize,
    /// Samples actually timed (the largest system is timed once: a single
    /// 10,440-chip pass already integrates over enough work that
    /// best-of-N adds minutes, not precision).
    pub samples: usize,
    /// Best-of-N warm serial execution, nanoseconds.
    pub serial_ns: u128,
    /// Best-of-N warm parallel execution, nanoseconds.
    pub parallel_ns: u128,
    /// Whether every serial and parallel report matched the reference
    /// bit for bit.
    pub bit_identical: bool,
    /// Whether the serial and parallel trace event streams were
    /// byte-identical at this scale.
    pub trace_identical: bool,
}

impl ScalePoint {
    /// Serial-over-parallel wall-time ratio.
    pub fn parallel_speedup(&self) -> f64 {
        self.serial_ns as f64 / self.parallel_ns as f64
    }

    /// Lowered instructions executed per second, serial engine.
    pub fn serial_instr_per_sec(&self) -> f64 {
        self.instructions as f64 / (self.serial_ns as f64 / 1e9)
    }

    /// Lowered instructions executed per second, parallel engine.
    pub fn parallel_instr_per_sec(&self) -> f64 {
        self.instructions as f64 / (self.parallel_ns as f64 / 1e9)
    }
}

/// Sweeps the scaling curve up to `max_chips` (pass `usize::MAX` for the
/// full 10,440-chip ladder, a smaller bound for a fast smoke pass). Each
/// point compiles its plan once, times `samples` warm serial and parallel
/// executions on the same executor, and then asserts both report
/// bit-identity and serial≡parallel trace identity at that scale.
pub fn measure_scaling(samples: usize, max_chips: usize) -> Vec<ScalePoint> {
    SCALING_CHIPS
        .iter()
        .copied()
        .filter(|&chips| chips <= max_chips)
        .map(|chips| {
            let (topo, transfers) = scale_system(chips);
            assert_eq!(topo.num_tsps(), chips, "scale table out of sync");
            let shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
            let plan = compile_plan(&topo, &shapes).expect("scaling workload compiles");
            let payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();

            let mut exec = PlanExecutor::new();
            let threads = exec.resolved_threads();
            let reference = exec
                .execute_serial(&plan, &payloads)
                .expect("serial scale run");

            let effective = if chips > 1_000 { 1 } else { samples.max(1) };
            let mut serial_ns = u128::MAX;
            let mut parallel_ns = u128::MAX;
            let mut bit_identical = true;
            for _ in 0..effective {
                let t0 = Instant::now();
                let s = exec
                    .execute_serial(&plan, &payloads)
                    .expect("serial scale run");
                serial_ns = serial_ns.min(t0.elapsed().as_nanos());
                let t1 = Instant::now();
                let p = exec.execute(&plan, &payloads).expect("parallel scale run");
                parallel_ns = parallel_ns.min(t1.elapsed().as_nanos());
                bit_identical &= s == reference && p == reference;
            }

            // Trace identity at this scale, checked once outside the timed
            // loop: both engines must record byte-identical event streams.
            let capacity = (reference.instructions * 4 + chips * 8).next_power_of_two();
            let mut traced = |parallel: bool| {
                let sink = Arc::new(RingSink::new(capacity));
                exec.set_trace_sink(sink.clone());
                let run = if parallel {
                    exec.execute(&plan, &payloads)
                } else {
                    exec.execute_serial(&plan, &payloads)
                };
                run.expect("traced scale run");
                exec.clear_trace_sink();
                assert_eq!(sink.dropped(), 0, "trace ring sized for the run");
                sink.sorted_events()
            };
            let serial_events = traced(false);
            let parallel_events = traced(true);
            let trace_identical = !serial_events.is_empty() && serial_events == parallel_events;

            ScalePoint {
                chips,
                workload: workload_label(&topo, transfers.len()),
                transfers: transfers.len(),
                instructions: reference.instructions,
                threads,
                samples: effective,
                serial_ns,
                parallel_ns,
                bit_identical,
                trace_identical,
            }
        })
        .collect()
}

/// One measured sample of the canonical workload.
#[derive(Debug, Clone)]
pub struct CosimBenchResult {
    /// Workload description, derived from the measured system by
    /// [`workload_label`] rather than hard-coded prose.
    pub workload: String,
    /// Transfers in the workload.
    pub transfers: usize,
    /// Chips that executed a program.
    pub chips: usize,
    /// Instructions lowered across all chips.
    pub instructions: usize,
    /// Best-of-N wall time for the serial engine, nanoseconds.
    pub serial_ns: u128,
    /// Best-of-N wall time for the parallel engine, nanoseconds.
    pub parallel_ns: u128,
    /// Worker threads the parallel engine resolved to (explicit knob >
    /// `TSM_THREADS` > available parallelism).
    pub threads: usize,
    /// Best-of-N wall time for a *cold* invocation, nanoseconds: one full
    /// one-shot call from the transfer descriptors — shape extraction,
    /// payload materialization, [`CompiledPlan`] compile, fresh executor,
    /// one execution. This is the work `run_transfers_serial` repeats on
    /// every call and a compile-once caller pays exactly once.
    ///
    /// [`CompiledPlan`]: tsm::core::cosim::CompiledPlan
    pub cold_ns: u128,
    /// Best-of-N *warm* per-invocation wall time: plan and executor
    /// reused, payload binding + chip passes only, nanoseconds.
    pub warm_ns: u128,
    /// Warm invocations timed per sample (the amortization window).
    pub invocations: u32,
    /// Whether the serial, parallel, and plan-reuse reports (including
    /// destination SRAM digests) were bit-identical on every sample.
    pub bit_identical: bool,
    /// Best-of-N per-invocation wall time with datapath BER injection at
    /// [`FAULT_BER`]: every delivery crosses its link's channel, flips are
    /// sampled, FEC decodes, and uncorrectable attempts are replayed with
    /// a fresh seed until they succeed. The faulty-vs-warm ratio is the
    /// runtime cost of driving real bytes through a marginal fabric.
    pub faulty_ns: u128,
    /// Faulty invocations timed per sample.
    pub fault_invocations: u32,
    /// Replays consumed by uncorrectable-aborted attempts across one
    /// sample's faulty invocations (deterministic: seeds derive from the
    /// invocation index).
    pub fault_replays: u64,
    /// FEC tally across one sample's faulty invocations, replays included.
    pub fault_stats: FecStats,
    /// Whether every recovered faulty invocation delivered destination
    /// SRAM digests bit-identical to the fault-free reference.
    pub fault_bit_identical: bool,
    /// Best-of-N warm per-invocation wall time with a [`NullSink`]
    /// attached — the numeric check behind the "zero-cost when disabled"
    /// claim of the trace layer: this should equal [`Self::warm_ns`] to
    /// within noise.
    pub trace_null_ns: u128,
    /// Best-of-N warm per-invocation wall time with a recording
    /// [`RingSink`] attached — what full event capture actually costs.
    pub trace_ring_ns: u128,
    /// Best-of-N warm per-invocation wall time with the conformance
    /// profiler fully attached: a fresh lossless `RingSink` per
    /// invocation plus the plan-vs-actual join over its events. The
    /// profiled-vs-warm ratio is what always-on conformance checking
    /// costs relative to a detached run.
    pub profiled_ns: u128,
    /// Whether every profiled invocation came back
    /// [`Conformance::Certified`] — the canonical workload is fault-free,
    /// so anything else is a conformance regression.
    ///
    /// [`Conformance::Certified`]: tsm::trace::Conformance::Certified
    pub profile_certified: bool,
    /// The last profiled invocation's bottleneck summary
    /// ([`LaunchProfile::summary_json`]): verdict, per-link utilization,
    /// critical path — embedded in `BENCH_cosim.json`.
    ///
    /// [`LaunchProfile::summary_json`]: tsm::trace::LaunchProfile::summary_json
    pub profile_summary: String,
    /// Metrics snapshot of one warm invocation of the canonical workload
    /// (instruction/delivery counters, retire-cycle histogram), recorded
    /// PR-to-PR alongside the timings.
    pub run_metrics: RunMetrics,
    /// The engine's scaling curve (empty unless [`measure_scaling`] was
    /// run and its points attached, as `repro bench-cosim` does).
    pub scaling: Vec<ScalePoint>,
}

impl CosimBenchResult {
    /// Lowered instructions executed per second, serial engine.
    pub fn serial_instr_per_sec(&self) -> f64 {
        self.instructions as f64 / (self.serial_ns as f64 / 1e9)
    }

    /// Lowered instructions executed per second, parallel engine.
    pub fn parallel_instr_per_sec(&self) -> f64 {
        self.instructions as f64 / (self.parallel_ns as f64 / 1e9)
    }

    /// Serial-over-parallel wall-time ratio on the canonical workload.
    pub fn parallel_speedup(&self) -> f64 {
        self.serial_ns as f64 / self.parallel_ns as f64
    }

    /// How much cheaper a warm invocation is than a cold one — the payoff
    /// of compile-once / execute-many.
    pub fn plan_reuse_speedup(&self) -> f64 {
        self.cold_ns as f64 / self.warm_ns as f64
    }

    /// Faulty-run overhead: per-invocation cost with BER injection and
    /// replay, relative to the fault-free warm path.
    pub fn fault_overhead(&self) -> f64 {
        self.faulty_ns as f64 / self.warm_ns as f64
    }

    /// Disabled-tracing overhead: warm invocation with a `NullSink`
    /// attached, relative to no sink at all. The trace layer's zero-cost
    /// claim is this ratio staying within measurement noise of 1.0.
    pub fn trace_null_overhead(&self) -> f64 {
        self.trace_null_ns as f64 / self.warm_ns as f64
    }

    /// Recording-tracing overhead: warm invocation with a `RingSink`
    /// capturing every event, relative to no sink.
    pub fn trace_ring_overhead(&self) -> f64 {
        self.trace_ring_ns as f64 / self.warm_ns as f64
    }

    /// Conformance-profiler overhead: warm invocation with capture *and*
    /// the plan-vs-actual join, relative to a detached warm run.
    pub fn profile_overhead(&self) -> f64 {
        self.profiled_ns as f64 / self.warm_ns as f64
    }

    /// The JSON record written to `BENCH_cosim.json`, emitted through the
    /// workspace's [`JsonWriter`] so escaping, separators, and balance are
    /// owned by one serializer instead of a hand-maintained format string.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field_str("bench", "cosim_throughput")
            .field_str("workload", &self.workload)
            .field_u64("transfers", self.transfers as u64)
            .field_u64("chips", self.chips as u64)
            .field_u64("instructions", self.instructions as u64)
            .field_u64("threads", self.threads as u64)
            .field_raw("serial_ns", &self.serial_ns.to_string())
            .field_raw("parallel_ns", &self.parallel_ns.to_string())
            .field_raw(
                "serial_instr_per_sec",
                &format!("{:.0}", self.serial_instr_per_sec()),
            )
            .field_raw(
                "parallel_instr_per_sec",
                &format!("{:.0}", self.parallel_instr_per_sec()),
            )
            .field_raw(
                "parallel_speedup",
                &format!("{:.3}", self.parallel_speedup()),
            )
            .field_raw("cold_ns", &self.cold_ns.to_string())
            .field_raw("warm_ns", &self.warm_ns.to_string())
            .field_u64("invocations", u64::from(self.invocations))
            .field_raw(
                "plan_reuse_speedup",
                &format!("{:.3}", self.plan_reuse_speedup()),
            );
        w.key("bit_identical").bool(self.bit_identical);
        w.field_raw("fault_ber", &format!("{FAULT_BER:e}"))
            .field_raw("faulty_ns", &self.faulty_ns.to_string())
            .field_u64("fault_invocations", u64::from(self.fault_invocations))
            .field_raw("fault_overhead", &format!("{:.3}", self.fault_overhead()))
            .field_u64("fault_replays", self.fault_replays)
            .field_u64("fault_corrected", self.fault_stats.corrected)
            .field_u64("fault_uncorrectable", self.fault_stats.uncorrectable);
        w.key("fault_bit_identical").bool(self.fault_bit_identical);
        w.field_raw("trace_null_ns", &self.trace_null_ns.to_string())
            .field_raw("trace_ring_ns", &self.trace_ring_ns.to_string())
            .field_raw(
                "trace_null_overhead",
                &format!("{:.3}", self.trace_null_overhead()),
            )
            .field_raw(
                "trace_ring_overhead",
                &format!("{:.3}", self.trace_ring_overhead()),
            )
            .field_raw("profiled_ns", &self.profiled_ns.to_string())
            .field_raw(
                "profile_overhead",
                &format!("{:.3}", self.profile_overhead()),
            );
        w.key("profile_certified").bool(self.profile_certified);
        w.key("scaling").begin_array();
        for p in &self.scaling {
            w.begin_object()
                .field_u64("chips", p.chips as u64)
                .field_str("workload", &p.workload)
                .field_u64("transfers", p.transfers as u64)
                .field_u64("instructions", p.instructions as u64)
                .field_u64("threads", p.threads as u64)
                .field_u64("samples", p.samples as u64)
                .field_raw("serial_ns", &p.serial_ns.to_string())
                .field_raw("parallel_ns", &p.parallel_ns.to_string())
                .field_raw("parallel_speedup", &format!("{:.3}", p.parallel_speedup()))
                .field_raw(
                    "serial_instr_per_sec",
                    &format!("{:.0}", p.serial_instr_per_sec()),
                )
                .field_raw(
                    "parallel_instr_per_sec",
                    &format!("{:.0}", p.parallel_instr_per_sec()),
                );
            w.key("bit_identical").bool(p.bit_identical);
            w.key("trace_identical").bool(p.trace_identical);
            w.end_object();
        }
        w.end_array();
        w.field_raw("profile", &indent_block(&self.profile_summary, 2))
            .field_raw("metrics", &indent_block(&self.run_metrics.to_json(), 2));
        w.end_object();
        let mut out = w.finish();
        out.push('\n');
        out
    }
}

/// Re-indents every line after the first by `n` extra spaces, so a
/// pretty-printed sub-object nests readably inside the bench record.
pub(crate) fn indent_block(s: &str, n: usize) -> String {
    let pad = " ".repeat(n);
    let mut out = String::with_capacity(s.len());
    for (i, line) in s.lines().enumerate() {
        if i > 0 {
            out.push('\n');
            out.push_str(&pad);
        }
        out.push_str(line);
    }
    out
}

/// Warm invocations timed per sample when measuring plan reuse.
pub const WARM_INVOCATIONS: u32 = 100;

/// Faulty invocations timed per sample when measuring BER overhead.
pub const FAULT_INVOCATIONS: u32 = 50;

/// Uniform BER for the faulty-run measurement: ~0.026 expected flips per
/// 2560-bit packet, so single-bit corrections are routine and the
/// occasional double flip exercises the uncorrectable replay path.
pub const FAULT_BER: f64 = 1e-5;

/// Replay budget backstop for the faulty measurement (a runaway here
/// would mean the BER maths are off by orders of magnitude).
const FAULT_REPLAY_CAP: u64 = 64;

/// Runs the canonical workload `samples` times through both one-shot
/// engines and the compile-once / execute-many pipeline, returning
/// best-of-N timings plus the bit-identity verdict.
pub fn measure(samples: usize) -> CosimBenchResult {
    let (topo, transfers) = workload();
    let reference = run_transfers_serial(&topo, &transfers).expect("workload schedules cleanly");
    // Pre-materialized payload handles for the warm loop: a compile-once
    // caller materializes these once and re-binds them by Arc clone.
    let payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();
    let mut serial_ns = u128::MAX;
    let mut parallel_ns = u128::MAX;
    let mut cold_ns = u128::MAX;
    let mut warm_ns = u128::MAX;
    let mut faulty_ns = u128::MAX;
    let mut trace_null_ns = u128::MAX;
    let mut trace_ring_ns = u128::MAX;
    let mut profiled_ns = u128::MAX;
    let mut profile_certified = true;
    let mut profile_summary = String::new();
    let mut run_metrics = RunMetrics::default();
    let mut bit_identical = true;
    let mut fault_replays = 0u64;
    let mut fault_stats = FecStats::default();
    let mut fault_bit_identical = true;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        let s = run_transfers_serial(&topo, &transfers).expect("serial run");
        serial_ns = serial_ns.min(t0.elapsed().as_nanos());
        let t1 = Instant::now();
        let p = run_transfers(&topo, &transfers).expect("parallel run");
        parallel_ns = parallel_ns.min(t1.elapsed().as_nanos());
        bit_identical &= s == reference && p == reference;

        // Cold: one full one-shot invocation from the transfer
        // descriptors — shape extraction, payload materialization, plan
        // compile, fresh executor, one execution. Exactly the work
        // `run_transfers_serial` repeats on every call. Serial executor on
        // both sides so the comparison is free of thread-pool noise.
        let t2 = Instant::now();
        let cold_shapes: Vec<TransferShape> = transfers.iter().map(TransferShape::from).collect();
        let cold_payloads: Vec<_> = transfers.iter().map(CosimTransfer::payload).collect();
        let plan = compile_plan(&topo, &cold_shapes).expect("plan compiles");
        let mut executor = PlanExecutor::new();
        let first = executor
            .execute_serial(&plan, &cold_payloads)
            .expect("cold execute");
        cold_ns = cold_ns.min(t2.elapsed().as_nanos());
        bit_identical &= first == reference;

        // Warm: the same plan and executor serve WARM_INVOCATIONS more
        // payload bindings; per-invocation cost is the amortized number.
        let t3 = Instant::now();
        for _ in 0..WARM_INVOCATIONS {
            executor
                .execute_serial(&plan, &payloads)
                .expect("warm execute");
        }
        warm_ns = warm_ns.min(t3.elapsed().as_nanos() / u128::from(WARM_INVOCATIONS));
        let verify = executor.execute_serial(&plan, &payloads).expect("verify");
        bit_identical &= verify == reference;
        run_metrics = verify.metrics;

        // Trace overhead, same warm loop: first with a NullSink attached
        // (the zero-cost-when-disabled claim, measured), then with a
        // RingSink recording every event (the cost of full capture).
        executor.set_trace_sink(Arc::new(NullSink));
        let t5 = Instant::now();
        for _ in 0..WARM_INVOCATIONS {
            executor
                .execute_serial(&plan, &payloads)
                .expect("null-sink execute");
        }
        trace_null_ns = trace_null_ns.min(t5.elapsed().as_nanos() / u128::from(WARM_INVOCATIONS));
        executor.set_trace_sink(Arc::new(RingSink::new(1 << 14)));
        let t6 = Instant::now();
        for _ in 0..WARM_INVOCATIONS {
            executor
                .execute_serial(&plan, &payloads)
                .expect("ring-sink execute");
        }
        trace_ring_ns = trace_ring_ns.min(t6.elapsed().as_nanos() / u128::from(WARM_INVOCATIONS));
        executor.clear_trace_sink();

        // Profiler overhead, same warm loop: a fresh lossless RingSink per
        // invocation plus the full plan-vs-actual conformance join over
        // its events. The planned timeline is a compile-time artifact —
        // derived once with the plan, outside the per-invocation cost.
        let planned = plan.planned_timeline(&topo);
        let t7 = Instant::now();
        for _ in 0..WARM_INVOCATIONS {
            let sink = Arc::new(RingSink::new(1 << 14));
            executor.set_trace_sink(sink.clone());
            executor
                .execute_serial(&plan, &payloads)
                .expect("profiled execute");
            let prof = profile(&planned, &sink.sorted_events(), sink.dropped())
                .expect("lossless ring profiles");
            profile_certified &= prof.certified();
            profile_summary = prof.summary_json();
        }
        profiled_ns = profiled_ns.min(t7.elapsed().as_nanos() / u128::from(WARM_INVOCATIONS));
        executor.clear_trace_sink();

        // Faulty: the same plan and payloads with every delivery crossing
        // its link's BER channel. Uncorrectable attempts replay with a
        // fresh derived seed, mirroring the runtime's recovery loop; the
        // per-invocation time therefore includes replay cost. Seeds derive
        // from the invocation index, so the flip pattern — and the tally —
        // is identical on every sample and every machine.
        let t4 = Instant::now();
        let mut replays = 0u64;
        let mut stats = FecStats::default();
        for inv in 0..FAULT_INVOCATIONS {
            let mut attempt = 0u64;
            loop {
                let faults = LinkFaultModel::uniform(FAULT_BER, (u64::from(inv) << 16) | attempt);
                match executor.execute_with_faults_serial(&plan, &payloads, &faults) {
                    Ok(rep) => {
                        stats = stats.merge(&rep.fec());
                        fault_bit_identical &= rep.dst_digests == reference.dst_digests;
                        break;
                    }
                    Err(CosimError::Uncorrectable { fec, .. }) => {
                        stats = stats.merge(&fec);
                        replays += 1;
                        attempt += 1;
                        assert!(attempt < FAULT_REPLAY_CAP, "fault replay runaway");
                    }
                    Err(e) => panic!("faulty execute: {e}"),
                }
            }
        }
        faulty_ns = faulty_ns.min(t4.elapsed().as_nanos() / u128::from(FAULT_INVOCATIONS));
        // Deterministic seeds make every sample's tally identical; keep
        // one sample's worth rather than scaling with the sample count.
        fault_replays = replays;
        fault_stats = stats;
    }
    CosimBenchResult {
        workload: workload_label(&topo, transfers.len()),
        transfers: transfers.len(),
        chips: reference.retire_cycles.len(),
        instructions: reference.instructions,
        serial_ns,
        parallel_ns,
        threads: PlanExecutor::new().resolved_threads(),
        cold_ns,
        warm_ns,
        invocations: WARM_INVOCATIONS,
        bit_identical,
        faulty_ns,
        fault_invocations: FAULT_INVOCATIONS,
        fault_replays,
        fault_stats,
        fault_bit_identical,
        trace_null_ns,
        trace_ring_ns,
        profiled_ns,
        profile_certified,
        profile_summary,
        run_metrics,
        scaling: Vec::new(),
    }
}

/// Printable report lines for the `repro` binary and the criterion bench.
pub fn lines() -> Vec<String> {
    lines_for(&measure(5))
}

/// Formats an already-measured sample.
pub fn lines_for(r: &CosimBenchResult) -> Vec<String> {
    let mut out = vec![
        format!("workload: {}", r.workload),
        format!(
            "{} transfers over {} chips, {} instructions lowered",
            r.transfers, r.chips, r.instructions
        ),
        format!(
            "serial:   {:>10} ns  ({:>12.0} instr/s)",
            r.serial_ns,
            r.serial_instr_per_sec()
        ),
        format!(
            "parallel: {:>10} ns  ({:>12.0} instr/s, {:.2}x on {} threads)",
            r.parallel_ns,
            r.parallel_instr_per_sec(),
            r.parallel_speedup(),
            r.threads
        ),
        format!(
            "cold (one-shot: bind + compile plan + execute): {:>10} ns",
            r.cold_ns
        ),
        format!(
            "warm (execute only, {}x):      {:>10} ns/invocation  ({:.2}x cheaper)",
            r.invocations,
            r.warm_ns,
            r.plan_reuse_speedup()
        ),
        format!(
            "serial == parallel == plan-reuse (bit-identical): {}",
            r.bit_identical
        ),
        format!(
            "faulty (BER {:e}, {}x): {:>10} ns/invocation  ({:.2}x warm; {} corrected, {} uncorrectable, {} replays)",
            FAULT_BER,
            r.fault_invocations,
            r.faulty_ns,
            r.fault_overhead(),
            r.fault_stats.corrected,
            r.fault_stats.uncorrectable,
            r.fault_replays,
        ),
        format!(
            "faulty recoveries == fault-free digests (bit-identical): {}",
            r.fault_bit_identical
        ),
        format!(
            "trace disabled (NullSink): {:>10} ns/invocation  ({:.3}x warm — the zero-cost claim)",
            r.trace_null_ns,
            r.trace_null_overhead()
        ),
        format!(
            "trace recording (RingSink): {:>9} ns/invocation  ({:.3}x warm)",
            r.trace_ring_ns,
            r.trace_ring_overhead()
        ),
        format!(
            "profiler attached (capture + conformance join): {:>9} ns/invocation  ({:.3}x warm; every invocation {})",
            r.profiled_ns,
            r.profile_overhead(),
            if r.profile_certified {
                "CERTIFIED"
            } else {
                "DEVIANT — conformance regression"
            }
        ),
    ];
    out.extend(scaling_lines(&r.scaling));
    out
}

/// Formats the scaling curve, one line per swept system size. Empty input
/// (a result without an attached sweep) formats to nothing.
pub fn scaling_lines(points: &[ScalePoint]) -> Vec<String> {
    if points.is_empty() {
        return Vec::new();
    }
    let mut out = vec!["scaling curve (warm plan, best-of-N per point):".to_string()];
    for p in points {
        out.push(format!(
            "  {:>6} chips ({}): serial {:>13} ns, parallel {:>13} ns — {:.2}x on {} threads, {:>12.0} instr/s, bit_identical={} trace_identical={}",
            p.chips,
            p.workload,
            p.serial_ns,
            p.parallel_ns,
            p.parallel_speedup(),
            p.threads,
            p.parallel_instr_per_sec(),
            p.bit_identical,
            p.trace_identical
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_workload_is_multi_hop_and_deterministic() {
        let (topo, transfers) = workload();
        assert_eq!(transfers.len(), 16);
        for tr in &transfers {
            // every flow must forward through at least one intermediate chip
            assert!(topo.links_between(tr.from, tr.to).is_empty());
        }
        let (_, again) = workload();
        for (a, b) in transfers.iter().zip(again.iter()) {
            assert_eq!((a.from, a.to, &a.data), (b.from, b.to, &b.data));
        }
    }

    #[test]
    fn workload_label_is_derived_from_system_parameters() {
        let (topo, transfers) = workload();
        // The derived label reproduces the exact string the bench record
        // carried when it was hard-coded prose.
        assert_eq!(
            workload_label(&topo, transfers.len()),
            "2-node fully-connected, 16 concurrent multi-hop transfers"
        );
        let rack = Topology::rack_dragonfly(4).expect("four racks");
        assert_eq!(
            workload_label(&rack, 144),
            "4-rack dragonfly, 144 concurrent multi-hop transfers"
        );
    }

    #[test]
    fn scaling_workloads_pair_every_chip_across_nodes() {
        for &chips in SCALING_CHIPS.iter().filter(|&&c| c <= 288) {
            let (topo, transfers) = scale_system(chips);
            assert_eq!(topo.num_tsps(), chips);
            let mut endpoints: Vec<TspId> = Vec::new();
            for tr in &transfers {
                assert_ne!(tr.from.node(), tr.to.node(), "flow must cross nodes");
                endpoints.push(tr.from);
                endpoints.push(tr.to);
            }
            endpoints.sort_unstable();
            endpoints.dedup();
            assert_eq!(endpoints.len(), chips, "every chip is an endpoint once");
        }
    }

    #[test]
    fn scaling_smoke_points_are_identical_across_engines() {
        let points = measure_scaling(1, 100);
        assert_eq!(points.len(), 2, "smoke bound covers 16 and 72 chips");
        assert_eq!(points[0].chips, 16);
        assert_eq!(points[1].chips, 72);
        for p in &points {
            assert!(p.bit_identical, "{} chips: reports diverged", p.chips);
            assert!(p.trace_identical, "{} chips: traces diverged", p.chips);
            assert!(p.instructions > 0);
            assert!(p.serial_ns > 0 && p.parallel_ns > 0);
            assert!(p.threads >= 1);
        }
    }

    #[test]
    fn measure_reports_bit_identical_engines() {
        let r = measure(1);
        assert!(r.bit_identical);
        assert!(r.instructions > 0);
        assert!(r.to_json().contains(
            "\"workload\": \"2-node fully-connected, 16 concurrent multi-hop transfers\""
        ));
        assert!(r.to_json().contains("\"threads\""));
        assert!(r.to_json().contains("\"scaling\": []"));
        assert!(r.to_json().contains("\"bit_identical\": true"));
        assert!(r.to_json().contains("\"cold_ns\""));
        assert!(r.to_json().contains("\"warm_ns\""));
        assert!(r.to_json().contains("\"fault_replays\""));
        assert!(r.to_json().contains("\"fault_bit_identical\": true"));
        assert!(r.to_json().contains("\"trace_null_ns\""));
        assert!(r.to_json().contains("\"trace_ring_overhead\""));
        assert!(r.to_json().contains("\"cosim.instructions\""));
        // The canonical fault-free workload certifies on every profiled
        // invocation, and its bottleneck summary rides into the record.
        assert!(r.profile_certified);
        assert!(r.to_json().contains("\"profile_overhead\""));
        assert!(r.to_json().contains("\"verdict\": \"certified\""));
        assert!(r.to_json().contains("\"critical_path\""));
        assert!(r.to_json().contains("\"top_links\""));
        assert!(r.profiled_ns > 0);
        assert!(r.cold_ns > 0 && r.warm_ns > 0);
        assert!(r.trace_null_ns > 0 && r.trace_ring_ns > 0);
        // The metrics snapshot describes the canonical workload.
        assert_eq!(
            r.run_metrics.counter("cosim.instructions"),
            r.instructions as u64
        );
        // Loose sanity bound only — single-sample CI timings are noisy;
        // the enforced number is the one `repro bench-cosim` records into
        // BENCH_cosim.json from a best-of-N run.
        assert!(
            r.trace_null_overhead() < 1.5,
            "NullSink overhead {:.3}x is far beyond noise",
            r.trace_null_overhead()
        );
        // corruption must actually have been exercised and repaired
        assert!(r.fault_stats.corrected > 0);
        assert!(r.fault_bit_identical);
        assert!(r.faulty_ns > 0);
        // reusing the plan must never cost more than compiling it anew
        assert!(
            r.warm_ns <= r.cold_ns,
            "warm {} > cold {}",
            r.warm_ns,
            r.cold_ns
        );
    }
}
