//! Prints the regenerated data for every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p tsm-bench --bin repro            # everything
//! cargo run --release -p tsm-bench --bin repro fig16 fig17
//! ```

use tsm_bench::{attribution_bench, cosim_bench, figures, residency_bench, serving_bench};

/// Measures the canonical co-simulation workload plus the full scaling
/// curve (16 → 72 → 288 → 10,440 chips) and records the sample in
/// `BENCH_cosim.json` (current directory), the file tracked PR-to-PR for
/// the engine's perf trajectory.
fn emit_bench_cosim() -> Vec<String> {
    let mut result = cosim_bench::measure(5);
    result.scaling = cosim_bench::measure_scaling(3, usize::MAX);
    let mut out = cosim_bench::lines_for(&result);
    match std::fs::write("BENCH_cosim.json", result.to_json()) {
        Ok(()) => out.push("wrote BENCH_cosim.json".to_string()),
        Err(e) => out.push(format!("could not write BENCH_cosim.json: {e}")),
    }
    out
}

/// Fast bench smoke for CI (`scripts/tier1.sh`): one sample of the
/// canonical workload plus the small end of the scaling curve, with the
/// same bit-identity and trace-identity assertions as the full sweep.
/// Writes nothing, so a smoke pass can never clobber the tracked record.
fn smoke_bench_cosim() -> Vec<String> {
    let mut result = cosim_bench::measure(1);
    result.scaling = cosim_bench::measure_scaling(1, 100);
    assert!(result.bit_identical, "engines diverged on smoke workload");
    for p in &result.scaling {
        assert!(p.bit_identical, "{} chips: reports diverged", p.chips);
        assert!(p.trace_identical, "{} chips: traces diverged", p.chips);
    }
    let mut out = cosim_bench::lines_for(&result);
    out.push("smoke OK (no files written)".to_string());
    out
}

/// Full serving sweep over BERT-Large: offered load × batch window with
/// certification on every launch, spliced into the `serving` block of
/// `BENCH_cosim.json` without touching the cosim fields.
fn emit_serve() -> Vec<String> {
    let result = serving_bench::measure_serving(24, 120, 7);
    assert!(
        result.reproducible,
        "serving sweep must reproduce from its seed"
    );
    let mut out = serving_bench::lines_for(&result);
    let existing = std::fs::read_to_string("BENCH_cosim.json").unwrap_or_else(|_| "{}\n".into());
    let spliced = serving_bench::splice_serving(&existing, &result.to_json());
    match std::fs::write("BENCH_cosim.json", spliced) {
        Ok(()) => out.push("spliced serving block into BENCH_cosim.json".to_string()),
        Err(e) => out.push(format!("could not write BENCH_cosim.json: {e}")),
    }
    // The serve sweep also refreshes the windowed-telemetry record (SLO
    // series per tenant plus link/chip heatmaps) and the attribution
    // record (per-stage latency breakdown plus flight-recorder capture).
    out.push(String::new());
    out.extend(emit_telemetry());
    out.push(String::new());
    out.extend(emit_attribution());
    out
}

/// Fast serving smoke for CI (`scripts/tier1.sh`): a 4-encoder model over
/// a short horizon with the same certification, backpressure, fairness,
/// and bit-reproducibility assertions as the full sweep, plus a
/// multi-model alternation that must hit the plan-residency cache.
/// Writes nothing.
fn smoke_serve() -> Vec<String> {
    let result = serving_bench::measure_serving(4, 12, 9);
    assert!(
        result.sweep.iter().all(|p| p.all_certified) && result.burst_certified,
        "every serving launch must certify"
    );
    assert!(
        result.overload.shed > 0,
        "overload must exercise backpressure"
    );
    assert!(
        result.reproducible,
        "serving sweep must reproduce from its seed"
    );
    let mut out = serving_bench::lines_for(&result);
    out.push(residency_smoke_line());
    out.push("smoke OK (no files written)".to_string());
    out
}

/// Full telemetry bench: a two-tenant serve run with windowed sampling
/// on, per-tenant SLO series, link/chip heatmaps, and the sampler's
/// measured overhead; spliced into the `telemetry` block of
/// `BENCH_cosim.json`.
fn emit_telemetry() -> Vec<String> {
    let result = serving_bench::measure_telemetry(8, 24, 7);
    assert!(
        result.reproducible,
        "telemetry must reproduce byte-for-byte from its seed"
    );
    assert!(
        result.off_identical,
        "sampling off must be bit-identical to sampling on minus telemetry"
    );
    let mut out = serving_bench::telemetry_lines(&result);
    let existing = std::fs::read_to_string("BENCH_cosim.json").unwrap_or_else(|_| "{}\n".into());
    let spliced = serving_bench::splice_telemetry(&existing, &result.to_json());
    match std::fs::write("BENCH_cosim.json", spliced) {
        Ok(()) => out.push("spliced telemetry block into BENCH_cosim.json".to_string()),
        Err(e) => out.push(format!("could not write BENCH_cosim.json: {e}")),
    }
    out
}

/// Fast telemetry smoke for CI (`scripts/tier1.sh`): asserts windowed
/// sampling is bit-reproducible from its seed and that sampling off is
/// bit-identical to the pre-feature behaviour, with link/chip heatmaps
/// and per-tenant SLO series present. Writes nothing.
fn smoke_telemetry() -> Vec<String> {
    let result = serving_bench::measure_telemetry(4, 8, 9);
    assert!(
        result.reproducible,
        "telemetry must reproduce byte-for-byte from its seed"
    );
    assert!(
        result.off_identical,
        "sampling off must be bit-identical to sampling on minus telemetry"
    );
    assert!(
        result.link_labels > 0 && result.chip_labels > 0,
        "serve heatmaps must cover links and chips"
    );
    assert!(
        !result.tenants.is_empty(),
        "per-tenant SLO series must be present"
    );
    let mut out = serving_bench::telemetry_lines(&result);
    out.push("smoke OK (no files written)".to_string());
    out
}

/// Full attribution bench: a fault-injected serve run with causal
/// latency breakdowns on every request and the flight recorder armed;
/// spliced into the `attribution` block of `BENCH_cosim.json`.
fn emit_attribution() -> Vec<String> {
    let result = attribution_bench::measure_attribution(8, 20, 7);
    assert!(
        result.sums_exact,
        "every breakdown must sum exactly to its latency"
    );
    assert!(
        result.reproducible,
        "attribution must reproduce byte-for-byte from its seed"
    );
    let mut out = attribution_bench::attribution_lines(&result);
    let existing = std::fs::read_to_string("BENCH_cosim.json").unwrap_or_else(|_| "{}\n".into());
    let spliced = serving_bench::splice_block(&existing, "attribution", &result.to_json());
    match std::fs::write("BENCH_cosim.json", spliced) {
        Ok(()) => out.push("spliced attribution block into BENCH_cosim.json".to_string()),
        Err(e) => out.push(format!("could not write BENCH_cosim.json: {e}")),
    }
    out
}

/// Fast attribution smoke for CI (`scripts/tier1.sh`): a fault-injected
/// serve over a small model, asserting the sums-to-total identity on
/// every request, byte-reproducible incident capture, and the off-is-off
/// identity for both features. Writes nothing.
fn smoke_attribution() -> Vec<String> {
    let result = attribution_bench::measure_attribution(4, 10, 9);
    assert!(
        result.sums_exact,
        "every breakdown must sum exactly to its latency"
    );
    assert!(
        result.replayed_requests > 0,
        "the fault search must surface replay cycles"
    );
    assert!(
        result.incident_kinds.iter().any(|(k, _)| k == "fault"),
        "replaying batches must fire fault incidents"
    );
    assert!(
        result.reproducible,
        "breakdowns and incidents must reproduce byte-for-byte"
    );
    assert!(
        result.off_identical,
        "attribution and the recorder off must be bit-identical"
    );
    let mut out = attribution_bench::attribution_lines(&result);
    out.push("smoke OK (no files written)".to_string());
    out
}

/// Renders every incident the fault-injected serve captured — the
/// flight recorder's bounded deviant/fault/shed/expiry/SLO snapshots —
/// in firing order. Writes nothing.
fn emit_incidents() -> Vec<String> {
    let result = attribution_bench::measure_attribution(4, 12, 9);
    assert!(
        !result.incidents.is_empty(),
        "the hostile serve must capture at least one incident"
    );
    assert!(
        result.reproducible,
        "incidents must reproduce byte-for-byte from their seed"
    );
    let mut out = attribution_bench::incident_lines(&result);
    out.push(String::new());
    out.push("no files written".to_string());
    out
}

/// Two statistical-mode models alternating through one server: the
/// revisits must come out of the plan-residency cache, not recompile.
fn residency_smoke_line() -> String {
    use tsm::compiler::graph::{Graph, OpKind};
    use tsm::core::runtime::{Runtime, SparePolicy};
    use tsm::core::serving::{Request, ServeConfig, Server};
    use tsm::core::system::System;
    use tsm::topology::TspId;
    use tsm::trace::names;

    let model = |cycles: u64| {
        move |batch: u32| {
            let mut g = Graph::new();
            g.add(
                TspId(0),
                OpKind::Compute {
                    cycles: cycles * u64::from(batch),
                },
                vec![],
            )
            .unwrap();
            g
        }
    };
    let rt = Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem);
    let mut server = Server::new(
        rt,
        ServeConfig {
            max_batch: 1,
            queue_capacity: usize::MAX,
            ..ServeConfig::default()
        },
    );
    server.add_model(model(1_000));
    server.add_model(model(2_000));
    let offered: Vec<Request> = (0..6)
        .map(|i| Request {
            at: i * 100_000,
            tenant: 0,
            model: (i % 2) as u32,
            priority: 0,
            deadline_slack: 1 << 40,
        })
        .collect();
    let report = server.serve(&offered).expect("multi-model smoke");
    let hits = report.metrics.counter(names::RES_HITS);
    assert!(
        hits >= 1,
        "alternating models must hit the residency cache (got {hits} hits)"
    );
    format!(
        "multi-model residency: 2 models x 3 rounds -> {hits} cache hits, {} misses",
        report.metrics.counter(names::RES_MISSES)
    )
}

/// Full residency bench: 3 BERT models round-robin under warm, thrash,
/// and single-entry plan budgets, plus the warm-start tier round trip;
/// spliced into the `residency` block of `BENCH_cosim.json`.
fn emit_residency() -> Vec<String> {
    let result = residency_bench::measure_residency(3, 8, 11);
    assert!(
        result.warm.hit_rate >= result.expected_warm_hit_rate,
        "warm budget must reach the (N-K)/N hit rate"
    );
    assert!(
        result.reproducible,
        "residency bench must reproduce from its seed"
    );
    let mut out = residency_bench::lines_for(&result);
    let existing = std::fs::read_to_string("BENCH_cosim.json").unwrap_or_else(|_| "{}\n".into());
    let spliced = serving_bench::splice_block(&existing, "residency", &result.to_json());
    match std::fs::write("BENCH_cosim.json", spliced) {
        Ok(()) => out.push("spliced residency block into BENCH_cosim.json".to_string()),
        Err(e) => out.push(format!("could not write BENCH_cosim.json: {e}")),
    }
    out
}

/// Fast residency smoke for CI (`scripts/tier1.sh`): 2 models × 3 rounds
/// with the same hit-rate, thrash, warm-tier, and reproducibility
/// assertions as the full bench, minus the wall-clock claims. Writes
/// nothing.
fn smoke_residency() -> Vec<String> {
    let result = residency_bench::measure_residency(2, 3, 11);
    assert!(
        (result.warm.hit_rate - result.expected_warm_hit_rate).abs() < 1e-9,
        "warm budget must hit exactly (N-K)/N"
    );
    assert_eq!(
        result.thrash.hits, 0,
        "thrash budget must evict every round"
    );
    assert_eq!(result.single.hits, 0, "single-entry budget must recompile");
    assert_eq!(
        result.warm_starts, result.models as u64,
        "every model must warm-start from the imported tier"
    );
    assert!(
        result.warm_tier_identical,
        "warm starts must be bit-identical"
    );
    assert!(
        result.reproducible,
        "residency bench must reproduce from its seed"
    );
    let mut out = residency_bench::lines_for(&result);
    out.push("smoke OK (no files written)".to_string());
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    // Smoke sections are CI-only subsets of their full runs; they only
    // fire when named explicitly.
    let want = |name: &str| args.iter().any(|a| a == name) || (all && !name.ends_with("-smoke"));

    type Section<'a> = (&'a str, &'a str, Box<dyn Fn() -> Vec<String>>);
    let sections: Vec<Section> = vec![
        (
            "abstract",
            "Abstract claims",
            Box::new(figures::abstract_claims),
        ),
        (
            "fig2",
            "Fig 2 — global bandwidth profile per TSP",
            Box::new(figures::fig2),
        ),
        (
            "table2",
            "Table 2 — HAC link-latency characterization (100K iters)",
            Box::new(|| figures::table2(100_000)),
        ),
        (
            "fig7",
            "Fig 7 — HAC alignment convergence",
            Box::new(figures::fig7),
        ),
        (
            "fig9",
            "Fig 9 — push vs pull communication model",
            Box::new(figures::fig9),
        ),
        (
            "fig10",
            "Fig 10 — non-minimal routing benefit",
            Box::new(figures::fig10),
        ),
        (
            "fig11",
            "Fig 11 — wire-format efficiency",
            Box::new(figures::fig11),
        ),
        (
            "fig13",
            "Fig 13 — GEMM utilization, TSP vs A100",
            Box::new(|| figures::fig13(59)),
        ),
        (
            "fig14",
            "Fig 14 — distributed matmul scaling",
            Box::new(figures::fig14),
        ),
        (
            "fig15",
            "Fig 15 — cluster GEMM TFLOPs",
            Box::new(figures::fig15),
        ),
        (
            "fig16",
            "Fig 16 — 8-way all-reduce bandwidth",
            Box::new(figures::fig16),
        ),
        (
            "fig17",
            "Fig 17 — BERT-Large latency distribution (24,240 runs)",
            Box::new(|| figures::fig17(24_240)),
        ),
        (
            "fig18",
            "Fig 18 — BERT encoder scaling",
            Box::new(figures::fig18),
        ),
        (
            "fig19",
            "Fig 19 — Cholesky factorization",
            Box::new(figures::fig19),
        ),
        (
            "fig20",
            "Fig 20 — compiler optimization breakdown",
            Box::new(figures::fig20),
        ),
        (
            "sec56",
            "§5.6 — all-reduce pipelined latency",
            Box::new(figures::sec56),
        ),
        (
            "ablate-local-group",
            "Ablation — mesh vs torus local group",
            Box::new(tsm_bench::ablations::local_group),
        ),
        (
            "ablate-spreading",
            "Ablation — minimal vs spread routing",
            Box::new(tsm_bench::ablations::spreading),
        ),
        (
            "ablate-determinism",
            "Ablation — SSN vs dynamic routing",
            Box::new(tsm_bench::ablations::routing_determinism),
        ),
        (
            "ablate-fec",
            "Ablation — FEC vs link-layer retry",
            Box::new(tsm_bench::ablations::fec_vs_retry),
        ),
        (
            "ext-training",
            "Extension — data-parallel training weak scaling",
            Box::new(figures::ext_training),
        ),
        (
            "ext-lstm",
            "Extension — LSTM batch-1 regime",
            Box::new(figures::ext_lstm),
        ),
        (
            "bench-cosim",
            "Bench — co-simulation engine throughput + scaling curve (writes BENCH_cosim.json)",
            Box::new(emit_bench_cosim),
        ),
        (
            "bench-cosim-smoke",
            "Bench — fast co-simulation smoke (identity asserts, no files)",
            Box::new(smoke_bench_cosim),
        ),
        (
            "profile",
            "Profile — plan-vs-actual conformance of a datapath launch (writes trace_profile.trace.json)",
            Box::new(tsm_bench::profile_cli::lines),
        ),
        (
            "serve",
            "Serve — BERT tail latency vs offered load × batch window (updates the serving block of BENCH_cosim.json)",
            Box::new(emit_serve),
        ),
        (
            "serve-smoke",
            "Serve — fast serving smoke (certification + reproducibility asserts, no files)",
            Box::new(smoke_serve),
        ),
        (
            "telemetry",
            "Telemetry — windowed SLO series + utilization heatmaps (updates the telemetry block of BENCH_cosim.json)",
            Box::new(emit_telemetry),
        ),
        (
            "telemetry-smoke",
            "Telemetry — fast sampling smoke (bit-reproducibility + off-identity asserts, no files)",
            Box::new(smoke_telemetry),
        ),
        (
            "attribution",
            "Attribution — causal latency breakdown + flight recorder (updates the attribution block of BENCH_cosim.json)",
            Box::new(emit_attribution),
        ),
        (
            "attribution-smoke",
            "Attribution — fast sums-to-total + incident-reproducibility smoke (no files)",
            Box::new(smoke_attribution),
        ),
        (
            "incidents",
            "Incidents — render the flight recorder's captured incident reports (no files)",
            Box::new(emit_incidents),
        ),
        (
            "residency",
            "Residency — multi-model plan-cache thrash + warm-start tier (updates the residency block of BENCH_cosim.json)",
            Box::new(emit_residency),
        ),
        (
            "residency-smoke",
            "Residency — fast cache-thrash smoke (hit-rate + warm-tier asserts, no files)",
            Box::new(smoke_residency),
        ),
    ];

    let mut matched = false;
    for (key, title, f) in &sections {
        if want(key) {
            matched = true;
            println!("== {title} ==");
            for line in f() {
                println!("{line}");
            }
            println!();
        }
    }
    if !matched {
        eprintln!("unknown figure id; known ids:");
        for (key, title, _) in &sections {
            eprintln!("  {key:<9} {title}");
        }
        std::process::exit(1);
    }
}
