//! The `repro profile` section: plan-vs-actual conformance profiling.
//!
//! Launches the demo pipeline twice on a 4-node datapath runtime — once
//! on a healthy fabric, once with a marginal node that forces a replay —
//! and joins each launch's trace against the compiled plan's delivery
//! schedule. The clean launch must come back CERTIFIED (every delivery on
//! its planned cycle, skew zero); the replayed launch comes back DEVIANT
//! with every re-delivered vector itemized one epoch window late. The
//! clean launch's planned-vs-observed overlay is written to
//! `trace_profile.trace.json` (two tracks per link) for Perfetto.

use std::sync::Arc;
use tsm::compiler::graph::{Graph, OpKind};
use tsm::core::{ExecMode, Runtime, SparePolicy, System};
use tsm::topology::{LinkId, NodeId, TspId};
use tsm::trace::profile::profile;
use tsm::trace::{chrome_trace_json_overlay, LaunchProfile, RingSink};

/// The demo workload: compute on TSP 0, a cross-node transfer, compute on
/// the far chip — the same pipeline `examples/trace_demo.rs` renders.
fn pipeline() -> Graph {
    let mut g = Graph::new();
    let a = g
        .add(TspId(0), OpKind::Compute { cycles: 10_000 }, vec![])
        .unwrap();
    let t = g
        .add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(15),
                bytes: 32_000,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .unwrap();
    g.add(TspId(15), OpKind::Compute { cycles: 1_000 }, vec![t])
        .unwrap();
    g
}

fn datapath_runtime() -> Runtime {
    Runtime::new(System::with_nodes(4).unwrap(), SparePolicy::PerSystem)
        .with_exec_mode(ExecMode::Datapath)
}

/// Launches `rt` and profiles the trace against the compiled plan.
/// Returns the profile (or the profiler's refusal, rendered) plus the raw
/// events for the overlay export.
fn launch_and_profile(
    mut rt: Runtime,
    seed: u64,
    out: &mut Vec<String>,
) -> Option<(
    LaunchProfile,
    Vec<tsm::trace::TraceEvent>,
    tsm::trace::PlannedTimeline,
)> {
    let sink = Arc::new(RingSink::new(1 << 16));
    rt.set_trace_sink(sink.clone());
    let outcome = match rt.launch(&pipeline(), seed) {
        Ok(o) => o,
        Err(e) => {
            out.push(format!("launch failed: {e}"));
            return None;
        }
    };
    let planned = rt.planned_timeline().expect("datapath launch compiled");
    let events = sink.sorted_events();
    if sink.dropped() > 0 {
        out.push(format!(
            "WARNING: trace truncated — {} event(s) dropped; profile refused",
            sink.dropped()
        ));
    }
    match profile(&planned, &events, sink.dropped()) {
        Ok(prof) => {
            out.push(format!(
                "seed {seed}: {} attempt(s), {} failover(s)",
                outcome.attempts(),
                outcome.failovers.len()
            ));
            Some((prof, events, planned))
        }
        Err(e) => {
            out.push(format!("profiler refused the trace: {e}"));
            None
        }
    }
}

/// Finds a seed whose faulty launch replays (second attempt on the same
/// plan) without needing a failover, so the skew report is pure replay.
fn replay_seed() -> Option<u64> {
    (0..64u64).find(|&seed| {
        let mut rt = marginal_runtime();
        rt.launch(&pipeline(), seed)
            .map(|o| o.attempts() == 2 && o.failovers.is_empty())
            .unwrap_or(false)
    })
}

/// A runtime whose cables into node 1 run at a BER where one attempt
/// occasionally aborts but a replay usually clears it.
fn marginal_runtime() -> Runtime {
    let mut rt = datapath_runtime();
    rt.set_ber(0.0, 2e-5);
    let victim = NodeId(1);
    let bad: Vec<LinkId> = rt
        .system()
        .topology()
        .links()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.a.node() == victim || l.b.node() == victim)
        .map(|(i, _)| LinkId(i as u32))
        .collect();
    for l in bad {
        rt.degrade_link(l);
    }
    rt
}

/// Printable report for the `repro` binary; writes the Perfetto overlay
/// next to the working directory.
pub fn lines() -> Vec<String> {
    lines_impl(true)
}

fn lines_impl(write_overlay: bool) -> Vec<String> {
    let mut out = Vec::new();

    out.push("--- clean launch (healthy fabric) ---".to_string());
    if let Some((prof, events, planned)) = launch_and_profile(datapath_runtime(), 1, &mut out) {
        out.extend(prof.render().lines().map(str::to_string));
        if write_overlay {
            let overlay = chrome_trace_json_overlay(&events, &planned, 0);
            let path = "trace_profile.trace.json";
            match std::fs::write(path, &overlay) {
                Ok(()) => out.push(format!(
                    "wrote {path} (planned-vs-observed overlay, two tracks per link) — \
                     open at https://ui.perfetto.dev"
                )),
                Err(e) => out.push(format!("could not write {path}: {e}")),
            }
        }
        if !prof.certified() {
            out.push("ERROR: a fault-free launch must certify".to_string());
        }
    }

    out.push(String::new());
    out.push("--- replayed launch (marginal node 1, BER 2e-5) ---".to_string());
    match replay_seed() {
        Some(seed) => {
            if let Some((prof, _, _)) = launch_and_profile(marginal_runtime(), seed, &mut out) {
                out.extend(prof.render().lines().map(str::to_string));
            }
        }
        None => out.push("no seed in 0..64 replayed without failover".to_string()),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_launch_section_certifies_and_replay_section_deviates() {
        let report = lines_impl(false).join("\n");
        assert!(
            report.contains("CERTIFIED"),
            "clean launch certifies:\n{report}"
        );
        assert!(!report.contains("ERROR:"), "{report}");
        assert!(
            report.contains("DEVIANT"),
            "replay itemizes skew:\n{report}"
        );
        assert!(
            report.contains("skew +"),
            "deviations carry signed skew:\n{report}"
        );
        assert!(report.contains("critical path"), "{report}");
    }
}
