//! Attribution + flight-recorder benchmark: a fault-injected serve run.
//!
//! The observability layer's claim is causal, not statistical: every
//! served request decomposes into the stages that consumed its cycles —
//! summing *exactly* to its end-to-end latency — and every deviant,
//! faulted, shed, expired, or SLO-missing moment is captured as a
//! bounded, byte-reproducible [`IncidentReport`]. So the benchmark is a
//! hostile serve: marginal BER plus degraded cables into one node (the
//! launches replay), a short queue (backpressure sheds), and one tenant
//! with deadlines tight enough to expire and miss. The record asserts
//! the sum identity over every request, the off-is-off identity, and
//! bit-reproducibility of both the breakdowns and the incidents.
//!
//! [`IncidentReport`]: tsm::core::flight::IncidentReport

use tsm::core::flight::{FlightConfig, IncidentReport};
use tsm::core::runtime::{ExecMode, Runtime, SparePolicy};
use tsm::core::serving::{Request, ServeConfig, Server};
use tsm::core::system::System;
use tsm::topology::{LinkId, NodeId};
use tsm::trace::{JsonWriter, Stage};
use tsm::workloads::{merge_arrivals, poisson_arrivals, BertConfig};

/// Incident capture bounds used by the bench run.
pub const FLIGHT: FlightConfig = FlightConfig {
    trace_tail: 16,
    max_incidents: 64,
};

/// Per-stage slice of the attribution record.
#[derive(Debug, Clone, PartialEq)]
pub struct StagePoint {
    /// Stage name (stable serde identifier).
    pub stage: &'static str,
    /// Total cycles attributed to this stage across every request.
    pub total_cycles: u64,
    /// Requests whose critical (largest) stage this was.
    pub critical: u64,
    /// Median per-request cycles in this stage.
    pub p50: f64,
    /// 99th-percentile per-request cycles in this stage.
    pub p99: f64,
}

/// The `"attribution"` bench record.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionBenchResult {
    /// Master seed (chosen by the fault search so the run replays).
    pub seed: u64,
    /// Measured batch-1 service time, cycles.
    pub service_cycles: u64,
    /// Requests offered / served / expired / shed.
    pub offered: u64,
    /// Requests served.
    pub served: u64,
    /// Requests expired at dispatch.
    pub expired: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Served requests whose breakdown carries replay cycles.
    pub replayed_requests: u64,
    /// Per-stage totals, in canonical stage order.
    pub stages: Vec<StagePoint>,
    /// Whether every breakdown's components summed exactly to its
    /// measured latency (re-derived here; the serve run also asserts it).
    pub sums_exact: bool,
    /// Incidents captured, by trigger kind (ascending by kind name).
    pub incident_kinds: Vec<(String, u64)>,
    /// Triggers that fired after `max_incidents` was reached.
    pub incidents_dropped: u64,
    /// Whether a rerun reproduced the report, every breakdown's JSON,
    /// and every incident's JSON byte for byte.
    pub reproducible: bool,
    /// Whether a run with attribution and the recorder off was
    /// bit-identical to the on-run minus the two new fields.
    pub off_identical: bool,
    /// The captured incidents, in firing order (rendered by
    /// `repro incidents`; the JSON block embeds the first fault).
    pub incidents: Vec<IncidentReport>,
}

/// BERT-shaped pipeline over 4 TSPs, `encoders` deep, streaming its
/// output activations to a chip on node 1 — the 4-stage pipeline itself
/// lives entirely on node 0's TSPs, so without this offload the degraded
/// cables would never sit on the data path and the run could not fault.
fn bert_graph(encoders: usize, batch: u32) -> tsm::compiler::graph::Graph {
    use tsm::compiler::graph::OpKind;
    use tsm::topology::TspId;
    let mut g = BertConfig {
        batch: u64::from(batch),
        ..BertConfig::with_encoders(encoders)
    }
    .build_pipeline_graph(4);
    g.add(
        TspId(0),
        OpKind::Transfer {
            to: TspId(12),
            bytes: 32_000,
            allow_nonminimal: true,
        },
        vec![],
    )
    .expect("offload transfer");
    g
}

/// A marginal datapath runtime: residual BER everywhere plus degraded
/// cables into node 1, so launches replay (and occasionally fail over).
fn marginal_runtime() -> Runtime {
    let mut rt = Runtime::new(
        System::with_nodes(4).expect("4 nodes"),
        SparePolicy::PerSystem,
    )
    .with_exec_mode(ExecMode::Datapath);
    rt.set_ber(0.0, 2e-5);
    let victim = NodeId(1);
    let bad: Vec<LinkId> = rt
        .system()
        .topology()
        .links()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.a.node() == victim || l.b.node() == victim)
        .map(|(i, _)| LinkId(i as u32))
        .collect();
    for l in bad {
        rt.degrade_link(l);
    }
    rt
}

/// Measures the attribution bench point. `encoders` sizes the model,
/// `horizon_services` the arrival horizon; `seed` seeds the search for a
/// master seed whose marginal run actually replays.
pub fn measure_attribution(
    encoders: usize,
    horizon_services: u64,
    seed: u64,
) -> AttributionBenchResult {
    let service_cycles = Runtime::new(
        System::with_nodes(4).expect("4 nodes"),
        SparePolicy::PerSystem,
    )
    .with_exec_mode(ExecMode::Datapath)
    .launch(&bert_graph(encoders, 1), seed)
    .expect("calibration launch")
    .timeline_cycles;
    let horizon = service_cycles * horizon_services;

    // Tenant 0: steady 0.6μ with ample slack. Tenant 1: 0.4μ with
    // half-a-service slack — misses and expiries. The queue is short, so
    // replay-stretched batches back it up into sheds.
    let steady = poisson_arrivals(
        seed.wrapping_add(401),
        0.6 / service_cycles as f64,
        horizon,
        0,
        0,
        8 * service_cycles,
    );
    let tight = poisson_arrivals(
        seed.wrapping_add(402),
        0.4 / service_cycles as f64,
        horizon,
        1,
        1,
        service_cycles / 2,
    );
    let offered: Vec<Request> = merge_arrivals(&[steady, tight])
        .iter()
        .map(|a| Request {
            at: a.at,
            tenant: a.tenant,
            model: 0,
            priority: a.priority,
            deadline_slack: a.deadline_slack,
        })
        .collect();

    let serve_once = |master: u64, attribution: bool, flight: Option<FlightConfig>| {
        let cfg = ServeConfig {
            batch_window: service_cycles / 2,
            max_batch: 8,
            queue_capacity: 8,
            tenant_quota: usize::MAX,
            seed: master,
            certify: false,
            telemetry: None,
            attribution,
            flight,
        };
        let mut server = Server::new(marginal_runtime(), cfg);
        server.add_model(move |b| bert_graph(encoders, b));
        server.serve(&offered).expect("serving run")
    };

    // Find a master seed whose run actually replays — the attribution
    // story needs replay cycles on the timeline, not just waits.
    let (master, on) = (seed..seed + 64)
        .find_map(|s| {
            let report = serve_once(s, true, Some(FLIGHT));
            report
                .batches
                .iter()
                .any(|b| b.outcome.replays() > 0)
                .then_some((s, report))
        })
        .expect("some seed in the window replays on the marginal fabric");

    let attr = on.attribution.as_ref().expect("attribution is on");
    let incidents = on.incidents.clone().expect("recorder is armed");
    let sums_exact = attr.breakdowns.iter().all(|b| {
        Stage::ALL.iter().map(|&s| b.component(s)).sum::<u64>() == b.latency() && b.verify().is_ok()
    });
    let replayed_requests = attr
        .breakdowns
        .iter()
        .filter(|b| b.component(Stage::Replay) > 0)
        .count() as u64;
    let stages = Stage::ALL
        .iter()
        .map(|&s| {
            let h = attr.metrics.histogram(s.histogram_metric());
            StagePoint {
                stage: s.as_str(),
                total_cycles: attr.metrics.counter(s.total_metric()),
                critical: attr.critical_count(s),
                p50: h.map_or(0.0, |h| h.percentile(0.50)),
                p99: h.map_or(0.0, |h| h.percentile(0.99)),
            }
        })
        .collect();
    let mut incident_kinds: Vec<(String, u64)> = Vec::new();
    for inc in &incidents {
        let kind = inc.trigger.kind();
        match incident_kinds.iter_mut().find(|(k, _)| k == kind) {
            Some((_, n)) => *n += 1,
            None => incident_kinds.push((kind.to_string(), 1)),
        }
    }
    incident_kinds.sort();
    let incidents_dropped = incidents
        .last()
        .map_or(0, |i| i.seq + 1 - incidents.len() as u64);

    // Bit-reproducibility: a rerun from scratch must reproduce the whole
    // report, and both records must serialize byte-identically.
    let again = serve_once(master, true, Some(FLIGHT));
    let reproducible = again == on
        && again.attribution.as_ref().is_some_and(|a| {
            a.breakdowns
                .iter()
                .zip(&attr.breakdowns)
                .all(|(x, y)| x.to_json() == y.to_json())
        })
        && again.incidents.as_ref().is_some_and(|inc| {
            inc.len() == incidents.len()
                && inc
                    .iter()
                    .zip(&incidents)
                    .all(|(x, y)| x.to_json() == y.to_json())
        });

    // Off-identity: both features off must be bit-identical to the
    // on-run minus the two fields they add.
    let off = serve_once(master, false, None);
    let mut stripped = on.clone();
    stripped.attribution = None;
    stripped.incidents = None;
    let off_identical = off.attribution.is_none() && off.incidents.is_none() && stripped == off;

    AttributionBenchResult {
        seed: master,
        service_cycles,
        offered: on.offered,
        served: on.served,
        expired: on.expired,
        shed: on.shed,
        replayed_requests,
        stages,
        sums_exact,
        incident_kinds,
        incidents_dropped,
        reproducible,
        off_identical,
        incidents,
    }
}

impl AttributionBenchResult {
    /// The `"attribution"` JSON block spliced into `BENCH_cosim.json`.
    /// The embedded `first_fault_incident` is [`IncidentReport::to_json`]
    /// verbatim, so the same seed reproduces the block byte for byte.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field_u64("seed", self.seed)
            .field_u64("service_cycles", self.service_cycles)
            .field_u64("offered", self.offered)
            .field_u64("served", self.served)
            .field_u64("expired", self.expired)
            .field_u64("shed", self.shed)
            .field_u64("replayed_requests", self.replayed_requests);
        w.key("sums_exact").bool(self.sums_exact);
        w.key("stages").begin_array();
        for s in &self.stages {
            w.begin_object()
                .field_str("stage", s.stage)
                .field_u64("total_cycles", s.total_cycles)
                .field_u64("critical", s.critical)
                .field_raw("p50_cycles", &format!("{:.0}", s.p50))
                .field_raw("p99_cycles", &format!("{:.0}", s.p99))
                .end_object();
        }
        w.end_array();
        w.key("incidents").begin_object();
        w.field_u64("captured", self.incidents.len() as u64)
            .field_u64("dropped", self.incidents_dropped);
        w.key("by_kind").begin_object();
        for (kind, n) in &self.incident_kinds {
            w.field_u64(kind, *n);
        }
        w.end_object();
        w.end_object();
        w.key("reproducible").bool(self.reproducible);
        w.key("off_identical").bool(self.off_identical);
        if let Some(fault) = self.incidents.iter().find(|i| i.trigger.kind() == "fault") {
            w.field_raw(
                "first_fault_incident",
                &crate::cosim_bench::indent_block(&fault.to_json(), 2),
            );
        }
        w.end_object();
        w.finish()
    }
}

/// Printable report lines for `repro attribution` output.
pub fn attribution_lines(r: &AttributionBenchResult) -> Vec<String> {
    let mut out = vec![
        format!(
            "marginal fabric (degraded cables into node 1, BER 2e-5); seed {} (fault-searched), service {} cycles",
            r.seed, r.service_cycles
        ),
        format!(
            "offered {}, served {}, expired {}, shed {}; {} requests carry replay cycles",
            r.offered, r.served, r.expired, r.shed, r.replayed_requests
        ),
        "per-stage attribution (cycles over every served request):".to_string(),
    ];
    for s in &r.stages {
        out.push(format!(
            "  {:>11}: total {:>10}  critical for {:>3}  p50 {:>9.0}  p99 {:>9.0}",
            s.stage, s.total_cycles, s.critical, s.p50, s.p99
        ));
    }
    let kinds: Vec<String> = r
        .incident_kinds
        .iter()
        .map(|(k, n)| format!("{n} {k}"))
        .collect();
    out.push(format!(
        "flight recorder: {} incidents captured ({}), {} dropped at the cap",
        r.incidents.len(),
        kinds.join(", "),
        r.incidents_dropped
    ));
    out.push(format!(
        "sums exact: {}; bit-reproducible: {}; off-identical: {}",
        r.sums_exact, r.reproducible, r.off_identical
    ));
    out
}

/// Printable lines for `repro incidents`: every captured incident,
/// rendered in firing order.
pub fn incident_lines(r: &AttributionBenchResult) -> Vec<String> {
    let mut out = vec![format!(
        "{} incidents from the fault-injected serve (seed {}):",
        r.incidents.len(),
        r.seed
    )];
    for inc in &r.incidents {
        out.push(String::new());
        out.extend(inc.render().lines().map(String::from));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny end-to-end measure. Asserts the acceptance shape: a faulted
    /// run whose every breakdown sums exactly, at least one fault
    /// incident captured byte-reproducibly, and both features off-is-off.
    #[test]
    fn tiny_measure_attributes_faults_and_reproduces() {
        let r = measure_attribution(4, 10, 9);
        assert!(r.served > 0);
        assert!(r.sums_exact, "every breakdown sums exactly");
        assert!(
            r.replayed_requests > 0,
            "the fault search guarantees replays"
        );
        assert!(r.reproducible, "same seed, same bytes");
        assert!(r.off_identical, "off is bit-identical minus the fields");
        assert!(
            r.incident_kinds.iter().any(|(k, _)| k == "fault"),
            "replaying batches fire fault incidents: {:?}",
            r.incident_kinds
        );
        let total: u64 = r.incident_kinds.iter().map(|(_, n)| n).sum();
        assert_eq!(total, r.incidents.len() as u64);
        // Stage order and the critical partition are intact.
        assert_eq!(r.stages.len(), Stage::ALL.len());
        let critical: u64 = r.stages.iter().map(|s| s.critical).sum();
        assert_eq!(critical, r.served);
        let json = r.to_json();
        for key in [
            "\"sums_exact\": true",
            "\"reproducible\": true",
            "\"off_identical\": true",
            "\"stages\"",
            "\"by_kind\"",
            "\"first_fault_incident\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        let lines = incident_lines(&r);
        assert!(lines.len() > r.incidents.len(), "every incident rendered");
    }
}
