//! Figure/table regeneration harness.
//!
//! Every quantitative table and figure of the paper's evaluation has a
//! function in [`figures`] that produces its data series from the
//! simulation stack. The `repro` binary prints them; the Criterion
//! benches in `benches/` measure the cost of regenerating each one (and
//! print the series once per run, so `cargo bench` leaves a full
//! paper-vs-measured record in its log).

pub mod ablations;
pub mod attribution_bench;
pub mod cosim_bench;
pub mod figures;
pub mod profile_cli;
pub mod residency_bench;
pub mod serving_bench;
