//! Forward error correction: a real SEC-DED code over the 320-byte payload.
//!
//! Paper §4.5: "to maintain determinism in the face of transmission errors,
//! we use forward error correction (FEC) on every link to correct simple
//! transmission errors and detect uncorrectable burst errors". A link-layer
//! retry would change arrival times; FEC corrects *in situ* with constant
//! latency.
//!
//! The code implemented here is an extended-Hamming construction over the
//! 2560 payload bits: a 12-bit syndrome (the XOR of the 1-based positions
//! of all set bits) locates any single flipped bit, and an overall parity
//! bit distinguishes single (correctable) from double (detect-only)
//! errors. Syndrome + parity occupy 13 bits, comfortably inside the 4
//! check bytes that the 328-byte wire format reserves (`tsm-isa`
//! [`tsm_isa::packet::HEADER_BYTES`]).

use tsm_isa::vector::VECTOR_BYTES;

/// Number of payload bits covered by the code.
pub const PAYLOAD_BITS: usize = VECTOR_BYTES * 8;

/// Check information carried on the wire for one payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FecCodeword {
    /// XOR of the 1-based positions of all set payload bits (12 bits used).
    pub syndrome: u16,
    /// Overall parity of the payload bits.
    pub parity: bool,
}

impl FecCodeword {
    /// Computes the codeword for a payload.
    pub fn encode(payload: &[u8; VECTOR_BYTES]) -> Self {
        let mut syndrome: u16 = 0;
        let mut ones: u32 = 0;
        for (byte_idx, &byte) in payload.iter().enumerate() {
            let mut b = byte;
            while b != 0 {
                let bit = b.trailing_zeros() as usize;
                let pos = (byte_idx * 8 + bit + 1) as u16;
                syndrome ^= pos;
                ones += 1;
                b &= b - 1;
            }
        }
        FecCodeword {
            syndrome,
            parity: ones % 2 == 1,
        }
    }

    /// Packs the codeword into the packet's 4 check bytes.
    pub fn to_bytes(self) -> [u8; 4] {
        let b0 = (self.syndrome & 0xff) as u8;
        let b1 = (self.syndrome >> 8) as u8;
        let b2 = self.parity as u8;
        // The guard byte is the complemented XOR of all three check bytes,
        // so corruption of *any* one of the four wire bytes — including
        // the high syndrome byte, the parity byte, or the guard itself —
        // breaks the relation. (The old guard complemented only b0:
        // flipping b1 or b2 passed validation and could silently
        // miscorrect the wrong payload bit.)
        [b0, b1, b2, !(b0 ^ b1 ^ b2)]
    }

    /// Unpacks a codeword from the packet's check bytes. Returns `None` if
    /// the guard byte shows the check field itself was corrupted (treated
    /// as uncorrectable).
    pub fn from_bytes(b: [u8; 4]) -> Option<Self> {
        if b[3] != !(b[0] ^ b[1] ^ b[2]) {
            return None;
        }
        // The encoder only ever emits a 12-bit syndrome and a 0/1 parity
        // byte; anything else is corruption the XOR guard happened to
        // miss (two compensating byte errors) — reject it as well.
        if b[1] & 0xf0 != 0 || b[2] > 1 {
            return None;
        }
        Some(FecCodeword {
            syndrome: b[0] as u16 | ((b[1] as u16) << 8),
            parity: b[2] == 1,
        })
    }
}

/// Result of decoding a received payload against its codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FecOutcome {
    /// No error observed.
    Clean,
    /// A single bit error was corrected in place; the payload is now exact.
    Corrected {
        /// Zero-based bit position that was repaired.
        bit: usize,
    },
    /// A multi-bit error was detected but cannot be corrected; the runtime
    /// must replay the inference on known-good hardware (paper §4.5).
    Uncorrectable,
}

impl FecOutcome {
    /// True unless the error requires a software replay.
    pub fn is_usable(self) -> bool {
        !matches!(self, FecOutcome::Uncorrectable)
    }
}

/// Decodes (and repairs, when possible) a received payload in place.
///
/// `sent` is the codeword computed at the transmitter; the receiver
/// recomputes the codeword over the (possibly corrupted) payload and
/// classifies the difference.
pub fn decode(payload: &mut [u8; VECTOR_BYTES], sent: FecCodeword) -> FecOutcome {
    let got = FecCodeword::encode(payload);
    let syndrome_delta = got.syndrome ^ sent.syndrome;
    let parity_delta = got.parity != sent.parity;
    match (syndrome_delta, parity_delta) {
        (0, false) => FecOutcome::Clean,
        (s, true) if s != 0 && (s as usize) <= PAYLOAD_BITS => {
            // Odd number of flips with a consistent single-bit location:
            // repair it.
            let pos = s as usize - 1;
            payload[pos / 8] ^= 1 << (pos % 8);
            FecOutcome::Corrected { bit: pos }
        }
        // Even number of flips (parity unchanged, syndrome moved), or a
        // syndrome pointing outside the payload: detect, don't correct.
        _ => FecOutcome::Uncorrectable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(seed: u8) -> [u8; VECTOR_BYTES] {
        let mut p = [0u8; VECTOR_BYTES];
        for (i, b) in p.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(31).wrapping_add(seed);
        }
        p
    }

    #[test]
    fn clean_payload_decodes_clean() {
        let mut p = payload(3);
        let cw = FecCodeword::encode(&p);
        assert_eq!(decode(&mut p, cw), FecOutcome::Clean);
        assert_eq!(p, payload(3));
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        // Exhaustive over a stride of positions (full 2560 is fast anyway).
        let original = payload(9);
        let cw = FecCodeword::encode(&original);
        for bit in (0..PAYLOAD_BITS).step_by(7) {
            let mut corrupted = original;
            corrupted[bit / 8] ^= 1 << (bit % 8);
            let outcome = decode(&mut corrupted, cw);
            assert_eq!(outcome, FecOutcome::Corrected { bit });
            assert_eq!(corrupted, original, "bit {bit} not repaired");
        }
    }

    #[test]
    fn double_bit_errors_are_detected_not_corrected() {
        let original = payload(5);
        let cw = FecCodeword::encode(&original);
        for (a, b) in [(0usize, 1usize), (3, 997), (100, 2559), (8, 16)] {
            let mut corrupted = original;
            corrupted[a / 8] ^= 1 << (a % 8);
            corrupted[b / 8] ^= 1 << (b % 8);
            assert_eq!(
                decode(&mut corrupted, cw),
                FecOutcome::Uncorrectable,
                "({a},{b})"
            );
        }
    }

    #[test]
    fn codeword_roundtrips_through_bytes() {
        let cw = FecCodeword::encode(&payload(11));
        let back = FecCodeword::from_bytes(cw.to_bytes()).unwrap();
        assert_eq!(cw, back);
    }

    #[test]
    fn corrupted_check_bytes_are_flagged() {
        let mut b = FecCodeword::encode(&payload(1)).to_bytes();
        b[0] ^= 0x10; // guard byte no longer matches
        assert!(FecCodeword::from_bytes(b).is_none());
    }

    /// Exhaustive: corrupting any single wire byte — low syndrome, high
    /// syndrome, parity, or the guard itself — to any wrong value is
    /// detected. The old guard only covered `b[0]`, so a flipped bit in
    /// `b[1]` or `b[2]` decoded "successfully" and miscorrected a healthy
    /// payload bit.
    #[test]
    fn every_single_byte_corruption_is_detected() {
        for seed in [0u8, 1, 9, 200] {
            let clean = FecCodeword::encode(&payload(seed)).to_bytes();
            for byte in 0..4 {
                for mask in 1..=255u8 {
                    let mut b = clean;
                    b[byte] ^= mask;
                    assert!(
                        FecCodeword::from_bytes(b).is_none(),
                        "seed {seed}: corrupting byte {byte} with mask {mask:#04x} passed"
                    );
                }
            }
        }
    }

    /// A corrupted check field must never repair the wrong payload bit:
    /// with the full guard, a flipped high-syndrome or parity byte is
    /// rejected before `decode` can trust the bogus codeword.
    #[test]
    fn check_byte_corruption_cannot_miscorrect() {
        let original = payload(7);
        let mut wire = FecCodeword::encode(&original).to_bytes();
        wire[1] ^= 0x04; // high syndrome byte: would point at a distant bit
        assert!(
            FecCodeword::from_bytes(wire).is_none(),
            "corrupt syndrome must not reach the corrector"
        );
    }

    #[test]
    fn outcome_usability() {
        assert!(FecOutcome::Clean.is_usable());
        assert!(FecOutcome::Corrected { bit: 5 }.is_usable());
        assert!(!FecOutcome::Uncorrectable.is_usable());
    }

    #[test]
    fn all_zero_payload_single_error() {
        let original = [0u8; VECTOR_BYTES];
        let cw = FecCodeword::encode(&original);
        assert_eq!(cw.syndrome, 0);
        assert!(!cw.parity);
        let mut corrupted = original;
        corrupted[0] ^= 1;
        assert_eq!(decode(&mut corrupted, cw), FecOutcome::Corrected { bit: 0 });
        assert_eq!(corrupted, original);
    }
}
