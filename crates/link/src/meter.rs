//! Per-link FEC metering: the bridge between channel outcomes and the
//! [`tsm_trace`] metrics registry.
//!
//! Demotions (miscorrections caught by the byte check) are counted under
//! their own name, separate from honest decoder give-ups — a link whose
//! errors routinely alias valid syndromes is a different physical problem
//! (burst noise) than one that trips double-error detection. Consumers
//! that want the paper's coarse clean/corrected/uncorrectable triple fold
//! demotions into uncorrectable via `FecStats::from_metrics` in
//! `tsm-fault`.

use crate::fec::FecOutcome;
use tsm_trace::{names, Metrics};

/// Records one link's FEC outcomes into a metrics registry, labeled by the
/// link's index. Cheap to construct per delivery (two references).
#[derive(Debug, Clone, Copy)]
pub struct LinkMeter<'m> {
    metrics: &'m Metrics,
    link: u32,
}

impl<'m> LinkMeter<'m> {
    /// A meter for physical link `link` recording into `metrics`.
    pub fn new(metrics: &'m Metrics, link: u32) -> Self {
        LinkMeter { metrics, link }
    }

    /// Tallies one delivery's outcome. `demoted` distinguishes a
    /// miscorrection demoted to uncorrectable from an honest decoder
    /// give-up (see [`crate::Channel::transmit_demoting`]).
    pub fn record(&self, outcome: &FecOutcome, demoted: bool) {
        let name = match outcome {
            FecOutcome::Clean => names::LINK_CLEAN,
            FecOutcome::Corrected { .. } => names::LINK_CORRECTED,
            FecOutcome::Uncorrectable if demoted => names::LINK_DEMOTED,
            FecOutcome::Uncorrectable => names::LINK_UNCORRECTABLE,
        };
        self.metrics.inc_labeled(name, self.link, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_land_in_per_link_cells() {
        let m = Metrics::default();
        let a = LinkMeter::new(&m, 3);
        let b = LinkMeter::new(&m, 7);
        a.record(&FecOutcome::Clean, false);
        a.record(&FecOutcome::Clean, false);
        a.record(&FecOutcome::Corrected { bit: 12 }, false);
        b.record(&FecOutcome::Uncorrectable, false);
        b.record(&FecOutcome::Uncorrectable, true);

        let snap = m.snapshot();
        assert_eq!(snap.counter_labeled(names::LINK_CLEAN, 3), 2);
        assert_eq!(snap.counter_labeled(names::LINK_CORRECTED, 3), 1);
        assert_eq!(snap.counter_labeled(names::LINK_UNCORRECTABLE, 7), 1);
        assert_eq!(snap.counter_labeled(names::LINK_DEMOTED, 7), 1);
        assert_eq!(snap.counter(names::LINK_UNCORRECTABLE), 1);
    }
}
