//! Per-link one-way latency distribution.
//!
//! Real C2C links are plesiochronous: latency is dominated by a fixed
//! propagation + serdes component, with a few cycles of jitter from clock
//! domain crossings. Paper Table 2 characterizes the seven intra-node links
//! of a chassis at min ≈ 209, mean ≈ 216.5, max ≈ 228, σ ≈ 2.8 cycles over
//! 100 K measurements. The model reproduces those statistics with a
//! discretized, clamped Gaussian.

use rand::Rng;
use tsm_topology::CableClass;

/// A one-way latency distribution for a single link, in core clock cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Mode of the distribution (cable-class base latency).
    pub base_cycles: u64,
    /// Standard deviation of the jitter, in cycles.
    pub jitter_sigma: f64,
    /// Lower clamp relative to base (inclusive), e.g. −8.
    pub min_offset: i64,
    /// Upper clamp relative to base (inclusive), e.g. +12.
    pub max_offset: i64,
}

impl LatencyModel {
    /// Model for a link of the given cable class, calibrated so intra-node
    /// links reproduce paper Table 2.
    pub fn for_class(class: CableClass) -> Self {
        LatencyModel {
            base_cycles: class.base_latency_cycles(),
            jitter_sigma: 2.8,
            min_offset: -8,
            max_offset: 12,
        }
    }

    /// A latency model with no jitter (useful for schedule unit tests).
    pub fn fixed(cycles: u64) -> Self {
        LatencyModel {
            base_cycles: cycles,
            jitter_sigma: 0.0,
            min_offset: 0,
            max_offset: 0,
        }
    }

    /// Draws one observed latency.
    ///
    /// The jitter is a clamped Gaussian (Box–Muller on the caller's seeded
    /// RNG) with a +0.5-cycle skew so the mean sits slightly above the
    /// mode, matching the asymmetric tail of Table 2 (mean 216.5 vs min
    /// 209 / max 228 around a 216-cycle base).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        if self.jitter_sigma == 0.0 {
            return self.base_cycles;
        }
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let offset = (z * self.jitter_sigma + 0.5).round() as i64;
        let offset = offset.clamp(self.min_offset, self.max_offset);
        (self.base_cycles as i64 + offset).max(0) as u64
    }

    /// Worst-case latency the compiler must budget for.
    pub fn worst_case(&self) -> u64 {
        (self.base_cycles as i64 + self.max_offset).max(0) as u64
    }

    /// Best-case latency.
    pub fn best_case(&self) -> u64 {
        (self.base_cycles as i64 + self.min_offset).max(0) as u64
    }
}

/// Summary statistics of a set of latency observations — the shape of each
/// row of paper Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Smallest observation.
    pub min: u64,
    /// Mean of the observations.
    pub mean: f64,
    /// Largest observation.
    pub max: u64,
    /// Population standard deviation.
    pub std: f64,
    /// Number of observations.
    pub count: usize,
}

impl LatencyStats {
    /// Computes statistics over a sample set.
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[u64]) -> Self {
        assert!(!samples.is_empty(), "need at least one latency sample");
        let min = *samples.iter().min().expect("nonempty");
        let max = *samples.iter().max().expect("nonempty");
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        let var = samples
            .iter()
            .map(|&s| (s as f64 - mean).powi(2))
            .sum::<f64>()
            / samples.len() as f64;
        LatencyStats {
            min,
            mean,
            max,
            std: var.sqrt(),
            count: samples.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_model_has_no_jitter() {
        let m = LatencyModel::fixed(100);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), 100);
        }
        assert_eq!(m.worst_case(), 100);
        assert_eq!(m.best_case(), 100);
    }

    #[test]
    fn intra_node_model_reproduces_table2_statistics() {
        // Paper Table 2 (100K iterations): min 209-211, mean 216.3-217.4,
        // max 225-228, std 2.6-2.9.
        let m = LatencyModel::for_class(CableClass::IntraNode);
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<u64> = (0..100_000).map(|_| m.sample(&mut rng)).collect();
        let s = LatencyStats::from_samples(&samples);
        assert!(s.min >= 208 && s.min <= 211, "min {}", s.min);
        assert!(s.mean > 215.9 && s.mean < 217.5, "mean {}", s.mean);
        assert!(s.max >= 225 && s.max <= 228, "max {}", s.max);
        assert!(s.std > 2.3 && s.std < 3.1, "std {}", s.std);
    }

    #[test]
    fn samples_respect_clamps() {
        let m = LatencyModel::for_class(CableClass::InterRack);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let s = m.sample(&mut rng);
            assert!(s >= m.best_case() && s <= m.worst_case());
        }
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let m = LatencyModel::for_class(CableClass::IntraNode);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..1000).map(|_| m.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..1000).map(|_| m.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn stats_of_constant_samples() {
        let s = LatencyStats::from_samples(&[5, 5, 5, 5]);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 5);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.count, 4);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn stats_reject_empty() {
        let _ = LatencyStats::from_samples(&[]);
    }

    #[test]
    fn cable_classes_order_by_length() {
        let intra = LatencyModel::for_class(CableClass::IntraNode);
        let rack = LatencyModel::for_class(CableClass::IntraRack);
        let optic = LatencyModel::for_class(CableClass::InterRack);
        assert!(intra.base_cycles < rack.base_cycles);
        assert!(rack.base_cycles < optic.base_cycles);
    }
}
