//! A point-to-point C2C channel: serialization + latency + error injection.
//!
//! The channel is where the physical-layer substitution happens: instead of
//! real serdes, a seeded RNG drives latency jitter and bit errors. Given
//! the same seed, a channel delivers identical outcomes — which is exactly
//! the property the software-scheduled network needs to *simulate*
//! plesiochronous hardware deterministically.

use crate::fec::{self, FecCodeword, FecOutcome};
use crate::latency::LatencyModel;
use rand::Rng;
use tsm_isa::packet::WirePacket;
use tsm_isa::timing;
use tsm_isa::vector::VECTOR_BYTES;

/// Outcome of transmitting one wire packet.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Cycle (receiver clock) at which the last byte arrives.
    pub arrival_cycle: u64,
    /// The received packet, after FEC repair if any.
    pub packet: WirePacket,
    /// What the FEC layer observed.
    pub outcome: FecOutcome,
}

/// A unidirectional point-to-point link.
#[derive(Debug, Clone)]
pub struct Channel {
    latency: LatencyModel,
    /// Probability that any given transmitted bit is flipped.
    bit_error_rate: f64,
    /// Cycles to serialize one 328-byte packet onto the 4 lanes.
    serialization_cycles: u64,
}

impl Channel {
    /// Creates a channel with the given latency model and bit error rate.
    pub fn new(latency: LatencyModel, bit_error_rate: f64) -> Self {
        assert!((0.0..1.0).contains(&bit_error_rate), "BER must be in [0,1)");
        Channel {
            latency,
            bit_error_rate,
            serialization_cycles: timing::wire_packet_serialization_cycles(),
        }
    }

    /// An error-free channel (the common case in schedule simulations).
    pub fn ideal(latency: LatencyModel) -> Self {
        Channel::new(latency, 0.0)
    }

    /// The latency model in use.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Serialization time for one packet, in cycles.
    pub fn serialization_cycles(&self) -> u64 {
        self.serialization_cycles
    }

    /// Minimum cycle at which the next packet may start serializing after a
    /// packet started at `start`: links are busy for the full
    /// serialization time (virtual cut-through pacing, paper §2.3).
    pub fn next_free_cycle(&self, start: u64) -> u64 {
        start + self.serialization_cycles
    }

    /// Transmits `packet` starting at cycle `inject_cycle`, drawing jitter
    /// and errors from `rng`.
    ///
    /// The arrival time is `inject + serialization + latency`. Bit errors
    /// are injected per the BER; the receiver-side FEC repairs single-bit
    /// flips, so the payload in the returned [`Delivery`] differs from the
    /// transmitted one only on [`FecOutcome::Uncorrectable`].
    pub fn transmit<R: Rng>(
        &self,
        packet: &WirePacket,
        inject_cycle: u64,
        rng: &mut R,
    ) -> Delivery {
        let latency = self.latency.sample(rng);
        let arrival_cycle = inject_cycle + self.serialization_cycles + latency;

        let flips = self.draw_bit_flips(rng);
        if flips == 0 {
            // Fast path: an unflipped payload always decodes Clean, so the
            // codec round-trip is skipped (bit-identical outcome).
            return Delivery {
                arrival_cycle,
                packet: packet.clone(),
                outcome: FecOutcome::Clean,
            };
        }

        let codeword = FecCodeword::encode(packet.payload.as_bytes());
        let mut payload: [u8; VECTOR_BYTES] = *packet.payload.as_bytes();
        for _ in 0..flips {
            let bit = rng.gen_range(0..fec::PAYLOAD_BITS);
            payload[bit / 8] ^= 1 << (bit % 8);
        }

        let outcome = fec::decode(&mut payload, codeword);
        let received = WirePacket {
            sequence: packet.sequence,
            tag: packet.tag,
            payload: tsm_isa::Vector::from_slice(&payload).expect("length preserved"),
        };
        Delivery {
            arrival_cycle,
            packet: received,
            outcome,
        }
    }

    /// Transmits `packet` with an *exact* set of payload bit flips instead
    /// of sampled errors — the deterministic injection mode fault tests
    /// use to place a corruption on a specific hop of a specific vector.
    ///
    /// No RNG is consumed and no latency jitter is drawn: the arrival time
    /// is `inject + serialization + base latency`, and the receiver-side
    /// FEC sees precisely `bits` flipped. Duplicate bit positions cancel
    /// (two flips of one bit restore it), exactly as on a real wire.
    pub fn transmit_with_flips(
        &self,
        packet: &WirePacket,
        inject_cycle: u64,
        bits: &[usize],
    ) -> Delivery {
        let arrival_cycle = inject_cycle + self.serialization_cycles + self.latency.base_cycles;
        if bits.is_empty() {
            return Delivery {
                arrival_cycle,
                packet: packet.clone(),
                outcome: FecOutcome::Clean,
            };
        }
        let codeword = FecCodeword::encode(packet.payload.as_bytes());
        let mut payload: [u8; VECTOR_BYTES] = *packet.payload.as_bytes();
        for &bit in bits {
            assert!(bit < fec::PAYLOAD_BITS, "flip position out of range");
            payload[bit / 8] ^= 1 << (bit % 8);
        }
        let outcome = fec::decode(&mut payload, codeword);
        Delivery {
            arrival_cycle,
            packet: WirePacket {
                sequence: packet.sequence,
                tag: packet.tag,
                payload: tsm_isa::Vector::from_slice(&payload).expect("length preserved"),
            },
            outcome,
        }
    }

    /// [`Channel::transmit`] with miscorrection demotion: a `Corrected`
    /// outcome whose decoded bytes do not match the transmitted payload
    /// (possible when ≥3 flips alias a valid single-error syndrome) is
    /// demoted to `Uncorrectable` — the link layer never reports a
    /// plausible-but-wrong payload as repaired. Returns the delivery plus
    /// whether a demotion happened (observability layers count demotions
    /// separately from honest decoder give-ups).
    pub fn transmit_demoting<R: Rng>(
        &self,
        packet: &WirePacket,
        inject_cycle: u64,
        rng: &mut R,
    ) -> (Delivery, bool) {
        Self::demote(packet, self.transmit(packet, inject_cycle, rng))
    }

    /// [`Channel::transmit_with_flips`] with miscorrection demotion; see
    /// [`Channel::transmit_demoting`].
    pub fn transmit_with_flips_demoting(
        &self,
        packet: &WirePacket,
        inject_cycle: u64,
        bits: &[usize],
    ) -> (Delivery, bool) {
        Self::demote(packet, self.transmit_with_flips(packet, inject_cycle, bits))
    }

    fn demote(sent: &WirePacket, mut delivery: Delivery) -> (Delivery, bool) {
        if matches!(delivery.outcome, FecOutcome::Corrected { .. })
            && delivery.packet.payload != sent.payload
        {
            delivery.outcome = FecOutcome::Uncorrectable;
            (delivery, true)
        } else {
            (delivery, false)
        }
    }

    /// Draws the number of flipped bits for one packet: Poisson with
    /// λ = BER × payload bits, sampled by inversion (λ is tiny for any
    /// realistic BER, so this is a handful of multiplications).
    fn draw_bit_flips<R: Rng>(&self, rng: &mut R) -> usize {
        if self.bit_error_rate == 0.0 {
            return 0;
        }
        let lambda = self.bit_error_rate * fec::PAYLOAD_BITS as f64;
        let u: f64 = rng.gen();
        let mut cdf = 0.0;
        let mut p = (-lambda).exp();
        for k in 0..16 {
            cdf += p;
            if u < cdf {
                return k;
            }
            p *= lambda / (k + 1) as f64;
        }
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsm_isa::Vector;

    fn packet(seq: u16) -> WirePacket {
        WirePacket::data(seq, Vector::from_fn(|i| (i as u8).wrapping_mul(3)))
    }

    #[test]
    fn ideal_channel_delivers_exact_payload_on_time() {
        let ch = Channel::ideal(LatencyModel::fixed(100));
        let mut rng = StdRng::seed_from_u64(0);
        let d = ch.transmit(&packet(7), 1000, &mut rng);
        assert_eq!(d.arrival_cycle, 1000 + ch.serialization_cycles() + 100);
        assert_eq!(d.outcome, FecOutcome::Clean);
        assert_eq!(d.packet, packet(7));
    }

    #[test]
    fn serialization_cycles_match_isa_timing() {
        let ch = Channel::ideal(LatencyModel::fixed(0));
        assert_eq!(ch.serialization_cycles(), 24); // 328 B / 12.5 GB/s at 900 MHz
        assert_eq!(ch.next_free_cycle(100), 124);
    }

    #[test]
    fn noisy_channel_single_errors_are_transparent() {
        // BER chosen so most packets see 0-1 flips: all those must deliver
        // the exact payload.
        let ch = Channel::new(LatencyModel::fixed(50), 1e-5);
        let mut rng = StdRng::seed_from_u64(3);
        let p = packet(1);
        let mut corrected = 0;
        let mut uncorrectable = 0;
        for _ in 0..2000 {
            let d = ch.transmit(&p, 0, &mut rng);
            match d.outcome {
                FecOutcome::Clean => assert_eq!(d.packet.payload, p.payload),
                FecOutcome::Corrected { .. } => {
                    corrected += 1;
                    assert_eq!(
                        d.packet.payload, p.payload,
                        "corrected payload must be exact"
                    );
                }
                FecOutcome::Uncorrectable => uncorrectable += 1,
            }
        }
        // λ = 1e-5 * 2560 ≈ 0.0256: expect ~50 corrected, ~0-3 uncorrectable.
        assert!(corrected > 10, "corrected {corrected}");
        assert!(
            uncorrectable < corrected / 2,
            "uncorrectable {uncorrectable}"
        );
    }

    #[test]
    fn high_ber_produces_uncorrectable_detections() {
        let ch = Channel::new(LatencyModel::fixed(50), 1e-3);
        let mut rng = StdRng::seed_from_u64(9);
        let p = packet(2);
        let uncorrectable = (0..500)
            .filter(|_| {
                matches!(
                    ch.transmit(&p, 0, &mut rng).outcome,
                    FecOutcome::Uncorrectable
                )
            })
            .count();
        // λ ≈ 2.56: multi-bit errors dominate.
        assert!(uncorrectable > 200, "uncorrectable {uncorrectable}");
    }

    #[test]
    fn transmissions_are_deterministic_given_seed() {
        let ch = Channel::new(
            LatencyModel::for_class(tsm_topology::CableClass::IntraNode),
            1e-6,
        );
        let p = packet(3);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100)
                .map(|i| ch.transmit(&p, i * 30, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(
            run(11).iter().map(|d| d.arrival_cycle).collect::<Vec<_>>(),
            run(12).iter().map(|d| d.arrival_cycle).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "BER")]
    fn rejects_invalid_ber() {
        let _ = Channel::new(LatencyModel::fixed(1), 1.5);
    }

    #[test]
    fn targeted_single_flip_is_corrected_transparently() {
        let ch = Channel::ideal(LatencyModel::fixed(10));
        let p = packet(4);
        for bit in [0usize, 7, 1000, tsm_isa::vector::VECTOR_BYTES * 8 - 1] {
            let d = ch.transmit_with_flips(&p, 100, &[bit]);
            assert_eq!(d.outcome, FecOutcome::Corrected { bit });
            assert_eq!(d.packet.payload, p.payload, "bit {bit} not repaired");
            assert_eq!(d.arrival_cycle, 100 + ch.serialization_cycles() + 10);
        }
    }

    #[test]
    fn targeted_double_flip_is_deterministically_uncorrectable() {
        let ch = Channel::ideal(LatencyModel::fixed(0));
        let p = packet(5);
        let d = ch.transmit_with_flips(&p, 0, &[3, 2000]);
        assert_eq!(d.outcome, FecOutcome::Uncorrectable);
        // and it is deterministic: no RNG is involved
        assert_eq!(ch.transmit_with_flips(&p, 0, &[3, 2000]), d);
    }

    #[test]
    fn demoting_transmit_passes_honest_outcomes_through() {
        let ch = Channel::ideal(LatencyModel::fixed(0));
        let p = packet(8);
        let (single, demoted) = ch.transmit_with_flips_demoting(&p, 0, &[42]);
        assert_eq!(single.outcome, FecOutcome::Corrected { bit: 42 });
        assert!(!demoted);
        let (double, demoted) = ch.transmit_with_flips_demoting(&p, 0, &[3, 2000]);
        assert_eq!(double.outcome, FecOutcome::Uncorrectable);
        assert!(!demoted, "honest decoder give-up is not a demotion");
    }

    #[test]
    fn triple_flip_miscorrections_are_demoted_to_uncorrectable() {
        // Three flips have odd parity, so SEC-DED sees a "single" error and
        // may repair the wrong bit. Whenever the decoder claims Corrected
        // with wrong bytes, the demoting API must refuse to pass it off.
        let ch = Channel::ideal(LatencyModel::fixed(0));
        let p = packet(9);
        let mut demotions = 0;
        for a in 0..24usize {
            let bits = [a, a + 311, a + 997];
            let (d, demoted) = ch.transmit_with_flips_demoting(&p, 0, &bits);
            if demoted {
                demotions += 1;
                assert_eq!(
                    d.outcome,
                    FecOutcome::Uncorrectable,
                    "demotion must surface as uncorrectable"
                );
            }
            assert!(
                !matches!(d.outcome, FecOutcome::Corrected { .. }) || d.packet.payload == p.payload,
                "no Corrected outcome may carry wrong bytes"
            );
        }
        assert!(
            demotions > 0,
            "expected at least one miscorrection in 24 tries"
        );
    }

    #[test]
    fn targeted_no_flips_is_clean() {
        let ch = Channel::ideal(LatencyModel::fixed(0));
        let p = packet(6);
        let d = ch.transmit_with_flips(&p, 0, &[]);
        assert_eq!(d.outcome, FecOutcome::Clean);
        assert_eq!(d.packet, p);
    }
}
