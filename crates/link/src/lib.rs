//! Chip-to-chip (C2C) link model: serialization, latency jitter, and
//! forward error correction.
//!
//! Paper §2.3 describes the physical links (4 lanes × 25 Gbps low-swing
//! differential signaling) and §4.5 the reliability strategy: **forward
//! error correction on every link** instead of link-layer retry, because a
//! retry would change packet arrival times and break determinism.
//!
//! The model decomposes as:
//!
//! * [`latency::LatencyModel`] — per-link one-way latency distribution
//!   (base cycles by cable class + bounded jitter). This is the quantity
//!   the HAC characterization procedure of paper §3.1 / Table 2 estimates.
//! * [`fec`] — an honest single-error-correct / double-error-detect code
//!   over the 320-byte payload, fitting in the 4 check bytes of the wire
//!   format (`tsm-isa::packet`).
//! * [`channel::Channel`] — a point-to-point link tying both together with
//!   a bit-error-rate model, producing deterministic delivery times given a
//!   seeded RNG.

pub mod channel;
pub mod fec;
pub mod latency;
pub mod meter;

pub use channel::{Channel, Delivery};
pub use fec::{FecCodeword, FecOutcome};
pub use latency::{LatencyModel, LatencyStats};
pub use meter::LinkMeter;
