//! Property-based tests for the FEC code and the channel.

// In offline dev environments the proptest stub's `proptest!` macro
// expands to nothing, making the helpers and imports below look unused;
// the real proptest uses all of them.
#![allow(dead_code, unused_imports)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsm_isa::packet::WirePacket;
use tsm_isa::Vector;
use tsm_link::fec::{decode, FecCodeword, FecOutcome, PAYLOAD_BITS};
use tsm_link::{Channel, LatencyModel};

proptest! {
    /// SEC: any single-bit error on any payload is corrected exactly.
    #[test]
    fn any_single_bit_error_corrected(
        payload in prop::collection::vec(any::<u8>(), 320),
        bit in 0usize..PAYLOAD_BITS,
    ) {
        let mut arr = [0u8; 320];
        arr.copy_from_slice(&payload);
        let cw = FecCodeword::encode(&arr);
        let original = arr;
        arr[bit / 8] ^= 1 << (bit % 8);
        let outcome = decode(&mut arr, cw);
        prop_assert_eq!(outcome, FecOutcome::Corrected { bit });
        prop_assert_eq!(arr, original);
    }

    /// DED: any double-bit error is detected, never miscorrected.
    #[test]
    fn any_double_bit_error_detected(
        payload in prop::collection::vec(any::<u8>(), 320),
        a in 0usize..PAYLOAD_BITS,
        b in 0usize..PAYLOAD_BITS,
    ) {
        prop_assume!(a != b);
        let mut arr = [0u8; 320];
        arr.copy_from_slice(&payload);
        let cw = FecCodeword::encode(&arr);
        arr[a / 8] ^= 1 << (a % 8);
        arr[b / 8] ^= 1 << (b % 8);
        prop_assert_eq!(decode(&mut arr, cw), FecOutcome::Uncorrectable);
    }

    /// The codeword byte packing roundtrips.
    #[test]
    fn codeword_bytes_roundtrip(payload in prop::collection::vec(any::<u8>(), 320)) {
        let mut arr = [0u8; 320];
        arr.copy_from_slice(&payload);
        let cw = FecCodeword::encode(&arr);
        prop_assert_eq!(FecCodeword::from_bytes(cw.to_bytes()), Some(cw));
    }

    /// Channel arrival time = inject + serialization + latency, and the
    /// latency always respects the model's clamps.
    #[test]
    fn arrival_times_respect_bounds(seed: u64, inject in 0u64..1_000_000) {
        let model = LatencyModel::for_class(tsm_topology::CableClass::IntraNode);
        let ch = Channel::ideal(model.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let d = ch.transmit(&WirePacket::data(1, Vector::splat(3)), inject, &mut rng);
        let latency = d.arrival_cycle - inject - ch.serialization_cycles();
        prop_assert!(latency >= model.best_case());
        prop_assert!(latency <= model.worst_case());
        prop_assert_eq!(d.outcome, FecOutcome::Clean);
    }

    /// On an error-free channel the delivered payload is bit-exact.
    #[test]
    fn clean_channel_preserves_payload(
        seed: u64,
        payload in prop::collection::vec(any::<u8>(), 320),
    ) {
        let ch = Channel::ideal(LatencyModel::fixed(100));
        let mut rng = StdRng::seed_from_u64(seed);
        let v = Vector::from_slice(&payload).unwrap();
        let d = ch.transmit(&WirePacket::data(9, v.clone()), 0, &mut rng);
        prop_assert_eq!(d.packet.payload, v);
    }
}
