//! Property-based tests for the chip executor and VXM semantics.

// In offline dev environments the proptest stub's `proptest!` macro
// expands to nothing, making the helpers and imports below look unused;
// the real proptest uses all of them.
#![allow(dead_code, unused_imports)]

use proptest::prelude::*;
use tsm_chip::exec::{ChipProgram, ChipSim};
use tsm_chip::vxm::{execute, from_f32_lanes, rsqrt_approx, to_f32_lanes, F32_LANES};
use tsm_isa::instr::{Instruction, VectorOpcode};
use tsm_isa::{Direction, StreamId, Vector};

fn lanes_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0e6f32..1.0e6, F32_LANES)
}

proptest! {
    /// FP32 lane packing roundtrips for arbitrary lane values.
    #[test]
    fn lane_roundtrip(lanes in lanes_strategy()) {
        let mut arr = [0f32; F32_LANES];
        arr.copy_from_slice(&lanes);
        let v = from_f32_lanes(&arr);
        prop_assert_eq!(to_f32_lanes(&v).to_vec(), lanes);
    }

    /// Add/Sub are inverse operations lane-wise.
    #[test]
    fn add_sub_inverse(a in lanes_strategy(), b in lanes_strategy()) {
        let mut la = [0f32; F32_LANES];
        la.copy_from_slice(&a);
        let mut lb = [0f32; F32_LANES];
        lb.copy_from_slice(&b);
        let va = from_f32_lanes(&la);
        let vb = from_f32_lanes(&lb);
        let sum = execute(VectorOpcode::Add, &va, &vb);
        let back = execute(VectorOpcode::Sub, &sum, &vb);
        for ((x, y), bv) in to_f32_lanes(&back).iter().zip(a.iter()).zip(b.iter()) {
            // fp32 rounding: the absorbed bits scale with |b| (catastrophic
            // cancellation when |b| >> |a| is correct float behaviour)
            let tol = (y.abs() + bv.abs()) * 1e-6 + 1e-6;
            prop_assert!((x - y).abs() <= tol, "x={x} y={y} b={bv}");
        }
    }

    /// rsqrt approximation is within 1e-5 relative error over 6 decades.
    #[test]
    fn rsqrt_accuracy(x in 1e-6f32..1e6) {
        let got = rsqrt_approx(x);
        let want = 1.0 / x.sqrt();
        prop_assert!(((got - want) / want).abs() < 1e-5, "x={x} got={got} want={want}");
    }

    /// A generated read→permute→write chain executes and moves the exact
    /// bytes for any payload and any legal slice/offset.
    #[test]
    fn read_permute_write_moves_exact_bytes(
        payload in prop::collection::vec(any::<u8>(), 320),
        src_slice in 0u8..88,
        dst_slice in 0u8..88,
        offset in 0u16..4096,
    ) {
        let v = Vector::from_slice(&payload).unwrap();
        let mut sim = ChipSim::new();
        sim.preload(src_slice, offset, v.clone());
        let s0 = StreamId::new(0).unwrap();
        let s1 = StreamId::new(1).unwrap();
        let prog = ChipProgram::new()
            .at(0, Instruction::Read { slice: src_slice, offset, stream: s0, dir: Direction::East })
            .at(10, Instruction::Permute { input: s0, output: s1 })
            .at(20, Instruction::Write { slice: dst_slice, offset, stream: s1 });
        sim.run(&prog).unwrap();
        prop_assert_eq!(sim.sram(dst_slice, offset), Some(&v));
    }

    /// Back-to-back sends at any legal spacing ≥1 cycle execute; the
    /// emissions preserve order and payloads.
    #[test]
    fn send_train_preserves_order(
        count in 1usize..40,
        spacing in 1u64..100,
        port in 0u8..11,
    ) {
        let mut sim = ChipSim::new();
        let s = StreamId::new(3).unwrap();
        let mut prog = ChipProgram::new();
        for i in 0..count {
            let t = 10 + i as u64 * (spacing + 5);
            prog.push(t, Instruction::Read {
                slice: 0, offset: i as u16, stream: s, dir: Direction::East,
            });
            prog.push(t + 5, Instruction::Send { port, stream: s });
        }
        for i in 0..count {
            sim.preload(0, i as u16, Vector::splat(i as u8));
        }
        sim.run(&prog).unwrap();
        prop_assert_eq!(sim.emissions().len(), count);
        for (i, e) in sim.emissions().iter().enumerate() {
            prop_assert_eq!(e.vector.as_ref(), &Vector::splat(i as u8));
            prop_assert_eq!(e.port, port);
        }
    }
}
