//! Matrix execution module timing: the paper's GEMM decomposition model.
//!
//! "the compiler decomposes a matrix multiply into `[1×K]×[K×320]`
//! sub-operations, where K=\[160,320\] i.e. the vector lengths of the
//! hardware for FP16 and int8 respectively. Additionally, a TSP can run two
//! FP16 or four int8 sub-operations each cycle." (paper §5.2)
//!
//! Utilization losses come from two sources:
//!
//! * **padding quantization** — dimensions that are not multiples of
//!   K / 320 waste part of the last tile (this is all that matters at the
//!   Fig 13 shapes, keeping TSP utilization ≥ 80 % across arbitrary
//!   matrix sizes, in contrast to a GPU's wave quantization);
//! * **weight installation** — each `[K×320]` weight tile takes K cycles
//!   to load into the array. Installation streams concurrently with
//!   compute (double-buffered), so it only binds when there are too few
//!   activation rows to hide it — the batch-1 vector-matrix regime of
//!   LSTMs, where MXM utilization collapses.

use crate::spec::{mxm_k, ChipSpec};
use tsm_isa::ElemType;

/// A GEMM `[M×N] × [N×L]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of the first operand.
    pub m: u64,
    /// Inner (contraction) dimension.
    pub n: u64,
    /// Columns of the second operand.
    pub l: u64,
}

impl GemmShape {
    /// Creates a shape; all dimensions must be nonzero.
    pub fn new(m: u64, n: u64, l: u64) -> Self {
        assert!(m > 0 && n > 0 && l > 0, "GEMM dimensions must be nonzero");
        GemmShape { m, n, l }
    }

    /// Useful floating-point operations (multiply + add).
    pub fn flops(&self) -> u64 {
        2 * self.m * self.n * self.l
    }

    /// Bytes of the second (weight) operand.
    pub fn weight_bytes(&self, ty: ElemType) -> u64 {
        self.n * self.l * ty.bytes() as u64
    }

    /// Bytes of the first (activation) operand.
    pub fn activation_bytes(&self, ty: ElemType) -> u64 {
        self.m * self.n * ty.bytes() as u64
    }

    /// Bytes of the result, assuming same-width output.
    pub fn output_bytes(&self, ty: ElemType) -> u64 {
        self.m * self.l * ty.bytes() as u64
    }
}

/// Timing of one GEMM on a single TSP's MXM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmTiming {
    /// `[1×K]×[K×320]` sub-operations issued (including padding waste).
    pub subops: u64,
    /// Weight-installation cycles (K per tile), overlapped with compute.
    pub install_cycles: u64,
    /// MXM-busy cycles: max(compute, install) under double buffering.
    pub cycles: u64,
    /// Fraction of issued MAC capacity doing useful work (0, 1].
    pub utilization: f64,
    /// Realized throughput in TFLOPs at the production clock.
    pub realized_tflops: f64,
}

/// Computes the MXM timing of `shape` at element type `ty`.
pub fn gemm_timing(shape: GemmShape, ty: ElemType) -> GemmTiming {
    let spec = ChipSpec::production();
    let k = mxm_k(ty) as u64;
    let n_tiles = shape.n.div_ceil(k);
    let l_tiles = shape.l.div_ceil(320);
    let subops = shape.m * n_tiles * l_tiles;
    let compute = subops.div_ceil(ty.mxm_subops_per_cycle() as u64).max(1);
    // Each [K×320] weight tile loads one row per cycle (K cycles) and can
    // stream in behind the previous tile's compute.
    let install_cycles = n_tiles * l_tiles * k;
    let cycles = compute.max(install_cycles);
    let peak_per_cycle = spec.peak_flops_per_cycle(ty);
    let utilization = shape.flops() as f64 / (cycles as f64 * peak_per_cycle);
    let realized_tflops = utilization * spec.peak_tflops(ty);
    GemmTiming {
        subops,
        install_cycles,
        cycles,
        utilization,
        realized_tflops,
    }
}

/// Seconds to execute `shape` on one TSP.
pub fn gemm_seconds(shape: GemmShape, ty: ElemType) -> f64 {
    gemm_timing(shape, ty).cycles as f64 / ChipSpec::production().clock_hz as f64
}

/// The Fig 13 sweep: utilization of `[2304×4096]×[4096×N]` for a range of
/// N values, as in the paper's comparison against an A100 (after \[33\]).
pub fn fig13_sweep(n_values: impl IntoIterator<Item = u64>) -> Vec<(u64, f64)> {
    n_values
        .into_iter()
        .map(|n| {
            (
                n,
                gemm_timing(GemmShape::new(2304, 4096, n), ElemType::F16).utilization,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tile_multiple_has_peak_utilization_shapewise() {
        // N multiple of 160, L multiple of 320, and enough rows to hide
        // the weight installs: utilization exactly 1.0.
        let t = gemm_timing(GemmShape::new(640, 320, 640), ElemType::F16);
        assert!((t.utilization - 1.0).abs() < 1e-12, "{}", t.utilization);
        assert_eq!(t.subops, 640 * 2 * 2);
        assert_eq!(t.cycles, 1280);
        assert_eq!(t.install_cycles, 2 * 2 * 160);
    }

    #[test]
    fn padding_quantization_costs_utilization() {
        // L = 321 wastes almost half the second tile column.
        let t = gemm_timing(GemmShape::new(640, 320, 321), ElemType::F16);
        assert!(
            t.utilization > 0.50 && t.utilization < 0.51,
            "{}",
            t.utilization
        );
    }

    #[test]
    fn batch_one_vector_matrix_is_install_bound() {
        // [1×1024]×[1024×4096]: nothing hides the 91 tile installs, so the
        // MXM idles — the LSTM batch-1 regime.
        let t = gemm_timing(GemmShape::new(1, 1024, 4096), ElemType::F16);
        assert_eq!(t.cycles, t.install_cycles);
        assert!(t.utilization < 0.01, "{}", t.utilization);
    }

    #[test]
    fn fig13_tsp_utilization_stays_above_80_percent() {
        // Paper Fig 13: "at least 80% utilization consistently at different
        // matrix sizes" for [2304×4096]×[4096×N], N = 1376..3500.
        for (n, util) in fig13_sweep((1376..=3500).step_by(31)) {
            assert!(util >= 0.80, "N={n}: utilization {util}");
        }
    }

    #[test]
    fn int8_compute_rate_is_4x_fp16() {
        // Enough rows to stay compute-bound in both precisions.
        let shape = GemmShape::new(2560, 640, 640);
        let f = gemm_timing(shape, ElemType::F16);
        let i = gemm_timing(shape, ElemType::I8);
        // int8: K doubles (half the N tiles) and subops/cycle doubles.
        assert_eq!(i.cycles * 4, f.cycles);
    }

    #[test]
    fn flops_and_byte_accounting() {
        let s = GemmShape::new(10, 20, 30);
        assert_eq!(s.flops(), 12_000);
        assert_eq!(s.weight_bytes(ElemType::F16), 1200);
        assert_eq!(s.activation_bytes(ElemType::F16), 400);
        assert_eq!(s.output_bytes(ElemType::F16), 600);
    }

    #[test]
    fn gemm_seconds_scales_with_work() {
        let small = gemm_seconds(GemmShape::new(3200, 320, 320), ElemType::F16);
        let large = gemm_seconds(GemmShape::new(6400, 320, 320), ElemType::F16);
        assert!((large / small - 2.0).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_rejected() {
        let _ = GemmShape::new(0, 1, 1);
    }

    #[test]
    fn realized_tflops_bounded_by_peak() {
        let t = gemm_timing(GemmShape::new(2304, 4096, 2048), ElemType::F16);
        assert!(t.realized_tflops <= ChipSpec::production().peak_tflops(ElemType::F16));
        assert!(t.realized_tflops > 100.0);
    }
}
