//! Building real GEMM chip programs: weights installed row by row, then
//! activations streamed through the MXM (paper §5.2's execution model,
//! at the simulator's FP32-lane granularity of 80 lanes per vector).

use crate::exec::ChipProgram;
use crate::vxm::{from_f32_lanes, F32_LANES};
use tsm_isa::instr::Instruction;
use tsm_isa::{Direction, StreamId, Vector};

/// SRAM layout of one on-chip GEMM: `C[m×80] = A[m×K] × W[K×80]`,
/// `K ≤ 80`, matrices stored one FP32-lane row per offset.
#[derive(Debug, Clone, Copy)]
pub struct GemmLayout {
    /// Slice holding the K weight rows.
    pub weight_slice: u8,
    /// Slice holding the m activation rows.
    pub act_slice: u8,
    /// Slice receiving the m output rows.
    pub out_slice: u8,
    /// Weight (inner) rows, ≤ 80.
    pub k: u16,
    /// Activation (outer) rows.
    pub m: u16,
}

/// Per-row pipeline stride: Read (5) + MatMul (1) + Write (5) with slack,
/// keeping the single MEM unit conflict-free.
pub const ROW_STRIDE: u64 = 16;

/// Builds the program: phase 1 installs the K weight rows, phase 2 streams
/// each activation row through the array and writes the product row.
/// Returns the program and the cycle at which the last write retires.
pub fn gemm_program(layout: GemmLayout, start: u64) -> (ChipProgram, u64) {
    assert!(
        layout.k as usize <= F32_LANES,
        "K must fit the 80-lane array"
    );
    let s_w = StreamId::new(30).expect("stream 30");
    let s_a = StreamId::new(28).expect("stream 28");
    let s_o = StreamId::new(29).expect("stream 29");
    let mut prog = ChipProgram::new();

    // Phase 1 — install weights.
    for i in 0..layout.k {
        let t = start + i as u64 * 8;
        prog.push(
            t,
            Instruction::Read {
                slice: layout.weight_slice,
                offset: i,
                stream: s_w,
                dir: Direction::East,
            },
        );
        prog.push(t + 6, Instruction::InstallWeight { stream: s_w });
    }
    let phase2 = start + layout.k as u64 * 8 + 8;

    // Phase 2 — stream activations.
    for r in 0..layout.m {
        let t = phase2 + r as u64 * ROW_STRIDE;
        prog.push(
            t,
            Instruction::Read {
                slice: layout.act_slice,
                offset: r,
                stream: s_a,
                dir: Direction::East,
            },
        );
        prog.push(
            t + 6,
            Instruction::MatMul {
                input: s_a,
                output: s_o,
            },
        );
        prog.push(
            t + 8,
            Instruction::Write {
                slice: layout.out_slice,
                offset: r,
                stream: s_o,
            },
        );
    }
    let end = phase2 + layout.m as u64 * ROW_STRIDE + 13;
    (prog, end)
}

/// Packs an `rows × cols` (cols ≤ 80) f32 matrix into per-row vectors
/// (unused lanes zero).
pub fn pack_matrix(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32) -> Vec<Vector> {
    assert!(cols <= F32_LANES);
    (0..rows)
        .map(|r| {
            let mut lanes = [0f32; F32_LANES];
            for (c, lane) in lanes.iter_mut().enumerate().take(cols) {
                *lane = f(r, c);
            }
            from_f32_lanes(&lanes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ChipSim;
    use crate::vxm::to_f32_lanes;

    /// Reference product at f64 for comparison.
    fn reference(m: usize, k: usize, n: usize, a: &[Vec<f32>], w: &[Vec<f32>]) -> Vec<Vec<f64>> {
        (0..m)
            .map(|r| {
                (0..n)
                    .map(|c| (0..k).map(|i| a[r][i] as f64 * w[i][c] as f64).sum())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn on_chip_gemm_matches_reference() {
        let (m, k, n) = (12usize, 80usize, 80usize);
        let a: Vec<Vec<f32>> = (0..m)
            .map(|r| (0..k).map(|c| ((r * 7 + c) % 5) as f32 - 2.0).collect())
            .collect();
        let w: Vec<Vec<f32>> = (0..k)
            .map(|r| (0..n).map(|c| ((r + 3 * c) % 7) as f32 * 0.25).collect())
            .collect();

        let mut sim = ChipSim::new();
        for (i, row) in pack_matrix(k, n, |r, c| w[r][c]).into_iter().enumerate() {
            sim.preload(0, i as u16, row);
        }
        for (i, row) in pack_matrix(m, k, |r, c| a[r][c]).into_iter().enumerate() {
            sim.preload(1, i as u16, row);
        }
        let layout = GemmLayout {
            weight_slice: 0,
            act_slice: 1,
            out_slice: 2,
            k: k as u16,
            m: m as u16,
        };
        let (prog, end) = gemm_program(layout, 0);
        let retire = sim.run(&prog).unwrap();
        assert!(retire <= end);

        let expect = reference(m, k, n, &a, &w);
        for (r, expect_row) in expect.iter().enumerate().take(m) {
            let got = to_f32_lanes(sim.sram(2, r as u16).unwrap());
            for (c, &want) in expect_row.iter().enumerate().take(n) {
                assert!(
                    (got[c] as f64 - want).abs() < 1e-3,
                    "C[{r}][{c}] = {} vs {}",
                    got[c],
                    want
                );
            }
        }
    }

    #[test]
    fn partial_k_uses_only_installed_rows() {
        // K = 3: the product only sums the three installed weight rows.
        let mut sim = ChipSim::new();
        for (i, row) in pack_matrix(3, 4, |r, c| (r * 4 + c) as f32)
            .into_iter()
            .enumerate()
        {
            sim.preload(0, i as u16, row);
        }
        sim.preload(1, 0, pack_matrix(1, 3, |_, c| (c + 1) as f32).remove(0));
        let layout = GemmLayout {
            weight_slice: 0,
            act_slice: 1,
            out_slice: 2,
            k: 3,
            m: 1,
        };
        let (prog, _) = gemm_program(layout, 0);
        sim.run(&prog).unwrap();
        let got = to_f32_lanes(sim.sram(2, 0).unwrap());
        // out[c] = 1*W[0][c] + 2*W[1][c] + 3*W[2][c]
        for (c, &g) in got.iter().enumerate().take(4) {
            let want = (c as f32) + 2.0 * (4 + c) as f32 + 3.0 * (8 + c) as f32;
            assert_eq!(g, want, "c={c}");
        }
        // untouched lanes stay zero
        assert_eq!(got[4], 0.0);
    }

    #[test]
    fn matmul_without_weights_is_rejected() {
        let mut sim = ChipSim::new();
        sim.preload(1, 0, Vector::splat(1));
        let s = StreamId::new(0).unwrap();
        let prog = ChipProgram::new()
            .at(
                0,
                Instruction::Read {
                    slice: 1,
                    offset: 0,
                    stream: s,
                    dir: Direction::East,
                },
            )
            .at(
                6,
                Instruction::MatMul {
                    input: s,
                    output: StreamId::new(1).unwrap(),
                },
            );
        assert!(matches!(
            sim.run(&prog),
            Err(crate::exec::ExecError::NoWeightsInstalled { cycle: 6 })
        ));
    }

    #[test]
    fn reinstalling_weights_starts_a_fresh_tile() {
        // Install 80 rows, then install 1 more: the array resets, so the
        // product sees only the final row.
        let mut sim = ChipSim::new();
        for i in 0..81u16 {
            sim.preload(
                0,
                i,
                pack_matrix(1, 2, |_, c| (i as usize * 2 + c) as f32).remove(0),
            );
        }
        sim.preload(1, 0, pack_matrix(1, 1, |_, _| 1.0).remove(0));
        let s_w = StreamId::new(30).unwrap();
        let s_a = StreamId::new(28).unwrap();
        let s_o = StreamId::new(29).unwrap();
        let mut prog = ChipProgram::new();
        for i in 0..81u16 {
            let t = i as u64 * 8;
            prog.push(
                t,
                Instruction::Read {
                    slice: 0,
                    offset: i,
                    stream: s_w,
                    dir: Direction::East,
                },
            );
            prog.push(t + 6, Instruction::InstallWeight { stream: s_w });
        }
        let t = 81 * 8 + 8;
        prog.push(
            t,
            Instruction::Read {
                slice: 1,
                offset: 0,
                stream: s_a,
                dir: Direction::East,
            },
        );
        prog.push(
            t + 6,
            Instruction::MatMul {
                input: s_a,
                output: s_o,
            },
        );
        prog.push(
            t + 8,
            Instruction::Write {
                slice: 2,
                offset: 0,
                stream: s_o,
            },
        );
        sim.run(&prog).unwrap();
        let got = to_f32_lanes(sim.sram(2, 0).unwrap());
        // only row 80 (values 160, 161) is installed
        assert_eq!(got[0], 160.0);
        assert_eq!(got[1], 161.0);
    }
}
