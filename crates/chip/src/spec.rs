//! Chip capacity constants.

use tsm_isa::timing::CLOCK_HZ;
use tsm_isa::ElemType;

/// Static description of one TSP's compute capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipSpec {
    /// Core clock in Hz.
    pub clock_hz: u64,
    /// Vector length in bytes.
    pub vector_bytes: usize,
    /// Streams per direction.
    pub streams_per_direction: usize,
}

impl ChipSpec {
    /// The production configuration: 900 MHz, 320-byte vectors, 32 streams
    /// per direction.
    pub fn production() -> Self {
        ChipSpec {
            clock_hz: CLOCK_HZ,
            vector_bytes: 320,
            streams_per_direction: 32,
        }
    }

    /// Peak multiply-accumulate FLOPs per cycle for an element type: each
    /// `[1×K]×[K×320]` sub-op is `K × 320` MACs = `2·K·320` FLOPs, and the
    /// MXM retires [`ElemType::mxm_subops_per_cycle`] of them per cycle.
    pub fn peak_flops_per_cycle(&self, ty: ElemType) -> f64 {
        let k = mxm_k(ty) as f64;
        2.0 * k * 320.0 * ty.mxm_subops_per_cycle() as f64
    }

    /// Peak throughput in TFLOPs (10¹² FLOPs/s) for an element type.
    ///
    /// FP16: 2 · 160 · 320 · 2 = 204,800 FLOPs/cycle × 900 MHz ≈ 184 TFLOPs,
    /// matching the TSP's advertised FP16 capability.
    pub fn peak_tflops(&self, ty: ElemType) -> f64 {
        self.peak_flops_per_cycle(ty) * self.clock_hz as f64 / 1e12
    }
}

/// The MXM inner dimension for an element type: "K=\[160,320\] i.e. the
/// vector lengths of the hardware for FP16 and int8 respectively"
/// (paper §5.2).
pub fn mxm_k(ty: ElemType) -> usize {
    match ty {
        ElemType::F16 => 160,
        ElemType::I8 => 320,
        ElemType::F32 => 80,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_spec_constants() {
        let s = ChipSpec::production();
        assert_eq!(s.clock_hz, 900_000_000);
        assert_eq!(s.vector_bytes, 320);
        assert_eq!(s.streams_per_direction, 32);
    }

    #[test]
    fn fp16_peak_is_about_184_tflops() {
        let s = ChipSpec::production();
        let t = s.peak_tflops(ElemType::F16);
        assert!((t - 184.32).abs() < 0.1, "got {t}");
    }

    #[test]
    fn int8_peak_doubles_fp16() {
        let s = ChipSpec::production();
        // int8: 2·320·320·4 = 819,200 ops/cycle — 4x the FP16 MACs/cycle,
        // 2x the FP16 "FLOPs" rate given K doubles and subops double.
        let i8 = s.peak_flops_per_cycle(ElemType::I8);
        let f16 = s.peak_flops_per_cycle(ElemType::F16);
        assert_eq!(i8, 4.0 * f16);
    }

    #[test]
    fn mxm_k_matches_paper() {
        assert_eq!(mxm_k(ElemType::F16), 160);
        assert_eq!(mxm_k(ElemType::I8), 320);
    }
}
