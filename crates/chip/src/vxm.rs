//! Vector execution module: pointwise ALU semantics on FP32 lanes.
//!
//! The VXM chains pointwise ALUs so data is modified "in a single fly-by"
//! (paper §5.5). Vectors are interpreted as 80 little-endian FP32 lanes
//! here; the Cholesky kernel of §5.5 (subtract, rsqrt, scale) runs on
//! these semantics.

use tsm_isa::instr::VectorOpcode;
use tsm_isa::vector::VECTOR_BYTES;
use tsm_isa::Vector;

/// FP32 lanes per vector.
pub const F32_LANES: usize = VECTOR_BYTES / 4;

/// Reads the FP32 lanes of a vector.
pub fn to_f32_lanes(v: &Vector) -> [f32; F32_LANES] {
    let mut out = [0f32; F32_LANES];
    let bytes = v.as_bytes();
    for (i, lane) in out.iter_mut().enumerate() {
        *lane = f32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    out
}

/// Builds a vector from FP32 lanes.
pub fn from_f32_lanes(lanes: &[f32; F32_LANES]) -> Vector {
    let mut bytes = [0u8; VECTOR_BYTES];
    for (i, lane) in lanes.iter().enumerate() {
        bytes[i * 4..i * 4 + 4].copy_from_slice(&lane.to_le_bytes());
    }
    Vector::from_slice(&bytes).expect("length exact")
}

/// The TSP's custom reciprocal-square-root approximation (paper §5.5:
/// "rsqrt is a custom approximation of the reciprocal square root
/// function"): an exponent-halving initial guess refined by two
/// Newton–Raphson iterations, accurate to ~1e-6 relative error.
pub fn rsqrt_approx(x: f32) -> f32 {
    if x <= 0.0 {
        return f32::NAN;
    }
    let i = x.to_bits();
    let guess = f32::from_bits(0x5f37_59df - (i >> 1));
    let half = 0.5 * x;
    let mut y = guess;
    y = y * (1.5 - half * y * y);
    y = y * (1.5 - half * y * y);
    y
}

/// Executes one pointwise VXM op. `b` is ignored by unary opcodes.
pub fn execute(op: VectorOpcode, a: &Vector, b: &Vector) -> Vector {
    let la = to_f32_lanes(a);
    let lb = to_f32_lanes(b);
    let mut out = [0f32; F32_LANES];
    match op {
        VectorOpcode::Add => {
            for i in 0..F32_LANES {
                out[i] = la[i] + lb[i];
            }
        }
        VectorOpcode::Sub => {
            for i in 0..F32_LANES {
                out[i] = la[i] - lb[i];
            }
        }
        VectorOpcode::Mul => {
            for i in 0..F32_LANES {
                out[i] = la[i] * lb[i];
            }
        }
        VectorOpcode::Rsqrt => {
            for i in 0..F32_LANES {
                out[i] = rsqrt_approx(la[i]);
            }
        }
        VectorOpcode::Splat => {
            out = [la[0]; F32_LANES];
        }
    }
    from_f32_lanes(&out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(f: impl Fn(usize) -> f32) -> Vector {
        let mut lanes = [0f32; F32_LANES];
        for (i, l) in lanes.iter_mut().enumerate() {
            *l = f(i);
        }
        from_f32_lanes(&lanes)
    }

    #[test]
    fn lane_roundtrip() {
        let v = vec_of(|i| i as f32 * 1.5 - 3.0);
        let lanes = to_f32_lanes(&v);
        assert_eq!(from_f32_lanes(&lanes), v);
    }

    #[test]
    fn add_sub_mul_lanewise() {
        let a = vec_of(|i| i as f32);
        let b = vec_of(|_| 2.0);
        assert_eq!(to_f32_lanes(&execute(VectorOpcode::Add, &a, &b))[5], 7.0);
        assert_eq!(to_f32_lanes(&execute(VectorOpcode::Sub, &a, &b))[5], 3.0);
        assert_eq!(to_f32_lanes(&execute(VectorOpcode::Mul, &a, &b))[5], 10.0);
    }

    #[test]
    fn rsqrt_is_accurate_to_1e6_relative() {
        for x in [0.25f32, 1.0, 2.0, 9.0, 1e4, 1e-4, 123.456] {
            let got = rsqrt_approx(x);
            let want = 1.0 / x.sqrt();
            assert!(((got - want) / want).abs() < 1e-5, "x={x}: {got} vs {want}");
        }
    }

    #[test]
    fn rsqrt_of_nonpositive_is_nan() {
        assert!(rsqrt_approx(0.0).is_nan());
        assert!(rsqrt_approx(-4.0).is_nan());
    }

    #[test]
    fn splat_broadcasts_lane_zero() {
        let a = vec_of(|i| if i == 0 { 42.0 } else { -1.0 });
        let out = to_f32_lanes(&execute(VectorOpcode::Splat, &a, &a));
        assert!(out.iter().all(|&x| x == 42.0));
    }

    #[test]
    fn cholesky_inner_step_composition() {
        // paper §5.5: updates = (S - U) * splat(rsqrt(pivot))
        let s = vec_of(|i| (i + 4) as f32);
        let u = vec_of(|_| 0.0);
        let diff = execute(VectorOpcode::Sub, &s, &u);
        let r = execute(VectorOpcode::Rsqrt, &diff, &diff);
        let splat = execute(VectorOpcode::Splat, &r, &r);
        let updates = execute(VectorOpcode::Mul, &diff, &splat);
        let lanes = to_f32_lanes(&updates);
        // lane 0: pivot / sqrt(pivot) = sqrt(pivot) = 2.0
        assert!((lanes[0] - 2.0).abs() < 1e-4);
        // lane i: (i+4)/2
        assert!((lanes[6] - 5.0).abs() < 1e-3);
    }
}
