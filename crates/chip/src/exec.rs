//! Deterministic chip executor.
//!
//! A chip program is a *static schedule*: every instruction carries the
//! cycle it issues on. The executor replays the schedule, maintaining
//! architectural state (SRAM, streams, C2C ports) and *verifying* the
//! schedule's legality — a scheduled instruction arriving while its
//! functional unit is parked by SYNC, or two writers hitting a stream on
//! the same cycle, is a compiler bug surfaced as an [`ExecError`], never a
//! silent dynamic stall. This mirrors the hardware contract of paper §3:
//! "the TSP hardware-software interface exposes all architecturally-visible
//! state".

use crate::vxm;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use tsm_isa::instr::{FunctionalUnit, Instruction};
use tsm_isa::timing::HAC_PERIOD;
use tsm_isa::{StreamId, Vector};

/// A reference-counted 320-byte payload.
///
/// Vectors flow through SRAM, streams, deliveries and emissions by `Arc`
/// handle: moving a payload through a multi-hop forwarding chain costs one
/// pointer clone per step instead of a 320-byte copy per step. The bytes
/// themselves are immutable once wrapped — every producing instruction
/// allocates a fresh vector — so sharing is safe and bit-exact.
pub type Payload = Arc<Vector>;

/// The C2C port an instruction occupies (0 for non-C2C instructions,
/// which each own a single engine).
fn instruction_port(instr: &Instruction) -> u8 {
    match instr {
        Instruction::Transmit { port }
        | Instruction::Receive { port, .. }
        | Instruction::Send { port, .. } => *port,
        _ => 0,
    }
}

/// An instruction bound to its issue cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedInstruction {
    /// Cycle the instruction issues.
    pub cycle: u64,
    /// The instruction.
    pub instr: Instruction,
}

/// A static schedule for one chip.
#[derive(Debug, Clone, Default)]
pub struct ChipProgram {
    instrs: Vec<TimedInstruction>,
}

impl ChipProgram {
    /// An empty program.
    pub fn new() -> Self {
        ChipProgram::default()
    }

    /// Schedules `instr` at `cycle` (builder style).
    pub fn at(mut self, cycle: u64, instr: Instruction) -> Self {
        self.instrs.push(TimedInstruction { cycle, instr });
        self
    }

    /// Adds an instruction in place.
    pub fn push(&mut self, cycle: u64, instr: Instruction) {
        self.instrs.push(TimedInstruction { cycle, instr });
    }

    /// All instructions, sorted by (cycle, unit order).
    pub fn sorted(&self) -> Vec<TimedInstruction> {
        let mut v = self.instrs.clone();
        v.sort_by_key(|t| (t.cycle, t.instr.unit()));
        v
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if no instructions are scheduled.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Schedule-legality violations detected during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// An instruction was scheduled on a unit still parked by SYNC.
    UnitParked {
        /// The parked unit.
        unit: FunctionalUnit,
        /// Cycle of the offending instruction.
        cycle: u64,
    },
    /// An instruction was scheduled before the unit's previous instruction
    /// retired.
    UnitBusy {
        /// The busy unit.
        unit: FunctionalUnit,
        /// Cycle of the offending instruction.
        cycle: u64,
        /// Cycle at which the unit becomes free.
        free_at: u64,
    },
    /// Two writers produced onto the same stream on the same cycle.
    StreamConflict {
        /// The contested stream.
        stream: StreamId,
        /// The conflicting cycle.
        cycle: u64,
    },
    /// A consumer read a stream that holds no value.
    StreamEmpty {
        /// The empty stream.
        stream: StreamId,
        /// The reading cycle.
        cycle: u64,
    },
    /// A RECEIVE was scheduled for a port with no delivery by that cycle.
    NothingReceived {
        /// The port.
        port: u8,
        /// The cycle.
        cycle: u64,
    },
    /// A MatMul issued with no weights installed in the MXM array.
    NoWeightsInstalled {
        /// The offending cycle.
        cycle: u64,
    },
    /// An instruction following a DESKEW was scheduled off the epoch
    /// boundary the DESKEW stalls to.
    DeskewMisaligned {
        /// The unit.
        unit: FunctionalUnit,
        /// Scheduled cycle of the next instruction.
        scheduled: u64,
        /// The epoch boundary it must not precede.
        boundary: u64,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnitParked { unit, cycle } => {
                write!(f, "{unit:?} issued at cycle {cycle} while parked by SYNC")
            }
            ExecError::UnitBusy { unit, cycle, free_at } => {
                write!(f, "{unit:?} issued at cycle {cycle} but busy until {free_at}")
            }
            ExecError::StreamConflict { stream, cycle } => {
                write!(f, "two writers on stream {} at cycle {cycle}", stream.index())
            }
            ExecError::StreamEmpty { stream, cycle } => {
                write!(f, "stream {} read empty at cycle {cycle}", stream.index())
            }
            ExecError::NothingReceived { port, cycle } => {
                write!(f, "RECEIVE on port {port} at cycle {cycle} with no delivery")
            }
            ExecError::NoWeightsInstalled { cycle } => {
                write!(f, "MatMul at cycle {cycle} with an empty MXM weight array")
            }
            ExecError::DeskewMisaligned { unit, scheduled, boundary } => write!(
                f,
                "{unit:?}: instruction at {scheduled} precedes DESKEW boundary {boundary}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// A vector sent out a C2C port.
#[derive(Debug, Clone, PartialEq)]
pub struct Emission {
    /// Issue cycle of the SEND/TRANSMIT.
    pub cycle: u64,
    /// C2C port.
    pub port: u8,
    /// Payload (shared handle; clone is a pointer copy).
    pub vector: Payload,
}

/// Deterministic single-chip simulator.
#[derive(Debug, Clone)]
pub struct ChipSim {
    /// SRAM content, keyed by (chip slice 0..88, offset).
    sram: HashMap<(u8, u16), Payload>,
    /// Stream registers (single direction modelled; direction is a
    /// scheduling concern handled by the compiler).
    streams: Vec<Option<Payload>>,
    /// Pending inbound deliveries: port -> (arrival cycle, vector), sorted.
    inbound: BTreeMap<u8, Vec<(u64, Payload)>>,
    /// Vectors emitted on C2C ports.
    emissions: Vec<Emission>,
    /// Per-resource next-free cycle. C2C instructions occupy one port
    /// engine each (the chip has 11 independent link engines), every other
    /// unit is a single resource.
    free_at: HashMap<(FunctionalUnit, u8), u64>,
    /// Per-unit parked flag (SYNC issued, awaiting NOTIFY).
    parked: HashMap<FunctionalUnit, bool>,
    /// Per-unit pending DESKEW boundary.
    deskew_boundary: HashMap<FunctionalUnit, u64>,
    /// Weight rows currently installed in the MXM array (FP32-lane
    /// granularity: up to 80 rows of 80 lanes).
    mxm_weights: Vec<Payload>,
    /// Cycle of the last executed instruction.
    horizon: u64,
}

impl Default for ChipSim {
    fn default() -> Self {
        Self::new()
    }
}

impl ChipSim {
    /// A chip with empty SRAM and streams.
    pub fn new() -> Self {
        ChipSim {
            sram: HashMap::new(),
            streams: vec![None; tsm_isa::vector::MAX_STREAMS],
            inbound: BTreeMap::new(),
            emissions: Vec::new(),
            free_at: HashMap::new(),
            parked: HashMap::new(),
            deskew_boundary: HashMap::new(),
            mxm_weights: Vec::new(),
            horizon: 0,
        }
    }

    /// Preloads SRAM before execution (the runtime "emplaces all program
    /// collateral", paper §5.1). Accepts a plain [`Vector`] or an already
    /// shared [`Payload`] handle.
    pub fn preload(&mut self, slice: u8, offset: u16, v: impl Into<Payload>) {
        self.sram.insert((slice, offset), v.into());
    }

    /// Reads SRAM after execution.
    pub fn sram(&self, slice: u8, offset: u16) -> Option<&Vector> {
        self.sram.get(&(slice, offset)).map(|v| v.as_ref())
    }

    /// Registers an inbound delivery: `vector` arrives on `port` at
    /// `cycle`. A RECEIVE scheduled at or after `cycle` consumes it.
    /// Accepts a plain [`Vector`] or a shared [`Payload`] handle.
    pub fn deliver(&mut self, port: u8, cycle: u64, vector: impl Into<Payload>) {
        let q = self.inbound.entry(port).or_default();
        q.push((cycle, vector.into()));
        q.sort_by_key(|&(c, _)| c);
    }

    /// Vectors emitted on C2C ports during execution.
    pub fn emissions(&self) -> &[Emission] {
        &self.emissions
    }

    /// Current value on a stream.
    pub fn stream(&self, s: StreamId) -> Option<&Vector> {
        self.streams[s.index()].as_deref()
    }

    /// Cycle of the last executed instruction.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Executes a program, verifying schedule legality.
    ///
    /// Returns the cycle at which the last instruction retires.
    pub fn run(&mut self, program: &ChipProgram) -> Result<u64, ExecError> {
        let mut last_retire = 0;
        let mut stream_writes: HashMap<(usize, u64), ()> = HashMap::new();
        for ti in program.sorted() {
            let unit = ti.instr.unit();
            let cycle = ti.cycle;

            // DESKEW alignment check.
            if let Some(&boundary) = self.deskew_boundary.get(&unit) {
                if cycle < boundary {
                    return Err(ExecError::DeskewMisaligned { unit, scheduled: cycle, boundary });
                }
                self.deskew_boundary.remove(&unit);
            }
            // Parked check (NOTIFY clears all parks and may issue same cycle).
            if *self.parked.get(&unit).unwrap_or(&false)
                && !matches!(ti.instr, Instruction::Notify)
            {
                return Err(ExecError::UnitParked { unit, cycle });
            }
            // Busy check (per C2C port engine, per unit otherwise).
            let resource = (unit, instruction_port(&ti.instr));
            let free = *self.free_at.get(&resource).unwrap_or(&0);
            if cycle < free {
                return Err(ExecError::UnitBusy { unit, cycle, free_at: free });
            }

            let mut write_stream = |streams: &mut Vec<Option<Payload>>,
                                    s: StreamId,
                                    v: Payload|
             -> Result<(), ExecError> {
                if stream_writes.insert((s.index(), cycle), ()).is_some() {
                    return Err(ExecError::StreamConflict { stream: s, cycle });
                }
                streams[s.index()] = Some(v);
                Ok(())
            };

            match &ti.instr {
                Instruction::Sync => {
                    self.parked.insert(unit, true);
                }
                Instruction::Notify => {
                    for u in FunctionalUnit::ALL {
                        self.parked.insert(u, false);
                    }
                }
                Instruction::Deskew => {
                    let boundary = cycle.div_ceil(HAC_PERIOD).max(1) * HAC_PERIOD;
                    self.deskew_boundary.insert(unit, boundary);
                }
                Instruction::RuntimeDeskew { .. } => {
                    // Timing handled via min/max latency below.
                }
                Instruction::Transmit { port } => {
                    self.emissions.push(Emission {
                        cycle,
                        port: *port,
                        vector: Arc::new(Vector::zeroed()),
                    });
                }
                Instruction::Receive { port, stream } => {
                    let available = self
                        .inbound
                        .get_mut(port)
                        .and_then(|q| {
                            (!q.is_empty() && q[0].0 <= cycle).then(|| q.remove(0).1)
                        });
                    match available {
                        Some(v) => write_stream(&mut self.streams, *stream, v)?,
                        None => return Err(ExecError::NothingReceived { port: *port, cycle }),
                    }
                }
                Instruction::Send { port, stream } => {
                    let v = self.streams[stream.index()]
                        .clone()
                        .ok_or(ExecError::StreamEmpty { stream: *stream, cycle })?;
                    self.emissions.push(Emission { cycle, port: *port, vector: v });
                }
                Instruction::Read { slice, offset, stream, .. } => {
                    let v = self
                        .sram
                        .get(&(*slice, *offset))
                        .cloned()
                        .unwrap_or_else(|| Arc::new(Vector::zeroed()));
                    write_stream(&mut self.streams, *stream, v)?;
                }
                Instruction::Write { slice, offset, stream } => {
                    let v = self.streams[stream.index()]
                        .clone()
                        .ok_or(ExecError::StreamEmpty { stream: *stream, cycle })?;
                    self.sram.insert((*slice, *offset), v);
                }
                Instruction::InstallWeight { stream } => {
                    let v = self.streams[stream.index()]
                        .clone()
                        .ok_or(ExecError::StreamEmpty { stream: *stream, cycle })?;
                    // The array holds at most 80 FP32 rows; installing past
                    // capacity starts a fresh tile (the compiler reloads
                    // between tiles).
                    if self.mxm_weights.len() >= crate::vxm::F32_LANES {
                        self.mxm_weights.clear();
                    }
                    self.mxm_weights.push(v);
                }
                Instruction::MatMul { input, output } => {
                    // One [1×K]×[K×80] sub-op at FP32-lane granularity:
                    // out[j] = Σ_i in[i] · W[i][j] over the installed rows.
                    if self.mxm_weights.is_empty() {
                        return Err(ExecError::NoWeightsInstalled { cycle });
                    }
                    let v = self.streams[input.index()]
                        .clone()
                        .ok_or(ExecError::StreamEmpty { stream: *input, cycle })?;
                    let activation = crate::vxm::to_f32_lanes(&v);
                    let mut out = [0f32; crate::vxm::F32_LANES];
                    for (i, row) in self.mxm_weights.iter().enumerate() {
                        let w = crate::vxm::to_f32_lanes(row);
                        let a = activation[i];
                        if a == 0.0 {
                            continue;
                        }
                        for (o, wj) in out.iter_mut().zip(w.iter()) {
                            *o += a * wj;
                        }
                    }
                    write_stream(
                        &mut self.streams,
                        *output,
                        Arc::new(crate::vxm::from_f32_lanes(&out)),
                    )?;
                }
                Instruction::VectorOp { op, a, b, dest } => {
                    let va = self.streams[a.index()]
                        .clone()
                        .ok_or(ExecError::StreamEmpty { stream: *a, cycle })?;
                    let vb = self.streams[b.index()]
                        .clone()
                        .ok_or(ExecError::StreamEmpty { stream: *b, cycle })?;
                    let out = vxm::execute(*op, &va, &vb);
                    write_stream(&mut self.streams, *dest, Arc::new(out))?;
                }
                Instruction::Permute { input, output } => {
                    let v = self.streams[input.index()]
                        .clone()
                        .ok_or(ExecError::StreamEmpty { stream: *input, cycle })?;
                    write_stream(&mut self.streams, *output, v)?;
                }
                Instruction::Nop => {}
            }

            let retire = cycle + ti.instr.min_latency();
            self.free_at.insert(resource, retire);
            last_retire = last_retire.max(retire);
            self.horizon = self.horizon.max(cycle);
        }
        Ok(last_retire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_isa::instr::VectorOpcode;

    fn sid(n: u8) -> StreamId {
        StreamId::new(n).unwrap()
    }

    #[test]
    fn read_compute_write_pipeline() {
        let mut sim = ChipSim::new();
        sim.preload(0, 0, crate::vxm::from_f32_lanes(&[1.5f32; 80]));
        sim.preload(0, 1, crate::vxm::from_f32_lanes(&[2.0f32; 80]));
        let prog = ChipProgram::new()
            .at(0, Instruction::Read { slice: 0, offset: 0, stream: sid(0), dir: tsm_isa::Direction::East })
            .at(5, Instruction::Read { slice: 0, offset: 1, stream: sid(1), dir: tsm_isa::Direction::East })
            .at(10, Instruction::VectorOp { op: VectorOpcode::Add, a: sid(0), b: sid(1), dest: sid(2) })
            .at(20, Instruction::Write { slice: 1, offset: 0, stream: sid(2) });
        let retire = sim.run(&prog).unwrap();
        assert_eq!(retire, 25);
        let out = crate::vxm::to_f32_lanes(sim.sram(1, 0).unwrap());
        assert!(out.iter().all(|&x| x == 3.5));
    }

    #[test]
    fn unit_busy_is_detected() {
        // Two MEM reads back-to-back: second scheduled before 5-cycle
        // latency elapses.
        let prog = ChipProgram::new()
            .at(0, Instruction::Read { slice: 0, offset: 0, stream: sid(0), dir: tsm_isa::Direction::East })
            .at(2, Instruction::Read { slice: 0, offset: 1, stream: sid(1), dir: tsm_isa::Direction::East });
        let err = ChipSim::new().run(&prog).unwrap_err();
        assert_eq!(err, ExecError::UnitBusy { unit: FunctionalUnit::Mem, cycle: 2, free_at: 5 });
    }

    #[test]
    fn sync_parks_until_notify() {
        // MEM read scheduled while ICU... SYNC parks only its own unit; we
        // park ICU and verify a later ICU Nop errors, then NOTIFY clears.
        let bad = ChipProgram::new()
            .at(0, Instruction::Sync)
            .at(10, Instruction::Nop);
        let err = ChipSim::new().run(&bad).unwrap_err();
        assert!(matches!(err, ExecError::UnitParked { unit: FunctionalUnit::Icu, cycle: 10 }));

        let good = ChipProgram::new()
            .at(0, Instruction::Sync)
            .at(10, Instruction::Notify)
            .at(20, Instruction::Nop);
        assert!(ChipSim::new().run(&good).is_ok());
    }

    #[test]
    fn deskew_forces_epoch_alignment() {
        // DESKEW at cycle 10 stalls to cycle 252; next ICU instruction at
        // 100 is a schedule bug, at 252 it is legal.
        let bad = ChipProgram::new().at(10, Instruction::Deskew).at(100, Instruction::Nop);
        let err = ChipSim::new().run(&bad).unwrap_err();
        assert_eq!(
            err,
            ExecError::DeskewMisaligned {
                unit: FunctionalUnit::Icu,
                scheduled: 100,
                boundary: 252
            }
        );
        let good = ChipProgram::new().at(10, Instruction::Deskew).at(252, Instruction::Nop);
        assert!(ChipSim::new().run(&good).is_ok());
    }

    #[test]
    fn receive_consumes_delivery_in_order() {
        let mut sim = ChipSim::new();
        sim.deliver(3, 50, Vector::splat(1));
        sim.deliver(3, 80, Vector::splat(2));
        let prog = ChipProgram::new()
            .at(60, Instruction::Receive { port: 3, stream: sid(0) })
            .at(90, Instruction::Receive { port: 3, stream: sid(1) });
        sim.run(&prog).unwrap();
        assert_eq!(sim.stream(sid(0)), Some(&Vector::splat(1)));
        assert_eq!(sim.stream(sid(1)), Some(&Vector::splat(2)));
    }

    #[test]
    fn receive_before_arrival_is_schedule_bug() {
        let mut sim = ChipSim::new();
        sim.deliver(3, 50, Vector::splat(1));
        let prog = ChipProgram::new().at(40, Instruction::Receive { port: 3, stream: sid(0) });
        assert_eq!(
            sim.run(&prog).unwrap_err(),
            ExecError::NothingReceived { port: 3, cycle: 40 }
        );
    }

    #[test]
    fn send_emits_stream_value() {
        let mut sim = ChipSim::new();
        sim.preload(0, 0, Vector::splat(9));
        let prog = ChipProgram::new()
            .at(0, Instruction::Read { slice: 0, offset: 0, stream: sid(4), dir: tsm_isa::Direction::East })
            .at(10, Instruction::Send { port: 7, stream: sid(4) });
        sim.run(&prog).unwrap();
        assert_eq!(sim.emissions().len(), 1);
        assert_eq!(sim.emissions()[0].port, 7);
        assert_eq!(*sim.emissions()[0].vector, Vector::splat(9));
    }

    #[test]
    fn stream_conflict_is_detected() {
        let mut sim = ChipSim::new();
        sim.preload(0, 0, Vector::splat(1));
        sim.deliver(1, 0, Vector::splat(2));
        // MEM read and C2C receive both write stream 0 at cycle 10.
        let prog = ChipProgram::new()
            .at(10, Instruction::Read { slice: 0, offset: 0, stream: sid(0), dir: tsm_isa::Direction::East })
            .at(10, Instruction::Receive { port: 1, stream: sid(0) });
        let err = sim.run(&prog).unwrap_err();
        assert!(matches!(err, ExecError::StreamConflict { cycle: 10, .. }));
    }

    #[test]
    fn reading_empty_stream_errors() {
        let prog = ChipProgram::new().at(0, Instruction::Send { port: 0, stream: sid(5) });
        assert_eq!(
            ChipSim::new().run(&prog).unwrap_err(),
            ExecError::StreamEmpty { stream: sid(5), cycle: 0 }
        );
    }

    #[test]
    fn identical_programs_produce_identical_state() {
        let build = || {
            let mut sim = ChipSim::new();
            sim.preload(2, 7, Vector::from_fn(|i| i as u8));
            let prog = ChipProgram::new()
                .at(0, Instruction::Read { slice: 2, offset: 7, stream: sid(0), dir: tsm_isa::Direction::East })
                .at(10, Instruction::Permute { input: sid(0), output: sid(1) })
                .at(20, Instruction::Write { slice: 3, offset: 0, stream: sid(1) });
            sim.run(&prog).unwrap();
            sim.sram(3, 0).unwrap().digest()
        };
        assert_eq!(build(), build());
    }
}
