//! Deterministic chip executor.
//!
//! A chip program is a *static schedule*: every instruction carries the
//! cycle it issues on. The executor replays the schedule, maintaining
//! architectural state (SRAM, streams, C2C ports) and *verifying* the
//! schedule's legality — a scheduled instruction arriving while its
//! functional unit is parked by SYNC, or two writers hitting a stream on
//! the same cycle, is a compiler bug surfaced as an [`ExecError`], never a
//! silent dynamic stall. This mirrors the hardware contract of paper §3:
//! "the TSP hardware-software interface exposes all architecturally-visible
//! state".

use crate::vxm;
use std::sync::Arc;
use tsm_isa::instr::{FunctionalUnit, Instruction};
use tsm_isa::timing::HAC_PERIOD;
use tsm_isa::vector::MAX_STREAMS;
use tsm_isa::{StreamId, Vector};

/// Functional units with independent issue state.
const UNITS: usize = FunctionalUnit::ALL.len();

/// Upper bound on C2C port numbers the executor models (the chip has 11
/// link engines; the table is padded to a power of two).
const MAX_PORTS: usize = 16;

/// A reference-counted 320-byte payload.
///
/// Vectors flow through SRAM, streams, deliveries and emissions by `Arc`
/// handle: moving a payload through a multi-hop forwarding chain costs one
/// pointer clone per step instead of a 320-byte copy per step. The bytes
/// themselves are immutable once wrapped — every producing instruction
/// allocates a fresh vector — so sharing is safe and bit-exact.
pub type Payload = Arc<Vector>;

/// The C2C port an instruction occupies (0 for non-C2C instructions,
/// which each own a single engine).
fn instruction_port(instr: &Instruction) -> u8 {
    match instr {
        Instruction::Transmit { port }
        | Instruction::Receive { port, .. }
        | Instruction::Send { port, .. } => *port,
        _ => 0,
    }
}

/// An instruction bound to its issue cycle.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimedInstruction {
    /// Cycle the instruction issues.
    pub cycle: u64,
    /// The instruction.
    pub instr: Instruction,
}

/// A static schedule for one chip.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChipProgram {
    instrs: Vec<TimedInstruction>,
    /// Set by [`ChipProgram::sort_in_place`], cleared by any mutation:
    /// lets every subsequent run skip re-verifying issue order.
    issue_sorted: bool,
}

impl ChipProgram {
    /// An empty program.
    pub fn new() -> Self {
        ChipProgram::default()
    }

    /// Schedules `instr` at `cycle` (builder style).
    pub fn at(mut self, cycle: u64, instr: Instruction) -> Self {
        self.push(cycle, instr);
        self
    }

    /// Adds an instruction in place.
    pub fn push(&mut self, cycle: u64, instr: Instruction) {
        self.instrs.push(TimedInstruction { cycle, instr });
        self.issue_sorted = false;
    }

    /// All instructions, sorted by (cycle, unit order).
    pub fn sorted(&self) -> Vec<TimedInstruction> {
        let mut v = self.instrs.clone();
        v.sort_by_key(|t| (t.cycle, t.instr.unit()));
        v
    }

    /// Sorts the instructions into issue order in place, so subsequent
    /// [`ChipSim::run`] calls can execute the program without cloning or
    /// re-sorting it. Compile-once callers (the co-simulation plan stage)
    /// do this once per program; execute-many callers then pay nothing.
    pub fn sort_in_place(&mut self) {
        self.instrs.sort_by_key(|t| (t.cycle, t.instr.unit()));
        self.issue_sorted = true;
    }

    /// True if the instructions are already in issue order. O(1) after a
    /// [`ChipProgram::sort_in_place`]; otherwise a linear scan.
    pub fn is_issue_sorted(&self) -> bool {
        self.issue_sorted
            || self
                .instrs
                .windows(2)
                .all(|w| (w[0].cycle, w[0].instr.unit()) <= (w[1].cycle, w[1].instr.unit()))
    }

    /// The instructions in insertion order (issue order once
    /// [`ChipProgram::sort_in_place`] has run).
    pub fn instrs(&self) -> &[TimedInstruction] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if no instructions are scheduled.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Schedule-legality violations detected during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// An instruction was scheduled on a unit still parked by SYNC.
    UnitParked {
        /// The parked unit.
        unit: FunctionalUnit,
        /// Cycle of the offending instruction.
        cycle: u64,
    },
    /// An instruction was scheduled before the unit's previous instruction
    /// retired.
    UnitBusy {
        /// The busy unit.
        unit: FunctionalUnit,
        /// Cycle of the offending instruction.
        cycle: u64,
        /// Cycle at which the unit becomes free.
        free_at: u64,
    },
    /// Two writers produced onto the same stream on the same cycle.
    StreamConflict {
        /// The contested stream.
        stream: StreamId,
        /// The conflicting cycle.
        cycle: u64,
    },
    /// A consumer read a stream that holds no value.
    StreamEmpty {
        /// The empty stream.
        stream: StreamId,
        /// The reading cycle.
        cycle: u64,
    },
    /// A RECEIVE was scheduled for a port with no delivery by that cycle.
    NothingReceived {
        /// The port.
        port: u8,
        /// The cycle.
        cycle: u64,
    },
    /// A MatMul issued with no weights installed in the MXM array.
    NoWeightsInstalled {
        /// The offending cycle.
        cycle: u64,
    },
    /// An instruction following a DESKEW was scheduled off the epoch
    /// boundary the DESKEW stalls to.
    DeskewMisaligned {
        /// The unit.
        unit: FunctionalUnit,
        /// Scheduled cycle of the next instruction.
        scheduled: u64,
        /// The epoch boundary it must not precede.
        boundary: u64,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnitParked { unit, cycle } => {
                write!(f, "{unit:?} issued at cycle {cycle} while parked by SYNC")
            }
            ExecError::UnitBusy {
                unit,
                cycle,
                free_at,
            } => {
                write!(
                    f,
                    "{unit:?} issued at cycle {cycle} but busy until {free_at}"
                )
            }
            ExecError::StreamConflict { stream, cycle } => {
                write!(
                    f,
                    "two writers on stream {} at cycle {cycle}",
                    stream.index()
                )
            }
            ExecError::StreamEmpty { stream, cycle } => {
                write!(f, "stream {} read empty at cycle {cycle}", stream.index())
            }
            ExecError::NothingReceived { port, cycle } => {
                write!(
                    f,
                    "RECEIVE on port {port} at cycle {cycle} with no delivery"
                )
            }
            ExecError::NoWeightsInstalled { cycle } => {
                write!(f, "MatMul at cycle {cycle} with an empty MXM weight array")
            }
            ExecError::DeskewMisaligned {
                unit,
                scheduled,
                boundary,
            } => write!(
                f,
                "{unit:?}: instruction at {scheduled} precedes DESKEW boundary {boundary}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// A vector sent out a C2C port.
#[derive(Debug, Clone, PartialEq)]
pub struct Emission {
    /// Issue cycle of the SEND/TRANSMIT.
    pub cycle: u64,
    /// C2C port.
    pub port: u8,
    /// Payload (shared handle; clone is a pointer copy).
    pub vector: Payload,
}

/// Pending deliveries on one C2C port.
///
/// `items[next..]` is the unconsumed suffix, sorted ascending by arrival
/// cycle; consumption advances `next` instead of shifting the vector, so a
/// RECEIVE is O(1) and [`ChipSim::reset`] can recycle the allocation.
#[derive(Debug, Clone, Default)]
struct PortQueue {
    /// (arrival cycle, payload) in arrival order.
    items: Vec<(u64, Payload)>,
    /// Index of the first unconsumed delivery.
    next: usize,
}

impl PortQueue {
    /// Consumes the earliest delivery that has arrived by `cycle`.
    fn pop_ready(&mut self, cycle: u64) -> Option<Payload> {
        match self.items.get(self.next) {
            Some(&(arrive, ref v)) if arrive <= cycle => {
                let v = Arc::clone(v);
                self.next += 1;
                Some(v)
            }
            _ => None,
        }
    }
}

/// Deterministic single-chip simulator.
///
/// A `ChipSim` is reusable: [`ChipSim::reset`] returns it to the
/// just-constructed state while keeping every internal allocation, so an
/// execute-many driver (the co-simulation [`PlanExecutor`]) pays no
/// rebuild cost between invocations.
///
/// [`PlanExecutor`]: ../../tsm_core/cosim/exec/struct.PlanExecutor.html
#[derive(Debug, Clone)]
pub struct ChipSim {
    /// SRAM content, indexed `[slice][offset]` (chip slice 0..88). Pages
    /// grow on demand; occupied cells are logged in `sram_dirty` so a
    /// [`ChipSim::reset`] clears exactly what was written instead of
    /// walking (or reallocating) the whole address space.
    sram: Vec<Vec<Option<Payload>>>,
    /// Cells written since the last reset.
    sram_dirty: Vec<(u8, u16)>,
    /// Stream registers (single direction modelled; direction is a
    /// scheduling concern handled by the compiler).
    streams: Vec<Option<Payload>>,
    /// Pending inbound deliveries, indexed by port (grown on demand);
    /// direct indexing keeps delivery binding and RECEIVE consumption off
    /// map lookups on the execute-many warm path.
    inbound: Vec<PortQueue>,
    /// Vectors emitted on C2C ports.
    emissions: Vec<Emission>,
    /// Per-resource next-free cycle, indexed `unit.index() * MAX_PORTS +
    /// port`. C2C instructions occupy one port engine each (the chip has
    /// 11 independent link engines), every other unit is a single
    /// resource at port index 0.
    free_at: [u64; UNITS * MAX_PORTS],
    /// Per-unit parked flag (SYNC issued, awaiting NOTIFY).
    parked: [bool; UNITS],
    /// Per-unit pending DESKEW boundary.
    deskew_boundary: [Option<u64>; UNITS],
    /// Weight rows currently installed in the MXM array (FP32-lane
    /// granularity: up to 80 rows of 80 lanes).
    mxm_weights: Vec<Payload>,
    /// Cycle of the last executed instruction.
    horizon: u64,
}

impl Default for ChipSim {
    fn default() -> Self {
        Self::new()
    }
}

impl ChipSim {
    /// A chip with empty SRAM and streams.
    pub fn new() -> Self {
        ChipSim {
            sram: Vec::new(),
            sram_dirty: Vec::new(),
            streams: vec![None; MAX_STREAMS],
            inbound: Vec::new(),
            emissions: Vec::new(),
            free_at: [0; UNITS * MAX_PORTS],
            parked: [false; UNITS],
            deskew_boundary: [None; UNITS],
            mxm_weights: Vec::new(),
            horizon: 0,
        }
    }

    /// Returns the chip to its just-constructed state — empty SRAM,
    /// streams, queues, emissions, unit state — while keeping the internal
    /// allocations, so repeated executions reset rather than rebuild.
    pub fn reset(&mut self) {
        for (slice, offset) in self.sram_dirty.drain(..) {
            self.sram[slice as usize][offset as usize] = None;
        }
        for s in &mut self.streams {
            *s = None;
        }
        for q in &mut self.inbound {
            q.items.clear();
            q.next = 0;
        }
        self.emissions.clear();
        self.free_at = [0; UNITS * MAX_PORTS];
        self.parked = [false; UNITS];
        self.deskew_boundary = [None; UNITS];
        self.mxm_weights.clear();
        self.horizon = 0;
    }

    /// Preloads SRAM before execution (the runtime "emplaces all program
    /// collateral", paper §5.1). Accepts a plain [`Vector`] or an already
    /// shared [`Payload`] handle.
    pub fn preload(&mut self, slice: u8, offset: u16, v: impl Into<Payload>) {
        self.sram_store(slice, offset, v.into());
    }

    /// Reads SRAM after execution.
    pub fn sram(&self, slice: u8, offset: u16) -> Option<&Vector> {
        self.sram_handle(slice, offset).map(|v| v.as_ref())
    }

    /// The shared handle behind an SRAM cell, if occupied. Lets verifiers
    /// short-circuit payload comparison with [`Arc::ptr_eq`] when the cell
    /// still holds the very handle that was bound in.
    pub fn sram_handle(&self, slice: u8, offset: u16) -> Option<&Payload> {
        self.sram
            .get(slice as usize)?
            .get(offset as usize)?
            .as_ref()
    }

    fn sram_store(&mut self, slice: u8, offset: u16, v: Payload) {
        let s = slice as usize;
        if self.sram.len() <= s {
            self.sram.resize_with(s + 1, Vec::new);
        }
        let page = &mut self.sram[s];
        let o = offset as usize;
        if page.len() <= o {
            page.resize_with(o + 1, || None);
        }
        if page[o].is_none() {
            self.sram_dirty.push((slice, offset));
        }
        page[o] = Some(v);
    }

    /// Registers an inbound delivery: `vector` arrives on `port` at
    /// `cycle`. A RECEIVE scheduled at or after `cycle` consumes it.
    /// Accepts a plain [`Vector`] or a shared [`Payload`] handle.
    pub fn deliver(&mut self, port: u8, cycle: u64, vector: impl Into<Payload>) {
        let q = self.port_queue(port);
        q.items.push((cycle, vector.into()));
        let next = q.next;
        q.items[next..].sort_by_key(|&(c, _)| c);
    }

    /// [`ChipSim::deliver`] for callers that feed a port its deliveries in
    /// nondecreasing arrival order (a compiled plan's manifest is stored
    /// that way): skips the per-delivery re-sort.
    pub fn deliver_in_order(&mut self, port: u8, cycle: u64, vector: impl Into<Payload>) {
        let q = self.port_queue(port);
        debug_assert!(
            q.items[q.next..].last().is_none_or(|&(c, _)| c <= cycle),
            "deliver_in_order fed out of order on port {port}"
        );
        q.items.push((cycle, vector.into()));
    }

    fn port_queue(&mut self, port: u8) -> &mut PortQueue {
        let p = port as usize;
        if self.inbound.len() <= p {
            self.inbound.resize_with(p + 1, PortQueue::default);
        }
        &mut self.inbound[p]
    }

    /// Vectors emitted on C2C ports during execution.
    pub fn emissions(&self) -> &[Emission] {
        &self.emissions
    }

    /// Current value on a stream.
    pub fn stream(&self, s: StreamId) -> Option<&Vector> {
        self.streams[s.index()].as_deref()
    }

    /// Cycle of the last executed instruction.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Executes a program, verifying schedule legality.
    ///
    /// Returns the cycle at which the last instruction retires.
    ///
    /// Programs already in issue order (see [`ChipProgram::sort_in_place`])
    /// execute without cloning or re-sorting the instruction list; anything
    /// else falls back to a sorted copy.
    pub fn run(&mut self, program: &ChipProgram) -> Result<u64, ExecError> {
        if program.is_issue_sorted() {
            self.run_sorted(program.instrs())
        } else {
            self.run_sorted(&program.sorted())
        }
    }

    /// Executes instructions known to be in (cycle, unit) issue order —
    /// the compile-once path: a [`CompiledPlan`] stores every chip's
    /// stream pre-sorted in its instruction slab and runs the window
    /// directly, no [`ChipProgram`] wrapper involved.
    ///
    /// [`CompiledPlan`]: ../../tsm_core/cosim/struct.CompiledPlan.html
    pub fn run_sorted(&mut self, instrs: &[TimedInstruction]) -> Result<u64, ExecError> {
        let mut last_retire = 0;
        // Last write cycle per stream; exact duplicate detection because
        // instructions arrive in ascending cycle order.
        let mut stream_writes: [Option<u64>; MAX_STREAMS] = [None; MAX_STREAMS];
        for ti in instrs {
            let unit = ti.instr.unit();
            let ui = unit.index();
            let cycle = ti.cycle;

            // DESKEW alignment check.
            if let Some(boundary) = self.deskew_boundary[ui] {
                if cycle < boundary {
                    return Err(ExecError::DeskewMisaligned {
                        unit,
                        scheduled: cycle,
                        boundary,
                    });
                }
                self.deskew_boundary[ui] = None;
            }
            // Parked check (NOTIFY clears all parks and may issue same cycle).
            if self.parked[ui] && !matches!(ti.instr, Instruction::Notify) {
                return Err(ExecError::UnitParked { unit, cycle });
            }
            // Busy check (per C2C port engine, per unit otherwise).
            let port = instruction_port(&ti.instr) as usize;
            debug_assert!(port < MAX_PORTS, "C2C port {port} exceeds modelled maximum");
            let resource = ui * MAX_PORTS + port;
            let free = self.free_at[resource];
            if cycle < free {
                return Err(ExecError::UnitBusy {
                    unit,
                    cycle,
                    free_at: free,
                });
            }

            let mut write_stream = |streams: &mut Vec<Option<Payload>>,
                                    s: StreamId,
                                    v: Payload|
             -> Result<(), ExecError> {
                if stream_writes[s.index()] == Some(cycle) {
                    return Err(ExecError::StreamConflict { stream: s, cycle });
                }
                stream_writes[s.index()] = Some(cycle);
                streams[s.index()] = Some(v);
                Ok(())
            };

            match &ti.instr {
                Instruction::Sync => {
                    self.parked[ui] = true;
                }
                Instruction::Notify => {
                    self.parked = [false; UNITS];
                }
                Instruction::Deskew => {
                    let boundary = cycle.div_ceil(HAC_PERIOD).max(1) * HAC_PERIOD;
                    self.deskew_boundary[ui] = Some(boundary);
                }
                Instruction::RuntimeDeskew { .. } => {
                    // Timing handled via min/max latency below.
                }
                Instruction::Transmit { port } => {
                    self.emissions.push(Emission {
                        cycle,
                        port: *port,
                        vector: Arc::new(Vector::zeroed()),
                    });
                }
                Instruction::Receive { port, stream } => {
                    let available = self
                        .inbound
                        .get_mut(*port as usize)
                        .and_then(|q| q.pop_ready(cycle));
                    match available {
                        Some(v) => write_stream(&mut self.streams, *stream, v)?,
                        None => return Err(ExecError::NothingReceived { port: *port, cycle }),
                    }
                }
                Instruction::Send { port, stream } => {
                    let v = self.streams[stream.index()]
                        .clone()
                        .ok_or(ExecError::StreamEmpty {
                            stream: *stream,
                            cycle,
                        })?;
                    self.emissions.push(Emission {
                        cycle,
                        port: *port,
                        vector: v,
                    });
                }
                Instruction::Read {
                    slice,
                    offset,
                    stream,
                    ..
                } => {
                    let v = self
                        .sram_handle(*slice, *offset)
                        .cloned()
                        .unwrap_or_else(|| Arc::new(Vector::zeroed()));
                    write_stream(&mut self.streams, *stream, v)?;
                }
                Instruction::Write {
                    slice,
                    offset,
                    stream,
                } => {
                    let v = self.streams[stream.index()]
                        .clone()
                        .ok_or(ExecError::StreamEmpty {
                            stream: *stream,
                            cycle,
                        })?;
                    self.sram_store(*slice, *offset, v);
                }
                Instruction::InstallWeight { stream } => {
                    let v = self.streams[stream.index()]
                        .clone()
                        .ok_or(ExecError::StreamEmpty {
                            stream: *stream,
                            cycle,
                        })?;
                    // The array holds at most 80 FP32 rows; installing past
                    // capacity starts a fresh tile (the compiler reloads
                    // between tiles).
                    if self.mxm_weights.len() >= crate::vxm::F32_LANES {
                        self.mxm_weights.clear();
                    }
                    self.mxm_weights.push(v);
                }
                Instruction::MatMul { input, output } => {
                    // One [1×K]×[K×80] sub-op at FP32-lane granularity:
                    // out[j] = Σ_i in[i] · W[i][j] over the installed rows.
                    if self.mxm_weights.is_empty() {
                        return Err(ExecError::NoWeightsInstalled { cycle });
                    }
                    let v = self.streams[input.index()]
                        .clone()
                        .ok_or(ExecError::StreamEmpty {
                            stream: *input,
                            cycle,
                        })?;
                    let activation = crate::vxm::to_f32_lanes(&v);
                    let mut out = [0f32; crate::vxm::F32_LANES];
                    for (i, row) in self.mxm_weights.iter().enumerate() {
                        let w = crate::vxm::to_f32_lanes(row);
                        let a = activation[i];
                        if a == 0.0 {
                            continue;
                        }
                        for (o, wj) in out.iter_mut().zip(w.iter()) {
                            *o += a * wj;
                        }
                    }
                    write_stream(
                        &mut self.streams,
                        *output,
                        Arc::new(crate::vxm::from_f32_lanes(&out)),
                    )?;
                }
                Instruction::VectorOp { op, a, b, dest } => {
                    let va = self.streams[a.index()]
                        .clone()
                        .ok_or(ExecError::StreamEmpty { stream: *a, cycle })?;
                    let vb = self.streams[b.index()]
                        .clone()
                        .ok_or(ExecError::StreamEmpty { stream: *b, cycle })?;
                    let out = vxm::execute(*op, &va, &vb);
                    write_stream(&mut self.streams, *dest, Arc::new(out))?;
                }
                Instruction::Permute { input, output } => {
                    let v = self.streams[input.index()]
                        .clone()
                        .ok_or(ExecError::StreamEmpty {
                            stream: *input,
                            cycle,
                        })?;
                    write_stream(&mut self.streams, *output, v)?;
                }
                Instruction::Nop => {}
            }

            let retire = cycle + ti.instr.min_latency();
            self.free_at[resource] = retire;
            last_retire = last_retire.max(retire);
            self.horizon = self.horizon.max(cycle);
        }
        Ok(last_retire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_isa::instr::VectorOpcode;

    fn sid(n: u8) -> StreamId {
        StreamId::new(n).unwrap()
    }

    #[test]
    fn read_compute_write_pipeline() {
        let mut sim = ChipSim::new();
        sim.preload(0, 0, crate::vxm::from_f32_lanes(&[1.5f32; 80]));
        sim.preload(0, 1, crate::vxm::from_f32_lanes(&[2.0f32; 80]));
        let prog = ChipProgram::new()
            .at(
                0,
                Instruction::Read {
                    slice: 0,
                    offset: 0,
                    stream: sid(0),
                    dir: tsm_isa::Direction::East,
                },
            )
            .at(
                5,
                Instruction::Read {
                    slice: 0,
                    offset: 1,
                    stream: sid(1),
                    dir: tsm_isa::Direction::East,
                },
            )
            .at(
                10,
                Instruction::VectorOp {
                    op: VectorOpcode::Add,
                    a: sid(0),
                    b: sid(1),
                    dest: sid(2),
                },
            )
            .at(
                20,
                Instruction::Write {
                    slice: 1,
                    offset: 0,
                    stream: sid(2),
                },
            );
        let retire = sim.run(&prog).unwrap();
        assert_eq!(retire, 25);
        let out = crate::vxm::to_f32_lanes(sim.sram(1, 0).unwrap());
        assert!(out.iter().all(|&x| x == 3.5));
    }

    #[test]
    fn unit_busy_is_detected() {
        // Two MEM reads back-to-back: second scheduled before 5-cycle
        // latency elapses.
        let prog = ChipProgram::new()
            .at(
                0,
                Instruction::Read {
                    slice: 0,
                    offset: 0,
                    stream: sid(0),
                    dir: tsm_isa::Direction::East,
                },
            )
            .at(
                2,
                Instruction::Read {
                    slice: 0,
                    offset: 1,
                    stream: sid(1),
                    dir: tsm_isa::Direction::East,
                },
            );
        let err = ChipSim::new().run(&prog).unwrap_err();
        assert_eq!(
            err,
            ExecError::UnitBusy {
                unit: FunctionalUnit::Mem,
                cycle: 2,
                free_at: 5
            }
        );
    }

    #[test]
    fn sync_parks_until_notify() {
        // MEM read scheduled while ICU... SYNC parks only its own unit; we
        // park ICU and verify a later ICU Nop errors, then NOTIFY clears.
        let bad = ChipProgram::new()
            .at(0, Instruction::Sync)
            .at(10, Instruction::Nop);
        let err = ChipSim::new().run(&bad).unwrap_err();
        assert!(matches!(
            err,
            ExecError::UnitParked {
                unit: FunctionalUnit::Icu,
                cycle: 10
            }
        ));

        let good = ChipProgram::new()
            .at(0, Instruction::Sync)
            .at(10, Instruction::Notify)
            .at(20, Instruction::Nop);
        assert!(ChipSim::new().run(&good).is_ok());
    }

    #[test]
    fn deskew_forces_epoch_alignment() {
        // DESKEW at cycle 10 stalls to cycle 252; next ICU instruction at
        // 100 is a schedule bug, at 252 it is legal.
        let bad = ChipProgram::new()
            .at(10, Instruction::Deskew)
            .at(100, Instruction::Nop);
        let err = ChipSim::new().run(&bad).unwrap_err();
        assert_eq!(
            err,
            ExecError::DeskewMisaligned {
                unit: FunctionalUnit::Icu,
                scheduled: 100,
                boundary: 252
            }
        );
        let good = ChipProgram::new()
            .at(10, Instruction::Deskew)
            .at(252, Instruction::Nop);
        assert!(ChipSim::new().run(&good).is_ok());
    }

    #[test]
    fn receive_consumes_delivery_in_order() {
        let mut sim = ChipSim::new();
        sim.deliver(3, 50, Vector::splat(1));
        sim.deliver(3, 80, Vector::splat(2));
        let prog = ChipProgram::new()
            .at(
                60,
                Instruction::Receive {
                    port: 3,
                    stream: sid(0),
                },
            )
            .at(
                90,
                Instruction::Receive {
                    port: 3,
                    stream: sid(1),
                },
            );
        sim.run(&prog).unwrap();
        assert_eq!(sim.stream(sid(0)), Some(&Vector::splat(1)));
        assert_eq!(sim.stream(sid(1)), Some(&Vector::splat(2)));
    }

    #[test]
    fn receive_before_arrival_is_schedule_bug() {
        let mut sim = ChipSim::new();
        sim.deliver(3, 50, Vector::splat(1));
        let prog = ChipProgram::new().at(
            40,
            Instruction::Receive {
                port: 3,
                stream: sid(0),
            },
        );
        assert_eq!(
            sim.run(&prog).unwrap_err(),
            ExecError::NothingReceived { port: 3, cycle: 40 }
        );
    }

    #[test]
    fn send_emits_stream_value() {
        let mut sim = ChipSim::new();
        sim.preload(0, 0, Vector::splat(9));
        let prog = ChipProgram::new()
            .at(
                0,
                Instruction::Read {
                    slice: 0,
                    offset: 0,
                    stream: sid(4),
                    dir: tsm_isa::Direction::East,
                },
            )
            .at(
                10,
                Instruction::Send {
                    port: 7,
                    stream: sid(4),
                },
            );
        sim.run(&prog).unwrap();
        assert_eq!(sim.emissions().len(), 1);
        assert_eq!(sim.emissions()[0].port, 7);
        assert_eq!(*sim.emissions()[0].vector, Vector::splat(9));
    }

    #[test]
    fn stream_conflict_is_detected() {
        let mut sim = ChipSim::new();
        sim.preload(0, 0, Vector::splat(1));
        sim.deliver(1, 0, Vector::splat(2));
        // MEM read and C2C receive both write stream 0 at cycle 10.
        let prog = ChipProgram::new()
            .at(
                10,
                Instruction::Read {
                    slice: 0,
                    offset: 0,
                    stream: sid(0),
                    dir: tsm_isa::Direction::East,
                },
            )
            .at(
                10,
                Instruction::Receive {
                    port: 1,
                    stream: sid(0),
                },
            );
        let err = sim.run(&prog).unwrap_err();
        assert!(matches!(err, ExecError::StreamConflict { cycle: 10, .. }));
    }

    #[test]
    fn reading_empty_stream_errors() {
        let prog = ChipProgram::new().at(
            0,
            Instruction::Send {
                port: 0,
                stream: sid(5),
            },
        );
        assert_eq!(
            ChipSim::new().run(&prog).unwrap_err(),
            ExecError::StreamEmpty {
                stream: sid(5),
                cycle: 0
            }
        );
    }

    #[test]
    fn identical_programs_produce_identical_state() {
        let build = || {
            let mut sim = ChipSim::new();
            sim.preload(2, 7, Vector::from_fn(|i| i as u8));
            let prog = ChipProgram::new()
                .at(
                    0,
                    Instruction::Read {
                        slice: 2,
                        offset: 7,
                        stream: sid(0),
                        dir: tsm_isa::Direction::East,
                    },
                )
                .at(
                    10,
                    Instruction::Permute {
                        input: sid(0),
                        output: sid(1),
                    },
                )
                .at(
                    20,
                    Instruction::Write {
                        slice: 3,
                        offset: 0,
                        stream: sid(1),
                    },
                );
            sim.run(&prog).unwrap();
            sim.sram(3, 0).unwrap().digest()
        };
        assert_eq!(build(), build());
    }
}
