//! Single-TSP model: functional slices, streams, and deterministic
//! execution (paper §2, §5.2).
//!
//! The TSP organizes its functional units as SIMD "slices" operating on
//! 320-byte vectors flowing along stream registers. All instruction timing
//! is static, so a chip program is a *schedule*, not a dynamic trace. The
//! crate provides:
//!
//! * [`spec`] — the chip's capacity constants (peak FLOPs, streams,
//!   frequency),
//! * [`mxm`] — the matrix-execution-module timing model: a GEMM decomposes
//!   into `[1×K]×[K×320]` sub-operations with K = 160 (FP16) or 320 (int8),
//!   retiring 2 FP16 / 4 int8 sub-ops per cycle (paper §5.2). Every
//!   throughput figure in the paper's evaluation derives from this model.
//! * [`vxm`] — pointwise vector ALU semantics on FP32 lanes (the Cholesky
//!   kernel of §5.5 runs on these),
//! * [`exec`] — a deterministic chip executor: per-functional-unit
//!   instruction queues with SYNC/NOTIFY/DESKEW semantics, SRAM and stream
//!   state, and static-hazard detection.

pub mod exec;
pub mod gemm_program;
pub mod mxm;
pub mod spec;
pub mod vxm;

pub use exec::{ChipProgram, ChipSim, ExecError, TimedInstruction};
pub use mxm::{GemmShape, GemmTiming};
pub use spec::ChipSpec;
