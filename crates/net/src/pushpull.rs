//! The communication-model comparison of paper Fig 9: request/reply
//! ("pull") vs compile-time-scheduled "push".
//!
//! A conventional remote read sends a request to the owner, which performs
//! the access and replies — one full round trip plus the remote memory
//! access before the first payload byte moves. With software-scheduled
//! networking the compiler knows *when* the consumer needs the data, so
//! the producer simply pushes it: "we only incur half of the network
//! requests since we know when to send the reply(X) message to the
//! expectant processor" (§4.2). From the programming model's view, "where
//! the tensor comes from (local versus remote memory) is irrelevant".

use crate::ssn::{path_fill_latency, vector_slot_cycles};
use tsm_isa::vector::vectors_for_bytes;
use tsm_topology::route::shortest_path;
use tsm_topology::{Topology, TopologyError, TspId};

/// DRAM-ish access latency of the remote owner in the conventional model
/// (Fig 9(a) issues a DRAM read on receipt of the request).
pub const REMOTE_ACCESS_CYCLES: u64 = 200;

/// Cycles until `bytes` from `owner`'s memory are fully available at
/// `consumer` under the conventional request/reply model: request leg +
/// remote access + reply leg.
pub fn pull_latency(
    topo: &Topology,
    consumer: TspId,
    owner: TspId,
    bytes: u64,
) -> Result<u64, TopologyError> {
    let request = shortest_path(topo, consumer, owner)?;
    let reply = shortest_path(topo, owner, consumer)?;
    let v = vectors_for_bytes(bytes).max(1);
    Ok(path_fill_latency(topo, &request)
        + REMOTE_ACCESS_CYCLES
        + path_fill_latency(topo, &reply)
        + (v - 1) * vector_slot_cycles())
}

/// Cycles until the same data is available under the scheduled push model:
/// the producer's send is already in its instruction stream, so only the
/// one-way data movement remains (the SRAM read is pipelined into the
/// schedule).
pub fn push_latency(
    topo: &Topology,
    consumer: TspId,
    owner: TspId,
    bytes: u64,
) -> Result<u64, TopologyError> {
    let reply = shortest_path(topo, owner, consumer)?;
    let v = vectors_for_bytes(bytes).max(1);
    Ok(path_fill_latency(topo, &reply) + (v - 1) * vector_slot_cycles())
}

/// The latency saved by eliminating the request leg, as a ratio
/// `pull / push` (Fig 9's argument: > 2× for fine-grained accesses).
pub fn push_advantage(
    topo: &Topology,
    consumer: TspId,
    owner: TspId,
    bytes: u64,
) -> Result<f64, TopologyError> {
    Ok(pull_latency(topo, consumer, owner, bytes)? as f64
        / push_latency(topo, consumer, owner, bytes)? as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_topology::Topology;

    #[test]
    fn push_eliminates_the_request_leg() {
        let topo = Topology::single_node();
        let pull = pull_latency(&topo, TspId(0), TspId(1), 320).unwrap();
        let push = push_latency(&topo, TspId(0), TspId(1), 320).unwrap();
        // pull = 2x one-way + access; push = 1x one-way
        assert_eq!(push, 252);
        assert_eq!(pull, 2 * 252 + REMOTE_ACCESS_CYCLES);
    }

    #[test]
    fn fine_grained_access_sees_more_than_2x() {
        // Fig 9: the win is biggest for single-vector reads.
        let topo = Topology::single_node();
        let adv = push_advantage(&topo, TspId(0), TspId(5), 320).unwrap();
        assert!(adv > 2.0, "{adv}");
    }

    #[test]
    fn advantage_shrinks_for_bulk_transfers() {
        // Serialization dominates large reads; the request leg amortizes.
        let topo = Topology::single_node();
        let small = push_advantage(&topo, TspId(0), TspId(5), 320).unwrap();
        let large = push_advantage(&topo, TspId(0), TspId(5), 10 << 20).unwrap();
        assert!(large < small);
        assert!(large < 1.01, "bulk advantage ~1: {large}");
    }

    #[test]
    fn local_access_is_free_of_network() {
        let topo = Topology::single_node();
        let push = push_latency(&topo, TspId(3), TspId(3), 640).unwrap();
        // zero-hop path: just the pipelined second vector
        assert_eq!(push, vector_slot_cycles());
    }
}
