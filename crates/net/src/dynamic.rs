//! Baseline: a conventionally-routed network with queues and arbitration.
//!
//! This is the system of paper Fig 1 and Fig 8(a): each TSP forwards
//! packets hop-by-hop, output links have FIFO queues, simultaneous
//! arrivals arbitrate by arrival order, and physical-link jitter shifts
//! arrival order between runs. The observable consequence — the one the
//! paper's entire design removes — is *latency variance*: the same offered
//! traffic yields different per-packet latencies run to run.

use crate::event::EventQueue;
use rand::Rng;
use std::collections::HashMap;
use tsm_link::LatencyModel;
use tsm_topology::route::shortest_path;
use tsm_topology::{LinkId, Topology, TspId};

/// One packet of offered traffic (a single vector flit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfferedPacket {
    /// Caller-assigned id.
    pub id: u32,
    /// Source TSP.
    pub src: TspId,
    /// Destination TSP.
    pub dst: TspId,
    /// Cycle the packet is offered to the source NIC.
    pub inject: u64,
}

/// A delivered packet with its observed timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredPacket {
    /// Caller-assigned id.
    pub id: u32,
    /// Cycle of full arrival at the destination.
    pub arrival: u64,
    /// End-to-end latency (arrival − inject).
    pub latency: u64,
    /// Hops traversed.
    pub hops: usize,
}

/// Summary of a dynamic simulation run.
#[derive(Debug, Clone)]
pub struct DynamicRun {
    /// Per-packet results, in id order.
    pub delivered: Vec<DeliveredPacket>,
}

impl DynamicRun {
    /// Mean end-to-end latency.
    pub fn mean_latency(&self) -> f64 {
        self.delivered.iter().map(|d| d.latency as f64).sum::<f64>()
            / self.delivered.len().max(1) as f64
    }

    /// Population standard deviation of latency — the non-determinism
    /// metric.
    pub fn latency_std(&self) -> f64 {
        let mean = self.mean_latency();
        let var = self
            .delivered
            .iter()
            .map(|d| (d.latency as f64 - mean).powi(2))
            .sum::<f64>()
            / self.delivered.len().max(1) as f64;
        var.sqrt()
    }

    /// Largest observed latency.
    pub fn max_latency(&self) -> u64 {
        self.delivered.iter().map(|d| d.latency).max().unwrap_or(0)
    }
}

/// How the dynamic network picks a path at injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Always the minimal path.
    #[default]
    Minimal,
    /// UGAL-style adaptive: compare the minimal path against a Valiant
    /// path through a random intermediate, weighted by the links'
    /// current queue occupancy, and take the cheaper (paper §6's
    /// "global adaptive routing" family).
    Adaptive,
}

/// How simultaneous requests for a link are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Arbitration {
    /// First-come-first-served in event order.
    #[default]
    Fifo,
    /// Oldest packet (earliest injection) first — the age-based global
    /// fairness of paper ref \[2\].
    AgeBased,
}

#[derive(Debug)]
enum Event {
    /// Packet `idx` is ready to depart its `hop`-th link.
    Forward {
        idx: usize,
        hop: usize,
        at_tsp: TspId,
    },
    /// `link` finished serializing a packet; arbitrate its waiters.
    LinkFree { link: LinkId },
}

/// Picks the route for one packet at injection time, per the policy.
#[allow(clippy::too_many_arguments)]
fn choose_route<R: Rng>(
    topo: &Topology,
    p: &OfferedPacket,
    routing: RoutingPolicy,
    slot: u64,
    busy_until: &HashMap<LinkId, u64>,
    waiting: &HashMap<LinkId, Vec<(usize, usize, TspId)>>,
    rng: &mut R,
    now: u64,
) -> tsm_topology::route::Path {
    let minimal = shortest_path(topo, p.src, p.dst).expect("connected topology");
    if routing == RoutingPolicy::Minimal || p.src == p.dst {
        return minimal;
    }
    // Valiant alternative via a random intermediate.
    let n = topo.num_tsps() as u32;
    let mid = TspId(rng.gen_range(0..n));
    if mid == p.src || mid == p.dst {
        return minimal;
    }
    let a = shortest_path(topo, p.src, mid).expect("connected");
    let b = shortest_path(topo, mid, p.dst).expect("connected");
    // UGAL estimate: live queue wait on each link plus serialization, with
    // the classic 2x hop bias against the detour.
    let cost = |path: &tsm_topology::route::Path, weight: u64| -> u64 {
        path.links
            .iter()
            .map(|l| {
                let busy = busy_until.get(l).copied().unwrap_or(0).saturating_sub(now);
                let depth = waiting.get(l).map(|q| q.len() as u64).unwrap_or(0);
                busy + depth * slot
            })
            .sum::<u64>()
            + weight * path.hops() as u64 * slot
    };
    if cost(&a, 2) + cost(&b, 2) < cost(&minimal, 1) {
        let mut links = a.links;
        links.extend(b.links);
        let mut tsps = a.tsps;
        tsps.extend(b.tsps.into_iter().skip(1));
        tsm_topology::route::Path { links, tsps }
    } else {
        minimal
    }
}

/// Simulates the offered packets through a dynamically-routed network.
///
/// Routing is minimal (per-packet BFS path); queueing is FIFO per output
/// link; link latency is drawn per traversal from the cable-class jitter
/// model. All randomness comes from `rng` — two runs with the same seed
/// agree, two seeds model two real-world executions and generally do not.
pub fn simulate<R: Rng>(topo: &Topology, offered: &[OfferedPacket], rng: &mut R) -> DynamicRun {
    simulate_with(
        topo,
        offered,
        RoutingPolicy::Minimal,
        Arbitration::Fifo,
        rng,
    )
}

/// [`simulate`] with explicit routing and arbitration policies.
///
/// Packets wait in explicit per-link queues; when a link frees, the next
/// packet is chosen by the arbitration policy. The queue depths are what
/// the adaptive routing policy consults at injection — the "FIFO depth,
/// or transmit credits" congestion signal of paper §4.3.
pub fn simulate_with<R: Rng>(
    topo: &Topology,
    offered: &[OfferedPacket],
    routing: RoutingPolicy,
    arbitration: Arbitration,
    rng: &mut R,
) -> DynamicRun {
    let slot = crate::ssn::vector_slot_cycles();
    let mut busy_until: HashMap<LinkId, u64> = HashMap::new();
    let mut waiting: HashMap<LinkId, Vec<(usize, usize, TspId)>> = HashMap::new();
    let mut paths: Vec<Option<tsm_topology::route::Path>> = vec![None; offered.len()];
    let mut delivered: Vec<Option<DeliveredPacket>> = vec![None; offered.len()];

    let mut queue: EventQueue<Event> = EventQueue::new();
    for (idx, p) in offered.iter().enumerate() {
        queue.push(
            p.inject,
            Event::Forward {
                idx,
                hop: 0,
                at_tsp: p.src,
            },
        );
    }

    while let Some((now, event)) = queue.pop() {
        match event {
            Event::Forward { idx, hop, at_tsp } => {
                if hop == 0 && paths[idx].is_none() {
                    let p = &offered[idx];
                    paths[idx] = Some(choose_route(
                        topo,
                        p,
                        routing,
                        slot,
                        &busy_until,
                        &waiting,
                        rng,
                        now,
                    ));
                }
                let path = paths[idx].as_ref().expect("route chosen at injection");
                if hop == path.links.len() {
                    let p = &offered[idx];
                    delivered[idx] = Some(DeliveredPacket {
                        id: p.id,
                        arrival: now,
                        latency: now - p.inject,
                        hops: path.hops(),
                    });
                    continue;
                }
                let link = path.links[hop];
                if *busy_until.entry(link).or_insert(0) > now {
                    waiting.entry(link).or_default().push((idx, hop, at_tsp));
                } else {
                    serve(
                        topo,
                        offered,
                        &paths,
                        idx,
                        hop,
                        at_tsp,
                        now,
                        slot,
                        &mut busy_until,
                        &mut queue,
                        rng,
                    );
                }
            }
            Event::LinkFree { link } => {
                let Some(q) = waiting.get_mut(&link) else {
                    continue;
                };
                if q.is_empty() {
                    continue;
                }
                // Arbitrate: FIFO takes insertion order, age-based takes
                // the earliest-injected packet (paper ref [2]).
                let pick = match arbitration {
                    Arbitration::Fifo => 0,
                    Arbitration::AgeBased => q
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(idx, _, _))| offered[idx].inject)
                        .map(|(i, _)| i)
                        .expect("nonempty"),
                };
                let (idx, hop, at_tsp) = q.remove(pick);
                serve(
                    topo,
                    offered,
                    &paths,
                    idx,
                    hop,
                    at_tsp,
                    now,
                    slot,
                    &mut busy_until,
                    &mut queue,
                    rng,
                );
            }
        }
    }

    DynamicRun {
        delivered: delivered
            .into_iter()
            .map(|d| d.expect("all packets delivered"))
            .collect(),
    }
}

/// Transmits packet `idx`'s `hop`-th link starting at `now` (the link is
/// known free) and schedules the downstream events.
#[allow(clippy::too_many_arguments)]
fn serve<R: Rng>(
    topo: &Topology,
    offered: &[OfferedPacket],
    paths: &[Option<tsm_topology::route::Path>],
    idx: usize,
    hop: usize,
    at_tsp: TspId,
    now: u64,
    slot: u64,
    busy_until: &mut HashMap<LinkId, u64>,
    queue: &mut EventQueue<Event>,
    rng: &mut R,
) -> u64 {
    let path = paths[idx].as_ref().expect("route chosen");
    let link = path.links[hop];
    busy_until.insert(link, now + slot);
    queue.push(now + slot, Event::LinkFree { link });
    let wire = LatencyModel::for_class(topo.link(link).class).sample(rng);
    let next_tsp = topo.link(link).other_end(at_tsp);
    let _ = offered;
    queue.push(
        now + slot + wire,
        Event::Forward {
            idx,
            hop: hop + 1,
            at_tsp: next_tsp,
        },
    );
    now + slot + wire
}

/// Convenience: `n` packets from every TSP to one hot destination, the
/// incast pattern of Fig 8 that manufactures contention.
pub fn incast_traffic(topo: &Topology, dst: TspId, per_source: u32) -> Vec<OfferedPacket> {
    let mut out = Vec::new();
    let mut id = 0;
    for src in topo.tsps() {
        if src == dst {
            continue;
        }
        for k in 0..per_source {
            out.push(OfferedPacket {
                id,
                src,
                dst,
                inject: k as u64,
            });
            id += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsm_topology::Topology;

    #[test]
    fn uncontended_packet_sees_wire_latency_only() {
        let topo = Topology::single_node();
        let offered = [OfferedPacket {
            id: 0,
            src: TspId(0),
            dst: TspId(1),
            inject: 0,
        }];
        let mut rng = StdRng::seed_from_u64(1);
        let run = simulate(&topo, &offered, &mut rng);
        let d = run.delivered[0];
        assert_eq!(d.hops, 1);
        // slot (24) + jittered latency (208..=228)
        assert!(
            d.latency >= 24 + 208 && d.latency <= 24 + 228,
            "{}",
            d.latency
        );
    }

    #[test]
    fn incast_creates_queueing_delay() {
        let topo = Topology::single_node();
        let offered = incast_traffic(&topo, TspId(0), 20);
        let mut rng = StdRng::seed_from_u64(2);
        let run = simulate(&topo, &offered, &mut rng);
        // 7 sources × 20 packets onto 7 distinct links: no shared links in
        // a full mesh, so make them fight by doubling sources per link:
        // latency still includes serialization stacking per source.
        assert!(run.max_latency() >= 19 * 24, "max {}", run.max_latency());
    }

    #[test]
    fn same_seed_reproduces_different_seed_varies() {
        let topo = Topology::fully_connected_nodes(2).unwrap();
        // Cross-node incast: sources in node 0 all target TspId(8),
        // sharing global links -> real contention.
        let offered: Vec<OfferedPacket> = (0..8u32)
            .flat_map(|s| {
                (0..10u32).map(move |k| OfferedPacket {
                    id: s * 10 + k,
                    src: TspId(s),
                    dst: TspId(8),
                    inject: 0,
                })
            })
            .collect();
        let lat = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            simulate(&topo, &offered, &mut rng)
                .delivered
                .iter()
                .map(|d| d.latency)
                .collect::<Vec<_>>()
        };
        assert_eq!(lat(5), lat(5), "same seed must reproduce");
        assert_ne!(lat(5), lat(6), "different seeds model run-to-run variance");
    }

    #[test]
    fn contended_traffic_has_nonzero_variance() {
        let topo = Topology::fully_connected_nodes(2).unwrap();
        let offered: Vec<OfferedPacket> = (0..8u32)
            .flat_map(|s| {
                (0..25u32).map(move |k| OfferedPacket {
                    id: s * 25 + k,
                    src: TspId(s),
                    dst: TspId(8 + (s % 8)),
                    inject: k as u64 * 5,
                })
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        let run = simulate(&topo, &offered, &mut rng);
        assert!(
            run.latency_std() > 0.0,
            "dynamic network should show variance"
        );
    }

    #[test]
    fn age_based_arbitration_reduces_worst_case_age() {
        // Incast through shared global links: with age-based arbitration
        // the oldest packets never lose retry rounds, shrinking the max
        // latency relative to FIFO.
        let topo = Topology::fully_connected_nodes(2).unwrap();
        let offered: Vec<OfferedPacket> = (0..8u32)
            .flat_map(|s| {
                (0..30u32).map(move |k| OfferedPacket {
                    id: s * 30 + k,
                    src: TspId(s),
                    dst: TspId(8),
                    inject: k as u64 * 3,
                })
            })
            .collect();
        let run_with = |arb| {
            let mut rng = StdRng::seed_from_u64(11);
            simulate_with(&topo, &offered, RoutingPolicy::Minimal, arb, &mut rng)
        };
        let fifo = run_with(Arbitration::Fifo);
        let aged = run_with(Arbitration::AgeBased);
        assert!(
            aged.max_latency() <= fifo.max_latency(),
            "age-based {} vs fifo {}",
            aged.max_latency(),
            fifo.max_latency()
        );
        // but it's fairness, not determinism: variance is still nonzero
        assert!(aged.latency_std() > 0.0);
    }

    #[test]
    fn adaptive_routing_offloads_hot_links() {
        // A permutation that hammers one node pair's links: adaptive
        // routing detours some packets and cuts the completion tail.
        let topo = Topology::fully_connected_nodes(4).unwrap();
        let offered: Vec<OfferedPacket> = (0..8u32)
            .flat_map(|s| {
                (0..40u32).map(move |k| OfferedPacket {
                    id: s * 40 + k,
                    src: TspId(s),
                    dst: TspId(s + 8), // node0 -> node1, same-slot pairs
                    inject: 0,
                })
            })
            .collect();
        // The seed picks a representative congestion pattern; it is pinned
        // against this workspace's deterministic RNG stream.
        let run_with = |pol| {
            let mut rng = StdRng::seed_from_u64(17);
            simulate_with(&topo, &offered, pol, Arbitration::Fifo, &mut rng)
        };
        let minimal = run_with(RoutingPolicy::Minimal);
        let adaptive = run_with(RoutingPolicy::Adaptive);
        assert!(
            adaptive.max_latency() < minimal.max_latency(),
            "adaptive {} vs minimal {}",
            adaptive.max_latency(),
            minimal.max_latency()
        );
    }

    #[test]
    fn mean_latency_sane_for_single_packet() {
        let topo = Topology::single_node();
        let offered = [OfferedPacket {
            id: 0,
            src: TspId(2),
            dst: TspId(3),
            inject: 100,
        }];
        let mut rng = StdRng::seed_from_u64(4);
        let run = simulate(&topo, &offered, &mut rng);
        assert_eq!(run.delivered.len(), 1);
        assert!(run.mean_latency() > 0.0);
        assert_eq!(run.mean_latency() as u64, run.delivered[0].latency);
    }
}
