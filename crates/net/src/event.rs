//! Deterministic discrete-event core.
//!
//! Events are ordered by `(time, sequence)`: ties in time resolve by
//! insertion order, so a simulation replays identically regardless of heap
//! internals — the property every determinism assertion in this repository
//! rests on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue with deterministic tie-breaking.
///
/// Events at equal times resolve by an explicit priority (default 0),
/// then insertion order — which is how the age-based arbitration variant
/// of the dynamic baseline expresses "oldest packet first".
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<QueuedEvent<E>>>,
    next_seq: u64,
}

/// `(time, priority, sequence, event)` — the heap key that realizes the
/// deterministic ordering contract above.
type QueuedEvent<E> = (u64, u64, u64, EventBox<E>);

// Wrapper so E doesn't need Ord; comparisons never reach the payload.
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time` with default priority.
    pub fn push(&mut self, time: u64, event: E) {
        self.push_prioritized(time, 0, event);
    }

    /// Schedules `event` at `time`; among same-time events, lower
    /// `priority` pops first.
    pub fn push_prioritized(&mut self, time: u64, priority: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap
            .push(Reverse((time, priority, seq, EventBox(event))));
    }

    /// Pops the earliest event, ties broken by priority then insertion
    /// order.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap
            .pop()
            .map(|Reverse((t, _, _, EventBox(e)))| (t, e))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_resolve_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn priority_breaks_ties_before_insertion_order() {
        let mut q = EventQueue::new();
        q.push_prioritized(5, 9, "late");
        q.push_prioritized(5, 1, "early");
        q.push_prioritized(4, 100, "first");
        assert_eq!(q.pop(), Some((4, "first")));
        assert_eq!(q.pop(), Some((5, "early")));
        assert_eq!(q.pop(), Some((5, "late")));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(7, ());
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
