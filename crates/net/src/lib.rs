//! Network simulation: software-scheduled networking (SSN) and its
//! dynamically-routed counterpart.
//!
//! Paper §4 defines SSN: "it replaces the notion of dynamically routing
//! packets as they flow in the network, with *scheduling tensors* at
//! compile time". Concretely, a tensor is a sequence of 320-byte vector
//! flits; the compiler reserves each link for each flit at an exact cycle,
//! and the hardware merely replays the reservations — no arbitration, no
//! queues, no back-pressure (§4.4).
//!
//! * [`ssn`] — the reservation-table scheduler: virtual cut-through
//!   pipelining of vectors along precomputed paths, conflict-free by
//!   construction and verified by [`ssn::validate`].
//! * [`dynamic`] — the conventional baseline of Fig 1/Fig 8: per-port FIFO
//!   queues, round-robin arbitration and hop-by-hop routing, which
//!   produces the latency *variance* the paper's design eliminates.
//! * [`event`] — the deterministic discrete-event core shared by the
//!   dynamic simulator.

pub mod dynamic;
pub mod event;
pub mod pushpull;
pub mod ssn;

pub use ssn::{LinkOccupancy, Reservation, SsnError, TransferSchedule};
