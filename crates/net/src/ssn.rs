//! The software-scheduled network: compile-time link reservations.
//!
//! A tensor transfer is scheduled vector-by-vector. Each 320-byte vector
//! (328 B on the wire) occupies a link for its serialization time
//! (24 cycles at 900 MHz); consecutive hops pipeline with *virtual
//! cut-through* flow control (paper §2.3): the downstream TSP begins
//! forwarding a vector as soon as it arrives, buffering in local SRAM only
//! as scheduled.
//!
//! Because the hardware may not assert back-pressure (§2.3) and has no
//! arbitration (§4.4), the schedule itself must guarantee that no two
//! vectors ever want the same link at the same time. [`LinkOccupancy`]
//! enforces that at construction and [`validate`] re-checks any finished
//! schedule — the software analogue of the hardware having nothing to
//! arbitrate.

use std::collections::HashMap;
use tsm_isa::timing;
use tsm_topology::route::Path;
use tsm_topology::{LinkId, Topology, TspId};

/// Cycles one vector occupies a link (serialization of 328 wire bytes).
pub fn vector_slot_cycles() -> u64 {
    timing::wire_packet_serialization_cycles()
}

/// The deterministic one-way latency the compiler budgets for a link: the
/// cable-class base plus the worst-case jitter absorbed by deskew margin.
pub fn scheduled_link_latency(topo: &Topology, link: LinkId) -> u64 {
    // worst-case offset of the link jitter model (+12) — the compiler must
    // never underflow the receiver (paper §2.3).
    topo.link(link).class.base_latency_cycles() + 12
}

/// Per-hop forwarding overhead at an *intermediate* TSP: the vector is
/// buffered in local SRAM (paper §2.3: "we use the local SRAM storage on
/// each TSP to provide intermediate buffering") and re-issued by the C2C
/// unit. Calibrated so serialization + intra-node wire + forwarding equals
/// the paper's 722 ns pipelined per-hop latency (§5.6):
/// 24 + 228 + 398 = 650 cycles = 722 ns at 900 MHz.
pub const FORWARD_OVERHEAD_CYCLES: u64 = 398;

/// One link reservation: a transfer's flit train holds one *direction* of
/// `link` for `[start, start + vectors·slot)` — the vectors stream
/// back-to-back at the serialization interval.
///
/// C2C links are full duplex (the hierarchical all-reduce of paper §5.6
/// explicitly accumulates "bidirectionally"), so reservations in opposite
/// directions never conflict. Booking whole flit trains (rather than one
/// row per vector) keeps the schedule size O(hops) per transfer, which is
/// what makes gigabyte-scale tensors and 10,440-TSP systems schedulable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// The reserved link.
    pub link: LinkId,
    /// The transmitting endpoint (fixes the direction).
    pub from: TspId,
    /// First cycle of occupancy.
    pub start: u64,
    /// Transfer this reservation belongs to.
    pub transfer: u32,
    /// Number of back-to-back vector flits in the train.
    pub vectors: u64,
    /// Hop index within the transfer's path.
    pub hop: u8,
}

impl Reservation {
    /// One past the last occupied cycle.
    pub fn end(&self) -> u64 {
        self.start + self.vectors * vector_slot_cycles()
    }
}

/// Errors from schedule construction or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsnError {
    /// Two reservations overlap on a link — the schedule would need the
    /// arbitration the hardware doesn't have.
    LinkConflict {
        /// The contested link.
        link: LinkId,
        /// Start of the first overlapping reservation.
        a_start: u64,
        /// Start of the second overlapping reservation.
        b_start: u64,
    },
    /// A transfer was given an empty path but distinct endpoints.
    EmptyPath,
}

impl std::fmt::Display for SsnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SsnError::LinkConflict {
                link,
                a_start,
                b_start,
            } => write!(
                f,
                "link {:?} double-booked: reservations at {a_start} and {b_start}",
                link
            ),
            SsnError::EmptyPath => write!(f, "transfer over an empty path"),
        }
    }
}

impl std::error::Error for SsnError {}

/// Tracks when each link next becomes free while a schedule is built.
///
/// This is the compiler's global view of the network: transfers scheduled
/// through the same occupancy are conflict-free *by construction*.
#[derive(Debug, Clone, Default)]
pub struct LinkOccupancy {
    next_free: HashMap<(LinkId, TspId), u64>,
    reservations: Vec<Reservation>,
    next_transfer: u32,
}

impl LinkOccupancy {
    /// An empty occupancy table.
    pub fn new() -> Self {
        Self::default()
    }

    /// First cycle at or after `at` when `link` is free in the direction
    /// transmitted by `from`.
    pub fn free_at(&self, link: LinkId, from: TspId, at: u64) -> u64 {
        at.max(*self.next_free.get(&(link, from)).unwrap_or(&0))
    }

    /// All reservations made so far.
    pub fn reservations(&self) -> &[Reservation] {
        &self.reservations
    }

    /// Schedules a transfer of `vectors` flits along `path`, starting no
    /// earlier than `earliest`. Returns the transfer's timing.
    ///
    /// Vectors pipeline back-to-back (each path hop adds its deterministic
    /// latency once; subsequent vectors follow at the serialization
    /// interval), realizing virtual cut-through.
    pub fn schedule_transfer(
        &mut self,
        topo: &Topology,
        path: &Path,
        vectors: u64,
        earliest: u64,
    ) -> Result<TransferSchedule, SsnError> {
        let sched = self.plan_transfer(topo, path, vectors, earliest)?;
        self.commit(path, &sched);
        Ok(sched)
    }

    /// Computes the timing [`schedule_transfer`](Self::schedule_transfer)
    /// would produce without
    /// booking anything. A caller with constraints beyond link occupancy
    /// (the plan compiler also reserves chip execution units) can trial a
    /// start cycle, inspect the resulting hop starts, and either
    /// [`commit`](Self::commit) the schedule or retry later.
    pub fn plan_transfer(
        &self,
        topo: &Topology,
        path: &Path,
        vectors: u64,
        earliest: u64,
    ) -> Result<TransferSchedule, SsnError> {
        let transfer = self.next_transfer;
        let slot = vector_slot_cycles();

        if path.links.is_empty() {
            if path.source() != path.dest() {
                return Err(SsnError::EmptyPath);
            }
            // Local transfer: no network time.
            return Ok(TransferSchedule {
                transfer,
                source: path.source(),
                dest: path.dest(),
                vectors,
                first_inject: earliest,
                last_arrival: earliest,
                hops: 0,
                hop_starts: Vec::new(),
            });
        }

        // Virtual cut-through at flit-train granularity: vector i starts
        // hop h at t_h + i·slot and arrives at t_h + (i+1)·slot + L_h; hop
        // h+1 may start its train once the first vector has arrived and
        // been staged, i.e. t_{h+1} ≥ t_h + slot + L_h + F — the same
        // offset for every vector in the train, so one block reservation
        // per hop is timing-exact for a chained transfer.
        let mut t = earliest;
        let mut hop_starts = Vec::with_capacity(path.links.len());
        let mut last_link_latency = 0;
        for (h, &link) in path.links.iter().enumerate() {
            if h > 0 {
                t += FORWARD_OVERHEAD_CYCLES;
            }
            t = self.free_at(link, path.tsps[h], t);
            hop_starts.push(t);
            last_link_latency = scheduled_link_latency(topo, link);
            t = t + slot + last_link_latency;
        }
        let last_hop_start = *hop_starts.last().expect("non-empty path");
        Ok(TransferSchedule {
            transfer,
            source: path.source(),
            dest: path.dest(),
            vectors,
            first_inject: hop_starts[0],
            last_arrival: last_hop_start + vectors * slot + last_link_latency,
            hops: path.hops(),
            hop_starts,
        })
    }

    /// Books a schedule produced by [`plan_transfer`](Self::plan_transfer)
    /// for the same `path`: inserts one directed reservation per hop and
    /// claims the transfer id the plan was numbered with.
    pub fn commit(&mut self, path: &Path, sched: &TransferSchedule) {
        debug_assert_eq!(
            sched.transfer, self.next_transfer,
            "commit out of order with plan_transfer"
        );
        self.next_transfer = sched.transfer + 1;
        let slot = vector_slot_cycles();
        for (h, (&link, &start)) in path.links.iter().zip(sched.hop_starts.iter()).enumerate() {
            let from = path.tsps[h];
            self.next_free
                .insert((link, from), start + sched.vectors * slot);
            self.reservations.push(Reservation {
                link,
                from,
                start,
                transfer: sched.transfer,
                vectors: sched.vectors,
                hop: h as u8,
            });
        }
    }

    /// Schedules a transfer of `vectors` flits spread across several
    /// edge-disjoint `paths` (deterministic load-balancing, paper §4.3).
    ///
    /// Vectors are assigned to paths to minimize the overall completion
    /// time: shorter paths receive proportionally more flits. Returns the
    /// per-path schedules; the transfer completes at the max of their
    /// arrivals.
    pub fn schedule_spread(
        &mut self,
        topo: &Topology,
        paths: &[Path],
        vectors: u64,
        earliest: u64,
    ) -> Result<Vec<TransferSchedule>, SsnError> {
        assert!(!paths.is_empty(), "spread over zero paths");
        let slot = vector_slot_cycles();
        // Path "head start" = its pipeline fill latency relative to the
        // fastest path. Water-filling: assign flits so completion times
        // equalize.
        let latencies: Vec<u64> = paths.iter().map(|p| path_fill_latency(topo, p)).collect();
        let assignment = waterfill(&latencies, slot, vectors);
        let mut out = Vec::new();
        for (path, &n) in paths.iter().zip(assignment.iter()) {
            if n == 0 {
                continue;
            }
            out.push(self.schedule_transfer(topo, path, n, earliest)?);
        }
        Ok(out)
    }
}

/// Pipeline-fill latency of a path: the time for one vector to traverse it
/// on a cold network, including intermediate forwarding overheads.
pub fn path_fill_latency(topo: &Topology, path: &Path) -> u64 {
    let slot = vector_slot_cycles();
    let mut t = 0;
    for (h, &link) in path.links.iter().enumerate() {
        if h > 0 {
            t += FORWARD_OVERHEAD_CYCLES;
        }
        t += slot + scheduled_link_latency(topo, link);
    }
    t
}

/// Distributes `vectors` flits over paths with pipeline-fill latencies
/// `latencies` and per-flit serialization `slot`, minimizing the maximum
/// completion time `latency_i + n_i · slot` subject to `Σ n_i = vectors`.
pub fn waterfill(latencies: &[u64], slot: u64, vectors: u64) -> Vec<u64> {
    let k = latencies.len();
    let mut n = vec![0u64; k];
    if vectors == 0 {
        return n;
    }
    assert!(k >= 1 && slot > 0);
    // Binary-search the smallest completion time T whose total capacity
    // Σᵢ ⌊(T − latᵢ)/slot⌋ covers the flits (O(K log) — gigabyte tensors
    // schedule as fast as kilobyte ones).
    let capacity = |t: u64| -> u64 {
        latencies
            .iter()
            .map(|&l| if t > l { (t - l) / slot } else { 0 })
            .sum()
    };
    let min_lat = *latencies.iter().min().expect("k >= 1");
    let mut lo = min_lat;
    let mut hi = min_lat + vectors * slot;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if capacity(mid) >= vectors {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    for (i, &l) in latencies.iter().enumerate() {
        n[i] = if lo > l { (lo - l) / slot } else { 0 };
    }
    // Shave the excess one flit at a time from the back, keeping finishes
    // within one slot of each other (deterministic tie-breaking).
    let mut excess = n.iter().sum::<u64>() - vectors;
    while excess > 0 {
        for i in (0..k).rev() {
            if excess == 0 {
                break;
            }
            if n[i] > 0 {
                n[i] -= 1;
                excess -= 1;
            }
        }
    }
    n
}

/// Timing summary of one scheduled transfer (or one spread shard).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferSchedule {
    /// Transfer id within its occupancy table.
    pub transfer: u32,
    /// Source TSP.
    pub source: TspId,
    /// Destination TSP.
    pub dest: TspId,
    /// Flits carried.
    pub vectors: u64,
    /// Cycle the first flit enters the first link.
    pub first_inject: u64,
    /// Cycle the last flit fully arrives at the destination.
    pub last_arrival: u64,
    /// Hops traversed.
    pub hops: usize,
    /// Cycle each hop's flit train starts on its link, in path order (one
    /// entry per link; empty for a zero-hop local transfer). Consumers that
    /// lower the schedule to per-chip programs read hop timing from here
    /// directly instead of re-filtering the occupancy's reservation table.
    pub hop_starts: Vec<u64>,
}

impl TransferSchedule {
    /// End-to-end duration in cycles.
    pub fn duration(&self) -> u64 {
        self.last_arrival - self.first_inject
    }
}

/// Completion cycle of a set of spread shards.
pub fn completion(shards: &[TransferSchedule]) -> u64 {
    shards.iter().map(|s| s.last_arrival).max().unwrap_or(0)
}

/// Re-validates a finished schedule: no two reservations may overlap on
/// the same link direction. `LinkOccupancy` guarantees this by
/// construction; `validate` is the independent check a paranoid runtime
/// (or a test) can run.
pub fn validate(reservations: &[Reservation]) -> Result<(), SsnError> {
    let mut per_link: HashMap<(LinkId, TspId), Vec<&Reservation>> = HashMap::new();
    for r in reservations {
        per_link.entry((r.link, r.from)).or_default().push(r);
    }
    for ((link, _from), mut rs) in per_link {
        rs.sort_by_key(|r| r.start);
        for w in rs.windows(2) {
            if w[1].start < w[0].end() {
                return Err(SsnError::LinkConflict {
                    link,
                    a_start: w[0].start,
                    b_start: w[1].start,
                });
            }
        }
    }
    Ok(())
}

/// Aggregate per-link utilization over a schedule horizon, for the
/// load-balance reporting of paper §5.3/§5.6.
pub fn link_utilization(reservations: &[Reservation], horizon: u64) -> HashMap<LinkId, f64> {
    let slot = vector_slot_cycles() as f64;
    let mut busy: HashMap<LinkId, f64> = HashMap::new();
    for r in reservations {
        *busy.entry(r.link).or_insert(0.0) += slot * r.vectors as f64;
    }
    if horizon > 0 {
        for v in busy.values_mut() {
            *v /= horizon as f64;
        }
    }
    busy
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_topology::route::{edge_disjoint_paths, shortest_path};
    use tsm_topology::Topology;

    fn node() -> Topology {
        Topology::single_node()
    }

    #[test]
    fn single_vector_single_hop_timing() {
        let topo = node();
        let path = shortest_path(&topo, TspId(0), TspId(1)).unwrap();
        let mut occ = LinkOccupancy::new();
        let s = occ.schedule_transfer(&topo, &path, 1, 0).unwrap();
        // inject at 0; arrival = slot + (base 216 + 12 margin)
        assert_eq!(s.first_inject, 0);
        assert_eq!(s.last_arrival, vector_slot_cycles() + 228);
        assert_eq!(s.hops, 1);
        validate(occ.reservations()).unwrap();
    }

    #[test]
    fn vectors_pipeline_at_serialization_interval() {
        let topo = node();
        let path = shortest_path(&topo, TspId(0), TspId(1)).unwrap();
        let mut occ = LinkOccupancy::new();
        let s1 = occ.schedule_transfer(&topo, &path, 1, 0).unwrap();
        let mut occ2 = LinkOccupancy::new();
        let s100 = occ2.schedule_transfer(&topo, &path, 100, 0).unwrap();
        // 99 extra vectors add exactly 99 serialization slots.
        assert_eq!(
            s100.last_arrival,
            s1.last_arrival + 99 * vector_slot_cycles()
        );
        validate(occ2.reservations()).unwrap();
    }

    #[test]
    fn local_transfer_takes_no_network_time() {
        let topo = node();
        let path = shortest_path(&topo, TspId(2), TspId(2)).unwrap();
        let mut occ = LinkOccupancy::new();
        let s = occ.schedule_transfer(&topo, &path, 50, 77).unwrap();
        assert_eq!(s.first_inject, 77);
        assert_eq!(s.last_arrival, 77);
        assert!(occ.reservations().is_empty());
    }

    #[test]
    fn competing_transfers_serialize_without_conflict() {
        // Two transfers over the same link: the second waits, exactly the
        // compile-time resolution of Fig 8's contention example.
        let topo = node();
        let path = shortest_path(&topo, TspId(0), TspId(1)).unwrap();
        let mut occ = LinkOccupancy::new();
        let a = occ.schedule_transfer(&topo, &path, 10, 0).unwrap();
        let b = occ.schedule_transfer(&topo, &path, 10, 0).unwrap();
        assert!(b.first_inject >= a.first_inject + 10 * vector_slot_cycles());
        validate(occ.reservations()).unwrap();
    }

    #[test]
    fn spread_across_paths_beats_single_path_for_large_tensors() {
        let topo = node();
        let paths = edge_disjoint_paths(&topo, TspId(0), TspId(1), 7);
        let vectors = 1000; // 320 KB tensor
        let mut single = LinkOccupancy::new();
        let s = single
            .schedule_transfer(&topo, &paths[0], vectors, 0)
            .unwrap();
        let mut spread = LinkOccupancy::new();
        let shards = spread.schedule_spread(&topo, &paths, vectors, 0).unwrap();
        let spread_done = completion(&shards);
        assert!(
            spread_done < s.last_arrival / 4,
            "spread {spread_done} vs single {}",
            s.last_arrival
        );
        validate(spread.reservations()).unwrap();
    }

    #[test]
    fn small_tensors_stay_on_the_minimal_path() {
        // Fig 10: below the crossover, non-minimal paths are not worth
        // their pipeline-fill latency — waterfilling leaves them empty.
        let topo = node();
        let paths = edge_disjoint_paths(&topo, TspId(0), TspId(1), 7);
        let mut occ = LinkOccupancy::new();
        let shards = occ.schedule_spread(&topo, &paths, 3, 0).unwrap();
        assert_eq!(shards.len(), 1, "3 vectors should not spread");
        assert_eq!(shards[0].hops, 1);
    }

    #[test]
    fn waterfill_equalizes_completion() {
        let latencies = [100, 300, 300];
        let n = waterfill(&latencies, 10, 60);
        assert_eq!(n.iter().sum::<u64>(), 60);
        // Path 0 gets its 200-cycle head start worth of extra flits (20).
        assert!(n[0] > n[1]);
        let finish: Vec<u64> = latencies
            .iter()
            .zip(&n)
            .map(|(&l, &k)| l + k * 10)
            .collect();
        let spread = finish.iter().max().unwrap() - finish.iter().min().unwrap();
        assert!(spread <= 10, "finishes {finish:?}");
    }

    #[test]
    fn waterfill_zero_vectors() {
        assert_eq!(waterfill(&[5, 6], 10, 0), vec![0, 0]);
    }

    #[test]
    fn validate_catches_forged_conflicts() {
        let res = |start, transfer, from| Reservation {
            link: LinkId(0),
            from: TspId(from),
            start,
            transfer,
            vectors: 1,
            hop: 0,
        };
        // Same direction, overlapping: conflict.
        assert!(matches!(
            validate(&[res(0, 0, 0), res(5, 1, 0)]),
            Err(SsnError::LinkConflict { .. })
        ));
        // Same direction, back-to-back: fine.
        assert!(validate(&[res(0, 0, 0), res(24, 1, 0)]).is_ok());
        // Opposite directions, overlapping: full duplex, fine.
        assert!(validate(&[res(0, 0, 0), res(5, 1, 1)]).is_ok());
    }

    #[test]
    fn utilization_accounting() {
        let topo = node();
        let path = shortest_path(&topo, TspId(0), TspId(1)).unwrap();
        let mut occ = LinkOccupancy::new();
        let s = occ.schedule_transfer(&topo, &path, 10, 0).unwrap();
        let util = link_utilization(occ.reservations(), s.last_arrival);
        let link_util = util[&path.links[0]];
        assert!(link_util > 0.4 && link_util <= 1.0, "{link_util}");
    }

    #[test]
    fn schedules_are_deterministic() {
        let topo = node();
        let run = || {
            let paths = edge_disjoint_paths(&topo, TspId(0), TspId(5), 7);
            let mut occ = LinkOccupancy::new();
            let shards = occ.schedule_spread(&topo, &paths, 500, 0).unwrap();
            (completion(&shards), occ.reservations().len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hop_starts_mirror_the_reservation_table() {
        let topo = Topology::fully_connected_nodes(2).unwrap();
        let path = shortest_path(&topo, TspId(0), TspId(9)).unwrap();
        let mut occ = LinkOccupancy::new();
        let s = occ.schedule_transfer(&topo, &path, 12, 5).unwrap();
        assert_eq!(s.hop_starts.len(), path.links.len());
        let from_reservations: Vec<u64> = occ
            .reservations()
            .iter()
            .filter(|r| r.transfer == s.transfer)
            .map(|r| r.start)
            .collect();
        assert_eq!(s.hop_starts, from_reservations);
        assert_eq!(s.first_inject, s.hop_starts[0]);
        // local transfers have no hops to report
        let local = shortest_path(&topo, TspId(3), TspId(3)).unwrap();
        assert!(occ
            .schedule_transfer(&topo, &local, 4, 0)
            .unwrap()
            .hop_starts
            .is_empty());
    }

    #[test]
    fn multi_hop_latency_accumulates() {
        let topo = Topology::fully_connected_nodes(2).unwrap();
        let path = shortest_path(&topo, TspId(0), TspId(9)).unwrap();
        assert!(path.hops() >= 2, "cross-node to a non-adjacent TSP");
        let mut occ = LinkOccupancy::new();
        let s = occ.schedule_transfer(&topo, &path, 1, 0).unwrap();
        assert_eq!(s.last_arrival, path_fill_latency(&topo, &path));
        // each intermediate hop pays the SRAM forwarding overhead
        let wire_only: u64 = path
            .links
            .iter()
            .map(|&l| vector_slot_cycles() + scheduled_link_latency(&topo, l))
            .sum();
        assert_eq!(
            s.last_arrival,
            wire_only + (path.hops() as u64 - 1) * FORWARD_OVERHEAD_CYCLES
        );
    }
}
