//! Property-based tests for the software-scheduled network.

// In offline dev environments the proptest stub's `proptest!` macro
// expands to nothing, making the helpers and imports below look unused;
// the real proptest uses all of them.
#![allow(dead_code, unused_imports)]

use proptest::prelude::*;
use tsm_net::ssn::{completion, validate, vector_slot_cycles, waterfill, LinkOccupancy};
use tsm_topology::route::{edge_disjoint_paths, shortest_path};
use tsm_topology::{Topology, TspId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Waterfill conserves flits, never over-assigns empty paths, and
    /// keeps finish times within one slot of each other.
    #[test]
    fn waterfill_invariants(
        latencies in prop::collection::vec(1u64..100_000, 1..10),
        slot in 1u64..200,
        vectors in 0u64..100_000,
    ) {
        let n = waterfill(&latencies, slot, vectors);
        prop_assert_eq!(n.len(), latencies.len());
        prop_assert_eq!(n.iter().sum::<u64>(), vectors);
        let finishes: Vec<u64> = latencies
            .iter()
            .zip(&n)
            .filter(|&(_, &k)| k > 0)
            .map(|(&l, &k)| l + k * slot)
            .collect();
        if finishes.len() > 1 {
            let max = finishes.iter().max().unwrap();
            let min = finishes.iter().min().unwrap();
            prop_assert!(max - min <= slot + latencies.iter().max().unwrap() - latencies.iter().min().unwrap(),
                "finishes badly unbalanced: {finishes:?}");
        }
        // Optimality spot check: no single-flit move improves the makespan
        // by more than one slot.
        if vectors > 0 {
            let makespan = finishes.iter().max().copied().unwrap_or(0);
            for (i, &l) in latencies.iter().enumerate() {
                if n[i] == 0 {
                    // any unused path must not be able to take a flit and
                    // beat the makespan
                    prop_assert!(l + slot + slot >= makespan,
                        "unused path {i} (lat {l}) could trivially improve makespan {makespan}");
                }
            }
        }
    }

    /// Any sequence of transfers scheduled through one occupancy table
    /// validates conflict-free, and arrivals are causally consistent.
    #[test]
    fn schedules_always_validate(
        transfers in prop::collection::vec((0u32..8, 0u32..8, 1u64..500, 0u64..10_000), 1..30),
    ) {
        let topo = Topology::single_node();
        let mut occ = LinkOccupancy::new();
        for &(a, b, vectors, earliest) in &transfers {
            let path = shortest_path(&topo, TspId(a), TspId(b)).unwrap();
            let s = occ.schedule_transfer(&topo, &path, vectors, earliest).unwrap();
            prop_assert!(s.first_inject >= earliest);
            prop_assert!(s.last_arrival >= s.first_inject);
        }
        prop_assert!(validate(occ.reservations()).is_ok());
    }

    /// Spreading never completes later than the single minimal path.
    #[test]
    fn spreading_never_hurts(vectors in 1u64..5_000) {
        let topo = Topology::single_node();
        let paths = edge_disjoint_paths(&topo, TspId(0), TspId(1), 7);
        let mut single = LinkOccupancy::new();
        let s = single.schedule_transfer(&topo, &paths[0], vectors, 0).unwrap();
        let mut spread = LinkOccupancy::new();
        let shards = spread.schedule_spread(&topo, &paths, vectors, 0).unwrap();
        prop_assert!(completion(&shards) <= s.last_arrival,
            "spread {} beat by single {}", completion(&shards), s.last_arrival);
        prop_assert!(validate(spread.reservations()).is_ok());
    }

    /// Transfer duration formula: v flits over one hop = fill + (v)·slot…
    /// exactly `slot·v + wire latency`.
    #[test]
    fn single_hop_duration_exact(vectors in 1u64..10_000, earliest in 0u64..1_000_000) {
        let topo = Topology::single_node();
        let path = shortest_path(&topo, TspId(2), TspId(5)).unwrap();
        let mut occ = LinkOccupancy::new();
        let s = occ.schedule_transfer(&topo, &path, vectors, earliest).unwrap();
        prop_assert_eq!(s.first_inject, earliest);
        prop_assert_eq!(
            s.last_arrival,
            earliest + vectors * vector_slot_cycles() + 228
        );
    }
}
