//! The V100 cluster reference of Fig 15 (paper ref \[17\], Herault et al.).
//!
//! "When compared to \[17\] which uses a cluster of Nvidia V100s, we can
//! achieve over 100× more FP16 throughput compared to the peak
//! performance on 432 GPUs achieving approximately 2800 (fp64) TFlops on
//! matrix sizes of 650000×650000."

/// GPUs in the published cluster result.
pub const CLUSTER_GPUS: usize = 432;

/// The cluster's reported FP64 throughput at N = 650,000, in TFLOPs.
pub const CLUSTER_FP64_TFLOPS: f64 = 2800.0;

/// Matrix size of the published result.
pub const REFERENCE_N: u64 = 650_000;

/// Speedup of a measured TSP-cluster FP16 throughput over the V100
/// cluster's published number (precision differences acknowledged in the
/// paper; the comparison is throughput-for-throughput as Fig 15 makes it).
pub fn tsp_speedup(tsp_fp16_tflops: f64) -> f64 {
    tsp_fp16_tflops / CLUSTER_FP64_TFLOPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_constants() {
        assert_eq!(CLUSTER_GPUS, 432);
        assert_eq!(REFERENCE_N, 650_000);
    }

    #[test]
    fn tsp_cluster_speedup_is_an_order_of_magnitude() {
        // 300 TSPs at >60% of 184 TFLOPs ≈ 33,000 TFLOPs — an order of
        // magnitude over the V100 cluster. (The paper's literal "100x"
        // phrasing is not reachable from its own numbers: 100 x 2800
        // TFLOPs would exceed 300 TSPs' aggregate peak; see
        // EXPERIMENTS.md.)
        let tsp_cluster = 300.0 * 184.0 * 0.6;
        assert!(tsp_speedup(tsp_cluster) > 10.0);
        let near_peak = 300.0 * 184.0 * 0.95;
        assert!(tsp_speedup(near_peak) > 18.0);
    }
}
