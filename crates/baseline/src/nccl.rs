//! NCCL-style ring all-reduce on an 8-GPU A100 node (Fig 16's baseline).
//!
//! The paper's footnote 5: "Results for A100 were measured on an 8 A100
//! GPU system with 300 GB/s of NVlink bandwidth per GPU … results of bus
//! bw is shown." The model is the textbook ring: `2(k−1)` steps moving
//! `S/k` bytes each, plus the overheads the paper calls out for
//! shared-memory semantics — kernel launch and the mutex/flag + memory
//! fence per step — which dominate small-message latency and give the TSP
//! its fine-grained win.

/// Participants in the node-level ring.
pub const GPUS: usize = 8;

/// Per-GPU NVLink bandwidth (one direction), GB/s.
pub const NVLINK_GBS: f64 = 300.0;

/// Kernel-launch + enqueue overhead per collective, seconds.
pub const LAUNCH_OVERHEAD_S: f64 = 8e-6;

/// Flag write + memory fence + flag poll per ring step, seconds (the
/// lock-based mailbox cost of paper §5.3).
pub const FENCE_OVERHEAD_S: f64 = 1.2e-6;

/// Completion time of an all-reduce of `bytes` per GPU.
pub fn allreduce_seconds(bytes: u64) -> f64 {
    let k = GPUS as f64;
    let steps = 2.0 * (k - 1.0);
    let chunk = bytes as f64 / k;
    LAUNCH_OVERHEAD_S + steps * (FENCE_OVERHEAD_S + chunk / (NVLINK_GBS * 1e9))
}

/// Bus bandwidth (nccl-tests convention) in GB/s.
pub fn allreduce_bus_gbs(bytes: u64) -> f64 {
    let k = GPUS as f64;
    let t = allreduce_seconds(bytes);
    bytes as f64 * 2.0 * (k - 1.0) / k / t / 1e9
}

/// The same model with pin bandwidth normalized to a TSP's (the "A100
/// normalized" series of Fig 16): link bandwidth scaled by
/// `tsp_pins / a100_pins`.
pub fn allreduce_bus_gbs_pin_normalized(bytes: u64, tsp_pin_gbs: f64) -> f64 {
    let scale = tsp_pin_gbs / crate::a100::PIN_BANDWIDTH_GBS;
    let k = GPUS as f64;
    let steps = 2.0 * (k - 1.0);
    let chunk = bytes as f64 / k;
    let t = LAUNCH_OVERHEAD_S + steps * (FENCE_OVERHEAD_S + chunk / (NVLINK_GBS * scale * 1e9));
    bytes as f64 * 2.0 * (k - 1.0) / k / t / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_messages_are_overhead_dominated() {
        // 1 KB: time ≈ launch + 14 fences ≈ 25 µs -> bus bw well under
        // 1 GB/s. This is the regime where the TSP wins Fig 16.
        let t = allreduce_seconds(1024);
        assert!(t > 20e-6, "{t}");
        assert!(allreduce_bus_gbs(1024) < 0.2);
    }

    #[test]
    fn large_messages_approach_nvlink_bandwidth() {
        // 1 GB: the nccl-tests busbw convention is built so the ring's
        // asymptote equals the per-GPU link bandwidth (300 GB/s); the
        // overheads keep it slightly below.
        let bw = allreduce_bus_gbs(1 << 30);
        assert!(bw > 250.0 && bw < 300.0, "{bw}");
    }

    #[test]
    fn bus_bandwidth_is_monotone_in_size() {
        let sizes = [1u64 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 30];
        let bws: Vec<f64> = sizes.iter().map(|&s| allreduce_bus_gbs(s)).collect();
        for w in bws.windows(2) {
            assert!(w[1] > w[0], "{bws:?}");
        }
    }

    #[test]
    fn pin_normalized_scales_down_peak() {
        // Normalized to a TSP's ~87.5 GB/s of usable C2C pins, the A100
        // plateau drops to ~87 GB/s — matching the TSP's ~84 GB/s at large
        // sizes, exactly the Fig 16 zoom's observation.
        let big = 1u64 << 30;
        let norm = allreduce_bus_gbs_pin_normalized(big, 87.5);
        let raw = allreduce_bus_gbs(big);
        assert!(norm < raw / 2.0, "norm {norm} raw {raw}");
        assert!(norm > 60.0 && norm < 90.0, "{norm}");
    }

    #[test]
    fn overheads_do_not_affect_asymptote() {
        let bw_big = allreduce_bus_gbs(1 << 32);
        let bw_huge = allreduce_bus_gbs(1 << 34);
        assert!((bw_huge / bw_big - 1.0).abs() < 0.02);
    }
}
