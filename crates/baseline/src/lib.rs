//! Analytic models of the paper's comparison systems (§5.2–5.3).
//!
//! The figures compare the TSP against Nvidia hardware the authors
//! measured. We cannot run that hardware, so each comparator is rebuilt as
//! the analytic model that produces its characteristic *shape*:
//!
//! * [`a100`] — GEMM utilization with **wave quantization** (the tile/SM
//!   rounding of Nvidia's own GEMM guide \[33\]) for Fig 13, and pin
//!   bandwidth for the normalized series of Fig 16;
//! * [`nccl`] — a ring all-reduce with kernel-launch and shared-memory
//!   fence overhead, the lock-based mailbox cost the paper contrasts with
//!   barrier-free SSN (Fig 16);
//! * [`v100`] — the 432-GPU V100 cluster reference point of Herault et
//!   al. used by Fig 15's ">100× FP16 throughput" claim.

pub mod a100;
pub mod nccl;
pub mod v100;
