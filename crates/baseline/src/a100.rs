//! A100 GEMM utilization model: tile + wave quantization (Fig 13).
//!
//! Following Nvidia's matrix-multiplication background guide (paper ref
//! \[33\]): the GEMM is tiled into thread-block tiles; full occupancy needs
//! the tile count to fill a whole number of "waves" across the 108 SMs.
//! When `ceil(tiles / 108)` rounds up, the tail wave runs mostly idle —
//! the sawtooth utilization dips of Fig 13 that the TSP's 320-wide
//! dataflow does not exhibit.

/// Streaming multiprocessors on an A100.
pub const SMS: u64 = 108;

/// Dense FP16 tensor-core peak, TFLOPs.
pub const PEAK_FP16_TFLOPS: f64 = 312.0;

/// Per-GPU NVLink pin bandwidth the paper normalizes against a TSP's pins
/// (footnote 5: "300 GB/s of NVlink bandwidth per GPU").
pub const PIN_BANDWIDTH_GBS: f64 = 300.0;

/// Thread-block tile shape used by the model (a typical 256×128 CUTLASS
/// tile).
pub const TILE_M: u64 = 256;
/// Tile N dimension.
pub const TILE_N: u64 = 128;

/// Utilization of an `[M×K]×[K×N]` FP16 GEMM on the A100 model.
///
/// Two quantization losses multiply:
/// * **tile quantization** — M and N round up to whole tiles,
/// * **wave quantization** — the tile count rounds up to whole waves of
///   108 SMs.
pub fn gemm_utilization(m: u64, k: u64, n: u64) -> f64 {
    let _ = k; // K only affects time linearly, not utilization shape
    let tiles_m = m.div_ceil(TILE_M);
    let tiles_n = n.div_ceil(TILE_N);
    let tiles = tiles_m * tiles_n;
    let waves = tiles.div_ceil(SMS);
    let tile_eff = (m as f64 / (tiles_m * TILE_M) as f64) * (n as f64 / (tiles_n * TILE_N) as f64);
    let wave_eff = tiles as f64 / (waves * SMS) as f64;
    tile_eff * wave_eff
}

/// Realized TFLOPs for the GEMM.
pub fn gemm_tflops(m: u64, k: u64, n: u64) -> f64 {
    gemm_utilization(m, k, n) * PEAK_FP16_TFLOPS
}

/// The Fig 13 sweep on the A100 side: utilization of
/// `[2304×4096]×[4096×N]`.
pub fn fig13_sweep(n_values: impl IntoIterator<Item = u64>) -> Vec<(u64, f64)> {
    n_values
        .into_iter()
        .map(|n| (n, gemm_utilization(2304, 4096, n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_quantized_shape_hits_full_utilization() {
        // 2304/256 = 9 tiles_m; choose N so tiles = multiple of 108:
        // tiles_n = 12 -> tiles = 108 exactly, N = 12*128 = 1536.
        let u = gemm_utilization(2304, 4096, 1536);
        assert!((u - 1.0).abs() < 1e-12, "{u}");
    }

    #[test]
    fn one_extra_tile_causes_a_wave_cliff() {
        // N = 1537 adds a 13th tile column: 117 tiles -> 2 waves, and the
        // second wave is ~92% idle.
        let good = gemm_utilization(2304, 4096, 1536);
        let bad = gemm_utilization(2304, 4096, 1537);
        assert!(bad < good * 0.6, "wave cliff missing: {good} -> {bad}");
    }

    #[test]
    fn fig13_a100_dips_below_80_while_tsp_does_not() {
        // The defining contrast of Fig 13.
        let a100 = fig13_sweep((1376..=3500).step_by(7));
        let dips = a100.iter().filter(|&&(_, u)| u < 0.80).count();
        assert!(dips > 0, "A100 must show sub-80% dips");
        let tsp = tsm_chip_fig13_min();
        assert!(tsp >= 0.80, "TSP stays above 80%: {tsp}");
    }

    fn tsm_chip_fig13_min() -> f64 {
        tsm_chip_dep::mxm::fig13_sweep((1376..=3500).step_by(7))
            .into_iter()
            .map(|(_, u)| u)
            .fold(f64::INFINITY, f64::min)
    }

    use tsm_chip as tsm_chip_dep;

    #[test]
    fn utilization_bounded() {
        for n in (100..4000).step_by(137) {
            let u = gemm_utilization(2304, 4096, n);
            assert!(u > 0.0 && u <= 1.0, "N={n}: {u}");
        }
    }

    #[test]
    fn tflops_scales_with_utilization() {
        assert_eq!(gemm_tflops(2304, 4096, 1536), PEAK_FP16_TFLOPS);
    }
}
