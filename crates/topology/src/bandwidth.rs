//! The global bandwidth profile of paper Fig 2.
//!
//! Fig 2 plots *global bandwidth per TSP* against system size, showing
//! bandwidth cliffs at each packaging boundary:
//!
//! * systems of **< 16 TSPs** ride the abundant intra-node wire density
//!   (short cables can run at the full 30 Gbps serdes rate): > 100 GB/s,
//! * systems up to **264 TSPs** get the full global-link injection of
//!   4 × 12.5 GB/s = 50 GB/s per TSP,
//! * beyond 264 TSPs the rack-Dragonfly regime applies; per-TSP global
//!   bandwidth is limited by the inter-rack bisection, flattening to
//!   ≈ 14 GB/s at the maximal 145-rack configuration.
//!
//! Conventions (documented here because the paper does not spell them out):
//! link payload bandwidth is 12.5 GB/s per direction (4 × 25 Gbps);
//! intra-node cables may run at 30 Gbps (15 GB/s); bisection bandwidth per
//! TSP is `2 × cut × link_bw / N` with each cut link counted once.

use crate::build::links_per_rack_pair;
use crate::{
    GLOBAL_LINKS_PER_TSP, LOCAL_LINKS_PER_TSP, MAX_FULL_CONNECT_NODES, TSPS_PER_NODE, TSPS_PER_RACK,
};

/// Payload bandwidth of one C2C link direction at the deployed 25 Gbps lane
/// rate, in GB/s.
pub const LINK_GBS: f64 = 12.5;

/// Payload bandwidth of one intra-node link direction at the maximum
/// 30 Gbps lane rate, in GB/s.
pub const INTRA_NODE_LINK_GBS: f64 = 15.0;

/// Global (off-chip) bandwidth available per TSP for a system of `n_tsps`,
/// in GB/s — the Fig 2 curve.
///
/// The system configuration is inferred from the size: the smallest regime
/// that can host `n_tsps` is assumed, matching how the paper presents the
/// profile as a single curve over scale.
pub fn global_bandwidth_per_tsp_gbs(n_tsps: usize) -> f64 {
    assert!(n_tsps >= 1);
    if n_tsps <= 2 * TSPS_PER_NODE {
        // Intra-node regime: 7 local links per TSP at the 30 Gbps rate.
        return LOCAL_LINKS_PER_TSP as f64 * INTRA_NODE_LINK_GBS;
    }
    if n_tsps <= MAX_FULL_CONNECT_NODES * TSPS_PER_NODE {
        // Fully-connected-node regime: every TSP injects on its 4 global
        // links.
        return GLOBAL_LINKS_PER_TSP as f64 * LINK_GBS;
    }
    // Rack-Dragonfly regime: bounded by inter-rack bisection.
    let racks = n_tsps.div_ceil(TSPS_PER_RACK);
    rack_regime_bisection_per_tsp_gbs(racks)
}

/// Per-TSP inter-rack bisection bandwidth for an `n_racks` system, in GB/s.
///
/// With `L = ⌊144/(R−1)⌋` links per rack pair, the worst bisection cuts
/// `⌊R/2⌋·⌈R/2⌉·L` links; per-TSP bandwidth is `2·cut·12.5 / N`. At the
/// maximal configuration (145 racks, 1 link per pair) this is ≈ 12.6 GB/s —
/// the paper's "about 14 GB/sec" plateau.
pub fn rack_regime_bisection_per_tsp_gbs(n_racks: usize) -> f64 {
    assert!(n_racks >= 2);
    let lpr = links_per_rack_pair(n_racks);
    let cut = (n_racks / 2) * n_racks.div_ceil(2) * lpr;
    let n_tsps = n_racks * TSPS_PER_RACK;
    let bisection = 2.0 * cut as f64 * LINK_GBS / n_tsps as f64;
    // Injection can't exceed the TSP's own inter-rack share either: half of
    // each node's global ports face other racks -> 2 x 12.5 GB/s per TSP.
    bisection.min(GLOBAL_LINKS_PER_TSP as f64 / 2.0 * LINK_GBS)
}

/// One point of the Fig 2 profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilePoint {
    /// System size in TSPs.
    pub tsps: usize,
    /// Global bandwidth per TSP, GB/s.
    pub gbs_per_tsp: f64,
}

/// Samples the Fig 2 bandwidth profile at the packaging-relevant system
/// sizes, from a single node up to the 10,440-TSP maximum.
pub fn bandwidth_profile() -> Vec<ProfilePoint> {
    let mut sizes = vec![2, 4, 8, 16];
    // node-regime sizes
    for nodes in [4usize, 8, 16, 24, 33] {
        sizes.push(nodes * TSPS_PER_NODE);
    }
    // rack-regime sizes
    for racks in [5usize, 9, 17, 29, 49, 73, 97, 121, 145] {
        sizes.push(racks * TSPS_PER_RACK);
    }
    sizes
        .into_iter()
        .map(|tsps| ProfilePoint {
            tsps,
            gbs_per_tsp: global_bandwidth_per_tsp_gbs(tsps),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_systems_exceed_100_gbs() {
        // paper Fig 2: "small systems with fewer than 16 TSPs can take
        // advantage of abundant wire density within the node"
        assert!(global_bandwidth_per_tsp_gbs(8) > 100.0);
        assert!(global_bandwidth_per_tsp_gbs(16) > 100.0);
    }

    #[test]
    fn node_regime_is_50_gbs() {
        // paper Fig 2: "up to several hundred TSPs ... about 50 GB/sec of
        // global (bisection) bandwidth per TSP"
        assert_eq!(global_bandwidth_per_tsp_gbs(64), 50.0);
        assert_eq!(global_bandwidth_per_tsp_gbs(264), 50.0);
    }

    #[test]
    fn max_config_flattens_to_about_14_gbs() {
        // paper Fig 2: "flattens to about 14 GB/sec"; our bisection
        // convention gives 12.6 GB/s at 145 racks.
        let g = global_bandwidth_per_tsp_gbs(crate::MAX_TSPS);
        assert!(g > 10.0 && g < 15.0, "got {g}");
    }

    #[test]
    fn profile_steps_down_across_regimes() {
        // The profile is a staircase across packaging regimes. Within the
        // rack regime the integer link-per-pair allocation produces a
        // sawtooth (a real property of tapered Dragonflies: a 97-rack
        // system with 1 link/pair has *worse* per-TSP bisection than the
        // 145-rack maximum), so monotonicity is only asserted across
        // regime boundaries.
        let prof = bandwidth_profile();
        let node_wire = LOCAL_LINKS_PER_TSP as f64 * INTRA_NODE_LINK_GBS;
        for p in &prof {
            if p.tsps <= 16 {
                assert_eq!(p.gbs_per_tsp, node_wire);
            } else if p.tsps <= 264 {
                assert_eq!(p.gbs_per_tsp, 50.0);
            } else {
                assert!(p.gbs_per_tsp < 50.0 && p.gbs_per_tsp >= 8.0, "{p:?}");
            }
        }
    }

    #[test]
    fn profile_has_cliff_at_each_packaging_boundary() {
        let at = |n: usize| global_bandwidth_per_tsp_gbs(n);
        // cliff leaving the node-wire regime
        assert!(at(16) > at(24));
        // cliff leaving the fully-connected-node regime
        assert!(at(264) > at(265));
    }

    #[test]
    fn rack_regime_never_exceeds_injection_share() {
        for racks in 2..=145 {
            let g = rack_regime_bisection_per_tsp_gbs(racks);
            assert!(g <= 25.0 + 1e-9, "racks={racks} g={g}");
            assert!(g > 0.0);
        }
    }

    #[test]
    fn dragonfly_delivers_flat_bandwidth_at_scale() {
        // "The Dragonfly network delivers flat global bandwidth up to the
        // maximum system configuration" — beyond ~73 racks the profile is
        // flat within a small factor.
        let g73 = rack_regime_bisection_per_tsp_gbs(73);
        let g145 = rack_regime_bisection_per_tsp_gbs(145);
        assert!(g73 / g145 < 2.0);
    }
}
