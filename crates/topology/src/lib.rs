//! Packaging hierarchy and Dragonfly topology of the scale-out TSP system.
//!
//! The system is packaged as (paper §2.2, Fig 5):
//!
//! * **TSP** — one chip with 11 chip-to-chip (C2C) ports: 7 *local* and 4
//!   *global*,
//! * **node** — a 4U chassis of 8 TSPs, fully connected by the 7 local
//!   links (28 intra-node cables), exposing 8 × 4 = 32 global ports as one
//!   *virtual 32-port high-radix router*,
//! * **rack** — 9 nodes (72 TSPs, 288 global ports), of which one node per
//!   rack may be reserved as an N+1 hot spare,
//! * **system** — up to 33 fully-connected nodes (264 TSPs) in the
//!   node-as-group regime, or up to 145 racks (10,440 TSPs) in the
//!   rack-as-group Dragonfly regime.
//!
//! [`Topology`] holds the explicit wiring (every cable is a [`Link`] with a
//! cable class and endpoints) plus constant-time id arithmetic for the
//! packaging hierarchy. Route computation lives in [`route`], the Fig 2
//! bandwidth profile in [`bandwidth`].

pub mod bandwidth;
pub mod build;
pub mod route;

use std::fmt;

/// TSPs per node (paper §2.2: "a 4U chassis enclosure which houses eight
/// TSPs").
pub const TSPS_PER_NODE: usize = 8;

/// Local C2C links per TSP, fully connecting it to its 7 node peers.
pub const LOCAL_LINKS_PER_TSP: usize = 7;

/// Global C2C links per TSP.
pub const GLOBAL_LINKS_PER_TSP: usize = 4;

/// Total C2C ports per TSP (7 local + 4 global = 11).
pub const PORTS_PER_TSP: usize = LOCAL_LINKS_PER_TSP + GLOBAL_LINKS_PER_TSP;

/// Global ports exposed by one node acting as a virtual router (8 × 4).
pub const GLOBAL_PORTS_PER_NODE: usize = TSPS_PER_NODE * GLOBAL_LINKS_PER_TSP;

/// Nodes per rack (paper §2.2: "the rack, consisting of nine (9) nodes").
pub const NODES_PER_RACK: usize = 9;

/// TSPs per rack.
pub const TSPS_PER_RACK: usize = TSPS_PER_NODE * NODES_PER_RACK;

/// Maximum nodes in the fully-connected node-as-group regime (paper §2.2:
/// "scale out up to 33 nodes for total of 33 × 8 = 264 TSPs").
pub const MAX_FULL_CONNECT_NODES: usize = 33;

/// Maximum racks in the rack-as-group Dragonfly regime (paper §2.2:
/// "delivers up to 145 racks").
pub const MAX_RACKS: usize = 145;

/// Maximum TSPs in the largest configuration (145 × 72 = 10,440).
pub const MAX_TSPS: usize = MAX_RACKS * TSPS_PER_RACK;

/// Intra-node cables required to fully connect 8 TSPs (8 choose 2).
pub const INTRA_NODE_CABLES: usize = TSPS_PER_NODE * (TSPS_PER_NODE - 1) / 2;

/// Identifier of one TSP in the system (dense, 0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct TspId(pub u32);

impl TspId {
    /// Index into dense per-TSP arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The node this TSP is packaged in.
    pub fn node(self) -> NodeId {
        NodeId(self.0 / TSPS_PER_NODE as u32)
    }

    /// Position of this TSP within its node (0..8).
    pub fn slot(self) -> usize {
        (self.0 as usize) % TSPS_PER_NODE
    }

    /// The rack this TSP is packaged in.
    pub fn rack(self) -> RackId {
        RackId(self.0 / TSPS_PER_RACK as u32)
    }
}

impl fmt::Display for TspId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tsp{}", self.0)
    }
}

/// Identifier of one 8-TSP node (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into dense per-node arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The rack containing this node.
    pub fn rack(self) -> RackId {
        RackId(self.0 / NODES_PER_RACK as u32)
    }

    /// Position of this node within its rack (0..9).
    pub fn slot(self) -> usize {
        (self.0 as usize) % NODES_PER_RACK
    }

    /// The TSPs packaged in this node.
    pub fn tsps(self) -> impl Iterator<Item = TspId> {
        let base = self.0 * TSPS_PER_NODE as u32;
        (0..TSPS_PER_NODE as u32).map(move |i| TspId(base + i))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of one 9-node rack (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RackId(pub u32);

impl RackId {
    /// Index into dense per-rack arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The nodes packaged in this rack.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        let base = self.0 * NODES_PER_RACK as u32;
        (0..NODES_PER_RACK as u32).map(move |i| NodeId(base + i))
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack{}", self.0)
    }
}

/// Index of a link in a [`Topology`]'s link table.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Index into dense per-link arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Physical cable class, which determines length, medium and cost
/// (paper §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CableClass {
    /// Low-profile electrical cable inside the 4U chassis (≤ 0.75 m).
    IntraNode,
    /// QSFP electrical cable within a rack (< 2 m).
    IntraRack,
    /// Active optical cable between racks.
    InterRack,
}

impl CableClass {
    /// Representative one-way propagation plus serdes latency of this cable
    /// class in core clock cycles, before per-link jitter.
    ///
    /// Calibrated so intra-node links characterize at a mean of ≈217 cycles
    /// (paper Table 2) and a network hop including switching costs ≈722 ns
    /// (paper §5.6).
    pub fn base_latency_cycles(self) -> u64 {
        match self {
            CableClass::IntraNode => 216,
            CableClass::IntraRack => 270,
            CableClass::InterRack => 430,
        }
    }
}

/// One C2C cable between two TSP ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// One endpoint.
    pub a: TspId,
    /// Port number on `a` (0..7 local, 7..11 global).
    pub a_port: u8,
    /// The other endpoint.
    pub b: TspId,
    /// Port number on `b`.
    pub b_port: u8,
    /// Cable class.
    pub class: CableClass,
}

impl Link {
    /// Given one endpoint, returns the TSP at the other end.
    ///
    /// # Panics
    /// Panics if `from` is not an endpoint of this link.
    pub fn other_end(&self, from: TspId) -> TspId {
        if from == self.a {
            self.b
        } else {
            assert_eq!(from, self.b, "TSP {from} is not an endpoint of this link");
            self.a
        }
    }

    /// True if `t` is one of the two endpoints.
    pub fn touches(&self, t: TspId) -> bool {
        self.a == t || self.b == t
    }

    /// True if this is a global (inter-node) cable.
    pub fn is_global(&self) -> bool {
        !matches!(self.class, CableClass::IntraNode)
    }
}

/// The scale regime a topology was built in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScaleRegime {
    /// A single fully-connected 8-TSP node.
    SingleNode,
    /// A single 8-TSP node wired as a radix-8 torus (ring) with
    /// triple-connected neighbor links (paper §4.4).
    TorusNode,
    /// 2–33 nodes, every node pair directly connected by global links.
    FullyConnectedNodes,
    /// Rack-as-group Dragonfly: nodes doubly connected within a rack,
    /// racks connected all-to-all.
    RackDragonfly,
}

/// Errors from topology construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Requested more nodes than the regime supports.
    TooManyNodes {
        /// Requested node count.
        requested: usize,
        /// Maximum supported by the regime.
        max: usize,
    },
    /// Requested more racks than the maximum configuration.
    TooManyRacks {
        /// Requested rack count.
        requested: usize,
    },
    /// A configuration needs at least this many units.
    TooFew {
        /// What was being counted.
        what: &'static str,
        /// Minimum required.
        min: usize,
    },
    /// No route exists between the requested endpoints.
    NoRoute {
        /// Source TSP.
        from: TspId,
        /// Destination TSP.
        to: TspId,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::TooManyNodes { requested, max } => {
                write!(
                    f,
                    "{requested} nodes requested, regime supports at most {max}"
                )
            }
            TopologyError::TooManyRacks { requested } => {
                write!(
                    f,
                    "{requested} racks requested, maximum configuration is {MAX_RACKS}"
                )
            }
            TopologyError::TooFew { what, min } => write!(f, "need at least {min} {what}"),
            TopologyError::NoRoute { from, to } => write!(f, "no route from {from} to {to}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An explicit wiring of a multi-TSP system.
///
/// Construction goes through the builders in [`build`]:
/// [`Topology::single_node`], [`Topology::fully_connected_nodes`] and
/// [`Topology::rack_dragonfly`].
#[derive(Debug, Clone)]
pub struct Topology {
    regime: ScaleRegime,
    num_tsps: usize,
    links: Vec<Link>,
    /// adjacency: for each TSP, the (link, peer) pairs, sorted by peer then
    /// link id for determinism.
    adj: Vec<Vec<(LinkId, TspId)>>,
    /// O(1) port index: for each TSP, port number → the cable on that port
    /// as `(link, peer, peer_port)`. Every (TSP, port) pair hosts at most
    /// one cable, so the entry is unique.
    ports: Vec<[Option<(LinkId, TspId, u8)>; PORTS_PER_TSP]>,
    /// Nodes currently marked failed (excluded from routing).
    failed_nodes: Vec<NodeId>,
}

impl Topology {
    pub(crate) fn from_links(regime: ScaleRegime, num_tsps: usize, links: Vec<Link>) -> Self {
        let mut adj: Vec<Vec<(LinkId, TspId)>> = vec![Vec::new(); num_tsps];
        let mut ports: Vec<[Option<(LinkId, TspId, u8)>; PORTS_PER_TSP]> =
            vec![[None; PORTS_PER_TSP]; num_tsps];
        let mut plug = |t: TspId, port: u8, entry: (LinkId, TspId, u8)| {
            let slot = &mut ports[t.index()][port as usize];
            assert!(slot.is_none(), "{t} port {port} double-wired");
            *slot = Some(entry);
        };
        for (i, l) in links.iter().enumerate() {
            adj[l.a.index()].push((LinkId(i as u32), l.b));
            adj[l.b.index()].push((LinkId(i as u32), l.a));
            plug(l.a, l.a_port, (LinkId(i as u32), l.b, l.b_port));
            plug(l.b, l.b_port, (LinkId(i as u32), l.a, l.a_port));
        }
        for v in &mut adj {
            v.sort_by_key(|&(lid, peer)| (peer, lid));
        }
        Topology {
            regime,
            num_tsps,
            links,
            adj,
            ports,
            failed_nodes: Vec::new(),
        }
    }

    /// The scale regime this topology was built in.
    pub fn regime(&self) -> ScaleRegime {
        self.regime
    }

    /// Number of TSPs (network endpoints).
    pub fn num_tsps(&self) -> usize {
        self.num_tsps
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_tsps / TSPS_PER_NODE
    }

    /// All TSP ids.
    pub fn tsps(&self) -> impl Iterator<Item = TspId> + '_ {
        (0..self.num_tsps as u32).map(TspId)
    }

    /// All links (cables) in the system.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The link with the given id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The (link, peer) adjacency of one TSP, in deterministic order.
    pub fn neighbors(&self, t: TspId) -> &[(LinkId, TspId)] {
        &self.adj[t.index()]
    }

    /// The cable plugged into `port` of `t`, as `(link, peer, peer_port)`,
    /// or `None` for an unwired port. Constant time: this is the index the
    /// co-simulation driver uses to map an emission on a port to its
    /// delivery endpoint without scanning the link table.
    pub fn port_peer(&self, t: TspId, port: u8) -> Option<(LinkId, TspId, u8)> {
        self.ports
            .get(t.index())
            .and_then(|p| p.get(port as usize))
            .copied()
            .flatten()
    }

    /// The link on `t`'s `port`, or `None` for an unwired port. O(1).
    pub fn link_on_port(&self, t: TspId, port: u8) -> Option<LinkId> {
        self.port_peer(t, port).map(|(lid, _, _)| lid)
    }

    /// All links directly connecting `a` to `b` (the torus local group
    /// triple-connects some pairs, so there may be several).
    pub fn links_between(&self, a: TspId, b: TspId) -> Vec<LinkId> {
        self.adj[a.index()]
            .iter()
            .filter(|&&(_, peer)| peer == b)
            .map(|&(lid, _)| lid)
            .collect()
    }

    /// Total global SRAM capacity contributed by all TSPs, in bytes
    /// (220 MiB per TSP, paper abstract).
    pub fn global_memory_bytes(&self) -> u64 {
        self.num_tsps as u64 * 220 * 1024 * 1024
    }

    /// Marks a node as failed; routing will avoid its TSPs. See `tsm-fault`
    /// for the hot-spare remap built on top of this.
    pub fn fail_node(&mut self, n: NodeId) {
        if !self.failed_nodes.contains(&n) {
            self.failed_nodes.push(n);
        }
    }

    /// Clears a node failure.
    pub fn restore_node(&mut self, n: NodeId) {
        self.failed_nodes.retain(|&f| f != n);
    }

    /// Nodes currently marked failed.
    pub fn failed_nodes(&self) -> &[NodeId] {
        &self.failed_nodes
    }

    /// True if the TSP belongs to a failed node.
    pub fn is_failed(&self, t: TspId) -> bool {
        self.failed_nodes.contains(&t.node())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packaging_constants_match_paper() {
        assert_eq!(PORTS_PER_TSP, 11);
        assert_eq!(GLOBAL_PORTS_PER_NODE, 32);
        assert_eq!(TSPS_PER_RACK, 72);
        assert_eq!(MAX_TSPS, 10_440);
        assert_eq!(INTRA_NODE_CABLES, 28);
        assert_eq!(MAX_FULL_CONNECT_NODES * TSPS_PER_NODE, 264);
    }

    #[test]
    fn id_arithmetic_is_consistent() {
        let t = TspId(8 * 9 + 3); // node 9, which is rack 1's first node
        assert_eq!(t.node(), NodeId(9));
        assert_eq!(t.slot(), 3);
        assert_eq!(t.rack(), RackId(1));
        assert_eq!(NodeId(9).rack(), RackId(1));
        assert_eq!(NodeId(9).slot(), 0);
    }

    #[test]
    fn node_tsps_enumerates_eight() {
        let ts: Vec<_> = NodeId(2).tsps().collect();
        assert_eq!(ts.len(), 8);
        assert_eq!(ts[0], TspId(16));
        assert_eq!(ts[7], TspId(23));
        assert!(ts.iter().all(|t| t.node() == NodeId(2)));
    }

    #[test]
    fn rack_nodes_enumerates_nine() {
        let ns: Vec<_> = RackId(1).nodes().collect();
        assert_eq!(ns.len(), 9);
        assert_eq!(ns[0], NodeId(9));
        assert_eq!(ns[8], NodeId(17));
    }

    #[test]
    fn link_other_end_and_touches() {
        let l = Link {
            a: TspId(0),
            a_port: 0,
            b: TspId(1),
            b_port: 0,
            class: CableClass::IntraNode,
        };
        assert_eq!(l.other_end(TspId(0)), TspId(1));
        assert_eq!(l.other_end(TspId(1)), TspId(0));
        assert!(l.touches(TspId(0)) && l.touches(TspId(1)) && !l.touches(TspId(2)));
        assert!(!l.is_global());
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_end_panics_for_stranger() {
        let l = Link {
            a: TspId(0),
            a_port: 0,
            b: TspId(1),
            b_port: 0,
            class: CableClass::IntraNode,
        };
        l.other_end(TspId(5));
    }

    #[test]
    fn port_index_matches_link_table() {
        let topo = Topology::single_node();
        for l in topo.links() {
            let lid = topo.links().iter().position(|x| x == l).unwrap();
            assert_eq!(
                topo.port_peer(l.a, l.a_port),
                Some((LinkId(lid as u32), l.b, l.b_port))
            );
            assert_eq!(
                topo.port_peer(l.b, l.b_port),
                Some((LinkId(lid as u32), l.a, l.a_port))
            );
            assert_eq!(topo.link_on_port(l.a, l.a_port), Some(LinkId(lid as u32)));
        }
        // single node: global ports 7..11 are unwired
        for t in topo.tsps() {
            for p in 7..11 {
                assert_eq!(topo.port_peer(t, p), None);
            }
        }
        // out-of-range port numbers are None, not a panic
        assert_eq!(topo.port_peer(TspId(0), 200), None);
    }

    #[test]
    #[should_panic(expected = "double-wired")]
    fn double_wired_port_is_rejected() {
        let l = |a_port: u8| Link {
            a: TspId(0),
            a_port,
            b: TspId(1),
            b_port: a_port,
            class: CableClass::IntraNode,
        };
        // two cables on TSP 0 port 3
        Topology::from_links(ScaleRegime::SingleNode, 8, vec![l(3), l(3)]);
    }

    #[test]
    fn failed_node_tracking() {
        let mut topo = Topology::from_links(ScaleRegime::SingleNode, 8, Vec::new());
        assert!(!topo.is_failed(TspId(0)));
        topo.fail_node(NodeId(0));
        topo.fail_node(NodeId(0)); // idempotent
        assert_eq!(topo.failed_nodes().len(), 1);
        assert!(topo.is_failed(TspId(3)));
        topo.restore_node(NodeId(0));
        assert!(!topo.is_failed(TspId(3)));
    }

    #[test]
    fn global_memory_capacity_claims() {
        let topo = Topology::from_links(ScaleRegime::SingleNode, 264, Vec::new());
        // 264 TSPs -> 56 GiB (paper §2.2 "combined 56 GiBytes of global SRAM")
        assert_eq!(topo.global_memory_bytes() / (1024 * 1024 * 1024), 56);
        let max = Topology::from_links(ScaleRegime::RackDragonfly, MAX_TSPS, Vec::new());
        // 10,440 TSPs -> more than 2 TB (paper abstract)
        assert!(max.global_memory_bytes() > 2_000_000_000_000);
    }
}
