//! Route computation over an explicit [`Topology`].
//!
//! All routes are computed *at compile time* in the software-scheduled
//! network (paper §4.2 "Scheduled, Not Routed"), so this module is the only
//! place that ever makes a path decision — the simulator in `tsm-net` only
//! follows schedules that reference the paths produced here.
//!
//! Two families of routes are provided:
//!
//! * **minimal** paths ([`shortest_path`]): BFS over the wiring, giving the
//!   ≤3-hop routes of the fully-connected-node regime and ≤5-hop routes of
//!   the rack Dragonfly (paper §2.2),
//! * **non-minimal** paths ([`edge_disjoint_paths`]): the path diversity
//!   unlocked by deterministic load-balancing (paper §4.3), computed as
//!   edge-disjoint alternatives so that spreading a tensor across them
//!   never double-books a cable.

use crate::{LinkId, Topology, TopologyError, TspId};
use std::collections::{HashSet, VecDeque};

/// A hop-by-hop path through the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// The links traversed, in order.
    pub links: Vec<LinkId>,
    /// The TSPs visited, starting with the source and ending with the
    /// destination; `tsps.len() == links.len() + 1`.
    pub tsps: Vec<TspId>,
}

impl Path {
    /// Number of hops (links traversed).
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// Source TSP.
    pub fn source(&self) -> TspId {
        *self.tsps.first().expect("path has at least one TSP")
    }

    /// Destination TSP.
    pub fn dest(&self) -> TspId {
        *self.tsps.last().expect("path has at least one TSP")
    }

    /// Sum of base cable latencies along the path, in core cycles,
    /// excluding per-hop switching time.
    pub fn wire_latency_cycles(&self, topo: &Topology) -> u64 {
        self.links
            .iter()
            .map(|&l| topo.link(l).class.base_latency_cycles())
            .sum()
    }
}

/// Computes a minimal path from `from` to `to`, avoiding failed nodes.
///
/// BFS with deterministic neighbor order, so the same topology always yields
/// the same path. A zero-hop path is returned when `from == to`.
pub fn shortest_path(topo: &Topology, from: TspId, to: TspId) -> Result<Path, TopologyError> {
    shortest_path_avoiding(topo, from, to, &HashSet::new())
}

/// Like [`shortest_path`] but treating the links in `excluded` as absent.
pub fn shortest_path_avoiding(
    topo: &Topology,
    from: TspId,
    to: TspId,
    excluded: &HashSet<LinkId>,
) -> Result<Path, TopologyError> {
    if from == to {
        return Ok(Path {
            links: Vec::new(),
            tsps: vec![from],
        });
    }
    let n = topo.num_tsps();
    // prev[t] = (link, predecessor) on the BFS tree.
    let mut prev: Vec<Option<(LinkId, TspId)>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[from.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(t) = queue.pop_front() {
        for &(lid, peer) in topo.neighbors(t) {
            if seen[peer.index()] || excluded.contains(&lid) {
                continue;
            }
            if topo.is_failed(peer) && peer != to {
                continue;
            }
            seen[peer.index()] = true;
            prev[peer.index()] = Some((lid, t));
            if peer == to {
                return Ok(reconstruct(from, to, &prev));
            }
            queue.push_back(peer);
        }
    }
    Err(TopologyError::NoRoute { from, to })
}

fn reconstruct(from: TspId, to: TspId, prev: &[Option<(LinkId, TspId)>]) -> Path {
    let mut links = Vec::new();
    let mut tsps = vec![to];
    let mut cur = to;
    while cur != from {
        let (lid, p) = prev[cur.index()].expect("BFS reached this TSP");
        links.push(lid);
        tsps.push(p);
        cur = p;
    }
    links.reverse();
    tsps.reverse();
    Path { links, tsps }
}

/// Computes up to `k` pairwise edge-disjoint paths from `from` to `to`,
/// shortest first.
///
/// The first path is minimal; subsequent paths are the non-minimal
/// alternatives that deterministic load-balancing spreads vectors across
/// (paper §4.3). Within a fully-connected node this yields the 1 minimal +
/// up to 7 two-hop non-minimal paths of Fig 10.
pub fn edge_disjoint_paths(topo: &Topology, from: TspId, to: TspId, k: usize) -> Vec<Path> {
    let mut used = HashSet::new();
    let mut out = Vec::new();
    for _ in 0..k {
        match shortest_path_avoiding(topo, from, to, &used) {
            Ok(p) => {
                for &l in &p.links {
                    used.insert(l);
                }
                out.push(p);
            }
            Err(_) => break,
        }
    }
    out
}

/// Eccentricity of one TSP: the maximum minimal-hop distance to any other
/// (non-failed) TSP. The topology diameter is the maximum eccentricity; by
/// symmetry of the constructions it equals the eccentricity of TSP 0.
pub fn eccentricity(topo: &Topology, from: TspId) -> usize {
    let n = topo.num_tsps();
    let mut dist = vec![usize::MAX; n];
    dist[from.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(from);
    let mut max = 0;
    while let Some(t) = queue.pop_front() {
        for &(_, peer) in topo.neighbors(t) {
            if dist[peer.index()] != usize::MAX || topo.is_failed(peer) {
                continue;
            }
            dist[peer.index()] = dist[t.index()] + 1;
            max = max.max(dist[peer.index()]);
            queue.push_back(peer);
        }
    }
    max
}

/// Structural upper bound on minimal hop count for the regime.
///
/// Paper §2.2 quotes 1 within a node, 3 in the fully-connected-node regime
/// and 5 in the rack Dragonfly ("two in the source-rack, one global hop,
/// and two in the destination-rack"). The rack-regime figure counts
/// *chassis-level* hops; at TSP granularity a route may additionally need
/// up to one intra-node adjustment hop inside the source and destination
/// chassis to reach the specific TSP hosting the next cable, so the
/// TSP-level bound is 5 + 2 = 7. The other regimes need no adjustment hops
/// and their bounds are exact at TSP granularity.
pub fn diameter_bound(topo: &Topology) -> usize {
    match topo.regime() {
        crate::ScaleRegime::SingleNode => 1,
        crate::ScaleRegime::TorusNode => 4,
        crate::ScaleRegime::FullyConnectedNodes => 3,
        crate::ScaleRegime::RackDragonfly => 7,
    }
}

/// Chassis-level hop bound quoted by paper §2.2 (counts inter-node cables
/// plus one hop per rack traversal; excludes intra-node adjustment hops).
pub fn chassis_diameter_bound(topo: &Topology) -> usize {
    match topo.regime() {
        crate::ScaleRegime::SingleNode => 1,
        crate::ScaleRegime::TorusNode => 4,
        crate::ScaleRegime::FullyConnectedNodes => 3,
        crate::ScaleRegime::RackDragonfly => 5,
    }
}

/// Number of inter-node cables (intra-rack or inter-rack class) on a path —
/// the paper's chassis-level hop count.
pub fn inter_node_hops(topo: &Topology, path: &Path) -> usize {
    path.links
        .iter()
        .filter(|&&l| topo.link(l).is_global())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, Topology};

    #[test]
    fn zero_hop_path_to_self() {
        let topo = Topology::single_node();
        let p = shortest_path(&topo, TspId(3), TspId(3)).unwrap();
        assert_eq!(p.hops(), 0);
        assert_eq!(p.source(), p.dest());
    }

    #[test]
    fn single_node_all_pairs_one_hop() {
        let topo = Topology::single_node();
        for i in 0..8u32 {
            for j in 0..8u32 {
                if i == j {
                    continue;
                }
                let p = shortest_path(&topo, TspId(i), TspId(j)).unwrap();
                assert_eq!(p.hops(), 1, "{i}->{j}");
                assert_eq!(p.source(), TspId(i));
                assert_eq!(p.dest(), TspId(j));
            }
        }
        assert_eq!(eccentricity(&topo, TspId(0)), diameter_bound(&topo));
    }

    #[test]
    fn fully_connected_nodes_diameter_three() {
        let topo = Topology::fully_connected_nodes(4).unwrap();
        assert!(eccentricity(&topo, TspId(0)) <= 3);
        let topo33 = Topology::fully_connected_nodes(33).unwrap();
        assert!(eccentricity(&topo33, TspId(0)) <= diameter_bound(&topo33));
    }

    #[test]
    fn rack_dragonfly_diameter_bounds() {
        let topo = Topology::rack_dragonfly(3).unwrap();
        let e = eccentricity(&topo, TspId(0));
        assert!(e <= diameter_bound(&topo), "eccentricity {e} > 7");
        // Chassis-level hops stay within the paper's 5-hop budget: check a
        // far pair (rack 0 -> rack 2).
        let p = shortest_path(&topo, TspId(0), TspId(2 * 72 + 70)).unwrap();
        assert!(
            inter_node_hops(&topo, &p) <= 3,
            "inter-node cables on minimal route"
        );
        assert!(p.hops() <= 7);
    }

    #[test]
    fn path_endpoints_and_continuity() {
        let topo = Topology::fully_connected_nodes(3).unwrap();
        let p = shortest_path(&topo, TspId(0), TspId(23)).unwrap();
        assert_eq!(p.tsps.len(), p.links.len() + 1);
        // consecutive TSPs joined by the listed link
        for (i, &lid) in p.links.iter().enumerate() {
            let l = topo.link(lid);
            assert!(l.touches(p.tsps[i]) && l.touches(p.tsps[i + 1]));
        }
    }

    #[test]
    fn edge_disjoint_paths_within_node_are_seven() {
        // Paper Fig 10 speaks of "one minimal path and seven non-minimal
        // paths"; counting *edge-disjoint* paths, the source's degree of 7
        // caps the total at 7 (1 direct + 6 via the other peers). The Fig 10
        // sweep therefore spreads over up to 7 paths total.
        let topo = Topology::single_node();
        let paths = edge_disjoint_paths(&topo, TspId(0), TspId(1), 16);
        assert_eq!(paths.len(), 7);
        assert_eq!(paths[0].hops(), 1);
        for p in &paths[1..] {
            assert_eq!(p.hops(), 2);
        }
        // pairwise edge-disjoint
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            for &l in &p.links {
                assert!(seen.insert(l), "link reused across paths");
            }
        }
    }

    #[test]
    fn routing_avoids_failed_nodes() {
        let mut topo = Topology::fully_connected_nodes(3).unwrap();
        // Force traffic node0 -> node2; fail node 1 and ensure no path
        // transits it.
        topo.fail_node(NodeId(1));
        let p = shortest_path(&topo, TspId(0), TspId(16)).unwrap();
        for t in &p.tsps {
            assert_ne!(t.node(), NodeId(1));
        }
    }

    #[test]
    fn no_route_when_destination_isolated() {
        // Two nodes, exclude every global link: no inter-node route.
        let topo = Topology::fully_connected_nodes(2).unwrap();
        let excluded: HashSet<_> = topo
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_global())
            .map(|(i, _)| LinkId(i as u32))
            .collect();
        let r = shortest_path_avoiding(&topo, TspId(0), TspId(8), &excluded);
        assert!(matches!(r, Err(TopologyError::NoRoute { .. })));
    }

    #[test]
    fn wire_latency_accumulates_cable_classes() {
        let topo = Topology::single_node();
        let p = shortest_path(&topo, TspId(0), TspId(1)).unwrap();
        assert_eq!(p.wire_latency_cycles(&topo), 216);
    }

    #[test]
    fn max_config_eccentricity_is_bounded() {
        // Full 10,440-TSP system: one BFS is cheap enough even in debug.
        let topo = Topology::rack_dragonfly(crate::MAX_RACKS).unwrap();
        let e = eccentricity(&topo, TspId(0));
        assert!(
            e <= 7,
            "max-config eccentricity {e} exceeds the TSP-level bound"
        );
    }
}
