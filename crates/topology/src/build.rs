//! Topology constructors: explicit cable-by-cable wiring of the three scale
//! regimes described in paper §2.2.

use crate::{
    CableClass, Link, ScaleRegime, Topology, TopologyError, TspId, GLOBAL_LINKS_PER_TSP,
    GLOBAL_PORTS_PER_NODE, MAX_FULL_CONNECT_NODES, MAX_RACKS, NODES_PER_RACK, TSPS_PER_NODE,
};

/// Number of global links wired between every pair of nodes when `n` nodes
/// are fully connected (paper §2.2: at 33 nodes this is exactly 1).
pub fn links_per_node_pair(n_nodes: usize) -> usize {
    if n_nodes < 2 {
        0
    } else {
        GLOBAL_PORTS_PER_NODE / (n_nodes - 1)
    }
}

/// Intra-rack copies of each node-pair link in the rack-Dragonfly regime:
/// the 9 nodes are *doubly* connected using half (144) of the rack's 288
/// global ports (paper §2.2), giving the 2× internal speedup.
pub const INTRA_RACK_COPIES: usize = 2;

/// Global ports per rack available for other racks (the other half).
pub const INTER_RACK_PORTS: usize = NODES_PER_RACK * GLOBAL_PORTS_PER_NODE / 2;

/// Number of inter-rack links wired between every pair of racks when `r`
/// racks are present (at the maximum 145 racks this is exactly 1).
pub fn links_per_rack_pair(n_racks: usize) -> usize {
    if n_racks < 2 {
        0
    } else {
        INTER_RACK_PORTS / (n_racks - 1)
    }
}

/// Parallel links between ring neighbors in the torus local group
/// (paper §4.4: "we triple-connect physical links within the torus to
/// increase the nearest-neighbor throughput").
pub const TORUS_NEIGHBOR_LINKS: usize = 3;

impl Topology {
    /// Builds a single fully-connected 8-TSP node: 28 intra-node cables, 7
    /// local links per TSP (paper §2.2, Fig 5/6).
    pub fn single_node() -> Topology {
        let mut links = Vec::with_capacity(crate::INTRA_NODE_CABLES);
        wire_node_local(0, &mut links);
        Topology::from_links(ScaleRegime::SingleNode, TSPS_PER_NODE, links)
    }

    /// Builds the radix-8 torus local group of paper §4.4: the node's
    /// eight TSPs form a ring with *three* parallel links between each
    /// pair of neighbors (24 cables, 6 of each TSP's 7 local ports),
    /// trading the full mesh's uniform connectivity for 3× nearest-
    /// neighbor throughput — the pattern pipelined model parallelism
    /// generates.
    pub fn torus_node() -> Topology {
        let mut links = Vec::with_capacity(TSPS_PER_NODE * TORUS_NEIGHBOR_LINKS);
        for i in 0..TSPS_PER_NODE {
            let j = (i + 1) % TSPS_PER_NODE;
            for k in 0..TORUS_NEIGHBOR_LINKS {
                links.push(Link {
                    a: TspId(i as u32),
                    // ports 0..3 face the successor, 3..6 the predecessor
                    a_port: k as u8,
                    b: TspId(j as u32),
                    b_port: (TORUS_NEIGHBOR_LINKS + k) as u8,
                    class: CableClass::IntraNode,
                });
            }
        }
        Topology::from_links(ScaleRegime::TorusNode, TSPS_PER_NODE, links)
    }

    /// Builds `n_nodes` nodes (2–33) with full connectivity between all
    /// node pairs over the global links — the 264-TSP regime of paper §2.2,
    /// with a network diameter of 3 hops.
    ///
    /// Each node pair gets `⌊32 / (n_nodes − 1)⌋` parallel global links,
    /// spread across the TSPs of both nodes so every TSP contributes its 4
    /// global ports evenly.
    pub fn fully_connected_nodes(n_nodes: usize) -> Result<Topology, TopologyError> {
        if n_nodes < 2 {
            return Err(TopologyError::TooFew {
                what: "nodes",
                min: 2,
            });
        }
        if n_nodes > MAX_FULL_CONNECT_NODES {
            return Err(TopologyError::TooManyNodes {
                requested: n_nodes,
                max: MAX_FULL_CONNECT_NODES,
            });
        }
        let mut links = Vec::new();
        for n in 0..n_nodes {
            wire_node_local(n, &mut links);
        }
        let lpp = links_per_node_pair(n_nodes);
        for x in 0..n_nodes {
            for y in (x + 1)..n_nodes {
                for k in 0..lpp {
                    // Global channel index of this cable on each node.
                    let cx = peer_index(x, y) * lpp + k;
                    let cy = peer_index(y, x) * lpp + k;
                    let class = if x / NODES_PER_RACK == y / NODES_PER_RACK {
                        CableClass::IntraRack
                    } else {
                        CableClass::InterRack
                    };
                    links.push(Link {
                        a: global_channel_tsp(x, cx),
                        a_port: global_channel_port(cx),
                        b: global_channel_tsp(y, cy),
                        b_port: global_channel_port(cy),
                        class,
                    });
                }
            }
        }
        Ok(Topology::from_links(
            ScaleRegime::FullyConnectedNodes,
            n_nodes * TSPS_PER_NODE,
            links,
        ))
    }

    /// Builds the rack-as-group Dragonfly of paper §2.2: `n_racks` racks
    /// (2–145) of 9 nodes each. Within a rack, every node pair is *doubly*
    /// connected (144 of the rack's 288 global ports), providing the 2×
    /// internal speedup; the other 144 ports connect to the other racks,
    /// `⌊144 / (n_racks − 1)⌋` parallel links per rack pair. Minimal routes
    /// have at most 5 hops (2 + 1 + 2).
    pub fn rack_dragonfly(n_racks: usize) -> Result<Topology, TopologyError> {
        if n_racks < 2 {
            return Err(TopologyError::TooFew {
                what: "racks",
                min: 2,
            });
        }
        if n_racks > MAX_RACKS {
            return Err(TopologyError::TooManyRacks { requested: n_racks });
        }
        let n_nodes = n_racks * NODES_PER_RACK;
        let mut links = Vec::new();
        for n in 0..n_nodes {
            wire_node_local(n, &mut links);
        }
        // Intra-rack: double-connect the 9 nodes of each rack. On each node
        // this consumes channels 0..16 (8 peers x 2 copies).
        for rack in 0..n_racks {
            let base = rack * NODES_PER_RACK;
            for x in 0..NODES_PER_RACK {
                for y in (x + 1)..NODES_PER_RACK {
                    for k in 0..INTRA_RACK_COPIES {
                        let cx = peer_index(x, y) * INTRA_RACK_COPIES + k;
                        let cy = peer_index(y, x) * INTRA_RACK_COPIES + k;
                        links.push(Link {
                            a: global_channel_tsp(base + x, cx),
                            a_port: global_channel_port(cx),
                            b: global_channel_tsp(base + y, cy),
                            b_port: global_channel_port(cy),
                            class: CableClass::IntraRack,
                        });
                    }
                }
            }
        }
        // Inter-rack: channels 16..32 on each node form the rack's 144
        // outward-facing ports (9 nodes x 16).
        let lpr = links_per_rack_pair(n_racks);
        for rx in 0..n_racks {
            for ry in (rx + 1)..n_racks {
                for k in 0..lpr {
                    let cx = peer_index(rx, ry) * lpr + k;
                    let cy = peer_index(ry, rx) * lpr + k;
                    links.push(Link {
                        a: rack_channel_tsp(rx, cx),
                        a_port: rack_channel_port(cx),
                        b: rack_channel_tsp(ry, cy),
                        b_port: rack_channel_port(cy),
                        class: CableClass::InterRack,
                    });
                }
            }
        }
        Ok(Topology::from_links(
            ScaleRegime::RackDragonfly,
            n_nodes * TSPS_PER_NODE,
            links,
        ))
    }
}

/// Index of peer `y` in `x`'s ordered peer list (skipping `x` itself).
fn peer_index(x: usize, y: usize) -> usize {
    if y < x {
        y
    } else {
        y - 1
    }
}

/// Fully connect the 8 TSPs of node `n` with 28 intra-node cables.
///
/// TSP `i`'s local port for peer `j` is `peer_index(i, j)`, so each TSP uses
/// exactly its 7 local ports.
fn wire_node_local(n: usize, links: &mut Vec<Link>) {
    let base = (n * TSPS_PER_NODE) as u32;
    for i in 0..TSPS_PER_NODE {
        for j in (i + 1)..TSPS_PER_NODE {
            links.push(Link {
                a: TspId(base + i as u32),
                a_port: peer_index(i, j) as u8,
                b: TspId(base + j as u32),
                b_port: peer_index(j, i) as u8,
                class: CableClass::IntraNode,
            });
        }
    }
}

/// The TSP hosting global channel `c` (0..32) of node `node`.
fn global_channel_tsp(node: usize, c: usize) -> TspId {
    debug_assert!(c < GLOBAL_PORTS_PER_NODE);
    TspId((node * TSPS_PER_NODE + c / GLOBAL_LINKS_PER_TSP) as u32)
}

/// The port number (7..11) of global channel `c` on its host TSP.
fn global_channel_port(c: usize) -> u8 {
    (crate::LOCAL_LINKS_PER_TSP + c % GLOBAL_LINKS_PER_TSP) as u8
}

/// The TSP hosting inter-rack channel `c` (0..144) of rack `rack`.
///
/// Inter-rack channels map onto node-global channels 16..32, i.e. the upper
/// half of each node's virtual-router ports (TSP slots 4..8).
fn rack_channel_tsp(rack: usize, c: usize) -> TspId {
    debug_assert!(c < INTER_RACK_PORTS);
    let node_in_rack = c / 16;
    let node_channel = 16 + c % 16;
    global_channel_tsp(rack * NODES_PER_RACK + node_in_rack, node_channel)
}

/// The port number of inter-rack channel `c` on its host TSP.
fn rack_channel_port(c: usize) -> u8 {
    global_channel_port(16 + c % 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Every (tsp, port) pair must be used by at most one cable.
    fn assert_ports_unique(topo: &Topology) {
        let mut used = HashSet::new();
        for l in topo.links() {
            assert!(
                used.insert((l.a, l.a_port)),
                "port reused: {:?} {}",
                l.a,
                l.a_port
            );
            assert!(
                used.insert((l.b, l.b_port)),
                "port reused: {:?} {}",
                l.b,
                l.b_port
            );
        }
    }

    fn assert_port_ranges(topo: &Topology) {
        for l in topo.links() {
            let local = matches!(l.class, CableClass::IntraNode);
            for p in [l.a_port, l.b_port] {
                if local {
                    assert!((p as usize) < crate::LOCAL_LINKS_PER_TSP);
                } else {
                    assert!((p as usize) >= crate::LOCAL_LINKS_PER_TSP);
                    assert!((p as usize) < crate::PORTS_PER_TSP);
                }
            }
        }
    }

    #[test]
    fn single_node_has_28_cables_and_full_connectivity() {
        let topo = Topology::single_node();
        assert_eq!(topo.links().len(), 28);
        assert_ports_unique(&topo);
        assert_port_ranges(&topo);
        for t in topo.tsps() {
            assert_eq!(topo.neighbors(t).len(), 7);
        }
        // every pair directly connected
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                assert_eq!(topo.links_between(TspId(i), TspId(j)).len(), 1);
            }
        }
    }

    #[test]
    fn links_per_node_pair_matches_paper_at_33() {
        assert_eq!(links_per_node_pair(33), 1);
        assert_eq!(links_per_node_pair(2), 32);
        assert_eq!(links_per_node_pair(9), 4);
    }

    #[test]
    fn fully_connected_nodes_rejects_bad_sizes() {
        assert!(Topology::fully_connected_nodes(1).is_err());
        assert!(Topology::fully_connected_nodes(34).is_err());
    }

    #[test]
    fn fully_connected_33_nodes_is_the_264_tsp_system() {
        let topo = Topology::fully_connected_nodes(33).unwrap();
        assert_eq!(topo.num_tsps(), 264);
        assert_ports_unique(&topo);
        assert_port_ranges(&topo);
        // 33*28 intra-node + C(33,2)*1 global
        assert_eq!(topo.links().len(), 33 * 28 + 33 * 32 / 2);
        // every node pair has exactly one global cable
        let globals: Vec<_> = topo.links().iter().filter(|l| l.is_global()).collect();
        assert_eq!(globals.len(), 528);
    }

    #[test]
    fn fully_connected_two_nodes_uses_all_global_ports() {
        let topo = Topology::fully_connected_nodes(2).unwrap();
        assert_ports_unique(&topo);
        let globals = topo.links().iter().filter(|l| l.is_global()).count();
        assert_eq!(globals, 32); // 32 parallel links between the two nodes
                                 // every TSP's 4 global ports are in use
        for t in topo.tsps() {
            let g = topo
                .neighbors(t)
                .iter()
                .filter(|&&(lid, _)| topo.link(lid).is_global())
                .count();
            assert_eq!(g, 4);
        }
    }

    #[test]
    fn node_global_channels_spread_across_tsps() {
        // channel c lives on TSP slot c/4, port 7 + c%4
        assert_eq!(global_channel_tsp(0, 0), TspId(0));
        assert_eq!(global_channel_tsp(0, 31), TspId(7));
        assert_eq!(global_channel_port(0), 7);
        assert_eq!(global_channel_port(31), 10);
    }

    #[test]
    fn rack_dragonfly_rejects_bad_sizes() {
        assert!(Topology::rack_dragonfly(1).is_err());
        assert!(Topology::rack_dragonfly(146).is_err());
    }

    #[test]
    fn rack_dragonfly_small_config_wiring() {
        let topo = Topology::rack_dragonfly(2).unwrap();
        assert_eq!(topo.num_tsps(), 144);
        assert_ports_unique(&topo);
        assert_port_ranges(&topo);
        let intra_node = topo
            .links()
            .iter()
            .filter(|l| l.class == CableClass::IntraNode)
            .count();
        let intra_rack = topo
            .links()
            .iter()
            .filter(|l| l.class == CableClass::IntraRack)
            .count();
        let inter_rack = topo
            .links()
            .iter()
            .filter(|l| l.class == CableClass::InterRack)
            .count();
        assert_eq!(intra_node, 18 * 28);
        // per rack: C(9,2)=36 pairs x 2 copies = 72; two racks = 144
        assert_eq!(intra_rack, 144);
        // 2 racks: 144 links between them
        assert_eq!(inter_rack, 144);
    }

    #[test]
    fn rack_dragonfly_max_config_counts() {
        assert_eq!(links_per_rack_pair(MAX_RACKS), 1);
        let topo = Topology::rack_dragonfly(MAX_RACKS).unwrap();
        assert_eq!(topo.num_tsps(), crate::MAX_TSPS);
        let inter_rack = topo
            .links()
            .iter()
            .filter(|l| l.class == CableClass::InterRack)
            .count();
        // all-to-all between 145 racks, one link per pair
        assert_eq!(inter_rack, 145 * 144 / 2);
        assert_ports_unique(&topo);
    }

    #[test]
    fn torus_node_wiring_and_properties() {
        let topo = Topology::torus_node();
        assert_eq!(topo.links().len(), 8 * 3);
        assert_ports_unique(&topo);
        // every neighbor pair has exactly 3 parallel links
        for i in 0..8u32 {
            let j = (i + 1) % 8;
            assert_eq!(topo.links_between(TspId(i), TspId(j)).len(), 3);
        }
        // non-neighbors have no direct link
        assert!(topo.links_between(TspId(0), TspId(2)).is_empty());
        // each TSP uses 6 local ports
        for t in topo.tsps() {
            assert_eq!(topo.neighbors(t).len(), 6);
        }
        // ring of 8: diameter 4
        assert_eq!(crate::route::eccentricity(&topo, TspId(0)), 4);
    }

    #[test]
    fn torus_triples_nearest_neighbor_paths() {
        // The §4.4 rationale: 3 edge-disjoint single-hop paths to the ring
        // neighbor (vs 1 in the mesh), so nearest-neighbor tensors spread
        // 3x wider without leaving minimal routes.
        let torus = Topology::torus_node();
        let paths = crate::route::edge_disjoint_paths(&torus, TspId(0), TspId(1), 7);
        let one_hop = paths.iter().filter(|p| p.hops() == 1).count();
        assert_eq!(one_hop, 3);
        let mesh = Topology::single_node();
        let mesh_paths = crate::route::edge_disjoint_paths(&mesh, TspId(0), TspId(1), 7);
        assert_eq!(mesh_paths.iter().filter(|p| p.hops() == 1).count(), 1);
    }

    #[test]
    fn inter_rack_ports_constant_matches_paper() {
        // "partition half of the 288-ports ... remaining 144 ports are used
        // to connect to other racks" (paper §2.2)
        assert_eq!(INTER_RACK_PORTS, 144);
    }
}
