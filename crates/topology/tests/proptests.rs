//! Property-based tests for topology construction and routing.

// In offline dev environments the proptest stub's `proptest!` macro
// expands to nothing, making the helpers and imports below look unused;
// the real proptest uses all of them.
#![allow(dead_code, unused_imports)]

use proptest::prelude::*;
use std::collections::HashSet;
use tsm_topology::route::{diameter_bound, edge_disjoint_paths, shortest_path};
use tsm_topology::{Topology, TspId};

fn arbitrary_pair(n: usize) -> impl Strategy<Value = (u32, u32)> {
    (0..n as u32, 0..n as u32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every pair in the fully-connected-node regime routes within 3 hops,
    /// and the path is well-formed (continuous, endpoint-correct).
    #[test]
    fn full_connect_routes_within_bound(
        nodes in 2usize..12,
        pair in arbitrary_pair(96),
    ) {
        let topo = Topology::fully_connected_nodes(nodes).unwrap();
        let n = topo.num_tsps() as u32;
        let (a, b) = (pair.0 % n, pair.1 % n);
        let p = shortest_path(&topo, TspId(a), TspId(b)).unwrap();
        prop_assert!(p.hops() <= diameter_bound(&topo));
        prop_assert_eq!(p.source(), TspId(a));
        prop_assert_eq!(p.dest(), TspId(b));
        prop_assert_eq!(p.tsps.len(), p.links.len() + 1);
        for (i, &lid) in p.links.iter().enumerate() {
            let l = topo.link(lid);
            prop_assert!(l.touches(p.tsps[i]) && l.touches(p.tsps[i + 1]));
        }
    }

    /// Rack-Dragonfly routes stay within the TSP-level bound.
    #[test]
    fn dragonfly_routes_within_bound(
        racks in 2usize..5,
        pair in arbitrary_pair(360),
    ) {
        let topo = Topology::rack_dragonfly(racks).unwrap();
        let n = topo.num_tsps() as u32;
        let (a, b) = (pair.0 % n, pair.1 % n);
        let p = shortest_path(&topo, TspId(a), TspId(b)).unwrap();
        prop_assert!(p.hops() <= diameter_bound(&topo));
    }

    /// Edge-disjoint paths never share a link and are sorted by length.
    #[test]
    fn edge_disjoint_paths_are_disjoint(
        nodes in 2usize..8,
        pair in arbitrary_pair(64),
        k in 1usize..8,
    ) {
        let topo = Topology::fully_connected_nodes(nodes).unwrap();
        let n = topo.num_tsps() as u32;
        let (a, b) = (pair.0 % n, pair.1 % n);
        prop_assume!(a != b);
        let paths = edge_disjoint_paths(&topo, TspId(a), TspId(b), k);
        prop_assert!(!paths.is_empty());
        prop_assert!(paths.len() <= k);
        let mut seen = HashSet::new();
        for p in &paths {
            for &l in &p.links {
                prop_assert!(seen.insert(l), "link shared between paths");
            }
        }
        for w in paths.windows(2) {
            prop_assert!(w[0].hops() <= w[1].hops(), "paths must be shortest-first");
        }
    }

    /// Port assignments are globally unique in every constructible regime.
    #[test]
    fn ports_unique_everywhere(nodes in 2usize..16) {
        let topo = Topology::fully_connected_nodes(nodes).unwrap();
        let mut used = HashSet::new();
        for l in topo.links() {
            prop_assert!(used.insert((l.a, l.a_port)));
            prop_assert!(used.insert((l.b, l.b_port)));
        }
    }

    /// The O(1) port index agrees with a linear scan over the link table on
    /// arbitrary generated topologies, for every (TSP, port) pair — wired
    /// or not.
    #[test]
    fn port_index_agrees_with_linear_scan(
        regime in 0usize..3,
        size in 2usize..10,
    ) {
        let topo = match regime {
            0 => Topology::fully_connected_nodes(size).unwrap(),
            1 => Topology::rack_dragonfly(2 + size % 3).unwrap(),
            _ => if size % 2 == 0 { Topology::single_node() } else { Topology::torus_node() },
        };
        for t in topo.tsps() {
            for port in 0..16u8 {
                // the old cosim peer_of/link_between scan, verbatim
                let scanned = topo.links().iter().enumerate().find_map(|(i, l)| {
                    if l.a == t && l.a_port == port {
                        Some((tsm_topology::LinkId(i as u32), l.b, l.b_port))
                    } else if l.b == t && l.b_port == port {
                        Some((tsm_topology::LinkId(i as u32), l.a, l.a_port))
                    } else {
                        None
                    }
                });
                prop_assert_eq!(topo.port_peer(t, port), scanned);
            }
        }
    }

    /// Id arithmetic roundtrips: every TSP is inside its node and rack.
    #[test]
    fn id_arithmetic_consistent(raw in 0u32..10_440) {
        let t = TspId(raw);
        let node = t.node();
        prop_assert!(node.tsps().any(|x| x == t));
        prop_assert_eq!(node.rack(), t.rack());
        prop_assert!(t.slot() < 8);
    }
}
