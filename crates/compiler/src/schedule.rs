//! The list scheduler: compute onto device timelines, communication onto
//! the SSN occupancy table.
//!
//! This is the step that makes the system "scheduled, not routed" (paper
//! §4.2): every transfer's hop-by-hop timing is fixed here, and the
//! resulting span *is* the compiler's latency estimate — the quantity
//! Fig 17 shows landing within 2 % of silicon measurement. The scheduler
//! honors the two optimization levels of Fig 20: the unoptimized compiler
//! serializes communication on the producing device's timeline, the
//! optimized one overlaps it ("The compiler will overlap as much compute
//! and communication to effectively hide the C2C link latency", §4.1).

use crate::graph::{Graph, OpKind};
use crate::spread;
use std::collections::HashMap;
use tsm_net::ssn::{self, LinkOccupancy};
use tsm_topology::{Topology, TspId};

/// How aggressively the compiler optimizes data movement (Fig 20).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// Balance FLOPs only; communication serializes on the producer
    /// (the paper's "initial (unoptimized) compiler implementation").
    FlopsOnly,
    /// Data-movement-aware: transfers overlap producer compute, tensors
    /// spread across non-minimal paths when profitable.
    #[default]
    SpatialAware,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Optimization level.
    pub opt: OptLevel,
    /// Maximum paths a single tensor may spread across.
    pub max_spread_paths: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            opt: OptLevel::SpatialAware,
            max_spread_paths: 7,
        }
    }
}

/// Errors from compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The graph failed validation.
    Graph(crate::graph::GraphError),
    /// The network schedule failed (double-booked link, no route, …).
    Network(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Graph(e) => write!(f, "graph error: {e}"),
            CompileError::Network(e) => write!(f, "network schedule error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A fully scheduled multi-TSP program.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Start cycle of each op (graph id order).
    pub op_start: Vec<u64>,
    /// End cycle of each op.
    pub op_end: Vec<u64>,
    /// Total span: the compiler's cycle-exact latency estimate.
    pub span_cycles: u64,
    /// MXM/VXM-busy cycles per device.
    pub compute_busy: HashMap<TspId, u64>,
    /// Union length of all network-transfer intervals, in cycles.
    pub comm_busy_cycles: u64,
    /// The link reservations (the network schedule itself).
    pub occupancy: LinkOccupancy,
}

impl CompiledProgram {
    /// The compiler's latency estimate in seconds.
    pub fn estimated_seconds(&self) -> f64 {
        tsm_isa::timing::cycles_to_seconds(self.span_cycles)
    }

    /// Maximum per-device compute-busy cycles (the pipeline bottleneck).
    pub fn max_device_busy(&self) -> u64 {
        self.compute_busy.values().copied().max().unwrap_or(0)
    }

    /// Sum of useful FLOPs over the span: realized TFLOPs.
    pub fn realized_tflops(&self, total_flops: u64) -> f64 {
        if self.span_cycles == 0 {
            return 0.0;
        }
        total_flops as f64 / self.estimated_seconds() / 1e12
    }

    /// Fraction of the span during which at least one network transfer was
    /// in flight — the "C2C" bar of Fig 20.
    pub fn comm_fraction(&self) -> f64 {
        if self.span_cycles == 0 {
            return 0.0;
        }
        self.comm_busy_cycles as f64 / self.span_cycles as f64
    }
}

/// Compiles `graph` onto `topo`.
///
/// Ops are visited in topological order. Compute ops claim their device's
/// timeline; transfers are scheduled on the global [`LinkOccupancy`],
/// spreading across non-minimal paths per [`spread::decide_paths`] when the
/// optimization level allows. Host I/O claims the device's PCIe port.
pub fn compile(
    graph: &Graph,
    topo: &Topology,
    options: CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    let mut occupancy = LinkOccupancy::new();
    compile_with_occupancy(graph, topo, options, &mut occupancy)
}

/// Like [`compile`], but scheduling communication on a caller-owned
/// occupancy table — the mechanism behind multi-tenant co-scheduling
/// ([`crate::tenancy`]): programs compiled against the same table share
/// links conflict-free. The returned program's `occupancy` snapshot
/// includes every reservation made so far (all tenants up to and
/// including this one).
pub fn compile_with_occupancy(
    graph: &Graph,
    topo: &Topology,
    options: CompileOptions,
    occupancy: &mut LinkOccupancy,
) -> Result<CompiledProgram, CompileError> {
    let order = graph.topo_order().map_err(CompileError::Graph)?;
    let n = graph.len();
    let mut op_start = vec![0u64; n];
    let mut op_end = vec![0u64; n];
    let mut device_free: HashMap<TspId, u64> = HashMap::new();
    let mut host_free: HashMap<TspId, u64> = HashMap::new();
    let mut compute_busy: HashMap<TspId, u64> = HashMap::new();
    let mut comm_intervals: Vec<(u64, u64)> = Vec::new();
    let mut span = 0u64;

    for id in order {
        let node = graph.node(id);
        let ready = node
            .deps
            .iter()
            .map(|d| op_end[d.index()])
            .max()
            .unwrap_or(0);
        let (start, end) = match &node.kind {
            OpKind::Gemm { .. } | OpKind::Compute { .. } => {
                let cycles = node.kind.compute_cycles();
                let free = device_free.entry(node.device).or_insert(0);
                let start = ready.max(*free);
                let end = start + cycles;
                *free = end;
                *compute_busy.entry(node.device).or_insert(0) += cycles;
                (start, end)
            }
            OpKind::Transfer {
                to,
                bytes,
                allow_nonminimal,
            } => {
                let vectors = node.kind.transfer_vectors();
                let spread_ok = *allow_nonminimal && options.opt == OptLevel::SpatialAware;
                let paths = spread::decide_paths(
                    topo,
                    node.device,
                    *to,
                    *bytes,
                    if spread_ok {
                        options.max_spread_paths
                    } else {
                        1
                    },
                )
                .map_err(|e| CompileError::Network(e.to_string()))?;
                let earliest = if options.opt == OptLevel::FlopsOnly {
                    // Unoptimized: the producer device also stalls for the
                    // transfer.
                    ready.max(*device_free.entry(node.device).or_insert(0))
                } else {
                    ready
                };
                let shards = occupancy
                    .schedule_spread(topo, &paths, vectors, earliest)
                    .map_err(|e| CompileError::Network(e.to_string()))?;
                let start = shards
                    .iter()
                    .map(|s| s.first_inject)
                    .min()
                    .unwrap_or(earliest);
                let end = ssn::completion(&shards).max(earliest);
                if options.opt == OptLevel::FlopsOnly {
                    device_free.insert(node.device, end);
                }
                if end > start {
                    comm_intervals.push((start, end));
                }
                (start, end)
            }
            OpKind::HostInput { .. } | OpKind::HostOutput { .. } => {
                let cycles = node.kind.compute_cycles();
                let free = host_free.entry(node.device).or_insert(0);
                let start = ready.max(*free);
                let end = start + cycles;
                *free = end;
                (start, end)
            }
        };
        op_start[id.index()] = start;
        op_end[id.index()] = end;
        span = span.max(end);
    }

    ssn::validate(occupancy.reservations()).map_err(|e| CompileError::Network(e.to_string()))?;

    Ok(CompiledProgram {
        op_start,
        op_end,
        span_cycles: span,
        compute_busy,
        comm_busy_cycles: union_length(&mut comm_intervals),
        occupancy: occupancy.clone(),
    })
}

/// Total length of the union of half-open intervals.
fn union_length(intervals: &mut [(u64, u64)]) -> u64 {
    intervals.sort_unstable();
    let mut total = 0;
    let mut cur: Option<(u64, u64)> = None;
    for &(s, e) in intervals.iter() {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
                let _ = cs;
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use tsm_chip::mxm::GemmShape;
    use tsm_isa::ElemType;

    fn gemm_kind(m: u64) -> OpKind {
        OpKind::Gemm {
            shape: GemmShape::new(m, 320, 320),
            ty: ElemType::F16,
        }
    }

    #[test]
    fn independent_ops_on_different_devices_run_in_parallel() {
        let topo = tsm_topology::Topology::single_node();
        let mut g = Graph::new();
        g.add(TspId(0), gemm_kind(1000), vec![]).unwrap();
        g.add(TspId(1), gemm_kind(1000), vec![]).unwrap();
        let p = compile(&g, &topo, CompileOptions::default()).unwrap();
        // both start at 0; span = single-op duration
        assert_eq!(p.op_start, vec![0, 0]);
        assert_eq!(p.span_cycles, p.op_end[0]);
    }

    #[test]
    fn same_device_ops_serialize() {
        let topo = tsm_topology::Topology::single_node();
        let mut g = Graph::new();
        g.add(TspId(0), gemm_kind(1000), vec![]).unwrap();
        g.add(TspId(0), gemm_kind(1000), vec![]).unwrap();
        let p = compile(&g, &topo, CompileOptions::default()).unwrap();
        assert_eq!(p.op_start[1], p.op_end[0]);
        assert_eq!(p.compute_busy[&TspId(0)], p.span_cycles);
    }

    #[test]
    fn transfer_respects_dependency_and_adds_latency() {
        let topo = tsm_topology::Topology::single_node();
        let mut g = Graph::new();
        let a = g.add(TspId(0), gemm_kind(500), vec![]).unwrap();
        let t = g
            .add(
                TspId(0),
                OpKind::Transfer {
                    to: TspId(1),
                    bytes: 320,
                    allow_nonminimal: false,
                },
                vec![a],
            )
            .unwrap();
        let b = g.add(TspId(1), gemm_kind(500), vec![t]).unwrap();
        let p = compile(&g, &topo, CompileOptions::default()).unwrap();
        assert!(p.op_start[t.index()] >= p.op_end[a.index()]);
        assert!(p.op_start[b.index()] >= p.op_end[t.index()]);
        // one vector, one hop: slot + 228
        assert_eq!(p.op_end[t.index()] - p.op_start[t.index()], 24 + 228);
    }

    #[test]
    fn flops_only_serializes_comm_on_producer() {
        let topo = tsm_topology::Topology::single_node();
        let build = || {
            let mut g = Graph::new();
            let a = g.add(TspId(0), gemm_kind(2000), vec![]).unwrap();
            // transfer doesn't depend on the gemm: an optimized schedule
            // overlaps them, the unoptimized one can't.
            let _t = g
                .add(
                    TspId(0),
                    OpKind::Transfer {
                        to: TspId(1),
                        bytes: 3_200_000,
                        allow_nonminimal: false,
                    },
                    vec![],
                )
                .unwrap();
            let _ = a;
            g
        };
        let fast = compile(&build(), &topo, CompileOptions::default()).unwrap();
        let slow = compile(
            &build(),
            &topo,
            CompileOptions {
                opt: OptLevel::FlopsOnly,
                max_spread_paths: 7,
            },
        )
        .unwrap();
        assert!(
            slow.span_cycles > fast.span_cycles,
            "unoptimized {} should exceed optimized {}",
            slow.span_cycles,
            fast.span_cycles
        );
    }

    #[test]
    fn spatial_aware_spreads_large_tensors() {
        let topo = tsm_topology::Topology::single_node();
        let mut g = Graph::new();
        g.add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(1),
                bytes: 3_200_000,
                allow_nonminimal: true,
            },
            vec![],
        )
        .unwrap();
        let spread = compile(&g, &topo, CompileOptions::default()).unwrap();
        let mut g2 = Graph::new();
        g2.add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(1),
                bytes: 3_200_000,
                allow_nonminimal: false,
            },
            vec![],
        )
        .unwrap();
        let minimal = compile(&g2, &topo, CompileOptions::default()).unwrap();
        assert!(spread.span_cycles < minimal.span_cycles / 3);
    }

    #[test]
    fn host_io_uses_pcie_port_timeline() {
        let topo = tsm_topology::Topology::single_node();
        let mut g = Graph::new();
        g.add(TspId(0), OpKind::HostInput { bytes: 315_000_000 }, vec![])
            .unwrap();
        g.add(TspId(0), OpKind::HostInput { bytes: 315_000_000 }, vec![])
            .unwrap();
        let p = compile(&g, &topo, CompileOptions::default()).unwrap();
        // two 10ms PCIe streams serialize on the port
        assert_eq!(p.op_start[1], p.op_end[0]);
        assert_eq!(p.span_cycles, 2 * 9_000_000);
    }

    #[test]
    fn comm_fraction_and_breakdown() {
        let topo = tsm_topology::Topology::single_node();
        let mut g = Graph::new();
        let a = g.add(TspId(0), gemm_kind(100), vec![]).unwrap();
        g.add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(1),
                bytes: 32_000,
                allow_nonminimal: false,
            },
            vec![a],
        )
        .unwrap();
        let p = compile(&g, &topo, CompileOptions::default()).unwrap();
        assert!(p.comm_fraction() > 0.0 && p.comm_fraction() <= 1.0);
        assert!(p.comm_busy_cycles > 0);
        assert!(p.max_device_busy() > 0);
    }

    #[test]
    fn compilation_is_deterministic() {
        let topo = tsm_topology::Topology::fully_connected_nodes(2).unwrap();
        let build = || {
            let mut g = Graph::new();
            let mut prev = None;
            for i in 0..10u32 {
                let dev = TspId(i % 16);
                let deps = prev.map(|p| vec![p]).unwrap_or_default();
                let a = g.add(dev, gemm_kind(200), deps).unwrap();
                let t = g
                    .add(
                        dev,
                        OpKind::Transfer {
                            to: TspId((i + 1) % 16),
                            bytes: 64_000,
                            allow_nonminimal: true,
                        },
                        vec![a],
                    )
                    .unwrap();
                prev = Some(t);
            }
            compile(&g, &topo, CompileOptions::default())
                .unwrap()
                .span_cycles
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn union_length_merges_overlaps() {
        assert_eq!(union_length(&mut [(0, 10), (5, 15), (20, 30)]), 25);
        assert_eq!(union_length(&mut []), 0);
        assert_eq!(union_length(&mut [(3, 3)]), 0);
    }
}
