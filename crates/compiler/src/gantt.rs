//! ASCII Gantt rendering of a schedule dump.
//!
//! A compiled program is a timeline; rendering it makes schedule bugs
//! (serialization where overlap was expected, idle bubbles, lopsided
//! stages) visible at a glance in test logs and terminals.

use crate::dump::ScheduleDump;
use std::collections::BTreeMap;

/// Renders one row per device, `width` characters across the span.
///
/// Cell glyphs: `G` gemm, `C` compute, `T` transfer (source device), `H`
/// host I/O, `·` idle. Overlapping ops on one device show the later one.
pub fn render(dump: &ScheduleDump, width: usize) -> String {
    assert!(width >= 10, "give the chart at least 10 columns");
    let span = dump.span_cycles.max(1);
    let mut rows: BTreeMap<u32, Vec<char>> = BTreeMap::new();
    for op in &dump.ops {
        let row = rows
            .entry(op.device)
            .or_insert_with(|| vec!['\u{b7}'; width]);
        let glyph = match op.kind.as_str() {
            "gemm" => 'G',
            "compute" => 'C',
            "transfer" => 'T',
            "host_in" | "host_out" => 'H',
            _ => '?',
        };
        let lo = (op.start as u128 * width as u128 / span as u128) as usize;
        let hi = (op.end as u128 * width as u128 / span as u128) as usize;
        for cell in row
            .iter_mut()
            .take(hi.max(lo + 1).min(width))
            .skip(lo.min(width - 1))
        {
            *cell = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "span: {} cycles ({:.1} µs); one column ≈ {} cycles\n",
        span,
        span as f64 / 900.0,
        span / width as u64
    ));
    for (device, row) in rows {
        out.push_str(&format!("tsp{device:<4} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, OpKind};
    use crate::schedule::{compile, CompileOptions};
    use tsm_topology::{Topology, TspId};

    fn pipeline_dump() -> ScheduleDump {
        let mut g = Graph::new();
        let a = g
            .add(TspId(0), OpKind::Compute { cycles: 10_000 }, vec![])
            .unwrap();
        let t = g
            .add(
                TspId(0),
                OpKind::Transfer {
                    to: TspId(1),
                    bytes: 320_000,
                    allow_nonminimal: true,
                },
                vec![a],
            )
            .unwrap();
        g.add(TspId(1), OpKind::Compute { cycles: 10_000 }, vec![t])
            .unwrap();
        let topo = Topology::single_node();
        let p = compile(&g, &topo, CompileOptions::default()).unwrap();
        ScheduleDump::capture(&g, &p)
    }

    #[test]
    fn renders_one_row_per_device() {
        let chart = render(&pipeline_dump(), 60);
        assert!(chart.contains("tsp0"));
        assert!(chart.contains("tsp1"));
        assert!(chart.contains('C'));
        assert!(chart.contains('T'));
        assert!(chart.lines().count() == 3);
    }

    #[test]
    fn pipeline_shape_is_visible() {
        // tsp0's compute precedes tsp1's: tsp1's row must start idle.
        let chart = render(&pipeline_dump(), 60);
        let tsp1 = chart.lines().find(|l| l.starts_with("tsp1")).unwrap();
        let body: Vec<char> = tsp1.chars().skip_while(|&c| c != '|').skip(1).collect();
        assert_eq!(body[0], '\u{b7}', "tsp1 idles while tsp0 computes: {chart}");
        assert!(body.contains(&'C'));
    }

    #[test]
    fn rendering_is_pure() {
        let d = pipeline_dump();
        assert_eq!(render(&d, 40), render(&d, 40));
    }

    #[test]
    #[should_panic(expected = "10 columns")]
    fn rejects_tiny_widths() {
        let _ = render(&pipeline_dump(), 3);
    }
}
