//! The rest of the collective family: broadcast, reduce, all-gather and
//! reduce-scatter over the node's full mesh.
//!
//! The paper evaluates all-reduce (§5.3) because it is the performance-
//! critical one, but the same barrier-free scheduling discipline plans
//! every collective: each is a set of scheduled transfers on the
//! [`LinkOccupancy`] table, and its completion time *is* the plan.

use crate::collective::AllReduceReport;
use tsm_isa::timing::cycles_to_seconds;
use tsm_isa::vector::vectors_for_bytes;
use tsm_net::ssn::{LinkOccupancy, SsnError};
use tsm_topology::route::shortest_path;
use tsm_topology::{NodeId, Topology, TspId};

/// Pipeline latency of the VXM pass appended to reduction stages.
const REDUCE_PIPE_CYCLES: u64 = 4;

/// A planned collective (shared report shape: completion + bandwidth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveReport {
    /// Payload size (per participant for gather-type, total for
    /// broadcast-type), bytes.
    pub bytes: u64,
    /// Participants.
    pub participants: usize,
    /// Completion cycles from a cold network.
    pub completion_cycles: u64,
    /// Completion in seconds.
    pub seconds: f64,
    /// Algorithm bandwidth: bytes / time.
    pub algo_gbs: f64,
}

fn report(bytes: u64, participants: usize, completion: u64) -> CollectiveReport {
    let seconds = cycles_to_seconds(completion.max(1));
    CollectiveReport {
        bytes,
        participants,
        completion_cycles: completion,
        seconds,
        algo_gbs: bytes as f64 / seconds / 1e9,
    }
}

/// Broadcast `bytes` from `root` to its 7 node peers: scatter one eighth
/// to each peer, then the peers all-gather the pieces among themselves —
/// the classic two-phase broadcast that turns the root's single injection
/// bottleneck into full-mesh parallelism.
pub fn broadcast_intra_node(
    topo: &Topology,
    root: TspId,
    bytes: u64,
) -> Result<CollectiveReport, SsnError> {
    let peers: Vec<TspId> = root.node().tsps().filter(|&t| t != root).collect();
    let total = vectors_for_bytes(bytes);
    let chunk = total.div_ceil(8).max(1);
    let mut occ = LinkOccupancy::new();

    // Phase 1 — scatter: peer i gets chunk i (root keeps chunk 7).
    let mut t1 = 0;
    for &p in &peers {
        let path = shortest_path(topo, root, p).expect("node mesh");
        let s = occ.schedule_transfer(topo, &path, chunk, 0)?;
        t1 = t1.max(s.last_arrival);
    }
    // Phase 2 — all-gather among all 8 (each re-broadcasts its chunk,
    // including the root's remainder chunk).
    let all: Vec<TspId> = root.node().tsps().collect();
    let mut t2 = t1;
    for &src in &all {
        for &dst in &all {
            if src == dst {
                continue;
            }
            let path = shortest_path(topo, src, dst).expect("node mesh");
            let s = occ.schedule_transfer(topo, &path, chunk, t1)?;
            t2 = t2.max(s.last_arrival);
        }
    }
    tsm_net::ssn::validate(occ.reservations())?;
    Ok(report(bytes, 8, t2))
}

/// Reduce `bytes` from all 8 node TSPs onto `root`: reduce-scatter (each
/// TSP owns one eighth of the reduced tensor) then gather the reduced
/// shards to the root.
pub fn reduce_intra_node(
    topo: &Topology,
    root: TspId,
    bytes: u64,
) -> Result<CollectiveReport, SsnError> {
    let all: Vec<TspId> = root.node().tsps().collect();
    let total = vectors_for_bytes(bytes);
    let shard = total.div_ceil(8).max(1);
    let mut occ = LinkOccupancy::new();

    // Phase 1 — reduce-scatter.
    let mut t1 = 0;
    for &i in &all {
        for &j in &all {
            if i == j {
                continue;
            }
            let path = shortest_path(topo, i, j).expect("node mesh");
            let s = occ.schedule_transfer(topo, &path, shard, 0)?;
            t1 = t1.max(s.last_arrival);
        }
    }
    t1 += REDUCE_PIPE_CYCLES;
    // Phase 2 — gather reduced shards to the root (7 inbound links in
    // parallel).
    let mut t2 = t1;
    for &j in &all {
        if j == root {
            continue;
        }
        let path = shortest_path(topo, j, root).expect("node mesh");
        let s = occ.schedule_transfer(topo, &path, shard, t1)?;
        t2 = t2.max(s.last_arrival);
    }
    tsm_net::ssn::validate(occ.reservations())?;
    Ok(report(bytes, 8, t2))
}

/// All-gather: every TSP contributes `bytes_per_rank` and ends with all
/// eight contributions. One scheduled transfer per ordered pair.
pub fn all_gather_intra_node(
    topo: &Topology,
    node: NodeId,
    bytes_per_rank: u64,
) -> Result<CollectiveReport, SsnError> {
    let all: Vec<TspId> = node.tsps().collect();
    let v = vectors_for_bytes(bytes_per_rank).max(1);
    let mut occ = LinkOccupancy::new();
    let mut done = 0;
    for &src in &all {
        for &dst in &all {
            if src == dst {
                continue;
            }
            let path = shortest_path(topo, src, dst).expect("node mesh");
            let s = occ.schedule_transfer(topo, &path, v, 0)?;
            done = done.max(s.last_arrival);
        }
    }
    tsm_net::ssn::validate(occ.reservations())?;
    Ok(report(bytes_per_rank * 8, 8, done))
}

/// Reduce-scatter: every TSP contributes `bytes` and ends with one eighth
/// of the element-wise sum.
pub fn reduce_scatter_intra_node(
    topo: &Topology,
    node: NodeId,
    bytes: u64,
) -> Result<CollectiveReport, SsnError> {
    let all: Vec<TspId> = node.tsps().collect();
    let shard = vectors_for_bytes(bytes).div_ceil(8).max(1);
    let mut occ = LinkOccupancy::new();
    let mut done = 0;
    for &src in &all {
        for &dst in &all {
            if src == dst {
                continue;
            }
            let path = shortest_path(topo, src, dst).expect("node mesh");
            let s = occ.schedule_transfer(topo, &path, shard, 0)?;
            done = done.max(s.last_arrival);
        }
    }
    tsm_net::ssn::validate(occ.reservations())?;
    Ok(report(bytes, 8, done + REDUCE_PIPE_CYCLES))
}

/// Consistency helper: an all-reduce is a reduce-scatter followed by an
/// all-gather of the reduced shards; the composed plans should bracket the
/// fused plan of [`crate::collective::allreduce_intra_node`].
pub fn composed_allreduce_cycles(topo: &Topology, node: NodeId, bytes: u64) -> u64 {
    let rs = reduce_scatter_intra_node(topo, node, bytes).expect("schedules");
    let ag = all_gather_intra_node(topo, node, bytes.div_ceil(8)).expect("schedules");
    rs.completion_cycles + ag.completion_cycles
}

/// Re-export of the fused all-reduce report type for symmetric imports.
pub type FusedAllReduce = AllReduceReport;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::allreduce_intra_node;
    use tsm_topology::Topology;

    const MB: u64 = 1 << 20;

    #[test]
    fn two_phase_broadcast_beats_naive_for_large_tensors() {
        let topo = Topology::single_node();
        let r = broadcast_intra_node(&topo, TspId(0), 8 * MB).unwrap();
        // Naive: root sends the full tensor on each of its 7 links in
        // parallel -> V·slot ≈ 8MB/320·24 cycles.
        let naive = vectors_for_bytes(8 * MB) * 24 + 228;
        assert!(
            r.completion_cycles < naive / 2,
            "two-phase {} vs naive {}",
            r.completion_cycles,
            naive
        );
        assert_eq!(r.participants, 8);
    }

    #[test]
    fn reduce_mirrors_broadcast_asymptotically() {
        let topo = Topology::single_node();
        let b = broadcast_intra_node(&topo, TspId(0), 16 * MB).unwrap();
        let r = reduce_intra_node(&topo, TspId(0), 16 * MB).unwrap();
        let ratio = r.completion_cycles as f64 / b.completion_cycles as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "reduce/broadcast ratio {ratio}"
        );
    }

    #[test]
    fn all_gather_scales_with_contribution_size() {
        let topo = Topology::single_node();
        let small = all_gather_intra_node(&topo, NodeId(0), 64 << 10).unwrap();
        let large = all_gather_intra_node(&topo, NodeId(0), 1 << 20).unwrap();
        let ratio = large.completion_cycles as f64 / small.completion_cycles as f64;
        assert!(
            (12.0..20.0).contains(&ratio),
            "16x data -> ~16x time, got {ratio}"
        );
    }

    #[test]
    fn composed_allreduce_brackets_fused_plan() {
        let topo = Topology::single_node();
        let fused = allreduce_intra_node(&topo, NodeId(0), 4 * MB).unwrap();
        let composed = composed_allreduce_cycles(&topo, NodeId(0), 4 * MB);
        // The fused plan overlaps nothing extra here (same stages), so the
        // two should agree within the pipeline epsilon.
        let ratio = composed as f64 / fused.completion_cycles as f64;
        assert!((0.8..1.2).contains(&ratio), "composed/fused = {ratio}");
    }

    #[test]
    fn collectives_validate_and_report_sane_bandwidth() {
        let topo = Topology::single_node();
        for bytes in [4096u64, MB, 32 * MB] {
            let r = reduce_scatter_intra_node(&topo, NodeId(0), bytes).unwrap();
            assert!(r.algo_gbs > 0.0 && r.algo_gbs < 500.0, "{bytes}: {r:?}");
        }
    }

    #[test]
    fn collectives_work_on_the_torus_local_group_too() {
        // Multi-hop paths on the ring: the planners only need
        // shortest_path, so the §4.4 variant works unchanged (slower for
        // all-to-all, as the ablation quantifies).
        let torus = Topology::torus_node();
        let r = broadcast_intra_node(&torus, TspId(0), MB).unwrap();
        assert!(r.completion_cycles > 0);
        let mesh = Topology::single_node();
        let m = broadcast_intra_node(&mesh, TspId(0), MB).unwrap();
        assert!(
            m.completion_cycles < r.completion_cycles,
            "mesh broadcast must win"
        );
    }
}
