//! Pipeline-stage load balancing: FLOPs-only vs data-movement-aware
//! (paper §5.6, Fig 20).
//!
//! For pipelined model parallelism the compiler partitions the layer
//! sequence into contiguous stages, one per TSP. The *unoptimized*
//! compiler balanced only FLOPs and serialized the activation transfers
//! behind compute; the optimized compiler "carefully considers data
//! movements to exploit the spatial organization of the TSP" — it costs
//! each stage as `max(compute, comm)` (transfers overlap compute) and
//! balances that. Fig 20 measures the difference at ≈26 % realized
//! throughput on BERT-Large over 4 TSPs.

use crate::schedule::OptLevel;
use tsm_isa::vector::vectors_for_bytes;
use tsm_net::ssn::vector_slot_cycles;

/// Per-layer cost model: compute, on-chip operand movement, and the
/// activation tensor shipped to the next stage if a stage boundary falls
/// after this layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCost {
    /// MXM/VXM-busy cycles of this layer.
    pub compute_cycles: u64,
    /// On-chip data-movement cycles (SXM transposes, stream staging
    /// between hemispheres) that a movement-naive schedule serializes
    /// behind compute but a spatial-aware schedule overlaps.
    pub movement_cycles: u64,
    /// Bytes of activations this layer passes onward.
    pub activation_bytes: u64,
}

/// Cycles to ship `bytes` of activations across one C2C link.
pub fn transfer_cycles(bytes: u64) -> u64 {
    let slot = vector_slot_cycles();
    let v = vectors_for_bytes(bytes);
    // pipeline fill (1 hop intra-node) + serialization
    228 + v * slot
}

/// Cost of one stage (layers `lo..hi`, boundary activation from the last
/// layer unless it is the final stage) under an optimization level.
///
/// The cost is the stage's *pipeline beat*: how often it can accept a new
/// input. FLOPs-only serializes the outbound transfer behind compute;
/// spatial-aware overlaps them.
pub fn stage_cost(layers: &[LayerCost], lo: usize, hi: usize, last: bool, opt: OptLevel) -> u64 {
    let compute: u64 = layers[lo..hi].iter().map(|l| l.compute_cycles).sum();
    let movement: u64 = layers[lo..hi].iter().map(|l| l.movement_cycles).sum();
    let comm = if last {
        0
    } else {
        transfer_cycles(layers[hi - 1].activation_bytes)
    };
    match opt {
        // Movement-naive: every byte moved serializes behind compute.
        OptLevel::FlopsOnly => compute + movement + comm,
        // Spatial-aware: movement and C2C ride the SXM/C2C units while the
        // MXM computes.
        OptLevel::SpatialAware => compute.max(movement + comm),
    }
}

/// A stage assignment: `boundaries[i]` is the first layer of stage `i+1`;
/// stage 0 starts at layer 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePlan {
    /// Exclusive stage boundaries (length = stages − 1).
    pub boundaries: Vec<usize>,
    /// The bottleneck stage cost in cycles (the pipeline beat).
    pub beat_cycles: u64,
}

impl StagePlan {
    /// Stage ranges as (lo, hi) pairs.
    pub fn ranges(&self, n_layers: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.boundaries.len() + 1);
        let mut lo = 0;
        for &b in &self.boundaries {
            out.push((lo, b));
            lo = b;
        }
        out.push((lo, n_layers));
        out
    }

    /// Pipeline throughput in inputs per second.
    pub fn throughput_per_second(&self) -> f64 {
        tsm_isa::timing::CLOCK_HZ as f64 / self.beat_cycles as f64
    }
}

/// Partitions `layers` into `n_stages` contiguous stages minimizing the
/// bottleneck stage cost under the optimization level's cost model.
///
/// Exact dynamic program over (layer, stages): O(n² · stages), fine for
/// model graphs of hundreds of layers.
///
/// The subtlety Fig 20 demonstrates: the FLOPs-only compiler *balances
/// using compute cost only* (it doesn't know communication matters), then
/// *pays* compute + comm at runtime; the spatial-aware compiler balances
/// with the true overlapped cost. Both effects are modelled here.
pub fn partition_stages(layers: &[LayerCost], n_stages: usize, opt: OptLevel) -> StagePlan {
    assert!(
        n_stages >= 1 && n_stages <= layers.len(),
        "stage count out of range"
    );
    let n = layers.len();
    // The cost the *partitioner believes*:
    let believed = |lo: usize, hi: usize, last: bool| -> u64 {
        match opt {
            OptLevel::FlopsOnly => layers[lo..hi].iter().map(|l| l.compute_cycles).sum(),
            OptLevel::SpatialAware => stage_cost(layers, lo, hi, last, opt),
        }
    };
    // dp[s][i] = minimal believed bottleneck partitioning layers[0..i] into s stages,
    // where only the final stage of the whole plan is "last".
    let inf = u64::MAX;
    let mut dp = vec![vec![inf; n + 1]; n_stages + 1];
    let mut choice = vec![vec![0usize; n + 1]; n_stages + 1];
    dp[0][0] = 0;
    for s in 1..=n_stages {
        for i in s..=n {
            for j in (s - 1)..i {
                if dp[s - 1][j] == inf {
                    continue;
                }
                let last = s == n_stages && i == n;
                let cost = believed(j, i, last).max(dp[s - 1][j]);
                if cost < dp[s][i] {
                    dp[s][i] = cost;
                    choice[s][i] = j;
                }
            }
        }
    }
    // Recover boundaries.
    let mut boundaries = Vec::with_capacity(n_stages - 1);
    let mut i = n;
    for s in (1..=n_stages).rev() {
        let j = choice[s][i];
        if s > 1 {
            boundaries.push(j);
        }
        i = j;
    }
    boundaries.reverse();
    // The *actual* beat uses the true runtime cost model for the level.
    let plan = StagePlan {
        boundaries,
        beat_cycles: 0,
    };
    let beat = plan
        .ranges(n)
        .iter()
        .enumerate()
        .map(|(s, &(lo, hi))| stage_cost(layers, lo, hi, s + 1 == n_stages, opt))
        .max()
        .expect("at least one stage");
    StagePlan {
        beat_cycles: beat,
        ..plan
    }
}

/// The Fig 20 comparison: realized-throughput improvement of the
/// spatial-aware compiler over the FLOPs-only compiler on the same layers
/// and stage count (≥ 1.0; the paper measured ≈ 1.26 for BERT-Large on 4
/// TSPs).
pub fn optimization_speedup(layers: &[LayerCost], n_stages: usize) -> f64 {
    let slow = partition_stages(layers, n_stages, OptLevel::FlopsOnly);
    let fast = partition_stages(layers, n_stages, OptLevel::SpatialAware);
    slow.beat_cycles as f64 / fast.beat_cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, compute: u64, act: u64) -> Vec<LayerCost> {
        vec![
            LayerCost {
                compute_cycles: compute,
                movement_cycles: 0,
                activation_bytes: act
            };
            n
        ]
    }

    #[test]
    fn single_stage_sums_everything() {
        let layers = uniform(4, 100, 32_000);
        let p = partition_stages(&layers, 1, OptLevel::SpatialAware);
        assert!(p.boundaries.is_empty());
        assert_eq!(p.beat_cycles, 400);
    }

    #[test]
    fn even_layers_split_evenly() {
        let layers = uniform(8, 1000, 320);
        let p = partition_stages(&layers, 4, OptLevel::SpatialAware);
        assert_eq!(p.boundaries, vec![2, 4, 6]);
        assert_eq!(p.ranges(8), vec![(0, 2), (2, 4), (4, 6), (6, 8)]);
    }

    #[test]
    fn flops_only_pays_serialized_comm() {
        let layers = uniform(4, 1000, 64_000); // 64 KB activations
        let slow = partition_stages(&layers, 4, OptLevel::FlopsOnly);
        let fast = partition_stages(&layers, 4, OptLevel::SpatialAware);
        let comm = transfer_cycles(64_000);
        assert_eq!(slow.beat_cycles, 1000 + comm);
        assert_eq!(fast.beat_cycles, 1000.max(comm));
        assert!(slow.beat_cycles > fast.beat_cycles);
    }

    #[test]
    fn speedup_is_at_least_one_and_bounded_by_two() {
        // With overlap, max(c, m) >= (c+m)/2, so the speedup can't exceed 2
        // on a uniform pipeline.
        for act in [1_000u64, 100_000, 1_000_000] {
            let layers = uniform(8, 50_000, act);
            let s = optimization_speedup(&layers, 4);
            assert!((1.0..=2.0).contains(&s), "act {act}: speedup {s}");
        }
    }

    #[test]
    fn bert_like_costs_land_near_paper_26_percent() {
        // BERT-Large-ish per-encoder cost: with on-chip movement at ~14 %
        // of compute plus boundary activations, the serialized overhead is
        // ~26 % of a stage's compute — the Fig 20 measurement.
        let mut layers = uniform(24, 130_000, 780_000);
        for l in &mut layers {
            l.movement_cycles = l.compute_cycles * 14 / 100;
        }
        let s = optimization_speedup(&layers, 4);
        assert!((1.18..=1.35).contains(&s), "speedup {s}");
    }

    #[test]
    fn uneven_layers_balance_better_with_dp() {
        let mut layers = uniform(6, 100, 320);
        layers[0].compute_cycles = 1000;
        let p = partition_stages(&layers, 2, OptLevel::SpatialAware);
        // stage 0 = the single heavy layer; everything else in stage 1
        assert_eq!(p.boundaries, vec![1]);
    }

    #[test]
    fn throughput_inverts_beat() {
        let layers = uniform(2, 900_000, 320);
        let p = partition_stages(&layers, 2, OptLevel::SpatialAware);
        // beat = 900k cycles at 900 MHz -> 1000 inputs/s
        assert!((p.throughput_per_second() - 1000.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_stages_rejected() {
        let layers = uniform(2, 1, 1);
        let _ = partition_stages(&layers, 3, OptLevel::SpatialAware);
    }
}
