//! The static computation DAG.
//!
//! "the static computation graph can be expressed as a series of
//! dependencies that impose temporal deadlines on the operand arrival
//! times of tensors being communicated" (paper §3). Nodes are device-bound
//! operations; edges are dependencies. Cross-device edges become scheduled
//! transfers; the graph itself carries explicit [`OpKind::Transfer`] nodes
//! so the scheduler sees communication as first-class work.

use tsm_chip::mxm::{gemm_timing, GemmShape};
use tsm_isa::timing::PCIE_GEN4_X16_BYTES_PER_SECOND;
use tsm_isa::vector::vectors_for_bytes;
use tsm_isa::ElemType;
use tsm_topology::TspId;

/// Dense id of a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

impl OpId {
    /// Index into dense node arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What one node does.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// A GEMM on the owning device's MXM.
    Gemm {
        /// Shape of the multiply.
        shape: GemmShape,
        /// Element type.
        ty: ElemType,
    },
    /// Fixed-duration compute (VXM passes, layernorm, softmax, …) whose
    /// cycle count the partitioner computed.
    Compute {
        /// MXM/VXM-busy cycles.
        cycles: u64,
    },
    /// Move `bytes` from the owning device to `to` over the network.
    Transfer {
        /// Destination TSP.
        to: TspId,
        /// Payload size in bytes.
        bytes: u64,
        /// Allow spreading across non-minimal paths (paper §4.3).
        allow_nonminimal: bool,
    },
    /// Stream `bytes` from the host over PCIe into the owning device.
    HostInput {
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Stream `bytes` from the owning device to the host over PCIe.
    HostOutput {
        /// Payload size in bytes.
        bytes: u64,
    },
}

impl OpKind {
    /// Compute-side duration in cycles (transfers report 0 here; their
    /// time comes from the network schedule).
    pub fn compute_cycles(&self) -> u64 {
        match self {
            OpKind::Gemm { shape, ty } => gemm_timing(*shape, *ty).cycles,
            OpKind::Compute { cycles } => *cycles,
            OpKind::Transfer { .. } => 0,
            OpKind::HostInput { bytes } | OpKind::HostOutput { bytes } => {
                // PCIe streaming modelled as occupancy of the host port.
                let secs = *bytes as f64 / PCIE_GEN4_X16_BYTES_PER_SECOND;
                tsm_isa::timing::seconds_to_cycles(secs)
            }
        }
    }

    /// Payload vectors for transfer-like ops.
    pub fn transfer_vectors(&self) -> u64 {
        match self {
            OpKind::Transfer { bytes, .. } => vectors_for_bytes(*bytes),
            _ => 0,
        }
    }
}

/// One node: an operation bound to a device.
#[derive(Debug, Clone, PartialEq)]
pub struct OpNode {
    /// The operation.
    pub kind: OpKind,
    /// Executing device (for transfers, the source).
    pub device: TspId,
    /// Nodes that must complete before this one starts.
    pub deps: Vec<OpId>,
}

/// A static computation DAG.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<OpNode>,
}

/// Errors from graph construction/validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A dependency referenced a node that doesn't exist (yet).
    UnknownDep {
        /// The offending reference.
        dep: OpId,
    },
    /// The graph has a cycle (impossible via `add`, possible via direct
    /// construction in tests).
    Cyclic,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownDep { dep } => write!(f, "dependency on unknown op {dep:?}"),
            GraphError::Cyclic => write!(f, "computation graph has a cycle"),
        }
    }
}

impl std::error::Error for GraphError {}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a node; dependencies must already exist, which keeps the graph
    /// acyclic by construction.
    pub fn add(
        &mut self,
        device: TspId,
        kind: OpKind,
        deps: Vec<OpId>,
    ) -> Result<OpId, GraphError> {
        let id = OpId(self.nodes.len() as u32);
        for &d in &deps {
            if d.index() >= self.nodes.len() {
                return Err(GraphError::UnknownDep { dep: d });
            }
        }
        self.nodes.push(OpNode { kind, device, deps });
        Ok(id)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    pub fn node(&self, id: OpId) -> &OpNode {
        &self.nodes[id.index()]
    }

    /// All nodes in id (= topological) order.
    pub fn nodes(&self) -> &[OpNode] {
        &self.nodes
    }

    /// Ids in topological order (identical to insertion order by
    /// construction; verified here for graphs built by hand).
    pub fn topo_order(&self) -> Result<Vec<OpId>, GraphError> {
        for (i, n) in self.nodes.iter().enumerate() {
            if n.deps.iter().any(|d| d.index() >= i) {
                return Err(GraphError::Cyclic);
            }
        }
        Ok((0..self.nodes.len() as u32).map(OpId).collect())
    }

    /// Total useful FLOPs in the graph (for utilization reporting).
    pub fn total_flops(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                OpKind::Gemm { shape, .. } => shape.flops(),
                _ => 0,
            })
            .sum()
    }

    /// Total bytes moved across the network.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                OpKind::Transfer { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// The set of devices referenced by the graph, sorted.
    pub fn devices(&self) -> Vec<TspId> {
        let mut v: Vec<TspId> = self.nodes.iter().map(|n| n.device).collect();
        for n in &self.nodes {
            if let OpKind::Transfer { to, .. } = n.kind {
                v.push(to);
            }
        }
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm(m: u64, n: u64, l: u64) -> OpKind {
        OpKind::Gemm {
            shape: GemmShape::new(m, n, l),
            ty: ElemType::F16,
        }
    }

    #[test]
    fn build_and_query() {
        let mut g = Graph::new();
        let a = g.add(TspId(0), gemm(32, 320, 320), vec![]).unwrap();
        let t = g
            .add(
                TspId(0),
                OpKind::Transfer {
                    to: TspId(1),
                    bytes: 1024,
                    allow_nonminimal: true,
                },
                vec![a],
            )
            .unwrap();
        let b = g.add(TspId(1), gemm(32, 320, 320), vec![t]).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.node(b).deps, vec![t]);
        assert_eq!(g.devices(), vec![TspId(0), TspId(1)]);
        assert_eq!(g.total_transfer_bytes(), 1024);
        assert!(g.total_flops() > 0);
        assert_eq!(g.topo_order().unwrap().len(), 3);
    }

    #[test]
    fn unknown_dep_rejected() {
        let mut g = Graph::new();
        let err = g.add(TspId(0), gemm(1, 1, 1), vec![OpId(5)]).unwrap_err();
        assert_eq!(err, GraphError::UnknownDep { dep: OpId(5) });
    }

    #[test]
    fn compute_cycles_for_each_kind() {
        assert_eq!(OpKind::Compute { cycles: 77 }.compute_cycles(), 77);
        assert_eq!(
            OpKind::Transfer {
                to: TspId(0),
                bytes: 640,
                allow_nonminimal: false
            }
            .compute_cycles(),
            0
        );
        // 31.5 GB over PCIe Gen4 x16 = 1 s = 900M cycles.
        let c = OpKind::HostInput {
            bytes: 31_500_000_000,
        }
        .compute_cycles();
        assert_eq!(c, 900_000_000);
    }

    #[test]
    fn transfer_vectors_round_up() {
        let t = OpKind::Transfer {
            to: TspId(1),
            bytes: 321,
            allow_nonminimal: false,
        };
        assert_eq!(t.transfer_vectors(), 2);
        assert_eq!(OpKind::Compute { cycles: 1 }.transfer_vectors(), 0);
    }

    #[test]
    fn gemm_cycles_follow_mxm_model() {
        // install-bound at m=64: 2x2 tiles x 160 cycles
        let k = gemm(64, 320, 640);
        assert_eq!(k.compute_cycles(), 640);
        // compute-bound at m=640
        assert_eq!(gemm(640, 320, 640).compute_cycles(), 1280);
    }
}
