//! Multi-tenant co-scheduling: several independent programs sharing one
//! fabric, conflict-free by construction.
//!
//! The abstract promises "a parallel machine learning system with
//! *elasticity* to support a variety of workloads". Because SSN resolves
//! every link conflict at compile time, co-residency needs no hardware
//! QoS: tenants compile against the *same* link-occupancy table, and the
//! resulting schedules interleave on shared links with zero interference
//! ambiguity — each tenant's timing is exact, just as if it had measured
//! the other tenant's traffic into its own schedule.

use crate::graph::{Graph, OpKind};
use crate::schedule::{compile_with_occupancy, CompileError, CompileOptions, CompiledProgram};
use std::collections::HashSet;
use tsm_net::ssn::{validate, LinkOccupancy};
use tsm_topology::{Topology, TspId};

/// Errors from co-scheduling.
#[derive(Debug, Clone, PartialEq)]
pub enum TenancyError {
    /// Two tenants claimed the same device (compute is not shareable).
    DeviceOverlap {
        /// The doubly-claimed device.
        device: TspId,
    },
    /// A tenant failed to compile.
    Compile(CompileError),
}

impl std::fmt::Display for TenancyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenancyError::DeviceOverlap { device } => {
                write!(f, "{device} claimed by more than one tenant")
            }
            TenancyError::Compile(e) => write!(f, "tenant compile: {e}"),
        }
    }
}

impl std::error::Error for TenancyError {}

/// Compiles several tenants onto one topology with a shared link-occupancy
/// table. Devices must be disjoint across tenants; links are shared and
/// scheduled conflict-free.
pub fn compile_tenants(
    graphs: &[&Graph],
    topo: &Topology,
    options: CompileOptions,
) -> Result<Vec<CompiledProgram>, TenancyError> {
    // Device exclusivity check.
    let mut claimed: HashSet<TspId> = HashSet::new();
    for g in graphs {
        let mut mine: HashSet<TspId> = HashSet::new();
        for n in g.nodes() {
            mine.insert(n.device);
            if let OpKind::Transfer { to, .. } = n.kind {
                mine.insert(to);
            }
        }
        for d in mine {
            if !claimed.insert(d) {
                return Err(TenancyError::DeviceOverlap { device: d });
            }
        }
    }

    let mut occupancy = LinkOccupancy::new();
    let mut programs = Vec::with_capacity(graphs.len());
    for g in graphs {
        let p = compile_with_occupancy(g, topo, options, &mut occupancy)
            .map_err(TenancyError::Compile)?;
        programs.push(p);
    }
    // The union of all tenants' reservations is one conflict-free schedule.
    validate(occupancy.reservations()).expect("shared occupancy is conflict-free by construction");
    Ok(programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_topology::Topology;

    fn tenant(devices: [u32; 2], bytes: u64) -> Graph {
        let mut g = Graph::new();
        let a = g
            .add(
                TspId(devices[0]),
                OpKind::Compute { cycles: 10_000 },
                vec![],
            )
            .unwrap();
        let t = g
            .add(
                TspId(devices[0]),
                OpKind::Transfer {
                    to: TspId(devices[1]),
                    bytes,
                    allow_nonminimal: true,
                },
                vec![a],
            )
            .unwrap();
        g.add(
            TspId(devices[1]),
            OpKind::Compute { cycles: 10_000 },
            vec![t],
        )
        .unwrap();
        g
    }

    #[test]
    fn disjoint_tenants_coschedule() {
        let topo = Topology::single_node();
        let t1 = tenant([0, 1], 640_000);
        let t2 = tenant([2, 3], 640_000);
        let t3 = tenant([4, 5], 640_000);
        let programs = compile_tenants(&[&t1, &t2, &t3], &topo, CompileOptions::default()).unwrap();
        assert_eq!(programs.len(), 3);
        for p in &programs {
            assert!(p.span_cycles > 0);
        }
    }

    #[test]
    fn device_overlap_is_rejected() {
        let topo = Topology::single_node();
        let t1 = tenant([0, 1], 1024);
        let t2 = tenant([1, 2], 1024);
        assert_eq!(
            compile_tenants(&[&t1, &t2], &topo, CompileOptions::default()).unwrap_err(),
            TenancyError::DeviceOverlap { device: TspId(1) }
        );
    }

    #[test]
    fn shared_links_serialize_across_tenants() {
        // Both tenants spread over non-minimal paths through each other's
        // TSPs: the shared occupancy forces the later tenant's flit trains
        // behind the earlier tenant's on contested links.
        let topo = Topology::single_node();
        let t1 = tenant([0, 1], 3_200_000);
        let t2 = tenant([2, 3], 3_200_000);
        let shared = compile_tenants(&[&t1, &t2], &topo, CompileOptions::default()).unwrap();
        // Compiled alone, tenant 2 would finish sooner.
        let alone = crate::schedule::compile(&t2, &topo, CompileOptions::default()).unwrap();
        assert!(
            shared[1].span_cycles >= alone.span_cycles,
            "shared {} vs alone {}",
            shared[1].span_cycles,
            alone.span_cycles
        );
        // And tenant 1, compiled first, is unaffected.
        let t1_alone = crate::schedule::compile(&t1, &topo, CompileOptions::default()).unwrap();
        assert_eq!(shared[0].span_cycles, t1_alone.span_cycles);
    }

    #[test]
    fn cotenancy_is_deterministic() {
        let topo = Topology::single_node();
        let run = || {
            let t1 = tenant([0, 1], 320_000);
            let t2 = tenant([4, 6], 320_000);
            compile_tenants(&[&t1, &t2], &topo, CompileOptions::default())
                .unwrap()
                .iter()
                .map(|p| p.span_cycles)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
