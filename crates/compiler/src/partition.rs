//! Distributed GEMM partitioning: column-wise and row-wise weight splits
//! (paper §5.2, Figs 14–15).
//!
//! * **Column-wise**: the second matrix `[N×L]` splits column-wise into
//!   `X` pieces; each TSP computes `[M×N]×[N×(L/X)]` and results
//!   concatenate — no reduction traffic.
//! * **Row-wise**: the second matrix splits row-wise (and the first
//!   column-wise); each TSP computes a full-size partial product
//!   `[M×L']` that must be *reduced* across the split — compute scales
//!   down, communication appears.
//!
//! The Fig 14 decomposition composes both: 8 column splits, then `r`
//! row splits clustered within nodes so the reduction rides the node's
//! full mesh.

use crate::graph::{Graph, OpId, OpKind};
use tsm_chip::mxm::GemmShape;
use tsm_isa::ElemType;
use tsm_topology::TspId;

/// Splits `[M×N]×[N×L]` column-wise into `x` sub-GEMMs `[M×N]×[N×L/x]`.
/// Remainder columns go to the last piece.
pub fn column_split(shape: GemmShape, x: u64) -> Vec<GemmShape> {
    assert!(x >= 1 && x <= shape.l, "column split count out of range");
    let base = shape.l / x;
    let rem = shape.l % x;
    (0..x)
        .map(|i| GemmShape::new(shape.m, shape.n, base + if i < rem { 1 } else { 0 }))
        .collect()
}

/// Splits `[M×N]×[N×L]` row-wise into `r` sub-GEMMs `[M×N/r]×[N/r×L]`,
/// whose `[M×L]` partial products must be summed.
pub fn row_split(shape: GemmShape, r: u64) -> Vec<GemmShape> {
    assert!(r >= 1 && r <= shape.n, "row split count out of range");
    let base = shape.n / r;
    let rem = shape.n % r;
    (0..r)
        .map(|i| GemmShape::new(shape.m, base + if i < rem { 1 } else { 0 }, shape.l))
        .collect()
}

/// VXM cycles to sum one pair of `[M×L]` FP32 partials (one vector lane
/// pass per 320 bytes).
fn reduce_cycles(m: u64, l: u64, ty: ElemType) -> u64 {
    let bytes = m * l * ty.bytes() as u64;
    tsm_isa::vector::vectors_for_bytes(bytes) + 4
}

/// Builds the Fig 14 distributed-GEMM graph: `col_splits` column pieces,
/// each computed by `row_splits` TSPs (clustered consecutively so each
/// cluster lands in as few nodes as possible), partial products reduced
/// pairwise within the cluster, using the given element type.
///
/// Devices are assigned densely: cluster `c` owns TSPs
/// `[c·row_splits, (c+1)·row_splits)`.
pub fn build_distributed_gemm(
    shape: GemmShape,
    col_splits: u64,
    row_splits: u64,
    ty: ElemType,
) -> Graph {
    let mut g = Graph::new();
    let cols = column_split(shape, col_splits);
    // Clusters of more than 8 row splits are aligned to whole nodes so
    // every intra-cluster reduction but the last stays on the node mesh
    // ("we try to cluster row-wise splits in a single node to leverage the
    // Dragonfly topology", §5.2). Small clusters pack densely.
    let cluster_stride = if row_splits <= 8 {
        row_splits
    } else {
        row_splits.div_ceil(8) * 8
    };
    for (c, col_shape) in cols.iter().enumerate() {
        let rows = row_split(*col_shape, row_splits);
        let cluster_base = c as u64 * cluster_stride;
        // each TSP computes its partial product
        let partials: Vec<(OpId, TspId)> = rows
            .iter()
            .enumerate()
            .map(|(r, &rs)| {
                let dev = TspId((cluster_base + r as u64) as u32);
                let id = g
                    .add(dev, OpKind::Gemm { shape: rs, ty }, vec![])
                    .expect("deps exist");
                (id, dev)
            })
            .collect();
        let partial_bytes = col_shape.m * col_shape.l * ty.bytes() as u64;
        let cycles = reduce_cycles(col_shape.m, col_shape.l, ty);
        // Locality-aware reduction (paper §5.2): "A reduction is applied
        // within a node on all the partial results … Finally, if needed,
        // the result on each node is reduced and transferred with one of
        // its neighboring nodes over C2C." Pairwise trees within each
        // node first, then a pairwise tree over the per-node results.
        let mut by_node: std::collections::BTreeMap<u32, Vec<(OpId, TspId)>> = Default::default();
        for p in partials {
            by_node.entry(p.1.node().0).or_default().push(p);
        }
        let node_results: Vec<(OpId, TspId)> = by_node
            .into_values()
            .map(|group| pairwise_reduce(&mut g, group, partial_bytes, cycles))
            .collect();
        pairwise_reduce(&mut g, node_results, partial_bytes, cycles);
    }
    g
}

/// Reduces `partials` to a single sum with a pairwise tree: each step
/// ships the second operand to the first operand's device and adds there.
/// Returns the final (op, device).
fn pairwise_reduce(
    g: &mut Graph,
    mut partials: Vec<(OpId, TspId)>,
    partial_bytes: u64,
    cycles: u64,
) -> (OpId, TspId) {
    assert!(!partials.is_empty());
    while partials.len() > 1 {
        let mut next = Vec::with_capacity(partials.len().div_ceil(2));
        for pair in partials.chunks(2) {
            if pair.len() == 1 {
                next.push(pair[0]);
                continue;
            }
            let (a_id, a_dev) = pair[0];
            let (b_id, b_dev) = pair[1];
            let t = g
                .add(
                    b_dev,
                    OpKind::Transfer {
                        to: a_dev,
                        bytes: partial_bytes,
                        allow_nonminimal: true,
                    },
                    vec![b_id],
                )
                .expect("deps exist");
            let sum = g
                .add(a_dev, OpKind::Compute { cycles }, vec![a_id, t])
                .expect("deps exist");
            next.push((sum, a_dev));
        }
        partials = next;
    }
    partials[0]
}

/// Builds the Fig 15 cluster GEMM: `[N×N]×[N×N]` decomposed purely
/// column-wise onto `x` TSPs.
///
/// Every device needs the full activation matrix `A`. Streaming it whole
/// over each device's own PCIe link would bind the entire figure to host
/// bandwidth; instead the eight TSPs of a node *stripe* the stream (each
/// PCIe link injects one eighth of `A`) and redistribute the stripes over
/// the node's full mesh — the paper's §5.2 discipline of streaming "in the
/// order that minimizes the injected data volume", exploiting the
/// intra-node wire density. Host input, C2C redistribution and MXM
/// compute all overlap; the span is whichever binds.
pub fn build_cluster_gemm(n: u64, x: u64, ty: ElemType) -> Graph {
    let mut g = Graph::new();
    let shape = GemmShape::new(n, n, n);
    let cols = column_split(shape, x);
    let stripe = shape.activation_bytes(ty).div_ceil(8);
    for (i, &cs) in cols.iter().enumerate() {
        let dev = TspId(i as u32);
        // This device's PCIe stripe of A (the node's eight links share the
        // injection; see the doc comment).
        g.add(dev, OpKind::HostInput { bytes: stripe }, vec![])
            .expect("no deps");
        // Redistribute the stripe to the node peers over the mesh,
        // overlapped with compute.
        let node_base = (i / 8) * 8;
        for peer in 0..8usize {
            let peer_idx = node_base + peer;
            if peer_idx == i || peer_idx as u64 >= x {
                continue;
            }
            g.add(
                dev,
                OpKind::Transfer {
                    to: TspId(peer_idx as u32),
                    bytes: stripe,
                    allow_nonminimal: false,
                },
                vec![],
            )
            .expect("no deps");
        }
        g.add(dev, OpKind::Gemm { shape: cs, ty }, vec![])
            .expect("no deps");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{compile, CompileOptions};
    use tsm_topology::Topology;

    #[test]
    fn column_split_preserves_columns() {
        let s = GemmShape::new(800, 32_576, 8192);
        let cols = column_split(s, 8);
        assert_eq!(cols.len(), 8);
        assert!(cols.iter().all(|c| c.l == 1024 && c.n == s.n && c.m == s.m));
        assert_eq!(cols.iter().map(|c| c.l).sum::<u64>(), 8192);
    }

    #[test]
    fn column_split_distributes_remainder() {
        let cols = column_split(GemmShape::new(4, 4, 10), 3);
        assert_eq!(cols.iter().map(|c| c.l).collect::<Vec<_>>(), vec![4, 3, 3]);
    }

    #[test]
    fn row_split_preserves_inner_dim() {
        let s = GemmShape::new(800, 32_576, 1024);
        let rows = row_split(s, 13);
        assert_eq!(rows.len(), 13);
        assert_eq!(rows.iter().map(|r| r.n).sum::<u64>(), 32_576);
        assert!(rows.iter().all(|r| r.m == 800 && r.l == 1024));
    }

    #[test]
    fn splits_conserve_flops() {
        let s = GemmShape::new(128, 640, 640);
        let total: u64 = column_split(s, 4).iter().map(|c| c.flops()).sum();
        assert_eq!(total, s.flops());
        let total_r: u64 = row_split(s, 5).iter().map(|r| r.flops()).sum();
        assert_eq!(total_r, s.flops());
    }

    #[test]
    fn fig14_graph_has_expected_structure() {
        let s = GemmShape::new(800, 32_576, 8192);
        let g = build_distributed_gemm(s, 8, 4, ElemType::F16);
        // 8 clusters x 4 gemms = 32 gemms, plus 3 (transfer+reduce) pairs
        // per cluster = 8 * (4 + 3*2) = 80 nodes
        assert_eq!(g.len(), 8 * (4 + 3 * 2));
        assert_eq!(g.devices().len(), 32);
        assert_eq!(g.total_flops(), s.flops());
    }

    #[test]
    fn fig14_latency_decreases_with_more_row_splits() {
        // The headline of Fig 14: more TSPs -> lower latency, because
        // compute shrinks per device and the reduction rides the node mesh.
        let s = GemmShape::new(800, 32_576, 8192);
        let spans: Vec<u64> = [1u64, 2, 4, 8]
            .iter()
            .map(|&r| {
                let g = build_distributed_gemm(s, 8, r, ElemType::F16);
                let topo =
                    Topology::fully_connected_nodes(((8 * r) as usize).div_ceil(8).max(2)).unwrap();
                compile(&g, &topo, CompileOptions::default())
                    .unwrap()
                    .span_cycles
            })
            .collect();
        for w in spans.windows(2) {
            assert!(w[1] < w[0], "latency must drop as TSPs double: {spans:?}");
        }
        // near-linear at the start: 2x TSPs -> >1.5x faster (the reduction
        // traffic takes back part of the ideal 2x, exactly as in Fig 14)
        assert!(spans[0] as f64 / spans[1] as f64 > 1.5, "{spans:?}");
    }

    #[test]
    fn fig15_graph_streams_inputs_per_device() {
        let g = build_cluster_gemm(6400, 100, ElemType::F16);
        // per device: 1 host stripe + 7 peer redistributions + 1 gemm
        // (devices 96..100 form a partial node with fewer peers)
        assert_eq!(g.len(), 100 * 9 - 4 * 4);
        assert_eq!(g.devices().len(), 100);
        let host_inputs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, OpKind::HostInput { .. }))
            .count();
        assert_eq!(host_inputs, 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversplit_rejected() {
        let _ = column_split(GemmShape::new(2, 2, 2), 3);
    }
}
