//! The parallelizing compiler: partitioning, communication scheduling, and
//! cycle-exact cost estimation (paper §4, §5).
//!
//! The compiler is where every decision the paper moves out of hardware
//! lands: which TSP executes which sub-task, which links carry which
//! vectors on which cycles, whether a tensor routes minimally or spreads
//! across non-minimal paths, and when every operand arrives. Modules:
//!
//! * [`graph`] — the static computation DAG ("we express these
//!   dependencies as a DAG to explicitly schedule the communication
//!   traffic", §3),
//! * [`schedule`] — the list scheduler that places compute on device
//!   timelines and communication on the SSN link-occupancy table,
//!   producing a [`schedule::CompiledProgram`] whose span *is* the
//!   compiler's latency estimate (within 2 % of measurement in Fig 17),
//! * [`partition`] — column-wise / row-wise weight splits for distributed
//!   GEMM (§5.2, Figs 14–15),
//! * [`spread`] — the minimal/non-minimal routing decision by tensor
//!   volume (§4.3, Fig 10),
//! * [`collective`] — hierarchical all-reduce planning (§5.3, §5.6,
//!   Fig 16),
//! * [`balance`] — the FLOPs-only vs data-movement-aware optimization
//!   levels compared in Fig 20.

pub mod balance;
pub mod collective;
pub mod collectives_ext;
pub mod dump;
pub mod gantt;
pub mod graph;
pub mod partition;
pub mod schedule;
pub mod spread;
pub mod tenancy;

pub use graph::{Graph, OpId, OpKind, OpNode};
pub use schedule::{CompileError, CompiledProgram};
