//! Collective communication planning: the barrier-free all-reduce
//! (paper §5.3, §5.6, Fig 16).
//!
//! The TSP all-reduce needs no mutex, flag or fence: the compiler knows
//! the cycle each partial sum arrives, so consumers are simply scheduled
//! after producers ("the consumer will respect the data dependence",
//! §5.3). The plans here are *actual link schedules* built on
//! [`LinkOccupancy`], not closed-form estimates — their completion times
//! are what the harness reports as realized bandwidth.

use tsm_isa::timing::{cycles_to_seconds, HOP_LATENCY_NS};
use tsm_isa::vector::vectors_for_bytes;
use tsm_net::ssn::{LinkOccupancy, SsnError};
use tsm_topology::route::shortest_path;
use tsm_topology::{NodeId, Topology, TspId, TSPS_PER_NODE};

/// Pipeline latency of the VXM reduction pass appended after the last
/// operand arrives (the adds themselves overlap arrivals).
const REDUCE_PIPE_CYCLES: u64 = 4;

/// Result of planning one all-reduce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllReduceReport {
    /// Tensor size per participant, in bytes.
    pub bytes: u64,
    /// Participants.
    pub participants: usize,
    /// Completion time in cycles from a cold network.
    pub completion_cycles: u64,
    /// Completion time in seconds.
    pub seconds: f64,
    /// Algorithm bandwidth: bytes / time.
    pub algo_gbs: f64,
    /// Bus bandwidth (nccl-tests convention): `algo × 2(k−1)/k` — the
    /// number Fig 16 plots.
    pub bus_gbs: f64,
}

fn report(bytes: u64, participants: usize, completion_cycles: u64) -> AllReduceReport {
    let seconds = cycles_to_seconds(completion_cycles.max(1));
    let algo_gbs = bytes as f64 / seconds / 1e9;
    let k = participants as f64;
    AllReduceReport {
        bytes,
        participants,
        completion_cycles,
        seconds,
        algo_gbs,
        bus_gbs: algo_gbs * 2.0 * (k - 1.0) / k,
    }
}

/// Plans the 8-way intra-node all-reduce of Fig 16: reduce-scatter then
/// all-gather over the node's full mesh, every link carrying exactly one
/// shard per direction per stage.
pub fn allreduce_intra_node(
    topo: &Topology,
    node: NodeId,
    bytes: u64,
) -> Result<AllReduceReport, SsnError> {
    let devices: Vec<TspId> = node.tsps().collect();
    let k = devices.len();
    let total_vectors = vectors_for_bytes(bytes);
    let shard = total_vectors.div_ceil(k as u64).max(1);
    let mut occ = LinkOccupancy::new();

    // Stage 1 — reduce-scatter: device i sends shard j to device j.
    let mut stage1_done = 0;
    for &i in &devices {
        for &j in &devices {
            if i == j {
                continue;
            }
            let path = shortest_path(topo, i, j).expect("node mesh is connected");
            let s = occ.schedule_transfer(topo, &path, shard, 0)?;
            stage1_done = stage1_done.max(s.last_arrival);
        }
    }
    stage1_done += REDUCE_PIPE_CYCLES;

    // Stage 2 — all-gather: device j broadcasts its reduced shard.
    let mut done = stage1_done;
    for &j in &devices {
        for &i in &devices {
            if i == j {
                continue;
            }
            let path = shortest_path(topo, j, i).expect("node mesh is connected");
            let s = occ.schedule_transfer(topo, &path, shard, stage1_done)?;
            done = done.max(s.last_arrival);
        }
    }
    tsm_net::ssn::validate(occ.reservations())?;
    Ok(report(bytes, k, done))
}

/// Plans the three-stage hierarchical all-reduce of paper §5.6 over a
/// fully-connected-node system: (1) intra-node reduce-scatter, (2)
/// inter-node exchange of each shard over the global links, (3) intra-node
/// all-gather.
pub fn allreduce_hierarchical(topo: &Topology, bytes: u64) -> Result<AllReduceReport, SsnError> {
    let n_nodes = topo.num_nodes();
    assert!(n_nodes >= 2, "hierarchical all-reduce needs multiple nodes");
    let total_vectors = vectors_for_bytes(bytes);
    let shard = total_vectors.div_ceil(TSPS_PER_NODE as u64).max(1); // per slot
    let sub = shard.div_ceil(n_nodes as u64).max(1); // per (slot, node) exchange
    let mut occ = LinkOccupancy::new();
    let nodes: Vec<NodeId> = (0..n_nodes as u32).map(NodeId).collect();

    // Stage 1 — intra-node reduce-scatter on every node concurrently.
    let mut t1 = 0;
    for &node in &nodes {
        let devs: Vec<TspId> = node.tsps().collect();
        for &i in &devs {
            for &j in &devs {
                if i == j {
                    continue;
                }
                let p = shortest_path(topo, i, j).expect("connected");
                let s = occ.schedule_transfer(topo, &p, shard, 0)?;
                t1 = t1.max(s.last_arrival);
            }
        }
    }
    t1 += REDUCE_PIPE_CYCLES;

    // Stage 2 — slot-s TSPs exchange sub-shards across nodes.
    let mut t2 = t1;
    for slot in 0..TSPS_PER_NODE {
        for &na in &nodes {
            for &nb in &nodes {
                if na == nb {
                    continue;
                }
                let a = TspId(na.0 * TSPS_PER_NODE as u32 + slot as u32);
                let b = TspId(nb.0 * TSPS_PER_NODE as u32 + slot as u32);
                let p = shortest_path(topo, a, b).expect("connected");
                let s = occ.schedule_transfer(topo, &p, sub, t1)?;
                t2 = t2.max(s.last_arrival);
            }
        }
    }
    t2 += REDUCE_PIPE_CYCLES;

    // Stage 3 — intra-node all-gather.
    let mut t3 = t2;
    for &node in &nodes {
        let devs: Vec<TspId> = node.tsps().collect();
        for &j in &devs {
            for &i in &devs {
                if i == j {
                    continue;
                }
                let p = shortest_path(topo, j, i).expect("connected");
                let s = occ.schedule_transfer(topo, &p, shard, t2)?;
                t3 = t3.max(s.last_arrival);
            }
        }
    }
    tsm_net::ssn::validate(occ.reservations())?;
    Ok(report(bytes, topo.num_tsps(), t3))
}

/// The paper's §5.6 latency claim: a fine-grained all-reduce across a
/// 256-TSP Dragonfly pipelines over `hops` network hops at 722 ns each
/// ("722 ns per hop × 3 hops = 2,166 ns, or ≈2.1 µsec").
pub fn pipelined_allreduce_latency_ns(hops: u32) -> f64 {
    hops as f64 * HOP_LATENCY_NS
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_topology::Topology;

    #[test]
    fn intra_node_allreduce_saturates_near_link_capacity() {
        // Asymptotic bus bandwidth: each TSP's 7 links carry one shard per
        // direction per stage -> busbw approaches 7 x 12.5 GB/s ≈ 87.5.
        let topo = Topology::single_node();
        let r = allreduce_intra_node(&topo, NodeId(0), 256 << 20).unwrap();
        assert!(r.bus_gbs > 70.0, "bus bw {}", r.bus_gbs);
        assert!(
            r.bus_gbs < 90.0,
            "bus bw {} exceeds wire capacity",
            r.bus_gbs
        );
    }

    #[test]
    fn small_allreduce_is_latency_bound_microseconds() {
        // Fine-grained collectives finish in ~1 µs — the TSP advantage at
        // small sizes in Fig 16.
        let topo = Topology::single_node();
        let r = allreduce_intra_node(&topo, NodeId(0), 1024).unwrap();
        assert!(r.seconds < 2e-6, "{} s", r.seconds);
        assert!(r.bus_gbs < 10.0);
    }

    #[test]
    fn bandwidth_increases_monotonically_with_size_then_saturates() {
        let topo = Topology::single_node();
        let sizes = [1u64 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26];
        let bws: Vec<f64> = sizes
            .iter()
            .map(|&s| allreduce_intra_node(&topo, NodeId(0), s).unwrap().bus_gbs)
            .collect();
        for w in bws.windows(2) {
            assert!(w[1] >= w[0] * 0.99, "{bws:?}");
        }
        assert!(bws[4] / bws[3] < 1.1, "should be saturated: {bws:?}");
    }

    #[test]
    fn report_math_is_consistent() {
        let r = report(1_000_000, 8, 900_000); // 1 MB in 1 ms = 1 GB/s
        assert!((r.seconds - 1e-3).abs() < 1e-12);
        assert!((r.algo_gbs - 1.0).abs() < 1e-9);
        assert!((r.bus_gbs - r.algo_gbs * 1.75).abs() < 1e-9);
    }

    #[test]
    fn hierarchical_allreduce_completes_and_beats_naive_flat() {
        let topo = Topology::fully_connected_nodes(4).unwrap();
        let r = allreduce_hierarchical(&topo, 1 << 20).unwrap();
        assert_eq!(r.participants, 32);
        assert!(r.seconds > 0.0);
        assert!(r.bus_gbs > 10.0, "bus bw {}", r.bus_gbs);
    }

    #[test]
    fn sec56_latency_claim() {
        let ns = pipelined_allreduce_latency_ns(3);
        assert!((ns - 2166.0).abs() < 1e-9);
        assert!(ns < 3000.0, "under 3 µs end-to-end (abstract claim)");
    }

    #[test]
    fn hierarchical_scales_participants_with_nodes() {
        let t2 = Topology::fully_connected_nodes(2).unwrap();
        let t8 = Topology::fully_connected_nodes(8).unwrap();
        let r2 = allreduce_hierarchical(&t2, 1 << 18).unwrap();
        let r8 = allreduce_hierarchical(&t8, 1 << 18).unwrap();
        assert_eq!(r2.participants, 16);
        assert_eq!(r8.participants, 64);
        // More nodes => more inter-node exchange, longer completion.
        assert!(r8.completion_cycles > r2.completion_cycles);
    }
}
