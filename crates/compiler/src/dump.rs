//! Schedule export: a serializable snapshot of a compiled program.
//!
//! Downstream tooling (visualizers, schedule diffing, regression
//! snapshots) consumes the compiler's output as data. The dump carries
//! everything needed to reconstruct a Gantt view: per-op intervals with
//! devices and kinds, and per-link reservation trains.

use crate::graph::{Graph, OpKind};
use crate::schedule::CompiledProgram;
use serde::{Deserialize, Serialize};

/// One scheduled operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpDump {
    /// Graph op index.
    pub op: u32,
    /// Executing device (source device for transfers).
    pub device: u32,
    /// Op kind tag: "gemm", "compute", "transfer", "host_in", "host_out".
    pub kind: String,
    /// Start cycle.
    pub start: u64,
    /// End cycle.
    pub end: u64,
}

/// One link reservation train.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservationDump {
    /// Link index in the topology's cable table.
    pub link: u32,
    /// Transmitting TSP.
    pub from: u32,
    /// First occupied cycle.
    pub start: u64,
    /// Flits in the train.
    pub vectors: u64,
    /// Transfer id.
    pub transfer: u32,
    /// Hop index.
    pub hop: u8,
}

/// A full schedule snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleDump {
    /// Total span in cycles (the latency estimate).
    pub span_cycles: u64,
    /// Scheduled operations, in graph order.
    pub ops: Vec<OpDump>,
    /// Link reservations, in scheduling order.
    pub reservations: Vec<ReservationDump>,
}

impl ScheduleDump {
    /// Snapshots a compiled program together with its graph.
    pub fn capture(graph: &Graph, program: &CompiledProgram) -> ScheduleDump {
        let ops = graph
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, n)| OpDump {
                op: i as u32,
                device: n.device.0,
                kind: match n.kind {
                    OpKind::Gemm { .. } => "gemm",
                    OpKind::Compute { .. } => "compute",
                    OpKind::Transfer { .. } => "transfer",
                    OpKind::HostInput { .. } => "host_in",
                    OpKind::HostOutput { .. } => "host_out",
                }
                .to_string(),
                start: program.op_start[i],
                end: program.op_end[i],
            })
            .collect();
        let reservations = program
            .occupancy
            .reservations()
            .iter()
            .map(|r| ReservationDump {
                link: r.link.0,
                from: r.from.0,
                start: r.start,
                vectors: r.vectors,
                transfer: r.transfer,
                hop: r.hop,
            })
            .collect();
        ScheduleDump {
            span_cycles: program.span_cycles,
            ops,
            reservations,
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("dump is plain data")
    }

    /// Parses a JSON snapshot.
    pub fn from_json(s: &str) -> Result<ScheduleDump, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{compile, CompileOptions};
    use tsm_topology::{Topology, TspId};

    fn program() -> (Graph, CompiledProgram) {
        let mut g = Graph::new();
        let a = g
            .add(TspId(0), OpKind::Compute { cycles: 100 }, vec![])
            .unwrap();
        g.add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(1),
                bytes: 64_000,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .unwrap();
        let topo = Topology::single_node();
        let p = compile(&g, &topo, CompileOptions::default()).unwrap();
        (g, p)
    }

    #[test]
    fn dump_roundtrips_through_json() {
        let (g, p) = program();
        let dump = ScheduleDump::capture(&g, &p);
        let json = dump.to_json();
        let back = ScheduleDump::from_json(&json).unwrap();
        assert_eq!(dump, back);
    }

    #[test]
    fn dump_matches_program_timing() {
        let (g, p) = program();
        let dump = ScheduleDump::capture(&g, &p);
        assert_eq!(dump.span_cycles, p.span_cycles);
        assert_eq!(dump.ops.len(), 2);
        assert_eq!(dump.ops[0].kind, "compute");
        assert_eq!(dump.ops[1].kind, "transfer");
        assert_eq!(dump.ops[1].start, p.op_start[1]);
        assert!(!dump.reservations.is_empty());
    }

    #[test]
    fn dump_is_stable_for_identical_programs() {
        let (g1, p1) = program();
        let (g2, p2) = program();
        assert_eq!(
            ScheduleDump::capture(&g1, &p1).to_json(),
            ScheduleDump::capture(&g2, &p2).to_json()
        );
    }
}
