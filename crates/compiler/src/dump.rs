//! Schedule export: a serializable snapshot of a compiled program.
//!
//! Downstream tooling (visualizers, schedule diffing, regression
//! snapshots) consumes the compiler's output as data. The dump carries
//! everything needed to reconstruct a Gantt view: per-op intervals with
//! devices and kinds, and per-link reservation trains.

use crate::graph::{Graph, OpKind};
use crate::schedule::CompiledProgram;
use serde::{Deserialize, Serialize};

/// One scheduled operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpDump {
    /// Graph op index.
    pub op: u32,
    /// Executing device (source device for transfers).
    pub device: u32,
    /// Op kind tag: "gemm", "compute", "transfer", "host_in", "host_out".
    pub kind: String,
    /// Start cycle.
    pub start: u64,
    /// End cycle.
    pub end: u64,
}

/// One link reservation train.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservationDump {
    /// Link index in the topology's cable table.
    pub link: u32,
    /// Transmitting TSP.
    pub from: u32,
    /// First occupied cycle.
    pub start: u64,
    /// Flits in the train.
    pub vectors: u64,
    /// Transfer id.
    pub transfer: u32,
    /// Hop index.
    pub hop: u8,
}

/// A full schedule snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleDump {
    /// Total span in cycles (the latency estimate).
    pub span_cycles: u64,
    /// Scheduled operations, in graph order.
    pub ops: Vec<OpDump>,
    /// Link reservations, in scheduling order.
    pub reservations: Vec<ReservationDump>,
}

impl ScheduleDump {
    /// Snapshots a compiled program together with its graph.
    pub fn capture(graph: &Graph, program: &CompiledProgram) -> ScheduleDump {
        let ops = graph
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, n)| OpDump {
                op: i as u32,
                device: n.device.0,
                kind: match n.kind {
                    OpKind::Gemm { .. } => "gemm",
                    OpKind::Compute { .. } => "compute",
                    OpKind::Transfer { .. } => "transfer",
                    OpKind::HostInput { .. } => "host_in",
                    OpKind::HostOutput { .. } => "host_out",
                }
                .to_string(),
                start: program.op_start[i],
                end: program.op_end[i],
            })
            .collect();
        let reservations = program
            .occupancy
            .reservations()
            .iter()
            .map(|r| ReservationDump {
                link: r.link.0,
                from: r.from.0,
                start: r.start,
                vectors: r.vectors,
                transfer: r.transfer,
                hop: r.hop,
            })
            .collect();
        ScheduleDump {
            span_cycles: program.span_cycles,
            ops,
            reservations,
        }
    }

    /// Serializes to pretty JSON.
    ///
    /// Hand-rolled emitter (the offline toolchain stubs serde_json): the
    /// output is deterministic — field order fixed, strings escaped via
    /// [`tsm_trace::escape_json`] — so snapshots diff cleanly across
    /// processes.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"span_cycles\": {},\n", self.span_cycles));
        s.push_str("  \"ops\": [");
        for (i, op) in self.ops.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"op\": {}, \"device\": {}, \"kind\": \"{}\", \"start\": {}, \"end\": {}}}",
                op.op,
                op.device,
                tsm_trace::escape_json(&op.kind),
                op.start,
                op.end
            ));
        }
        s.push_str(if self.ops.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"reservations\": [");
        for (i, r) in self.reservations.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"link\": {}, \"from\": {}, \"start\": {}, \"vectors\": {}, \
                 \"transfer\": {}, \"hop\": {}}}",
                r.link, r.from, r.start, r.vectors, r.transfer, r.hop
            ));
        }
        s.push_str(if self.reservations.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        s.push('}');
        s
    }

    /// Parses a JSON snapshot previously produced by
    /// [`ScheduleDump::to_json`]. Field order is not significant; unknown
    /// keys are rejected with a descriptive error.
    pub fn from_json(s: &str) -> Result<ScheduleDump, String> {
        parse::schedule_dump(s)
    }
}

/// A minimal recursive-descent parser for the dump's fixed schema,
/// built on the workspace-shared [`tsm_trace::Cursor`] combinators (the
/// offline toolchain stubs serde_json, so the round trip is hand-rolled
/// against the same escaping rules the emitter uses).
mod parse {
    use super::{OpDump, ReservationDump, ScheduleDump};
    use tsm_trace::Cursor;

    pub(super) fn schedule_dump(s: &str) -> Result<ScheduleDump, String> {
        let mut c = Cursor::new(s);
        let mut dump = ScheduleDump {
            span_cycles: 0,
            ops: Vec::new(),
            reservations: Vec::new(),
        };
        c.object(|c, key| match key {
            "span_cycles" => {
                dump.span_cycles = c.u64()?;
                Ok(())
            }
            "ops" => c.array(|c| {
                let mut op = OpDump {
                    op: 0,
                    device: 0,
                    kind: String::new(),
                    start: 0,
                    end: 0,
                };
                c.object(|c, key| {
                    match key {
                        "op" => op.op = c.u64()? as u32,
                        "device" => op.device = c.u64()? as u32,
                        "kind" => op.kind = c.string()?,
                        "start" => op.start = c.u64()?,
                        "end" => op.end = c.u64()?,
                        other => return Err(format!("unknown op field {other:?}")),
                    }
                    Ok(())
                })?;
                dump.ops.push(op);
                Ok(())
            }),
            "reservations" => c.array(|c| {
                let mut r = ReservationDump {
                    link: 0,
                    from: 0,
                    start: 0,
                    vectors: 0,
                    transfer: 0,
                    hop: 0,
                };
                c.object(|c, key| {
                    match key {
                        "link" => r.link = c.u64()? as u32,
                        "from" => r.from = c.u64()? as u32,
                        "start" => r.start = c.u64()?,
                        "vectors" => r.vectors = c.u64()?,
                        "transfer" => r.transfer = c.u64()? as u32,
                        "hop" => r.hop = c.u64()? as u8,
                        other => return Err(format!("unknown reservation field {other:?}")),
                    }
                    Ok(())
                })?;
                dump.reservations.push(r);
                Ok(())
            }),
            other => Err(format!("unknown field {other:?}")),
        })?;
        c.expect_end()?;
        Ok(dump)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{compile, CompileOptions};
    use tsm_topology::{Topology, TspId};

    fn program() -> (Graph, CompiledProgram) {
        let mut g = Graph::new();
        let a = g
            .add(TspId(0), OpKind::Compute { cycles: 100 }, vec![])
            .unwrap();
        g.add(
            TspId(0),
            OpKind::Transfer {
                to: TspId(1),
                bytes: 64_000,
                allow_nonminimal: true,
            },
            vec![a],
        )
        .unwrap();
        let topo = Topology::single_node();
        let p = compile(&g, &topo, CompileOptions::default()).unwrap();
        (g, p)
    }

    #[test]
    fn dump_roundtrips_through_json() {
        let (g, p) = program();
        let dump = ScheduleDump::capture(&g, &p);
        let json = dump.to_json();
        let back = ScheduleDump::from_json(&json).unwrap();
        assert_eq!(dump, back);
    }

    #[test]
    fn dump_matches_program_timing() {
        let (g, p) = program();
        let dump = ScheduleDump::capture(&g, &p);
        assert_eq!(dump.span_cycles, p.span_cycles);
        assert_eq!(dump.ops.len(), 2);
        assert_eq!(dump.ops[0].kind, "compute");
        assert_eq!(dump.ops[1].kind, "transfer");
        assert_eq!(dump.ops[1].start, p.op_start[1]);
        assert!(!dump.reservations.is_empty());
    }

    /// The hand-rolled emitter/parser pair survives a kind string
    /// carrying every structurally dangerous JSON character.
    #[test]
    fn dump_roundtrips_hostile_strings() {
        let dump = ScheduleDump {
            span_cycles: 7,
            ops: vec![OpDump {
                op: 0,
                device: 3,
                kind: "ev\"il\\kind\nwith\tnasties\u{0001}".to_string(),
                start: 1,
                end: 2,
            }],
            reservations: vec![],
        };
        let back = ScheduleDump::from_json(&dump.to_json()).unwrap();
        assert_eq!(dump, back);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(ScheduleDump::from_json("").is_err());
        assert!(ScheduleDump::from_json("{\"span_cycles\": 1").is_err());
        assert!(ScheduleDump::from_json("{\"bogus\": 1}").is_err());
        assert!(ScheduleDump::from_json("{\"span_cycles\": 1} trailing").is_err());
    }

    #[test]
    fn dump_is_stable_for_identical_programs() {
        let (g1, p1) = program();
        let (g2, p2) = program();
        assert_eq!(
            ScheduleDump::capture(&g1, &p1).to_json(),
            ScheduleDump::capture(&g2, &p2).to_json()
        );
    }
}
