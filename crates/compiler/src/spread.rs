//! The minimal vs non-minimal routing decision (paper §4.3, Fig 10).
//!
//! "We use the tensor's physical data volume … as the data volume being
//! communicated, and based on the tensor size we select the number of
//! links to spread the traffic across." A non-minimal path adds pipeline
//! fill latency (extra hops) but adds serialization bandwidth; the
//! crossover lands around 8 KB for intra-node transfers (Fig 10).

use tsm_isa::vector::vectors_for_bytes;
use tsm_net::ssn::{path_fill_latency, vector_slot_cycles, waterfill};
use tsm_topology::route::{edge_disjoint_paths, Path};
use tsm_topology::{Topology, TopologyError, TspId};

/// Predicted completion time (cycles, from a cold network) of spreading
/// `message_bytes` across the given paths.
pub fn predicted_completion(topo: &Topology, paths: &[Path], message_bytes: u64) -> u64 {
    assert!(!paths.is_empty());
    let slot = vector_slot_cycles();
    let vectors = vectors_for_bytes(message_bytes);
    let latencies: Vec<u64> = paths.iter().map(|p| path_fill_latency(topo, p)).collect();
    let n = waterfill(&latencies, slot, vectors);
    latencies
        .iter()
        .zip(&n)
        .map(|(&lat, &k)| if k == 0 { 0 } else { lat + (k - 1) * slot })
        .max()
        .unwrap_or(0)
}

/// Chooses the paths a transfer should use: up to `max_paths` edge-disjoint
/// paths, truncated to the prefix that actually minimizes the predicted
/// completion time (small tensors stay on the minimal path).
pub fn decide_paths(
    topo: &Topology,
    from: TspId,
    to: TspId,
    bytes: u64,
    max_paths: usize,
) -> Result<Vec<Path>, TopologyError> {
    if from == to {
        return Ok(vec![tsm_topology::route::shortest_path(topo, from, to)?]);
    }
    let all = edge_disjoint_paths(topo, from, to, max_paths.max(1));
    if all.is_empty() {
        return Err(TopologyError::NoRoute { from, to });
    }
    let mut best_k = 1;
    let mut best_t = predicted_completion(topo, &all[..1], bytes);
    for k in 2..=all.len() {
        let t = predicted_completion(topo, &all[..k], bytes);
        if t < best_t {
            best_t = t;
            best_k = k;
        }
    }
    Ok(all[..best_k].to_vec())
}

/// One point of the Fig 10 analysis: the latency ratio of minimal-only
/// routing to optimally spread routing over `n_paths` total paths
/// (1 minimal + `n_paths − 1` non-minimal) for a message of `bytes`.
/// Values > 1 mean non-minimal routing wins.
pub fn nonminimal_benefit(
    topo: &Topology,
    from: TspId,
    to: TspId,
    bytes: u64,
    n_paths: usize,
) -> f64 {
    let all = edge_disjoint_paths(topo, from, to, n_paths);
    let minimal = predicted_completion(topo, &all[..1], bytes);
    let spread = predicted_completion(topo, &all, bytes);
    minimal as f64 / spread as f64
}

/// The message size (bytes) at which spreading over `n_paths` first beats
/// minimal-only routing, found by doubling search — the Fig 10 crossover.
pub fn crossover_bytes(topo: &Topology, from: TspId, to: TspId, n_paths: usize) -> u64 {
    let mut lo = 320u64;
    // find an upper bound where benefit > 1
    let mut hi = lo;
    while nonminimal_benefit(topo, from, to, hi, n_paths) <= 1.0 {
        hi *= 2;
        if hi > 1 << 30 {
            return hi; // no crossover below 1 GiB (shouldn't happen intra-node)
        }
    }
    while lo + 320 < hi {
        let mid = (lo + hi) / 2 / 320 * 320;
        if nonminimal_benefit(topo, from, to, mid.max(320), n_paths) > 1.0 {
            hi = mid.max(320);
        } else {
            lo = mid.max(320);
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_topology::Topology;

    fn node() -> Topology {
        Topology::single_node()
    }

    #[test]
    fn small_messages_use_one_path() {
        let topo = node();
        let paths = decide_paths(&topo, TspId(0), TspId(1), 1024, 7).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].hops(), 1);
    }

    #[test]
    fn large_messages_spread_across_all_paths() {
        let topo = node();
        let paths = decide_paths(&topo, TspId(0), TspId(1), 1 << 20, 7).unwrap();
        assert_eq!(paths.len(), 7, "1 MiB should use every edge-disjoint path");
    }

    #[test]
    fn benefit_grows_with_message_size() {
        // Fig 10: "for larger message sizes, the benefit of non-minimal
        // routing gradually increases".
        let topo = node();
        let b8k = nonminimal_benefit(&topo, TspId(0), TspId(1), 8 << 10, 7);
        let b64k = nonminimal_benefit(&topo, TspId(0), TspId(1), 64 << 10, 7);
        let b1m = nonminimal_benefit(&topo, TspId(0), TspId(1), 1 << 20, 7);
        assert!(b64k > b8k, "{b64k} vs {b8k}");
        assert!(b1m > b64k, "{b1m} vs {b64k}");
        // asymptotically approaches the path-count speedup
        assert!(b1m > 5.0 && b1m <= 7.0, "{b1m}");
    }

    #[test]
    fn more_paths_help_more_at_large_sizes() {
        // Fig 10: "the benefit of more bandwidth (or more non-minimal
        // paths) provide higher benefit for larger message size".
        let topo = node();
        let big = 4 << 20;
        let b3 = nonminimal_benefit(&topo, TspId(0), TspId(1), big, 3);
        let b5 = nonminimal_benefit(&topo, TspId(0), TspId(1), big, 5);
        let b7 = nonminimal_benefit(&topo, TspId(0), TspId(1), big, 7);
        assert!(b3 < b5 && b5 < b7, "{b3} {b5} {b7}");
    }

    #[test]
    fn no_benefit_below_crossover() {
        // Fig 10: "for a message size smaller than 8kB, there is no benefit
        // of non-minimal routing".
        let topo = node();
        for bytes in [320u64, 1024, 4096] {
            let b = nonminimal_benefit(&topo, TspId(0), TspId(1), bytes, 7);
            assert!(b <= 1.0, "{bytes} B: benefit {b}");
        }
    }

    #[test]
    fn crossover_is_in_the_single_digit_kb_range() {
        // Our link timing puts the crossover near the paper's ~8 KB.
        let topo = node();
        let x = crossover_bytes(&topo, TspId(0), TspId(1), 7);
        assert!((2 << 10..16 << 10).contains(&x), "crossover {x} B");
    }

    #[test]
    fn self_transfer_decides_trivially() {
        let topo = node();
        let paths = decide_paths(&topo, TspId(3), TspId(3), 1 << 20, 7).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].hops(), 0);
    }

    #[test]
    fn predicted_completion_matches_scheduled_completion() {
        // The prediction must agree with what LinkOccupancy actually books
        // on a cold network — the estimate *is* the schedule.
        use tsm_net::ssn::{completion, LinkOccupancy};
        let topo = node();
        let paths = edge_disjoint_paths(&topo, TspId(0), TspId(1), 7);
        let bytes = 256 << 10;
        let predicted = predicted_completion(&topo, &paths, bytes);
        let mut occ = LinkOccupancy::new();
        let shards = occ
            .schedule_spread(&topo, &paths, tsm_isa::vector::vectors_for_bytes(bytes), 0)
            .unwrap();
        assert_eq!(predicted, completion(&shards));
    }
}
