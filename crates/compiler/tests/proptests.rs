//! Property-based tests for partitioning and scheduling.

// In offline dev environments the proptest stub's `proptest!` macro
// expands to nothing, making the helpers and imports below look unused;
// the real proptest uses all of them.
#![allow(dead_code, unused_imports)]

use proptest::prelude::*;
use tsm_chip::mxm::GemmShape;
use tsm_compiler::balance::{partition_stages, LayerCost};
use tsm_compiler::graph::{Graph, OpKind};
use tsm_compiler::partition::{column_split, row_split};
use tsm_compiler::schedule::{compile, CompileOptions, OptLevel};
use tsm_isa::ElemType;
use tsm_net::ssn::validate;
use tsm_topology::{Topology, TspId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Splits conserve FLOPs and dimensions for every shape and count.
    #[test]
    fn splits_conserve(m in 1u64..2000, n in 1u64..2000, l in 1u64..2000, x in 1u64..16) {
        let shape = GemmShape::new(m, n, l);
        if x <= l {
            let cols = column_split(shape, x);
            prop_assert_eq!(cols.iter().map(|c| c.l).sum::<u64>(), l);
            prop_assert_eq!(cols.iter().map(|c| c.flops()).sum::<u64>(), shape.flops());
            prop_assert!(cols.iter().all(|c| c.m == m && c.n == n));
        }
        if x <= n {
            let rows = row_split(shape, x);
            prop_assert_eq!(rows.iter().map(|r| r.n).sum::<u64>(), n);
            prop_assert_eq!(rows.iter().map(|r| r.flops()).sum::<u64>(), shape.flops());
        }
    }

    /// Compilation of random chain graphs: dependencies respected, span
    /// equals the max op end, network schedule validates, and the
    /// spatial-aware schedule is never slower than the FLOPs-only one.
    #[test]
    fn random_chains_compile_correctly(
        ops in prop::collection::vec((0u32..8, 0u64..50_000, prop::bool::ANY), 1..25),
    ) {
        let topo = Topology::single_node();
        let build = || {
            let mut g = Graph::new();
            let mut prev = None;
            for &(dev, size, is_transfer) in &ops {
                let deps: Vec<_> = prev.into_iter().collect();
                let kind = if is_transfer {
                    OpKind::Transfer {
                        to: TspId((dev + 1) % 8),
                        bytes: size + 1,
                        allow_nonminimal: true,
                    }
                } else {
                    OpKind::Compute { cycles: size }
                };
                prev = Some(g.add(TspId(dev), kind, deps).unwrap());
            }
            g
        };
        let g = build();
        let fast = compile(&g, &topo, CompileOptions::default()).unwrap();
        let slow = compile(
            &g,
            &topo,
            CompileOptions { opt: OptLevel::FlopsOnly, max_spread_paths: 7 },
        )
        .unwrap();
        prop_assert!(validate(fast.occupancy.reservations()).is_ok());
        // dependencies respected
        for (i, node) in g.nodes().iter().enumerate() {
            for d in &node.deps {
                prop_assert!(fast.op_start[i] >= fast.op_end[d.index()]);
            }
        }
        prop_assert_eq!(fast.span_cycles, *fast.op_end.iter().max().unwrap());
        prop_assert!(fast.span_cycles <= slow.span_cycles);
    }

    /// Stage partition covers all layers exactly once, and its beat is a
    /// true upper bound on every stage's cost.
    #[test]
    fn stage_partition_covers(
        costs in prop::collection::vec((1u64..1_000_000, 0u64..5_000_000), 2..40),
        stages in 1usize..8,
    ) {
        let layers: Vec<LayerCost> = costs
            .iter()
            .map(|&(c, a)| LayerCost { compute_cycles: c, movement_cycles: c / 10, activation_bytes: a })
            .collect();
        prop_assume!(stages <= layers.len());
        let plan = partition_stages(&layers, stages, OptLevel::SpatialAware);
        let ranges = plan.ranges(layers.len());
        prop_assert_eq!(ranges.len(), stages);
        prop_assert_eq!(ranges[0].0, 0);
        prop_assert_eq!(ranges.last().unwrap().1, layers.len());
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0, "stages must tile the layer range");
        }
        for (s, &(lo, hi)) in ranges.iter().enumerate() {
            prop_assert!(lo < hi, "no empty stages");
            let cost = tsm_compiler::balance::stage_cost(
                &layers, lo, hi, s + 1 == stages, OptLevel::SpatialAware,
            );
            prop_assert!(cost <= plan.beat_cycles);
        }
    }

    /// GEMM utilization is always in (0, 1] and cycles cover the work.
    #[test]
    fn gemm_model_bounds(m in 1u64..5000, n in 1u64..5000, l in 1u64..5000) {
        let t = tsm_chip::mxm::gemm_timing(GemmShape::new(m, n, l), ElemType::F16);
        prop_assert!(t.utilization > 0.0 && t.utilization <= 1.0);
        prop_assert!(t.cycles >= 1);
        // cycles x peak >= useful flops
        let spec = tsm_chip::ChipSpec::production();
        let capacity = t.cycles as f64 * spec.peak_flops_per_cycle(ElemType::F16);
        prop_assert!(capacity >= GemmShape::new(m, n, l).flops() as f64 * 0.999);
    }
}
