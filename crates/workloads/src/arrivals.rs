//! Virtual-time open-loop arrival processes for the serving runtime.
//!
//! Serving tail latency only means something under *open-loop* load — the
//! offered traffic must not slow down when the server backs up (the
//! closed-loop fallacy). These generators emit arrival timelines in pure
//! virtual cycles from a seeded RNG: no wall clock anywhere, so a sweep
//! point is bit-reproducible from `(seed, rate, horizon)`.
//!
//! Interarrival gaps are exponential (a Poisson process), discretized by
//! `ceil` and clamped to ≥ 1 cycle so time always advances.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One arrival of an open-loop process, in virtual cycles. Carries the
/// serving-frontend identity fields so a generated timeline can be handed
/// to a server without re-tagging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalEvent {
    /// Arrival cycle.
    pub at: u64,
    /// Tenant the arrival belongs to.
    pub tenant: u32,
    /// Priority class; lower is more urgent.
    pub priority: u8,
    /// Cycles after arrival by which the tenant wants the answer.
    pub deadline_slack: u64,
}

/// A Poisson arrival stream over `[0, horizon)` with mean rate
/// `rate_per_cycle` (arrivals per cycle; e.g. `1e-6` is one request per
/// million cycles on average). Deterministic in `seed`.
///
/// All arrivals carry `tenant`/`priority`/`deadline_slack` verbatim; use
/// [`merge`] to interleave several tenants' streams.
pub fn poisson_arrivals(
    seed: u64,
    rate_per_cycle: f64,
    horizon: u64,
    tenant: u32,
    priority: u8,
    deadline_slack: u64,
) -> Vec<ArrivalEvent> {
    poisson_arrivals_in(
        seed,
        rate_per_cycle,
        0,
        horizon,
        tenant,
        priority,
        deadline_slack,
    )
}

/// [`poisson_arrivals`] over the window `[from, to)` — the burst-scenario
/// building block (a quiet tenant that suddenly floods one interval).
#[allow(clippy::too_many_arguments)]
pub fn poisson_arrivals_in(
    seed: u64,
    rate_per_cycle: f64,
    from: u64,
    to: u64,
    tenant: u32,
    priority: u8,
    deadline_slack: u64,
) -> Vec<ArrivalEvent> {
    assert!(
        rate_per_cycle > 0.0 && rate_per_cycle.is_finite(),
        "arrival rate must be positive and finite"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut t = from;
    loop {
        // Exponential interarrival via inverse transform; ceil + clamp
        // keeps virtual time integral and strictly advancing.
        let u: f64 = rng.gen();
        let gap = (-(1.0 - u).ln() / rate_per_cycle).ceil().max(1.0);
        if gap > (to.saturating_sub(t)) as f64 {
            break;
        }
        t += gap as u64;
        if t >= to {
            break;
        }
        out.push(ArrivalEvent {
            at: t,
            tenant,
            priority,
            deadline_slack,
        });
    }
    out
}

/// Merges arrival streams into one timeline ordered by cycle, stable
/// across streams (earlier input stream first on ties) — so the merged
/// order, and everything downstream of it, is deterministic.
pub fn merge(streams: &[Vec<ArrivalEvent>]) -> Vec<ArrivalEvent> {
    let mut all: Vec<ArrivalEvent> = streams.iter().flatten().copied().collect();
    all.sort_by_key(|e| e.at);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_seed_deterministic_and_in_window() {
        let a = poisson_arrivals(7, 1e-3, 100_000, 0, 1, 10_000);
        let b = poisson_arrivals(7, 1e-3, 100_000, 0, 1, 10_000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|e| e.at < 100_000));
        assert!(
            a.windows(2).all(|w| w[0].at < w[1].at),
            "strictly advancing"
        );
        let c = poisson_arrivals(8, 1e-3, 100_000, 0, 1, 10_000);
        assert_ne!(a, c, "different seed, different process");
    }

    #[test]
    fn mean_rate_is_roughly_honored() {
        // λ = 1/1000 over 1M cycles ⇒ ~1000 arrivals; allow wide slack.
        let a = poisson_arrivals(42, 1e-3, 1_000_000, 0, 1, 0);
        assert!(
            (500..2000).contains(&a.len()),
            "got {} arrivals for expected ~1000",
            a.len()
        );
    }

    #[test]
    fn windowed_burst_stays_in_its_window() {
        let burst = poisson_arrivals_in(3, 1e-2, 5_000, 6_000, 9, 2, 0);
        assert!(!burst.is_empty());
        assert!(burst.iter().all(|e| e.at > 5_000 && e.at < 6_000));
        assert!(burst.iter().all(|e| (e.tenant, e.priority) == (9, 2)));
    }

    #[test]
    fn merge_orders_by_cycle_stably() {
        let a = vec![
            ArrivalEvent {
                at: 10,
                tenant: 0,
                priority: 0,
                deadline_slack: 0,
            },
            ArrivalEvent {
                at: 30,
                tenant: 0,
                priority: 0,
                deadline_slack: 0,
            },
        ];
        let b = vec![
            ArrivalEvent {
                at: 10,
                tenant: 1,
                priority: 0,
                deadline_slack: 0,
            },
            ArrivalEvent {
                at: 20,
                tenant: 1,
                priority: 0,
                deadline_slack: 0,
            },
        ];
        let merged = merge(&[a, b]);
        let tenants: Vec<u32> = merged.iter().map(|e| e.tenant).collect();
        // tie at cycle 10 keeps stream order (tenant 0 first)
        assert_eq!(tenants, vec![0, 1, 1, 0]);
        assert!(merged.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
