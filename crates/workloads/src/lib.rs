//! The paper's evaluation workloads (§5): distributed matrix
//! multiplication, BERT transformer inference, all-reduce collectives, and
//! Cholesky factorization.
//!
//! Each workload module produces two artifacts:
//!
//! 1. a *computation graph* (`tsm-compiler`'s IR) or analytic plan that the
//!    scheduler turns into a cycle-exact program, and
//! 2. a *numerical reference* (in [`linalg`]) so data-path correctness can
//!    be asserted, not just timing.

pub mod arrivals;
pub mod bert;
pub mod cholesky;
pub mod linalg;
pub mod lstm;
pub mod traffic;
pub mod training;

pub use arrivals::{merge as merge_arrivals, poisson_arrivals, poisson_arrivals_in, ArrivalEvent};
pub use bert::{BertConfig, BertVariant};
pub use cholesky::CholeskyPlan;
