//! Cholesky factorization on TSPs (paper §5.5, Fig 19).
//!
//! Cholesky "is difficult to efficiently parallelize due to a loop-carried
//! dependence of a vector-matrix multiplication on the inner-loop": each
//! iteration's update vector must flow through the MXM, then the VXM
//! (subtract, rsqrt, splat, multiply — the kernel quoted in §5.5), and be
//! broadcast, before the next iteration can begin. The matrix is
//! distributed block-cyclically in 320-row blocks (Fig 19(a)/(b)).
//!
//! The timing model follows that algorithm literally: per iteration, the
//! parallelizable vector-matrix MXM work divides across TSPs while the
//! pivot chain (VXM pipeline + gather/broadcast over the node mesh) does
//! not — which is exactly why the measured speedups in Fig 19(c) are far
//! below linear.

use tsm_isa::timing::{cycles_to_seconds, CLOCK_HZ};

/// Rows per distribution block (paper: "block-cyclic distribution of 320
/// rows on each TSP").
pub const BLOCK_ROWS: u64 = 320;

/// VXM pipeline cost of one iteration's pivot chain (subtract → rsqrt →
/// splat → multiply, single fly-by through the chained ALUs).
const PIVOT_CHAIN_CYCLES: u64 = 220;

/// One network hop (722 ns, paper §5.6) in cycles; gathers/broadcasts pay
/// this once per tree level.
const HOP_CYCLES: u64 = 650;

/// A Cholesky execution plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CholeskyPlan {
    /// Matrix dimension `p` (the input is `p × p`).
    pub p: u64,
    /// Participating TSPs.
    pub tsps: u64,
}

impl CholeskyPlan {
    /// Creates a plan.
    ///
    /// # Panics
    /// Panics if `p` or `tsps` is zero.
    pub fn new(p: u64, tsps: u64) -> Self {
        assert!(p > 0 && tsps > 0, "plan dimensions must be nonzero");
        CholeskyPlan { p, tsps }
    }

    /// Useful FLOPs: `p³/3` (paper §5.5).
    pub fn flops(&self) -> u64 {
        self.p * self.p * self.p / 3
    }

    /// Total execution cycles under the per-iteration model.
    pub fn cycles(&self) -> u64 {
        let k = self.tsps;
        let mut total = 0u64;
        for i in 0..self.p {
            let r = self.p - i; // trailing column length
                                // Parallel part: the vector-matrix product generating the
                                // update vector. [r × i]×[i × 1] on the MXM: r·⌈i/160⌉ sub-ops
                                // at 2/cycle, row blocks divided block-cyclically over k TSPs.
            let tiles = i.div_ceil(160).max(1);
            let rows_here = r.div_ceil(k); // worst-owner share
            let mxm = (rows_here * tiles).div_ceil(2);
            // Sequential part: the pivot chain.
            let mut seq = PIVOT_CHAIN_CYCLES;
            if k > 1 {
                // Gather partial products (log₂k reduction tree) and
                // broadcast the update column (one hop; peers are directly
                // connected in the node mesh), plus serialization of the
                // 2r-byte FP16 column.
                let tree = (k as f64).log2().ceil() as u64;
                let column_vectors = (2 * r).div_ceil(320);
                seq += tree * HOP_CYCLES + HOP_CYCLES + column_vectors * 24 / k;
            }
            total += mxm + seq;
        }
        total
    }

    /// Wall-clock seconds.
    pub fn seconds(&self) -> f64 {
        cycles_to_seconds(self.cycles())
    }

    /// Realized FP16 TFLOPs.
    pub fn tflops(&self) -> f64 {
        self.flops() as f64 / self.seconds() / 1e12
    }

    /// Speedup over the single-TSP plan at the same size.
    pub fn speedup(&self) -> f64 {
        CholeskyPlan::new(self.p, 1).seconds() / self.seconds()
    }

    /// Which TSP owns row-block `b` under the block-cyclic distribution.
    pub fn block_owner(&self, block: u64) -> u64 {
        block % self.tsps
    }

    /// Row-blocks owned by TSP `t`.
    pub fn blocks_of(&self, t: u64) -> Vec<u64> {
        let total_blocks = self.p.div_ceil(BLOCK_ROWS);
        (0..total_blocks).filter(|b| b % self.tsps == t).collect()
    }
}

/// The Fig 19(c) sweep: execution time vs problem size for each TSP count.
pub fn fig19_sweep(sizes: &[u64], tsp_counts: &[u64]) -> Vec<(u64, u64, f64)> {
    let mut out = Vec::new();
    for &p in sizes {
        for &k in tsp_counts {
            out.push((p, k, CholeskyPlan::new(p, k).seconds()));
        }
    }
    out
}

/// Cycles-per-second sanity anchor for doc examples.
pub fn clock_hz() -> u64 {
    CLOCK_HZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_are_p_cubed_over_three() {
        assert_eq!(CholeskyPlan::new(300, 1).flops(), 9_000_000);
    }

    #[test]
    fn block_cyclic_distribution() {
        let plan = CholeskyPlan::new(3200, 4);
        // 10 blocks of 320 rows, dealt round-robin to 4 TSPs
        assert_eq!(plan.blocks_of(0), vec![0, 4, 8]);
        assert_eq!(plan.blocks_of(1), vec![1, 5, 9]);
        assert_eq!(plan.blocks_of(3), vec![3, 7]);
        assert_eq!(plan.block_owner(7), 3);
    }

    #[test]
    fn speedups_are_sublinear_and_diminishing() {
        // Fig 19(c): "a net speedup of 1.2×, 1.4×, and 1.5× for 2, 4, and
        // 8 TSPs" — strongly sublinear with diminishing returns. Our model
        // reproduces the shape; see EXPERIMENTS.md for measured values.
        let p = 4096;
        let s2 = CholeskyPlan::new(p, 2).speedup();
        let s4 = CholeskyPlan::new(p, 4).speedup();
        let s8 = CholeskyPlan::new(p, 8).speedup();
        assert!(s2 > 1.0 && s4 > s2 && s8 > s4, "{s2} {s4} {s8}");
        assert!(s8 < 4.0, "speedup must stay far from linear: {s8}");
        assert!(s2 < 2.0, "{s2}");
    }

    #[test]
    fn small_problems_do_not_benefit_from_more_tsps() {
        // Below a crossover the per-iteration communication dominates and
        // extra TSPs hurt — the reason Fig 19(c) starts its curves at
        // moderate sizes.
        let s = CholeskyPlan::new(512, 8).speedup();
        assert!(s < 1.0, "512×512 over 8 TSPs should slow down, got {s}");
    }

    #[test]
    fn execution_time_grows_cubically_on_one_tsp() {
        // On one TSP the O(p³) MXM work dominates; multi-TSP runs flatten
        // toward the O(p) per-iteration pivot chain, which is the whole
        // point of Fig 19(c)'s sublinear curves.
        let t1 = CholeskyPlan::new(2048, 1).seconds();
        let t2 = CholeskyPlan::new(4096, 1).seconds();
        let ratio = t2 / t1;
        assert!(
            ratio > 5.0 && ratio < 9.0,
            "doubling p should ~7x time, got {ratio}"
        );
    }

    #[test]
    fn multi_tsp_tflops_improve_with_scale() {
        // Paper: "good scaling from 14.9 FP16 TFlops on 4 TSPs to 22.4 ...
        // on 8 TSPs" (ratio 1.5). Our 4→8 ratio at large p lands in the
        // same 1.1–1.6 band.
        let p = 8192;
        let t4 = CholeskyPlan::new(p, 4).tflops();
        let t8 = CholeskyPlan::new(p, 8).tflops();
        let ratio = t8 / t4;
        assert!(ratio > 1.1 && ratio < 1.7, "4->8 TSP TFlops ratio {ratio}");
    }

    #[test]
    fn sweep_covers_grid() {
        let rows = fig19_sweep(&[1024, 2048], &[1, 2, 4, 8]);
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|&(_, _, s)| s > 0.0));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_plan_rejected() {
        let _ = CholeskyPlan::new(0, 1);
    }
}
