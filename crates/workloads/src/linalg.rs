//! Dense linear-algebra references.
//!
//! Small, obviously correct f64 implementations used to validate the
//! workload kernels (the TSP executes the same math through its VXM/MXM
//! models; these are the oracles).

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major data, `rows × cols`.
    pub data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += a * other.get(k, c);
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Horizontal concatenation (the column-split recomposition of §5.2).
    pub fn hcat(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty());
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows));
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut base = 0;
        for p in parts {
            for r in 0..rows {
                for c in 0..p.cols {
                    out.set(r, base + c, p.get(r, c));
                }
            }
            base += p.cols;
        }
        out
    }

    /// Column slice `[lo, hi)`.
    pub fn col_slice(&self, lo: usize, hi: usize) -> Matrix {
        Matrix::from_fn(self.rows, hi - lo, |r, c| self.get(r, lo + c))
    }

    /// Row slice `[lo, hi)`.
    pub fn row_slice(&self, lo: usize, hi: usize) -> Matrix {
        Matrix::from_fn(hi - lo, self.cols, |r, c| self.get(lo + r, c))
    }

    /// Maximum absolute element difference.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// A symmetric positive-definite test matrix (diagonally dominant).
    pub fn spd(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| {
            if r == c {
                n as f64 + 1.0
            } else {
                1.0 / (1.0 + (r as f64 - c as f64).abs())
            }
        })
    }
}

/// Reference Cholesky factorization: returns lower-triangular `L` with
/// `L·Lᵀ = A`.
///
/// # Panics
/// Panics if `a` is not square or not positive definite.
pub fn cholesky(a: &Matrix) -> Matrix {
    assert_eq!(a.rows, a.cols, "Cholesky needs a square matrix");
    let n = a.rows;
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                assert!(sum > 0.0, "matrix is not positive definite");
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    l
}

/// Reference all-reduce: element-wise sum of every participant's buffer,
/// returned to all of them.
pub fn allreduce_sum(buffers: &[Vec<f64>]) -> Vec<f64> {
    assert!(!buffers.is_empty());
    let len = buffers[0].len();
    assert!(buffers.iter().all(|b| b.len() == len));
    (0..len)
        .map(|i| buffers.iter().map(|b| b[i]).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let i = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix {
            rows: 2,
            cols: 2,
            data: vec![1.0, 2.0, 3.0, 4.0],
        };
        let b = Matrix {
            rows: 2,
            cols: 2,
            data: vec![5.0, 6.0, 7.0, 8.0],
        };
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn column_split_matmul_equals_whole() {
        // The §5.2 column-wise weight split: concatenating the partial
        // results reproduces the full product exactly.
        let a = Matrix::from_fn(4, 6, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(6, 9, |r, c| (r as f64 - c as f64) * 0.5);
        let full = a.matmul(&b);
        let parts: Vec<Matrix> = [(0, 3), (3, 6), (6, 9)]
            .iter()
            .map(|&(lo, hi)| a.matmul(&b.col_slice(lo, hi)))
            .collect();
        let recomposed = Matrix::hcat(&parts);
        assert!(full.max_abs_diff(&recomposed) < 1e-12);
    }

    #[test]
    fn row_split_matmul_sums_partials() {
        // The §5.2 row-wise weight split: partial products sum to the full
        // product.
        let a = Matrix::from_fn(4, 6, |r, c| (r * 7 + c) as f64 * 0.25);
        let b = Matrix::from_fn(6, 5, |r, c| 1.0 / (1 + r + c) as f64);
        let full = a.matmul(&b);
        let p1 = a.col_slice(0, 3).matmul(&b.row_slice(0, 3));
        let p2 = a.col_slice(3, 6).matmul(&b.row_slice(3, 6));
        assert!(full.max_abs_diff(&p1.add(&p2)) < 1e-12);
    }

    #[test]
    fn cholesky_reconstructs_spd_matrix() {
        let a = Matrix::spd(12);
        let l = cholesky(&a);
        let reconstructed = l.matmul(&l.transpose());
        assert!(a.max_abs_diff(&reconstructed) < 1e-9);
        // lower triangular
        for r in 0..12 {
            for c in (r + 1)..12 {
                assert_eq!(l.get(r, c), 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive definite")]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_fn(2, 2, |r, c| if r == c { -1.0 } else { 0.0 });
        let _ = cholesky(&a);
    }

    #[test]
    fn allreduce_sums_elementwise() {
        let out = allreduce_sum(&[vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]]);
        assert_eq!(out, vec![111.0, 222.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }
}
