//! LSTM / sequence-to-sequence workloads.
//!
//! Paper §5: "The matrix-matrix, vector-matrix, and matrix transpose
//! operations are representative of and commonly used by many machine
//! learning models, like sequence-to-sequence models (e.g. LSTMs) and
//! transformers." The LSTM is the *vector-matrix* stress case: at batch 1
//! each time step is a pair of `[1×H]×[H×4H]` products with a loop-carried
//! dependence on `h_{t−1}` — the same structural bottleneck as Cholesky's
//! pivot chain, which is why the TSP's deterministic fine-grained
//! communication matters for it.

use tsm_chip::mxm::{gemm_timing, GemmShape};
use tsm_compiler::balance::LayerCost;
use tsm_compiler::graph::{Graph, OpKind};
use tsm_isa::ElemType;
use tsm_topology::TspId;

/// An LSTM stack configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LstmConfig {
    /// Hidden (and cell) width.
    pub hidden: u64,
    /// Stacked layers.
    pub layers: usize,
    /// Sequence length per inference.
    pub seq_len: u64,
    /// Batch size.
    pub batch: u64,
}

impl LstmConfig {
    /// A representative translation-model stack (4 × 1024, seq 64).
    pub fn translation() -> Self {
        LstmConfig {
            hidden: 1024,
            layers: 4,
            seq_len: 64,
            batch: 1,
        }
    }

    /// The two GEMMs of one time step of one layer: the input projection
    /// `x_t·W` and the recurrent projection `h_{t−1}·U`, each onto the
    /// four stacked gates.
    pub fn step_gemms(&self) -> [GemmShape; 2] {
        [
            GemmShape::new(self.batch, self.hidden, 4 * self.hidden),
            GemmShape::new(self.batch, self.hidden, 4 * self.hidden),
        ]
    }

    /// MXM cycles of one time step of one layer, plus a gate-ALU pass
    /// (sigmoid/tanh/elementwise on the VXM, ~4·H/80 vector ops).
    pub fn step_cycles(&self) -> u64 {
        let mxm: u64 = self
            .step_gemms()
            .iter()
            .map(|&g| gemm_timing(g, ElemType::F16).cycles)
            .sum();
        let vxm = 4 * self.hidden * self.batch / 80 + 16;
        mxm + vxm
    }

    /// Useful FLOPs of one full inference.
    pub fn total_flops(&self) -> u64 {
        let per_step: u64 = self.step_gemms().iter().map(|g| g.flops()).sum();
        per_step * self.layers as u64 * self.seq_len
    }

    /// Bytes of the hidden state passed between stacked layers each step.
    pub fn activation_bytes(&self) -> u64 {
        self.batch * self.hidden * 2
    }

    /// Per-layer cost (one *full sequence* per layer) for the pipeline
    /// balancer: layer-parallel LSTM inference streams the sequence
    /// through the layer pipeline.
    pub fn layer_costs(&self) -> Vec<LayerCost> {
        vec![
            LayerCost {
                compute_cycles: self.step_cycles() * self.seq_len,
                movement_cycles: self.step_cycles() * self.seq_len / 20,
                activation_bytes: self.activation_bytes() * self.seq_len,
            };
            self.layers
        ]
    }

    /// Builds the layer-pipelined inference graph over `n_tsps` devices:
    /// each device runs a contiguous block of layers; every time step's
    /// hidden state crosses to the next device. The per-step transfers are
    /// the fine-grained (2·H-byte ≈ 2 KB) communications that motivate the
    /// low-overhead wire format (paper Fig 11).
    ///
    /// # Panics
    /// Panics unless `n_tsps` divides the layer count.
    pub fn build_pipeline_graph(&self, n_tsps: usize) -> Graph {
        assert!(
            n_tsps >= 1 && self.layers.is_multiple_of(n_tsps),
            "layers must split evenly"
        );
        let per_stage = self.layers / n_tsps;
        let mut g = Graph::new();
        // op handle of the previous step's output per stage (loop-carried)
        let mut stage_state: Vec<Option<tsm_compiler::graph::OpId>> = vec![None; n_tsps];
        for _t in 0..self.seq_len {
            let mut carried = None; // inter-stage activation for this step
            for (stage, state) in stage_state.iter_mut().enumerate() {
                let dev = TspId(stage as u32);
                let mut deps = Vec::new();
                if let Some(prev) = *state {
                    deps.push(prev); // recurrent dependence h_{t-1}
                }
                if let Some(c) = carried {
                    deps.push(c); // this step's input from the stage below
                }
                let compute = g
                    .add(
                        dev,
                        OpKind::Compute {
                            cycles: self.step_cycles() * per_stage as u64,
                        },
                        deps,
                    )
                    .expect("valid deps");
                *state = Some(compute);
                if stage + 1 < n_tsps {
                    carried = Some(
                        g.add(
                            dev,
                            OpKind::Transfer {
                                to: TspId(stage as u32 + 1),
                                bytes: self.activation_bytes(),
                                allow_nonminimal: false,
                            },
                            vec![compute],
                        )
                        .expect("valid deps"),
                    );
                } else {
                    carried = None;
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_compiler::schedule::{compile, CompileOptions};
    use tsm_topology::Topology;

    #[test]
    fn step_flops_match_analytic() {
        let c = LstmConfig::translation();
        // 2 gemms x 2·B·H·4H flops
        let per_step: u64 = c.step_gemms().iter().map(|g| g.flops()).sum();
        assert_eq!(per_step, 2 * 2 * c.batch * c.hidden * 4 * c.hidden);
        assert_eq!(c.total_flops(), per_step * 4 * 64);
    }

    #[test]
    fn batch_one_utilization_is_low() {
        // [1×1024]×[1024×4096]: one row of sub-ops — the MXM runs nearly
        // empty, the known weakness of recurrent nets at batch 1.
        let c = LstmConfig::translation();
        let t = gemm_timing(c.step_gemms()[0], ElemType::F16);
        assert!(t.utilization < 0.01, "{}", t.utilization);
    }

    #[test]
    fn pipeline_graph_compiles_and_respects_recurrence() {
        let c = LstmConfig {
            hidden: 512,
            layers: 4,
            seq_len: 8,
            batch: 1,
        };
        let g = c.build_pipeline_graph(4);
        // per step: 4 computes + 3 transfers
        assert_eq!(g.len(), 8 * (4 + 3));
        let topo = Topology::single_node();
        let p = compile(&g, &topo, CompileOptions::default()).unwrap();
        // The loop-carried dependence serializes steps within a stage:
        // span must cover seq_len steps of one stage's compute.
        assert!(p.span_cycles >= c.step_cycles() * 8);
    }

    #[test]
    fn pipelining_layers_hides_inter_stage_latency() {
        // With 4 stages, steady-state throughput is one step per stage
        // beat; the span should be far below 4x the single-device span.
        let c = LstmConfig {
            hidden: 512,
            layers: 4,
            seq_len: 32,
            batch: 1,
        };
        let topo = Topology::single_node();
        let pipelined = compile(&c.build_pipeline_graph(4), &topo, CompileOptions::default())
            .unwrap()
            .span_cycles;
        let single = compile(&c.build_pipeline_graph(1), &topo, CompileOptions::default())
            .unwrap()
            .span_cycles;
        // single-device: all 4 layers' compute serialize per step
        assert!(
            pipelined < single + c.step_cycles() * 8,
            "pipelined {pipelined} vs single {single}"
        );
    }

    #[test]
    fn fine_grained_transfers_fit_one_wire_packet_budget() {
        // batch-1 hidden state of 1024 fp16 = 2 KB = 7 vectors; the SSN
        // overhead per step transfer is bounded by the fill latency.
        let c = LstmConfig::translation();
        assert_eq!(c.activation_bytes(), 2048);
        assert_eq!(tsm_isa::vector::vectors_for_bytes(c.activation_bytes()), 7);
    }

    #[test]
    #[should_panic(expected = "evenly")]
    fn uneven_layer_split_rejected() {
        let _ = LstmConfig::translation().build_pipeline_graph(3);
    }
}
