//! Data-parallel training (weak scaling).
//!
//! The abstract positions the system for "a variety of workloads, both
//! training and inference", and the intro frames training as *weak
//! scaling*: more replicas process more mini-batches, coupled each step by
//! a gradient all-reduce. The model here composes the MXM timing model
//! (forward + backward ≈ 3× forward FLOPs) with the scheduled hierarchical
//! all-reduce of `tsm-compiler` to produce step times and weak-scaling
//! efficiency.

use crate::bert::BertConfig;
use tsm_compiler::collective::{allreduce_hierarchical, allreduce_intra_node, AllReduceReport};
use tsm_isa::timing::cycles_to_seconds;
use tsm_net::ssn::SsnError;
use tsm_topology::{NodeId, Topology};

/// A data-parallel training configuration: one model replica per TSP.
#[derive(Debug, Clone, Copy)]
pub struct TrainingConfig {
    /// The model being trained.
    pub model: BertConfig,
    /// Mini-batch per replica per step.
    pub local_batch: u64,
}

impl TrainingConfig {
    /// BERT-Large pre-training-style setup.
    pub fn bert_large(local_batch: u64) -> Self {
        TrainingConfig {
            model: BertConfig::large(),
            local_batch,
        }
    }

    /// Trainable parameter bytes (FP16) of the encoder stack: per encoder
    /// 4·H² (Q/K/V/output projections) + 2·H·I (FFN up/down) + 13·H
    /// (biases and layernorm gains), plus a 5 % pad for the pooler-scale
    /// odds and ends.
    pub fn param_bytes(&self) -> u64 {
        let h = self.model.hidden;
        let i = self.model.intermediate;
        let per_encoder = 4 * h * h + 2 * h * i + 13 * h;
        let raw = per_encoder * self.model.encoders as u64 * 2;
        raw + raw / 20
    }

    /// Compute cycles of one training step on one replica: forward plus
    /// backward ≈ 3× the forward pass, times the local batch.
    pub fn step_compute_cycles(&self) -> u64 {
        let fwd: u64 = self.model.encoder_cycles() * self.model.encoders as u64;
        3 * fwd * self.local_batch
    }

    /// One training step on `topo`, gradients all-reduced across every TSP
    /// (intra-node plan for a single node, hierarchical beyond).
    pub fn step(&self, topo: &Topology) -> Result<TrainingStep, SsnError> {
        let comm = if topo.num_nodes() <= 1 {
            allreduce_intra_node(topo, NodeId(0), self.param_bytes())?
        } else {
            allreduce_hierarchical(topo, self.param_bytes())?
        };
        Ok(TrainingStep {
            config: *self,
            replicas: topo.num_tsps(),
            comm,
        })
    }
}

/// One resolved training step.
#[derive(Debug, Clone)]
pub struct TrainingStep {
    /// The configuration.
    pub config: TrainingConfig,
    /// Participating replicas.
    pub replicas: usize,
    /// The gradient all-reduce plan.
    pub comm: AllReduceReport,
}

impl TrainingStep {
    /// Step time with compute and the all-reduce serialized (gradient
    /// exchange after the full backward pass).
    pub fn serialized_seconds(&self) -> f64 {
        cycles_to_seconds(self.config.step_compute_cycles()) + self.comm.seconds
    }

    /// Step time with the all-reduce overlapped behind the backward pass
    /// (bucketed gradient exchange — the data-movement-aware schedule).
    pub fn overlapped_seconds(&self) -> f64 {
        cycles_to_seconds(self.config.step_compute_cycles()).max(self.comm.seconds)
    }

    /// Samples per second across the system (overlapped schedule).
    pub fn throughput(&self) -> f64 {
        self.replicas as f64 * self.config.local_batch as f64 / self.overlapped_seconds()
    }

    /// Weak-scaling efficiency vs an ideal communication-free replica.
    pub fn weak_scaling_efficiency(&self) -> f64 {
        let ideal = cycles_to_seconds(self.config.step_compute_cycles());
        ideal / self.overlapped_seconds()
    }
}

/// Weak-scaling sweep over system sizes, returning
/// `(tsps, samples/s, efficiency)` rows.
pub fn weak_scaling_sweep(
    config: TrainingConfig,
    node_counts: &[usize],
) -> Result<Vec<(usize, f64, f64)>, SsnError> {
    let mut out = Vec::new();
    for &n in node_counts {
        let topo = if n <= 1 {
            Topology::single_node()
        } else {
            Topology::fully_connected_nodes(n).expect("node count in regime")
        };
        let step = config.step(&topo)?;
        out.push((
            topo.num_tsps(),
            step.throughput(),
            step.weak_scaling_efficiency(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_is_bert_large_scale() {
        // BERT-Large ≈ 340 M params ≈ 680 MB fp16; encoder-only (no
        // embeddings) lands at ~300 M.
        let c = TrainingConfig::bert_large(1);
        let params = c.param_bytes() / 2;
        assert!((250_000_000..400_000_000).contains(&params), "{params}");
    }

    #[test]
    fn backward_costs_twice_the_forward() {
        let c = TrainingConfig::bert_large(1);
        let fwd = c.model.encoder_cycles() * c.model.encoders as u64;
        assert_eq!(c.step_compute_cycles(), 3 * fwd);
    }

    #[test]
    fn overlap_never_loses_to_serialization() {
        let c = TrainingConfig::bert_large(4);
        let topo = Topology::single_node();
        let step = c.step(&topo).unwrap();
        assert!(step.overlapped_seconds() <= step.serialized_seconds());
        assert!(step.throughput() > 0.0);
    }

    #[test]
    fn weak_scaling_efficiency_stays_high_then_degrades_gently() {
        // Each added node adds both replicas and links; efficiency falls
        // with the growing all-reduce but stays useful — the weak-scaling
        // claim of the intro.
        let c = TrainingConfig::bert_large(8);
        let rows = weak_scaling_sweep(c, &[1, 2, 4, 8]).unwrap();
        assert_eq!(rows[0].0, 8);
        assert_eq!(rows[3].0, 64);
        // throughput grows with scale
        assert!(rows[3].1 > rows[0].1 * 3.0, "{rows:?}");
        // efficiency is monotone non-increasing and stays above 50%
        for w in rows.windows(2) {
            assert!(w[1].2 <= w[0].2 + 1e-9, "{rows:?}");
        }
        assert!(rows[3].2 > 0.5, "{rows:?}");
    }

    #[test]
    fn bigger_local_batch_amortizes_communication() {
        let topo = Topology::fully_connected_nodes(4).unwrap();
        let small = TrainingConfig::bert_large(1).step(&topo).unwrap();
        let large = TrainingConfig::bert_large(16).step(&topo).unwrap();
        assert!(large.weak_scaling_efficiency() > small.weak_scaling_efficiency());
    }
}
