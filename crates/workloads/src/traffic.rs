//! Synthetic traffic patterns for network experiments.
//!
//! The SSN-vs-dynamic comparisons and the load-balance studies need
//! reproducible offered traffic; these generators emit the classic
//! patterns (uniform random, all-to-all, nearest-neighbor ring, incast)
//! over a topology's endpoints.

use rand::seq::SliceRandom;
use rand::Rng;
use tsm_net::dynamic::OfferedPacket;
use tsm_topology::{Topology, TspId};

/// Uniform-random traffic: `packets` flits, each with independently drawn
/// distinct source/destination, injected at a fixed rate.
pub fn uniform_random<R: Rng>(
    topo: &Topology,
    packets: u32,
    inject_interval: u64,
    rng: &mut R,
) -> Vec<OfferedPacket> {
    let n = topo.num_tsps() as u32;
    assert!(n >= 2);
    (0..packets)
        .map(|id| {
            let src = rng.gen_range(0..n);
            let mut dst = rng.gen_range(0..n - 1);
            if dst >= src {
                dst += 1;
            }
            OfferedPacket {
                id,
                src: TspId(src),
                dst: TspId(dst),
                inject: id as u64 / n as u64 * inject_interval,
            }
        })
        .collect()
}

/// All-to-all: every TSP sends `per_pair` flits to every other TSP, in a
/// deterministic round-robin that staggers injections.
pub fn all_to_all(topo: &Topology, per_pair: u32, inject_interval: u64) -> Vec<OfferedPacket> {
    let n = topo.num_tsps() as u32;
    let mut out = Vec::new();
    let mut id = 0;
    for k in 0..per_pair {
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                out.push(OfferedPacket {
                    id,
                    src: TspId(s),
                    dst: TspId(d),
                    inject: k as u64 * inject_interval,
                });
                id += 1;
            }
        }
    }
    out
}

/// Nearest-neighbor ring: TSP `i` sends to `i+1 (mod n)` — the pipelined
/// model-parallelism pattern (paper §4.4: "efficient nearest-neighbor
/// communication ... for inference using pipelined model parallelism").
pub fn nearest_neighbor(
    topo: &Topology,
    per_source: u32,
    inject_interval: u64,
) -> Vec<OfferedPacket> {
    let n = topo.num_tsps() as u32;
    let mut out = Vec::new();
    let mut id = 0;
    for k in 0..per_source {
        for s in 0..n {
            out.push(OfferedPacket {
                id,
                src: TspId(s),
                dst: TspId((s + 1) % n),
                inject: k as u64 * inject_interval,
            });
            id += 1;
        }
    }
    out
}

/// A random permutation pattern: each source sends to exactly one
/// destination, a derangement drawn from `rng`.
pub fn permutation<R: Rng>(topo: &Topology, per_source: u32, rng: &mut R) -> Vec<OfferedPacket> {
    let n = topo.num_tsps();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    loop {
        perm.shuffle(rng);
        if perm.iter().enumerate().all(|(i, &d)| i as u32 != d) {
            break;
        }
    }
    let mut out = Vec::new();
    let mut id = 0;
    for k in 0..per_source {
        for (s, &d) in perm.iter().enumerate() {
            out.push(OfferedPacket {
                id,
                src: TspId(s as u32),
                dst: TspId(d),
                inject: k as u64 * 24,
            });
            id += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsm_topology::Topology;

    #[test]
    fn uniform_random_has_distinct_endpoints() {
        let topo = Topology::single_node();
        let mut rng = StdRng::seed_from_u64(1);
        for p in uniform_random(&topo, 500, 24, &mut rng) {
            assert_ne!(p.src, p.dst);
            assert!(p.src.index() < 8 && p.dst.index() < 8);
        }
    }

    #[test]
    fn all_to_all_counts() {
        let topo = Topology::single_node();
        let t = all_to_all(&topo, 3, 24);
        assert_eq!(t.len(), 3 * 8 * 7);
    }

    #[test]
    fn nearest_neighbor_wraps() {
        let topo = Topology::single_node();
        let t = nearest_neighbor(&topo, 1, 24);
        assert_eq!(t.len(), 8);
        assert_eq!(t[7].src, TspId(7));
        assert_eq!(t[7].dst, TspId(0));
    }

    #[test]
    fn permutation_is_a_derangement() {
        let topo = Topology::single_node();
        let mut rng = StdRng::seed_from_u64(2);
        let t = permutation(&topo, 1, &mut rng);
        assert_eq!(t.len(), 8);
        let mut dsts: Vec<_> = t.iter().map(|p| p.dst).collect();
        dsts.sort();
        dsts.dedup();
        assert_eq!(dsts.len(), 8, "destinations must be a permutation");
        assert!(t.iter().all(|p| p.src != p.dst));
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let topo = Topology::single_node();
        let a = uniform_random(&topo, 100, 24, &mut StdRng::seed_from_u64(7));
        let b = uniform_random(&topo, 100, 24, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
