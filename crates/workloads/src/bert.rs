//! BERT transformer workloads (paper §5.4, Figs 17–18, 20).
//!
//! The encoder stack is described by its GEMM shapes; everything the
//! scheduler needs (cycles, activation traffic) derives from those. The
//! paper's experiments map onto:
//!
//! * **Fig 17** — BERT-Large (24 encoders) pipelined over 4 TSPs,
//!   SQuAD-shaped inputs over PCIe,
//! * **Fig 18** — stacks of 6/24/48/96 encoders on 1/4/8/16 TSPs
//!   (6 encoders per TSP), realized TOPs scaling linearly,
//! * **Fig 20** — the FLOPs-only vs spatial-aware stage balance on the
//!   same BERT-Large.

use tsm_chip::mxm::{gemm_timing, GemmShape};
use tsm_compiler::balance::LayerCost;
use tsm_compiler::graph::{Graph, OpKind};
use tsm_isa::ElemType;
use tsm_topology::TspId;

/// Published BERT variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BertVariant {
    /// 12 encoders, hidden 768 — runs on a single TSP (§5.4).
    Base,
    /// 24 encoders, hidden 1024 — runs on 4 TSPs (§5.4).
    Large,
}

/// A transformer encoder stack configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BertConfig {
    /// Encoder (layer) count.
    pub encoders: usize,
    /// Hidden dimension.
    pub hidden: u64,
    /// Feed-forward intermediate dimension.
    pub intermediate: u64,
    /// Attention heads.
    pub heads: u64,
    /// Sequence length (SQuAD1.1 uses 384).
    pub seq: u64,
    /// Batch size per inference.
    pub batch: u64,
}

impl BertConfig {
    /// BERT-Base: 12 × hidden 768.
    pub fn base() -> Self {
        BertConfig {
            encoders: 12,
            hidden: 768,
            intermediate: 3072,
            heads: 12,
            seq: 384,
            batch: 1,
        }
    }

    /// BERT-Large: 24 × hidden 1024.
    pub fn large() -> Self {
        BertConfig {
            encoders: 24,
            hidden: 1024,
            intermediate: 4096,
            heads: 16,
            seq: 384,
            batch: 1,
        }
    }

    /// A named variant.
    pub fn variant(v: BertVariant) -> Self {
        match v {
            BertVariant::Base => Self::base(),
            BertVariant::Large => Self::large(),
        }
    }

    /// The Fig 18 scaling family: BERT-Large-shaped encoders, `n` of them.
    pub fn with_encoders(n: usize) -> Self {
        BertConfig {
            encoders: n,
            ..Self::large()
        }
    }

    /// The GEMMs of one encoder: Q/K/V/output projections, the two
    /// attention batched matmuls, and the two FFN layers.
    pub fn encoder_gemms(&self) -> Vec<GemmShape> {
        let t = self.batch * self.seq;
        let h = self.hidden;
        let head_dim = h / self.heads;
        let mut v = vec![
            // Q, K, V, attention-output projections
            GemmShape::new(t, h, h),
            GemmShape::new(t, h, h),
            GemmShape::new(t, h, h),
            GemmShape::new(t, h, h),
            // FFN up / down
            GemmShape::new(t, h, self.intermediate),
            GemmShape::new(t, self.intermediate, h),
        ];
        // attention scores and weighted values, per head
        for _ in 0..self.heads * self.batch {
            v.push(GemmShape::new(self.seq, head_dim, self.seq));
            v.push(GemmShape::new(self.seq, self.seq, head_dim));
        }
        v
    }

    /// Useful FLOPs of one encoder.
    pub fn encoder_flops(&self) -> u64 {
        self.encoder_gemms().iter().map(|g| g.flops()).sum()
    }

    /// Useful FLOPs of one full inference.
    pub fn total_flops(&self) -> u64 {
        self.encoder_flops() * self.encoders as u64
    }

    /// MXM cycles of one encoder, plus a 10 % VXM/SXM allowance for
    /// layernorm, softmax, residuals and transposes.
    pub fn encoder_cycles(&self) -> u64 {
        let mxm: u64 = self
            .encoder_gemms()
            .iter()
            .map(|g| gemm_timing(*g, ElemType::F16).cycles)
            .sum();
        mxm + mxm / 10
    }

    /// Bytes of activations flowing between consecutive encoders (FP16).
    pub fn activation_bytes(&self) -> u64 {
        self.batch * self.seq * self.hidden * 2
    }

    /// Bytes of one inference's host input (token ids + masks) and output
    /// (start/end logits for SQuAD).
    pub fn host_io_bytes(&self) -> (u64, u64) {
        let input = self.batch * self.seq * 8; // ids + type + mask, int16-ish
        let output = self.batch * self.seq * 4 * 2; // two fp32 logit vectors
        (input, output)
    }

    /// On-chip operand-movement cycles per encoder: SXM transposes of the
    /// attention operands and stream staging between hemispheres, ~14 % of
    /// the MXM-busy time (the component the Fig 20 "unoptimized" compiler
    /// serialized behind compute).
    pub fn encoder_movement_cycles(&self) -> u64 {
        self.encoder_cycles() * 14 / 100
    }

    /// The per-encoder cost vector for the stage balancer (Fig 20).
    pub fn layer_costs(&self) -> Vec<LayerCost> {
        vec![
            LayerCost {
                compute_cycles: self.encoder_cycles(),
                movement_cycles: self.encoder_movement_cycles(),
                activation_bytes: self.activation_bytes(),
            };
            self.encoders
        ]
    }

    /// Builds the pipelined inference graph over `n_tsps` devices:
    /// encoders split evenly into contiguous stages, activations
    /// transferred between stages, host I/O on the first and last device.
    ///
    /// # Panics
    /// Panics unless `n_tsps` divides the encoder count.
    pub fn build_pipeline_graph(&self, n_tsps: usize) -> Graph {
        assert!(
            n_tsps >= 1 && self.encoders.is_multiple_of(n_tsps),
            "encoders must split evenly"
        );
        let per_stage = self.encoders / n_tsps;
        let mut g = Graph::new();
        let (in_bytes, out_bytes) = self.host_io_bytes();
        let mut prev = g
            .add(TspId(0), OpKind::HostInput { bytes: in_bytes }, vec![])
            .expect("first node");
        for stage in 0..n_tsps {
            let dev = TspId(stage as u32);
            for _ in 0..per_stage {
                prev = g
                    .add(
                        dev,
                        OpKind::Compute {
                            cycles: self.encoder_cycles(),
                        },
                        vec![prev],
                    )
                    .expect("deps exist");
            }
            if stage + 1 < n_tsps {
                prev = g
                    .add(
                        dev,
                        OpKind::Transfer {
                            to: TspId(stage as u32 + 1),
                            bytes: self.activation_bytes(),
                            allow_nonminimal: true,
                        },
                        vec![prev],
                    )
                    .expect("deps exist");
            }
        }
        g.add(
            TspId(n_tsps as u32 - 1),
            OpKind::HostOutput { bytes: out_bytes },
            vec![prev],
        )
        .expect("deps exist");
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_compiler::schedule::{compile, CompileOptions};
    use tsm_topology::Topology;

    #[test]
    fn published_shapes() {
        let base = BertConfig::base();
        assert_eq!((base.encoders, base.hidden), (12, 768));
        let large = BertConfig::large();
        assert_eq!((large.encoders, large.hidden), (24, 1024));
        assert_eq!(large.activation_bytes(), 384 * 1024 * 2);
    }

    #[test]
    fn encoder_flops_match_analytic_form() {
        // ≈ 24·s·h² + 4·s²·h for batch 1 (projections + FFN + attention)
        let c = BertConfig::large();
        let analytic = 24 * c.seq * c.hidden * c.hidden + 4 * c.seq * c.seq * c.hidden;
        let actual = c.encoder_flops();
        let ratio = actual as f64 / analytic as f64;
        assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn bert_large_on_4_tsps_latency_is_about_a_millisecond() {
        // Fig 17: measured latency ≈ 1.2–1.3 ms including PCIe I/O. Our
        // model should land in the same regime (hundreds of µs to ~2 ms).
        let g = BertConfig::large().build_pipeline_graph(4);
        let topo = Topology::single_node();
        let p = compile(&g, &topo, CompileOptions::default()).unwrap();
        let s = p.estimated_seconds();
        assert!(s > 0.5e-3 && s < 3e-3, "latency {s} s");
    }

    #[test]
    fn pipeline_graph_structure() {
        let g = BertConfig::large().build_pipeline_graph(4);
        // 1 host-in + 24 encoders + 3 transfers + 1 host-out
        assert_eq!(g.len(), 29);
        assert_eq!(g.devices().len(), 4);
    }

    #[test]
    fn fig18_throughput_scales_linearly() {
        // 6 encoders per TSP at every point: the pipeline beat is constant,
        // so realized TOPs scale with the TSP count.
        let tops: Vec<f64> = [(6usize, 1usize), (24, 4), (48, 8), (96, 16)]
            .iter()
            .map(|&(enc, tsps)| {
                let c = BertConfig::with_encoders(enc);
                let costs = c.layer_costs();
                let plan = tsm_compiler::balance::partition_stages(
                    &costs,
                    tsps,
                    tsm_compiler::schedule::OptLevel::SpatialAware,
                );
                plan.throughput_per_second() * c.total_flops() as f64 / 1e12
            })
            .collect();
        let norm: Vec<f64> = tops.iter().map(|t| t / tops[0]).collect();
        for (i, expect) in [1.0, 4.0, 8.0, 16.0].iter().enumerate() {
            assert!(
                (norm[i] / expect - 1.0).abs() < 0.05,
                "normalized TOPs {norm:?} should be ~[1,4,8,16]"
            );
        }
    }

    #[test]
    fn compiler_estimate_is_deterministic() {
        let run = || {
            let g = BertConfig::large().build_pipeline_graph(4);
            let topo = Topology::single_node();
            compile(&g, &topo, CompileOptions::default())
                .unwrap()
                .span_cycles
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "evenly")]
    fn uneven_stage_split_rejected() {
        let _ = BertConfig::large().build_pipeline_graph(5);
    }
}
