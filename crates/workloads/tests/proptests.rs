//! Property-based tests for the workload kernels' numerics and plans.

// In offline dev environments the proptest stub's `proptest!` macro
// expands to nothing, making the helpers and imports below look unused;
// the real proptest uses all of them.
#![allow(dead_code, unused_imports)]

use proptest::prelude::*;
use tsm_workloads::cholesky::CholeskyPlan;
use tsm_workloads::linalg::{allreduce_sum, cholesky, Matrix};

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-4.0f64..4.0, rows * cols).prop_map(move |data| Matrix {
        rows,
        cols,
        data,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The §5.2 column split is exact for arbitrary matrices and split
    /// points: concatenating partial products reproduces the product.
    #[test]
    fn column_split_identity(a in small_matrix(5, 7), b in small_matrix(7, 9), cut in 1usize..9) {
        let full = a.matmul(&b);
        let left = a.matmul(&b.col_slice(0, cut));
        let right = a.matmul(&b.col_slice(cut, 9));
        let recomposed = Matrix::hcat(&[left, right]);
        prop_assert!(full.max_abs_diff(&recomposed) < 1e-10);
    }

    /// The §5.2 row split is exact: partial products sum to the product.
    #[test]
    fn row_split_identity(a in small_matrix(4, 8), b in small_matrix(8, 6), cut in 1usize..8) {
        let full = a.matmul(&b);
        let p1 = a.col_slice(0, cut).matmul(&b.row_slice(0, cut));
        let p2 = a.col_slice(cut, 8).matmul(&b.row_slice(cut, 8));
        prop_assert!(full.max_abs_diff(&p1.add(&p2)) < 1e-10);
    }

    /// Cholesky reconstructs any diagonally-dominant SPD matrix.
    #[test]
    fn cholesky_reconstructs(n in 2usize..16, seed in 0u64..1000) {
        // Build SPD: A = B·Bᵀ + n·I from a seeded pseudo-random B.
        let b = Matrix::from_fn(n, n, |r, c| {
            let x = (seed.wrapping_mul(31).wrapping_add((r * n + c) as u64 * 2654435761)) % 1000;
            x as f64 / 500.0 - 1.0
        });
        let mut a = b.matmul(&b.transpose());
        for i in 0..n {
            let v = a.get(i, i) + n as f64;
            a.set(i, i, v);
        }
        let l = cholesky(&a);
        prop_assert!(a.max_abs_diff(&l.matmul(&l.transpose())) < 1e-8);
    }

    /// All-reduce is a sum: permutation-invariant and linear.
    #[test]
    fn allreduce_is_permutation_invariant(
        buffers in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 8), 2..6),
    ) {
        let forward = allreduce_sum(&buffers);
        let mut reversed = buffers.clone();
        reversed.reverse();
        let backward = allreduce_sum(&reversed);
        for (x, y) in forward.iter().zip(&backward) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Cholesky plan invariants across the parameter space: time is
    /// monotone in p, flops are exact, and the block-cyclic distribution
    /// partitions the row blocks.
    #[test]
    fn cholesky_plan_invariants(p_blocks in 2u64..40, tsps in 1u64..9) {
        let p = p_blocks * 320;
        let plan = CholeskyPlan::new(p, tsps);
        prop_assert_eq!(plan.flops(), p * p * p / 3);
        let bigger = CholeskyPlan::new(p + 320, tsps);
        prop_assert!(bigger.cycles() > plan.cycles());
        // block-cyclic distribution partitions blocks exactly
        let mut all_blocks: Vec<u64> = (0..tsps).flat_map(|t| plan.blocks_of(t)).collect();
        all_blocks.sort_unstable();
        let expect: Vec<u64> = (0..p_blocks).collect();
        prop_assert_eq!(all_blocks, expect);
    }
}
