//! Windowed virtual-time telemetry: deterministic time series over a run.
//!
//! Every other observability surface in the workspace is an end-of-run
//! aggregate — [`crate::RunMetrics`] snapshots once per launch, the
//! conformance profiler certifies after the fact. This module adds the
//! time axis back: a [`Sampler`] buckets counter increments and gauge
//! levels into fixed windows of *virtual* cycles and produces a
//! [`Telemetry`] record of mergeable [`TimeSeries`].
//!
//! Window semantics: a cycle `c` belongs to window `c / window`. Counter
//! series hold the per-window delta (events that happened inside the
//! window); gauge series hold the per-window high-water level. Windows
//! with no samples are simply absent — absence and a zero delta are the
//! same observation, which is what makes the empty series the identity
//! of [`TimeSeries::merge`].
//!
//! Determinism: samples are taken on the same serial code paths that emit
//! trace events (plan binding, the post-level merge loop, the serving
//! dispatch loop), cycle coordinates are simulated — never wall clock —
//! and the merged record sorts series by `(name, label)` and points by
//! window. Two runs from the same seed therefore produce byte-identical
//! [`Telemetry::to_json`] output, and a run with telemetry disabled is
//! bit-identical to one that never had the feature (the sampler is
//! observation-only; regression tests in `tsm-core` pin this).

use std::collections::BTreeMap;

use crate::json::{Cursor, JsonWriter};

/// Canonical series names. Labels carry the entity: tenant names for the
/// `serve.*` series, `link{n}` / `chip{n}` for the heatmap series.
pub mod series {
    /// Requests completed per window (counter, per tenant).
    pub const SERVE_THROUGHPUT: &str = "serve.throughput";
    /// Requests admitted to the queue per window (counter, per tenant).
    pub const SERVE_ENQUEUED: &str = "serve.enqueued";
    /// Requests refused by admission control per window (counter, per
    /// tenant).
    pub const SERVE_SHED: &str = "serve.shed";
    /// Requests dropped at dispatch after their deadline per window
    /// (counter, per tenant).
    pub const SERVE_EXPIRED: &str = "serve.expired";
    /// High-water queue backlog per window (gauge, unlabeled).
    pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Requests that finished (or expired) within their deadline per
    /// window (counter, per tenant).
    pub const SLO_MET: &str = "serve.slo.met";
    /// Requests that missed their deadline per window (counter, per
    /// tenant).
    pub const SLO_MISSED: &str = "serve.slo.missed";
    /// Vectors landed per window (counter, per `link{n}`): the per-link
    /// occupancy heatmap.
    pub const LINK_DELIVERIES: &str = "link.deliveries";
    /// Execution-span cycles per window (counter, per `chip{n}`): the
    /// per-chip occupancy heatmap.
    pub const CHIP_BUSY: &str = "chip.busy_cycles";
}

/// Sampling configuration. `Copy + Eq` so it rides inside the `Copy`
/// serve/launch configs without ceremony.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TelemetryConfig {
    /// Window width in virtual cycles; 0 is treated as 1.
    pub window: u64,
    /// SLO target in permille of requests meeting their deadline per
    /// window (990 = 99.0%). Drives the derived attainment/burn-rate
    /// views; the raw met/missed series are what get recorded.
    pub slo_permille: u32,
}

impl Default for TelemetryConfig {
    /// 64 Ki-cycle windows, 99.0% SLO — a handful of windows per service
    /// time for every workload in this repo.
    fn default() -> Self {
        TelemetryConfig {
            window: 1 << 16,
            slo_permille: 990,
        }
    }
}

impl TelemetryConfig {
    /// The window index `cycle` falls into.
    pub fn window_of(&self, cycle: u64) -> u64 {
        cycle / self.window.max(1)
    }
}

/// What a series' per-window value means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SeriesKind {
    /// Per-window delta; merging sums overlapping windows.
    Counter,
    /// Per-window high-water level; merging takes the max.
    Gauge,
}

impl SeriesKind {
    fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
        }
    }
}

/// One named time series: `(window index, value)` points, strictly
/// ascending by window, with sampled-nothing windows absent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    /// Series name (one of [`series`], or caller-defined).
    pub name: String,
    /// Entity label (tenant name, `link{n}`, `chip{n}`; may be empty).
    pub label: String,
    /// Merge semantics for the values.
    pub kind: SeriesKind,
    /// `(window index, value)` pairs, strictly ascending by window.
    pub points: Vec<(u64, u64)>,
}

impl TimeSeries {
    /// An empty series — the identity of [`TimeSeries::merge`].
    pub fn new(name: &str, label: &str, kind: SeriesKind) -> TimeSeries {
        TimeSeries {
            name: name.to_string(),
            label: label.to_string(),
            kind,
            points: Vec::new(),
        }
    }

    /// Folds `other` into `self` window by window: counters sum, gauges
    /// take the max. Commutative and associative, with the empty series
    /// as identity (proptests in `tests/proptests.rs` pin all three).
    ///
    /// # Panics
    /// When the identities disagree — merging differently named series
    /// is a caller bug, not data.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            (&self.name, &self.label, self.kind),
            (&other.name, &other.label, other.kind),
            "merging mismatched series"
        );
        if other.points.is_empty() {
            return;
        }
        let mut merged: BTreeMap<u64, u64> = self.points.iter().copied().collect();
        for &(win, v) in &other.points {
            let slot = merged.entry(win).or_insert(0);
            *slot = match self.kind {
                SeriesKind::Counter => slot.saturating_add(v),
                SeriesKind::Gauge => (*slot).max(v),
            };
        }
        self.points = merged.into_iter().collect();
    }

    /// The value recorded for window `win`, if any.
    pub fn value_at(&self, win: u64) -> Option<u64> {
        self.points
            .binary_search_by_key(&win, |p| p.0)
            .ok()
            .map(|i| self.points[i].1)
    }

    /// Counter: sum over all windows. Gauge: all-run high water.
    pub fn total(&self) -> u64 {
        match self.kind {
            SeriesKind::Counter => self
                .points
                .iter()
                .fold(0u64, |a, &(_, v)| a.saturating_add(v)),
            SeriesKind::Gauge => self.points.iter().map(|&(_, v)| v).max().unwrap_or(0),
        }
    }

    /// Dense per-window values over `[from, to]`, zero-filling absent
    /// windows — the shape sparkline renderers want.
    pub fn dense(&self, from: u64, to: u64) -> Vec<u64> {
        (from..=to).map(|w| self.value_at(w).unwrap_or(0)).collect()
    }
}

/// A finished, mergeable telemetry record: the sampling window, the SLO
/// target it was recorded against, and the series sorted by
/// `(name, label)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Telemetry {
    /// Window width in virtual cycles.
    pub window: u64,
    /// SLO target in permille (see [`TelemetryConfig::slo_permille`]).
    pub slo_permille: u32,
    /// All recorded series, sorted by `(name, label)`.
    pub series: Vec<TimeSeries>,
}

impl Telemetry {
    /// An empty record for `cfg` — the identity of [`Telemetry::merge`].
    pub fn empty(cfg: TelemetryConfig) -> Telemetry {
        Telemetry {
            window: cfg.window.max(1),
            slo_permille: cfg.slo_permille,
            series: Vec::new(),
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The series named `(name, label)`, if recorded.
    pub fn get(&self, name: &str, label: &str) -> Option<&TimeSeries> {
        self.series
            .iter()
            .find(|s| s.name == name && s.label == label)
    }

    /// Every label recorded under `name`, in order.
    pub fn labels(&self, name: &str) -> Vec<&str> {
        self.series
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.label.as_str())
            .collect()
    }

    /// The last (highest) window index across all series, if any point
    /// exists.
    pub fn last_window(&self) -> Option<u64> {
        self.series
            .iter()
            .filter_map(|s| s.points.last().map(|p| p.0))
            .max()
    }

    /// Folds `other` into `self`, series by series (see
    /// [`TimeSeries::merge`]).
    ///
    /// # Panics
    /// When the windows or SLO targets differ — series sampled on
    /// different windows have no common time axis.
    pub fn merge(&mut self, other: &Telemetry) {
        assert_eq!(self.window, other.window, "merging mismatched windows");
        assert_eq!(
            self.slo_permille, other.slo_permille,
            "merging mismatched SLO targets"
        );
        for s in &other.series {
            match self
                .series
                .binary_search_by(|e| (e.name.as_str(), e.label.as_str()).cmp(&(&s.name, &s.label)))
            {
                Ok(i) => self.series[i].merge(s),
                Err(i) => self.series.insert(i, s.clone()),
            }
        }
    }

    /// Per-window SLO attainment for `label`: `met / (met + missed)` over
    /// windows where either series recorded, as `(window, fraction)`.
    ///
    /// Windows with zero terminal requests (both series present but zero,
    /// e.g. after a merge or a JSON round-trip that materialized empty
    /// points) are skipped rather than reported as a `0/0` NaN.
    pub fn attainment(&self, label: &str) -> Vec<(u64, f64)> {
        self.met_missed(label)
            .into_iter()
            .filter_map(|(w, met, missed)| {
                let total = met + missed;
                (total > 0).then(|| (w, met as f64 / total as f64))
            })
            .collect()
    }

    /// Per-window SLO burn rate for `label`: the miss fraction divided by
    /// the error budget `(1000 - slo_permille) / 1000`. A burn rate of
    /// 1.0 consumes the budget exactly; above it the SLO is burning down.
    /// Windows with zero terminal requests are skipped, mirroring
    /// [`Telemetry::attainment`].
    pub fn burn_rate(&self, label: &str) -> Vec<(u64, f64)> {
        let budget = f64::from((1000 - self.slo_permille.min(999)).max(1)) / 1000.0;
        self.met_missed(label)
            .into_iter()
            .filter_map(|(w, met, missed)| {
                let total = met + missed;
                (total > 0).then(|| {
                    let miss = missed as f64 / total as f64;
                    (w, miss / budget)
                })
            })
            .collect()
    }

    /// `(window, met, missed)` for windows where either SLO series has a
    /// point.
    fn met_missed(&self, label: &str) -> Vec<(u64, u64, u64)> {
        let empty = Vec::new();
        let met = self
            .get(series::SLO_MET, label)
            .map_or(&empty, |s| &s.points);
        let missed = self
            .get(series::SLO_MISSED, label)
            .map_or(&empty, |s| &s.points);
        let mut wins: Vec<u64> = met.iter().chain(missed).map(|p| p.0).collect();
        wins.sort_unstable();
        wins.dedup();
        let at = |pts: &[(u64, u64)], w| {
            pts.binary_search_by_key(&w, |p: &(u64, u64)| p.0)
                .map(|i| pts[i].1)
                .unwrap_or(0)
        };
        wins.into_iter()
            .map(|w| (w, at(met, w), at(missed, w)))
            .collect()
    }

    /// Serializes to the pretty JSON block embedded in
    /// `BENCH_cosim.json`. Byte-deterministic: series order, point order,
    /// and number formatting are all fixed.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field_u64("window", self.window)
            .field_u64("slo_permille", u64::from(self.slo_permille));
        w.key("series").begin_array();
        for s in &self.series {
            w.begin_object()
                .field_str("name", &s.name)
                .field_str("label", &s.label)
                .field_str("kind", s.kind.as_str());
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|&(win, v)| format!("[{win},{v}]"))
                .collect();
            w.field_raw("points", &format!("[{}]", pts.join(",")));
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Parses what [`Telemetry::to_json`] emits — the exact inverse, so
    /// hostile series names and labels round-trip through the in-repo
    /// JSON helpers.
    pub fn from_json(s: &str) -> Result<Telemetry, String> {
        let mut t = Telemetry {
            window: 1,
            slo_permille: 0,
            series: Vec::new(),
        };
        let mut c = Cursor::new(s);
        c.object(|c, key| {
            match key {
                "window" => t.window = c.u64()?,
                "slo_permille" => {
                    t.slo_permille = u32::try_from(c.u64()?)
                        .map_err(|_| "slo_permille out of range".to_string())?;
                }
                "series" => c.array(|c| {
                    let mut ts = TimeSeries::new("", "", SeriesKind::Counter);
                    c.object(|c, k| {
                        match k {
                            "name" => ts.name = c.string()?,
                            "label" => ts.label = c.string()?,
                            "kind" => {
                                ts.kind = match c.string()?.as_str() {
                                    "counter" => SeriesKind::Counter,
                                    "gauge" => SeriesKind::Gauge,
                                    other => return Err(format!("unknown kind {other:?}")),
                                };
                            }
                            "points" => c.array(|c| {
                                c.eat('[')?;
                                let win = c.u64()?;
                                c.eat(',')?;
                                let v = c.u64()?;
                                c.eat(']')?;
                                ts.points.push((win, v));
                                Ok(())
                            })?,
                            other => return Err(format!("unknown series key {other:?}")),
                        }
                        Ok(())
                    })?;
                    t.series.push(ts);
                    Ok(())
                })?,
                other => return Err(format!("unknown telemetry key {other:?}")),
            }
            Ok(())
        })?;
        c.expect_end()?;
        Ok(t)
    }
}

/// Accumulates samples during a run and seals them into a [`Telemetry`].
/// Observation-only by construction: it is handed cycle coordinates the
/// instrumented code already computed, and returns nothing to it, so an
/// attached sampler cannot perturb the simulation.
#[derive(Debug)]
pub struct Sampler {
    cfg: TelemetryConfig,
    series: BTreeMap<(String, String), (SeriesKind, BTreeMap<u64, u64>)>,
}

impl Sampler {
    /// A sampler bucketing on `cfg`'s window.
    pub fn new(cfg: TelemetryConfig) -> Sampler {
        Sampler {
            cfg: TelemetryConfig {
                window: cfg.window.max(1),
                slo_permille: cfg.slo_permille,
            },
            series: BTreeMap::new(),
        }
    }

    /// The (normalized) configuration this sampler buckets on.
    pub fn cfg(&self) -> TelemetryConfig {
        self.cfg
    }

    /// Adds `by` to the counter `(name, label)` in `cycle`'s window.
    /// `by == 0` is a no-op, mirroring [`crate::Metrics::inc`], so
    /// zero-count paths leave no point behind.
    pub fn count(&mut self, name: &str, label: &str, cycle: u64, by: u64) {
        if by == 0 {
            return;
        }
        let win = self.cfg.window_of(cycle);
        let slot = self.slot(name, label, SeriesKind::Counter, win);
        *slot = slot.saturating_add(by);
    }

    /// Distributes a span of `dur` cycles starting at `start` across the
    /// windows it overlaps — each window's counter gets exactly the
    /// cycles the span spent inside it (the chip-occupancy heatmap).
    pub fn count_span(&mut self, name: &str, label: &str, start: u64, dur: u64) {
        let w = self.cfg.window;
        let mut cur = start;
        let end = start.saturating_add(dur);
        while cur < end {
            let win_end = (cur - cur % w).saturating_add(w);
            let take = end.min(win_end) - cur;
            self.count(name, label, cur, take);
            if win_end == u64::MAX {
                break;
            }
            cur += take;
        }
    }

    /// Records `level` on the gauge `(name, label)` in `cycle`'s window;
    /// the window keeps its high-water mark.
    pub fn level(&mut self, name: &str, label: &str, cycle: u64, level: u64) {
        let win = self.cfg.window_of(cycle);
        let slot = self.slot(name, label, SeriesKind::Gauge, win);
        *slot = (*slot).max(level);
    }

    /// Folds an already-sealed record (e.g. a launch's heatmaps) into
    /// this sampler's accumulation.
    ///
    /// # Panics
    /// When `other` was sampled on a different window or SLO target.
    pub fn absorb(&mut self, other: &Telemetry) {
        assert_eq!(
            self.cfg.window, other.window,
            "absorbing mismatched windows"
        );
        assert_eq!(
            self.cfg.slo_permille, other.slo_permille,
            "absorbing mismatched SLO targets"
        );
        for s in &other.series {
            for &(win, v) in &s.points {
                let slot = self.slot(&s.name, &s.label, s.kind, win);
                *slot = match s.kind {
                    SeriesKind::Counter => slot.saturating_add(v),
                    SeriesKind::Gauge => (*slot).max(v),
                };
            }
        }
    }

    /// True when nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Seals the accumulation into a sorted, mergeable [`Telemetry`].
    pub fn finish(self) -> Telemetry {
        let series = self
            .series
            .into_iter()
            .map(|((name, label), (kind, points))| TimeSeries {
                name,
                label,
                kind,
                points: points.into_iter().collect(),
            })
            .collect();
        Telemetry {
            window: self.cfg.window,
            slo_permille: self.cfg.slo_permille,
            series,
        }
    }

    fn slot(&mut self, name: &str, label: &str, kind: SeriesKind, win: u64) -> &mut u64 {
        let entry = self
            .series
            .entry((name.to_string(), label.to_string()))
            .or_insert_with(|| (kind, BTreeMap::new()));
        assert_eq!(entry.0, kind, "series {name}[{label}] changed kind");
        entry.1.entry(win).or_insert(0)
    }
}

/// Renders `values` as a unicode sparkline, one block character per
/// window; zero windows render as spaces so gaps stay visible.
pub fn sparkline(values: &[u64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let peak = values.iter().copied().max().unwrap_or(0);
    if peak == 0 {
        return " ".repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            if v == 0 {
                ' '
            } else {
                let idx = ((u128::from(v) * 8 - 1) / u128::from(peak)).min(7);
                BLOCKS[idx as usize]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window: u64) -> TelemetryConfig {
        TelemetryConfig {
            window,
            slo_permille: 990,
        }
    }

    #[test]
    fn counter_deltas_bucket_by_window() {
        let mut s = Sampler::new(cfg(100));
        s.count("x", "a", 0, 1);
        s.count("x", "a", 99, 2);
        s.count("x", "a", 100, 5);
        s.count("x", "a", 350, 1);
        let t = s.finish();
        let ts = t.get("x", "a").unwrap();
        assert_eq!(ts.points, vec![(0, 3), (1, 5), (3, 1)]);
        assert_eq!(ts.total(), 9);
        assert_eq!(ts.dense(0, 3), vec![3, 5, 0, 1]);
    }

    #[test]
    fn zero_count_leaves_no_point() {
        let mut s = Sampler::new(cfg(100));
        s.count("x", "a", 5, 0);
        assert!(s.is_empty());
        assert!(s.finish().is_empty());
    }

    #[test]
    fn gauges_keep_the_window_high_water() {
        let mut s = Sampler::new(cfg(10));
        s.level("depth", "", 0, 3);
        s.level("depth", "", 5, 7);
        s.level("depth", "", 9, 2);
        s.level("depth", "", 10, 0);
        let t = s.finish();
        let ts = t.get("depth", "").unwrap();
        assert_eq!(ts.kind, SeriesKind::Gauge);
        assert_eq!(ts.points, vec![(0, 7), (1, 0)]);
        assert_eq!(ts.total(), 7, "gauge total is the all-run high water");
    }

    #[test]
    fn count_span_distributes_cycles_across_windows() {
        let mut s = Sampler::new(cfg(100));
        // 250 cycles starting at 80: 20 in win 0, 100 in win 1, 100 in
        // win 2, 30 in win 3.
        s.count_span("busy", "chip0", 80, 250);
        let t = s.finish();
        let ts = t.get("busy", "chip0").unwrap();
        assert_eq!(ts.points, vec![(0, 20), (1, 100), (2, 100), (3, 30)]);
        assert_eq!(ts.total(), 250, "span cycles are conserved");
    }

    #[test]
    fn window_zero_is_treated_as_one() {
        let mut s = Sampler::new(cfg(0));
        assert_eq!(s.cfg().window, 1);
        s.count("x", "", 3, 1);
        assert_eq!(s.finish().get("x", "").unwrap().points, vec![(3, 1)]);
    }

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let mut a = TimeSeries::new("x", "", SeriesKind::Counter);
        a.points = vec![(0, 1), (2, 4)];
        let mut b = TimeSeries::new("x", "", SeriesKind::Counter);
        b.points = vec![(0, 2), (1, 3)];
        a.merge(&b);
        assert_eq!(a.points, vec![(0, 3), (1, 3), (2, 4)]);

        let mut g = TimeSeries::new("g", "", SeriesKind::Gauge);
        g.points = vec![(0, 5)];
        let mut h = TimeSeries::new("g", "", SeriesKind::Gauge);
        h.points = vec![(0, 3), (1, 9)];
        g.merge(&h);
        assert_eq!(g.points, vec![(0, 5), (1, 9)]);
    }

    #[test]
    #[should_panic(expected = "merging mismatched series")]
    fn merge_refuses_mismatched_identity() {
        let mut a = TimeSeries::new("x", "a", SeriesKind::Counter);
        a.merge(&TimeSeries::new("x", "b", SeriesKind::Counter));
    }

    #[test]
    fn telemetry_merge_inserts_and_folds() {
        let mut s1 = Sampler::new(cfg(10));
        s1.count("x", "a", 0, 1);
        let mut s2 = Sampler::new(cfg(10));
        s2.count("x", "a", 5, 2);
        s2.count("x", "b", 15, 4);
        let mut t = s1.finish();
        t.merge(&s2.finish());
        assert_eq!(t.get("x", "a").unwrap().points, vec![(0, 3)]);
        assert_eq!(t.get("x", "b").unwrap().points, vec![(1, 4)]);
        let names: Vec<(&str, &str)> = t
            .series
            .iter()
            .map(|s| (s.name.as_str(), s.label.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![("x", "a"), ("x", "b")],
            "sorted by (name,label)"
        );
    }

    #[test]
    fn attainment_and_burn_rate_derive_from_met_missed() {
        let mut s = Sampler::new(cfg(10));
        // Window 0: 9 met, 1 missed -> 90% attainment. Budget at 990
        // permille is 1%, so the 10% miss rate burns at 10x.
        for _ in 0..9 {
            s.count(series::SLO_MET, "t0", 3, 1);
        }
        s.count(series::SLO_MISSED, "t0", 7, 1);
        // Window 2: all met.
        s.count(series::SLO_MET, "t0", 25, 4);
        let t = s.finish();
        let att = t.attainment("t0");
        assert_eq!(att.len(), 2);
        assert_eq!(att[0].0, 0);
        assert!((att[0].1 - 0.9).abs() < 1e-12);
        assert_eq!(att[1], (2, 1.0));
        let burn = t.burn_rate("t0");
        assert!((burn[0].1 - 10.0).abs() < 1e-9);
        assert_eq!(burn[1], (2, 0.0));
        assert!(t.attainment("absent").is_empty());
    }

    #[test]
    fn zero_terminal_windows_are_skipped_not_nan() {
        // A merge or JSON round-trip can materialize explicit zero points:
        // both SLO series carry a window in which no request terminated.
        // That window must vanish from the derived ratios instead of
        // surfacing as a 0/0 NaN.
        let mut met = TimeSeries::new(series::SLO_MET, "t0", SeriesKind::Counter);
        met.points = vec![(0, 4), (1, 0)];
        let mut missed = TimeSeries::new(series::SLO_MISSED, "t0", SeriesKind::Counter);
        missed.points = vec![(1, 0), (2, 1)];
        let t = Telemetry {
            window: 10,
            slo_permille: 990,
            series: vec![met, missed],
        };
        let att = t.attainment("t0");
        assert_eq!(att, vec![(0, 1.0), (2, 0.0)], "window 1 (0/0) is skipped");
        let burn = t.burn_rate("t0");
        assert_eq!(burn.len(), 2);
        assert_eq!(burn[0], (0, 0.0));
        assert!((burn[1].1 - 100.0).abs() < 1e-9, "all-missed burns 100x");
        for (_, v) in att.iter().chain(burn.iter()) {
            assert!(v.is_finite(), "no NaN or inf leaks through the guard");
        }
    }

    #[test]
    fn json_round_trips_hostile_names() {
        let mut s = Sampler::new(cfg(7));
        s.count("se\"ries\\name", "tenant\n\"zero\"", 0, 2);
        s.level("g", "", 13, 5);
        let t = s.finish();
        let json = t.to_json();
        let back = Telemetry::from_json(&json).expect("round trip");
        assert_eq!(back, t);
        assert_eq!(back.to_json(), json, "re-serialization is byte-identical");
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Telemetry::from_json("{\"window\": }").is_err());
        assert!(Telemetry::from_json("{\"bogus\": 1}").is_err());
        assert!(
            Telemetry::from_json(
                "{\"window\":1,\"slo_permille\":990,\"series\":[{\"name\":\"x\",\
                 \"label\":\"\",\"kind\":\"volume\",\"points\":[]}]}"
            )
            .is_err(),
            "unknown kind is refused"
        );
    }

    #[test]
    fn sparkline_scales_to_peak_and_keeps_gaps() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "  ");
        let line = sparkline(&[1, 0, 4, 8]);
        let chars: Vec<char> = line.chars().collect();
        assert_eq!(chars.len(), 4);
        assert_eq!(chars[1], ' ');
        assert_eq!(chars[3], '█', "peak maps to the full block");
        assert!(chars[0] < chars[2], "higher values get taller blocks");
    }

    #[test]
    fn empty_telemetry_is_merge_identity() {
        let mut s = Sampler::new(cfg(10));
        s.count("x", "a", 0, 1);
        let t = s.finish();
        let mut merged = t.clone();
        merged.merge(&Telemetry::empty(cfg(10)));
        assert_eq!(merged, t);
        let mut from_empty = Telemetry::empty(cfg(10));
        from_empty.merge(&t);
        assert_eq!(from_empty, t);
    }
}
