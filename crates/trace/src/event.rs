//! Structured trace events and the [`Tracer`] emission helper.

use crate::sink::TraceSink;

/// Lane carrying runtime-level orchestration events (compile, blame,
/// failover, replay epochs). Chip lanes use the chip's `TspId` value, which
/// is always far below this sentinel.
pub const RUNTIME_LANE: u32 = u32::MAX;

/// Lane carrying serving-frontend events (request enqueue/shed/complete,
/// batch windows). Kept distinct from [`RUNTIME_LANE`] so launch-level
/// traces can be compared exactly with or without a serving frontend by
/// filtering this lane out.
pub const SERVING_LANE: u32 = u32::MAX - 1;

/// Which admission limit rejected a request. Recorded on
/// [`EventKind::RequestShed`] so traces distinguish backpressure from
/// quota enforcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShedReason {
    /// The bounded work queue was at capacity.
    QueueFull,
    /// The request's tenant was at its in-queue quota.
    TenantOverQuota,
}

/// What happened. Identifiers are raw integers (`TspId.0`, `LinkId.0`,
/// `NodeId.0`) so this crate stays a dependency leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// One chip's execution pass: issue of its first instruction through
    /// retirement of its last.
    ChipExec {
        /// Dependency depth of the chip's slot in the transfer DAG.
        depth: u32,
        /// Instructions in the chip's compiled program.
        instructions: u32,
    },
    /// The window in which a chip's scheduled inbound deliveries land.
    Deliveries {
        /// Deliveries bound into the chip this run.
        count: u32,
    },
    /// One scheduled vector landed on its destination chip: the
    /// cycle-coordinate ground truth the conformance profiler joins
    /// against the compiled plan. Emitted only for vectors that actually
    /// arrived (an uncorrectable packet produces no `Delivery`).
    Delivery {
        /// Index of the physical link the vector crossed.
        link: u32,
        /// Index of the transfer within the executing plan.
        transfer: u32,
        /// Vector index within that transfer.
        vector: u32,
    },
    /// The window of a chip's promised C2C emissions.
    Emissions {
        /// Emissions the chip's program promises.
        count: u32,
    },
    /// FEC corrected a single-bit flip in one packet on `link`.
    LinkCorrected {
        /// Index of the physical link.
        link: u32,
        /// Bit position of the corrected flip.
        bit: u32,
    },
    /// FEC flagged a packet on `link` as uncorrectable.
    LinkUncorrectable {
        /// Index of the physical link.
        link: u32,
    },
    /// A claimed "correction" on `link` produced wrong bytes and was
    /// demoted to uncorrectable rather than delivered.
    LinkDemoted {
        /// Index of the physical link.
        link: u32,
    },
    /// A runtime launch began.
    LaunchBegin {
        /// Structural fingerprint of the logical graph.
        graph_fp: u64,
    },
    /// The hardware-alignment window preceding epoch 0 (paper §4.2).
    Align,
    /// The runtime compiled the graph for the current mapping epoch.
    Compile {
        /// Mapping epoch the plan was compiled against.
        epoch: u64,
    },
    /// The runtime reused a cached plan.
    Reuse {
        /// Mapping epoch of the reused plan.
        epoch: u64,
    },
    /// One scheduled execution window (attempt 0 is the first try; higher
    /// attempts are replays).
    ReplayEpoch {
        /// Zero-based attempt index within the launch.
        attempt: u32,
    },
    /// The health monitor's blame vote elected a faulty node.
    BlameVote {
        /// Node that won the vote.
        node: u32,
        /// Endpoint votes the winner received.
        votes: u32,
    },
    /// The runtime failed a node over to its spare.
    Failover {
        /// Node that was replaced.
        node: u32,
        /// Mapping epoch after the failover.
        epoch: u64,
    },
    /// The launch concluded (successfully).
    LaunchEnd {
        /// Total execution attempts consumed.
        attempts: u32,
    },
    /// A serving request entered the work queue.
    RequestEnqueue {
        /// Tenant the request belongs to.
        tenant: u32,
        /// Serving-frontend request id (monotone per run).
        request: u32,
    },
    /// Admission control rejected a request (queue full or tenant over
    /// quota); the request never entered the queue.
    RequestShed {
        /// Tenant the request belongs to.
        tenant: u32,
        /// Serving-frontend request id (monotone per run).
        request: u32,
        /// Which admission limit fired.
        reason: ShedReason,
    },
    /// A queued request reached the dispatcher after its deadline had
    /// already passed (in virtual time) and was dropped unlaunched.
    RequestExpired {
        /// Tenant the request belongs to.
        tenant: u32,
        /// Serving-frontend request id (monotone per run).
        request: u32,
        /// Cycles between the deadline and the dispatch that found it.
        late: u64,
    },
    /// A request's batch finished executing; `latency` is the full
    /// enqueue→complete distance in virtual cycles.
    RequestComplete {
        /// Tenant the request belongs to.
        tenant: u32,
        /// Serving-frontend request id (monotone per run).
        request: u32,
        /// Enqueue→complete latency in virtual cycles.
        latency: u64,
    },
    /// A batch of queued requests was dispatched into a launch.
    BatchBegin {
        /// Monotone batch index within the serving run.
        batch: u32,
        /// Requests folded into the batch.
        size: u32,
    },
    /// The batch's launch returned.
    BatchEnd {
        /// Monotone batch index within the serving run.
        batch: u32,
        /// Execution attempts the underlying launch consumed.
        attempts: u32,
    },
}

/// A single trace record. `cycle` is a *simulated* cycle count, never wall
/// clock; `lane` is the chip (`TspId.0`) or [`RUNTIME_LANE`]; `seq` is a
/// per-run emission counter that makes the `(cycle, lane, seq)` key unique
/// and totally ordered. `dur == 0` marks an instant event, `dur > 0` a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Simulated cycle at which the event begins.
    pub cycle: u64,
    /// Chip lane (`TspId.0`) or [`RUNTIME_LANE`].
    pub lane: u32,
    /// Emission sequence number within the run.
    pub seq: u32,
    /// Span length in cycles; zero for instant events.
    pub dur: u64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// The unique, totally ordered merge key mandated by the determinism
    /// contract: per-chip ordered buffers merge by `(cycle, chip, seq)`.
    pub fn key(&self) -> (u64, u32, u32) {
        (self.cycle, self.lane, self.seq)
    }
}

/// Emission helper owned by one instrumented run: holds the optional sink,
/// the monotone sequence counter, and a cycle offset that relocates the
/// run onto a caller-chosen timeline (the runtime uses this to place each
/// replay epoch after the previous one).
///
/// When no sink is attached — or the sink reports itself disabled, as
/// [`crate::NullSink`] does — every emission is a single branch and the
/// sequence counter never advances, so instrumented code does literally
/// nothing beyond that branch.
#[derive(Debug)]
pub struct Tracer<'a> {
    sink: Option<&'a dyn TraceSink>,
    offset: u64,
    seq: u32,
}

impl<'a> Tracer<'a> {
    /// Wraps `sink`, treating a disabled sink the same as no sink.
    pub fn new(sink: Option<&'a dyn TraceSink>) -> Self {
        Tracer {
            sink: sink.filter(|s| s.is_enabled()),
            offset: 0,
            seq: 0,
        }
    }

    /// Builder form of [`Tracer::set_offset`].
    pub fn with_offset(mut self, offset: u64) -> Self {
        self.offset = offset;
        self
    }

    /// All subsequently emitted events have `offset` added to their cycle.
    pub fn set_offset(&mut self, offset: u64) {
        self.offset = offset;
    }

    /// True when events are actually being recorded.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits an instant event at `cycle` (plus the configured offset).
    pub fn instant(&mut self, cycle: u64, lane: u32, kind: EventKind) {
        self.emit(cycle, 0, lane, kind);
    }

    /// Emits a span of `dur` cycles starting at `cycle`.
    pub fn span(&mut self, cycle: u64, dur: u64, lane: u32, kind: EventKind) {
        self.emit(cycle, dur, lane, kind);
    }

    fn emit(&mut self, cycle: u64, dur: u64, lane: u32, kind: EventKind) {
        let Some(sink) = self.sink else { return };
        let seq = self.seq;
        self.seq += 1;
        sink.record(TraceEvent {
            cycle: cycle + self.offset,
            lane,
            seq,
            dur,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{NullSink, RingSink};

    #[test]
    fn no_sink_is_inert_and_never_advances_seq() {
        let mut t = Tracer::new(None);
        assert!(!t.enabled());
        t.instant(5, 0, EventKind::Align);
        t.span(9, 3, 1, EventKind::Deliveries { count: 2 });
    }

    #[test]
    fn null_sink_behaves_exactly_like_no_sink() {
        let null = NullSink;
        let mut t = Tracer::new(Some(&null));
        assert!(!t.enabled());
        t.instant(5, 0, EventKind::Align);
    }

    #[test]
    fn offset_relocates_cycles_and_seq_orders_ties() {
        let ring = RingSink::new(16);
        let mut t = Tracer::new(Some(&ring)).with_offset(100);
        assert!(t.enabled());
        t.instant(5, 2, EventKind::LinkUncorrectable { link: 7 });
        t.instant(5, 2, EventKind::LinkDemoted { link: 7 });
        let ev = ring.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].cycle, 105);
        assert_eq!(ev[1].cycle, 105);
        assert!(ev[0].key() < ev[1].key(), "seq breaks the cycle tie");
    }
}
