//! Structured trace events and the [`Tracer`] emission helper.

use crate::json::{Cursor, JsonWriter};
use crate::sink::TraceSink;
use std::collections::BTreeMap;

/// Lane carrying runtime-level orchestration events (compile, blame,
/// failover, replay epochs). Chip lanes use the chip's `TspId` value, which
/// is always far below this sentinel.
pub const RUNTIME_LANE: u32 = u32::MAX;

/// Lane carrying serving-frontend events (request enqueue/shed/complete,
/// batch windows). Kept distinct from [`RUNTIME_LANE`] so launch-level
/// traces can be compared exactly with or without a serving frontend by
/// filtering this lane out.
pub const SERVING_LANE: u32 = u32::MAX - 1;

/// Which admission limit rejected a request. Recorded on
/// [`EventKind::RequestShed`] so traces distinguish backpressure from
/// quota enforcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShedReason {
    /// The bounded work queue was at capacity.
    QueueFull,
    /// The request's tenant was at its in-queue quota.
    TenantOverQuota,
}

/// What happened. Identifiers are raw integers (`TspId.0`, `LinkId.0`,
/// `NodeId.0`) so this crate stays a dependency leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// One chip's execution pass: issue of its first instruction through
    /// retirement of its last.
    ChipExec {
        /// Dependency depth of the chip's slot in the transfer DAG.
        depth: u32,
        /// Instructions in the chip's compiled program.
        instructions: u32,
    },
    /// The window in which a chip's scheduled inbound deliveries land.
    Deliveries {
        /// Deliveries bound into the chip this run.
        count: u32,
    },
    /// One scheduled vector landed on its destination chip: the
    /// cycle-coordinate ground truth the conformance profiler joins
    /// against the compiled plan. Emitted only for vectors that actually
    /// arrived (an uncorrectable packet produces no `Delivery`).
    Delivery {
        /// Index of the physical link the vector crossed.
        link: u32,
        /// Index of the transfer within the executing plan.
        transfer: u32,
        /// Vector index within that transfer.
        vector: u32,
    },
    /// The window of a chip's promised C2C emissions.
    Emissions {
        /// Emissions the chip's program promises.
        count: u32,
    },
    /// FEC corrected a single-bit flip in one packet on `link`.
    LinkCorrected {
        /// Index of the physical link.
        link: u32,
        /// Bit position of the corrected flip.
        bit: u32,
    },
    /// FEC flagged a packet on `link` as uncorrectable.
    LinkUncorrectable {
        /// Index of the physical link.
        link: u32,
    },
    /// A claimed "correction" on `link` produced wrong bytes and was
    /// demoted to uncorrectable rather than delivered.
    LinkDemoted {
        /// Index of the physical link.
        link: u32,
    },
    /// A runtime launch began.
    LaunchBegin {
        /// Structural fingerprint of the logical graph.
        graph_fp: u64,
    },
    /// The hardware-alignment window preceding epoch 0 (paper §4.2).
    Align,
    /// The runtime compiled the graph for the current mapping epoch.
    Compile {
        /// Mapping epoch the plan was compiled against.
        epoch: u64,
    },
    /// The runtime reused a cached plan.
    Reuse {
        /// Mapping epoch of the reused plan.
        epoch: u64,
    },
    /// One scheduled execution window (attempt 0 is the first try; higher
    /// attempts are replays).
    ReplayEpoch {
        /// Zero-based attempt index within the launch.
        attempt: u32,
    },
    /// The health monitor's blame vote elected a faulty node.
    BlameVote {
        /// Node that won the vote.
        node: u32,
        /// Endpoint votes the winner received.
        votes: u32,
    },
    /// The runtime failed a node over to its spare.
    Failover {
        /// Node that was replaced.
        node: u32,
        /// Mapping epoch after the failover.
        epoch: u64,
    },
    /// The launch concluded (successfully).
    LaunchEnd {
        /// Total execution attempts consumed.
        attempts: u32,
    },
    /// A serving request entered the work queue.
    RequestEnqueue {
        /// Tenant the request belongs to.
        tenant: u32,
        /// Serving-frontend request id (monotone per run).
        request: u32,
    },
    /// Admission control rejected a request (queue full or tenant over
    /// quota); the request never entered the queue.
    RequestShed {
        /// Tenant the request belongs to.
        tenant: u32,
        /// Serving-frontend request id (monotone per run).
        request: u32,
        /// Which admission limit fired.
        reason: ShedReason,
    },
    /// A queued request reached the dispatcher after its deadline had
    /// already passed (in virtual time) and was dropped unlaunched.
    RequestExpired {
        /// Tenant the request belongs to.
        tenant: u32,
        /// Serving-frontend request id (monotone per run).
        request: u32,
        /// Cycles between the deadline and the dispatch that found it.
        late: u64,
    },
    /// A request's batch finished executing; `latency` is the full
    /// enqueue→complete distance in virtual cycles.
    RequestComplete {
        /// Tenant the request belongs to.
        tenant: u32,
        /// Serving-frontend request id (monotone per run).
        request: u32,
        /// Enqueue→complete latency in virtual cycles.
        latency: u64,
    },
    /// A batch of queued requests was dispatched into a launch.
    BatchBegin {
        /// Monotone batch index within the serving run.
        batch: u32,
        /// Requests folded into the batch.
        size: u32,
    },
    /// The batch's launch returned.
    BatchEnd {
        /// Monotone batch index within the serving run.
        batch: u32,
        /// Execution attempts the underlying launch consumed.
        attempts: u32,
    },
}

/// A single trace record. `cycle` is a *simulated* cycle count, never wall
/// clock; `lane` is the chip (`TspId.0`) or [`RUNTIME_LANE`]; `seq` is a
/// per-run emission counter that makes the `(cycle, lane, seq)` key unique
/// and totally ordered. `dur == 0` marks an instant event, `dur > 0` a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Simulated cycle at which the event begins.
    pub cycle: u64,
    /// Chip lane (`TspId.0`) or [`RUNTIME_LANE`].
    pub lane: u32,
    /// Emission sequence number within the run.
    pub seq: u32,
    /// Span length in cycles; zero for instant events.
    pub dur: u64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// The unique, totally ordered merge key mandated by the determinism
    /// contract: per-chip ordered buffers merge by `(cycle, chip, seq)`.
    pub fn key(&self) -> (u64, u32, u32) {
        (self.cycle, self.lane, self.seq)
    }

    /// Compact, byte-deterministic JSON object: the coordinate fields,
    /// the kind's stable name, and the kind's payload fields flattened
    /// alongside. Used by the flight recorder's incident snapshots.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::compact();
        w.begin_object()
            .field_u64("cycle", self.cycle)
            .field_u64("lane", u64::from(self.lane))
            .field_u64("seq", u64::from(self.seq))
            .field_u64("dur", self.dur)
            .field_str("kind", self.kind.name());
        match self.kind {
            EventKind::ChipExec {
                depth,
                instructions,
            } => {
                w.field_u64("depth", u64::from(depth))
                    .field_u64("instructions", u64::from(instructions));
            }
            EventKind::Deliveries { count } | EventKind::Emissions { count } => {
                w.field_u64("count", u64::from(count));
            }
            EventKind::Delivery {
                link,
                transfer,
                vector,
            } => {
                w.field_u64("link", u64::from(link))
                    .field_u64("transfer", u64::from(transfer))
                    .field_u64("vector", u64::from(vector));
            }
            EventKind::LinkCorrected { link, bit } => {
                w.field_u64("link", u64::from(link))
                    .field_u64("bit", u64::from(bit));
            }
            EventKind::LinkUncorrectable { link } | EventKind::LinkDemoted { link } => {
                w.field_u64("link", u64::from(link));
            }
            EventKind::LaunchBegin { graph_fp } => {
                w.field_u64("graph_fp", graph_fp);
            }
            EventKind::Align => {}
            EventKind::Compile { epoch } | EventKind::Reuse { epoch } => {
                w.field_u64("epoch", epoch);
            }
            EventKind::ReplayEpoch { attempt } => {
                w.field_u64("attempt", u64::from(attempt));
            }
            EventKind::BlameVote { node, votes } => {
                w.field_u64("node", u64::from(node))
                    .field_u64("votes", u64::from(votes));
            }
            EventKind::Failover { node, epoch } => {
                w.field_u64("node", u64::from(node))
                    .field_u64("epoch", epoch);
            }
            EventKind::LaunchEnd { attempts } => {
                w.field_u64("attempts", u64::from(attempts));
            }
            EventKind::RequestEnqueue { tenant, request } => {
                w.field_u64("tenant", u64::from(tenant))
                    .field_u64("request", u64::from(request));
            }
            EventKind::RequestShed {
                tenant,
                request,
                reason,
            } => {
                w.field_u64("tenant", u64::from(tenant))
                    .field_u64("request", u64::from(request))
                    .field_str(
                        "reason",
                        match reason {
                            ShedReason::QueueFull => "queue_full",
                            ShedReason::TenantOverQuota => "tenant_over_quota",
                        },
                    );
            }
            EventKind::RequestExpired {
                tenant,
                request,
                late,
            } => {
                w.field_u64("tenant", u64::from(tenant))
                    .field_u64("request", u64::from(request))
                    .field_u64("late", late);
            }
            EventKind::RequestComplete {
                tenant,
                request,
                latency,
            } => {
                w.field_u64("tenant", u64::from(tenant))
                    .field_u64("request", u64::from(request))
                    .field_u64("latency", latency);
            }
            EventKind::BatchBegin { batch, size } => {
                w.field_u64("batch", u64::from(batch))
                    .field_u64("size", u64::from(size));
            }
            EventKind::BatchEnd { batch, attempts } => {
                w.field_u64("batch", u64::from(batch))
                    .field_u64("attempts", u64::from(attempts));
            }
        }
        w.end_object();
        w.finish()
    }

    /// Parses what [`TraceEvent::to_json`] emits — the exact inverse,
    /// field-order independent.
    pub fn from_json(s: &str) -> Result<TraceEvent, String> {
        let mut c = Cursor::new(s);
        let e = Self::parse(&mut c)?;
        c.expect_end()?;
        Ok(e)
    }

    /// Parses one event object at the cursor (for embedding in larger
    /// documents).
    pub fn parse(c: &mut Cursor<'_>) -> Result<TraceEvent, String> {
        let mut nums: BTreeMap<String, u64> = BTreeMap::new();
        let mut kind_name = None;
        let mut reason = None;
        c.object(|c, key| {
            match key {
                "kind" => kind_name = Some(c.string()?),
                "reason" => reason = Some(c.string()?),
                other => {
                    nums.insert(other.to_string(), c.u64()?);
                }
            }
            Ok(())
        })?;
        let num = |k: &str| -> Result<u64, String> {
            nums.get(k).copied().ok_or(format!("missing field {k:?}"))
        };
        let num32 = |k: &str| -> Result<u32, String> {
            u32::try_from(num(k)?).map_err(|_| format!("field {k:?} out of range"))
        };
        let kind_name = kind_name.ok_or("missing event kind")?;
        let kind = match kind_name.as_str() {
            "chip.exec" => EventKind::ChipExec {
                depth: num32("depth")?,
                instructions: num32("instructions")?,
            },
            "chip.deliveries" => EventKind::Deliveries {
                count: num32("count")?,
            },
            "chip.emissions" => EventKind::Emissions {
                count: num32("count")?,
            },
            "link.delivery" => EventKind::Delivery {
                link: num32("link")?,
                transfer: num32("transfer")?,
                vector: num32("vector")?,
            },
            "link.corrected" => EventKind::LinkCorrected {
                link: num32("link")?,
                bit: num32("bit")?,
            },
            "link.uncorrectable" => EventKind::LinkUncorrectable {
                link: num32("link")?,
            },
            "link.demoted" => EventKind::LinkDemoted {
                link: num32("link")?,
            },
            "launch.begin" => EventKind::LaunchBegin {
                graph_fp: num("graph_fp")?,
            },
            "launch.align" => EventKind::Align,
            "runtime.compile" => EventKind::Compile {
                epoch: num("epoch")?,
            },
            "runtime.reuse" => EventKind::Reuse {
                epoch: num("epoch")?,
            },
            "runtime.replay_epoch" => EventKind::ReplayEpoch {
                attempt: num32("attempt")?,
            },
            "runtime.blame_vote" => EventKind::BlameVote {
                node: num32("node")?,
                votes: num32("votes")?,
            },
            "runtime.failover" => EventKind::Failover {
                node: num32("node")?,
                epoch: num("epoch")?,
            },
            "launch.end" => EventKind::LaunchEnd {
                attempts: num32("attempts")?,
            },
            "serve.enqueue" => EventKind::RequestEnqueue {
                tenant: num32("tenant")?,
                request: num32("request")?,
            },
            "serve.shed" => EventKind::RequestShed {
                tenant: num32("tenant")?,
                request: num32("request")?,
                reason: match reason.as_deref() {
                    Some("queue_full") => ShedReason::QueueFull,
                    Some("tenant_over_quota") => ShedReason::TenantOverQuota,
                    other => return Err(format!("bad shed reason {other:?}")),
                },
            },
            "serve.expired" => EventKind::RequestExpired {
                tenant: num32("tenant")?,
                request: num32("request")?,
                late: num("late")?,
            },
            "serve.complete" => EventKind::RequestComplete {
                tenant: num32("tenant")?,
                request: num32("request")?,
                latency: num("latency")?,
            },
            "serve.batch" => EventKind::BatchBegin {
                batch: num32("batch")?,
                size: num32("size")?,
            },
            "serve.batch_end" => EventKind::BatchEnd {
                batch: num32("batch")?,
                attempts: num32("attempts")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok(TraceEvent {
            cycle: num("cycle")?,
            lane: num32("lane")?,
            seq: num32("seq")?,
            dur: num("dur")?,
            kind,
        })
    }
}

impl EventKind {
    /// The kind's stable dotted name, shared with the Chrome-trace
    /// exporter's event names.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ChipExec { .. } => "chip.exec",
            EventKind::Deliveries { .. } => "chip.deliveries",
            EventKind::Emissions { .. } => "chip.emissions",
            EventKind::Delivery { .. } => "link.delivery",
            EventKind::LinkCorrected { .. } => "link.corrected",
            EventKind::LinkUncorrectable { .. } => "link.uncorrectable",
            EventKind::LinkDemoted { .. } => "link.demoted",
            EventKind::LaunchBegin { .. } => "launch.begin",
            EventKind::Align => "launch.align",
            EventKind::Compile { .. } => "runtime.compile",
            EventKind::Reuse { .. } => "runtime.reuse",
            EventKind::ReplayEpoch { .. } => "runtime.replay_epoch",
            EventKind::BlameVote { .. } => "runtime.blame_vote",
            EventKind::Failover { .. } => "runtime.failover",
            EventKind::LaunchEnd { .. } => "launch.end",
            EventKind::RequestEnqueue { .. } => "serve.enqueue",
            EventKind::RequestShed { .. } => "serve.shed",
            EventKind::RequestExpired { .. } => "serve.expired",
            EventKind::RequestComplete { .. } => "serve.complete",
            EventKind::BatchBegin { .. } => "serve.batch",
            EventKind::BatchEnd { .. } => "serve.batch_end",
        }
    }
}

/// Emission helper owned by one instrumented run: holds the optional sink,
/// the monotone sequence counter, and a cycle offset that relocates the
/// run onto a caller-chosen timeline (the runtime uses this to place each
/// replay epoch after the previous one).
///
/// When no sink is attached — or the sink reports itself disabled, as
/// [`crate::NullSink`] does — every emission is a single branch and the
/// sequence counter never advances, so instrumented code does literally
/// nothing beyond that branch.
#[derive(Debug)]
pub struct Tracer<'a> {
    sink: Option<&'a dyn TraceSink>,
    offset: u64,
    seq: u32,
}

impl<'a> Tracer<'a> {
    /// Wraps `sink`, treating a disabled sink the same as no sink.
    pub fn new(sink: Option<&'a dyn TraceSink>) -> Self {
        Tracer {
            sink: sink.filter(|s| s.is_enabled()),
            offset: 0,
            seq: 0,
        }
    }

    /// Builder form of [`Tracer::set_offset`].
    pub fn with_offset(mut self, offset: u64) -> Self {
        self.offset = offset;
        self
    }

    /// All subsequently emitted events have `offset` added to their cycle.
    pub fn set_offset(&mut self, offset: u64) {
        self.offset = offset;
    }

    /// True when events are actually being recorded.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits an instant event at `cycle` (plus the configured offset).
    pub fn instant(&mut self, cycle: u64, lane: u32, kind: EventKind) {
        self.emit(cycle, 0, lane, kind);
    }

    /// Emits a span of `dur` cycles starting at `cycle`.
    pub fn span(&mut self, cycle: u64, dur: u64, lane: u32, kind: EventKind) {
        self.emit(cycle, dur, lane, kind);
    }

    fn emit(&mut self, cycle: u64, dur: u64, lane: u32, kind: EventKind) {
        let Some(sink) = self.sink else { return };
        let seq = self.seq;
        self.seq += 1;
        sink.record(TraceEvent {
            cycle: cycle + self.offset,
            lane,
            seq,
            dur,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{NullSink, RingSink};

    #[test]
    fn no_sink_is_inert_and_never_advances_seq() {
        let mut t = Tracer::new(None);
        assert!(!t.enabled());
        t.instant(5, 0, EventKind::Align);
        t.span(9, 3, 1, EventKind::Deliveries { count: 2 });
    }

    #[test]
    fn null_sink_behaves_exactly_like_no_sink() {
        let null = NullSink;
        let mut t = Tracer::new(Some(&null));
        assert!(!t.enabled());
        t.instant(5, 0, EventKind::Align);
    }

    #[test]
    fn event_json_round_trips_every_kind() {
        let kinds = [
            EventKind::ChipExec {
                depth: 2,
                instructions: 9,
            },
            EventKind::Deliveries { count: 4 },
            EventKind::Emissions { count: 5 },
            EventKind::Delivery {
                link: 1,
                transfer: 2,
                vector: 3,
            },
            EventKind::LinkCorrected { link: 6, bit: 61 },
            EventKind::LinkUncorrectable { link: 7 },
            EventKind::LinkDemoted { link: 8 },
            EventKind::LaunchBegin {
                graph_fp: u64::MAX - 1,
            },
            EventKind::Align,
            EventKind::Compile { epoch: 3 },
            EventKind::Reuse { epoch: 4 },
            EventKind::ReplayEpoch { attempt: 2 },
            EventKind::BlameVote { node: 5, votes: 3 },
            EventKind::Failover { node: 5, epoch: 6 },
            EventKind::LaunchEnd { attempts: 3 },
            EventKind::RequestEnqueue {
                tenant: 1,
                request: 2,
            },
            EventKind::RequestShed {
                tenant: 1,
                request: 2,
                reason: ShedReason::QueueFull,
            },
            EventKind::RequestShed {
                tenant: 1,
                request: 2,
                reason: ShedReason::TenantOverQuota,
            },
            EventKind::RequestExpired {
                tenant: 1,
                request: 2,
                late: 99,
            },
            EventKind::RequestComplete {
                tenant: 1,
                request: 2,
                latency: 1234,
            },
            EventKind::BatchBegin { batch: 7, size: 3 },
            EventKind::BatchEnd {
                batch: 7,
                attempts: 1,
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let e = TraceEvent {
                cycle: i as u64 * 1_000,
                lane: if i % 2 == 0 { i as u32 } else { SERVING_LANE },
                seq: i as u32,
                dur: (i % 3) as u64,
                kind,
            };
            let json = e.to_json();
            let back = TraceEvent::from_json(&json).expect(&json);
            assert_eq!(back, e, "{json}");
            assert_eq!(back.to_json(), json, "re-serialization is byte-identical");
        }
    }

    #[test]
    fn event_from_json_rejects_malformed_documents() {
        assert!(TraceEvent::from_json("{}").is_err(), "missing kind");
        assert!(
            TraceEvent::from_json(
                "{\"cycle\":0,\"lane\":0,\"seq\":0,\"dur\":0,\"kind\":\"no.such\"}"
            )
            .is_err(),
            "unknown kind"
        );
        assert!(
            TraceEvent::from_json(
                "{\"cycle\":0,\"lane\":0,\"seq\":0,\"dur\":0,\"kind\":\"launch.end\"}"
            )
            .is_err(),
            "missing payload field"
        );
        assert!(
            TraceEvent::from_json(
                "{\"cycle\":0,\"lane\":0,\"seq\":0,\"dur\":0,\"kind\":\"serve.shed\",\
                 \"tenant\":0,\"request\":0,\"reason\":\"because\"}"
            )
            .is_err(),
            "bad shed reason"
        );
    }

    #[test]
    fn offset_relocates_cycles_and_seq_orders_ties() {
        let ring = RingSink::new(16);
        let mut t = Tracer::new(Some(&ring)).with_offset(100);
        assert!(t.enabled());
        t.instant(5, 2, EventKind::LinkUncorrectable { link: 7 });
        t.instant(5, 2, EventKind::LinkDemoted { link: 7 });
        let ev = ring.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].cycle, 105);
        assert_eq!(ev[1].cycle, 105);
        assert!(ev[0].key() < ev[1].key(), "seq breaks the cycle tie");
    }
}
