//! Plan-vs-actual conformance profiling.
//!
//! The paper's core claim is that a software-scheduled network makes
//! multi-TSP execution *cycle-deterministic*: the compiler's link
//! reservations ARE the runtime behaviour. This module turns that claim
//! into a checkable artifact. It joins the compile-time truth — a
//! [`PlannedTimeline`] derived from a compiled plan's delivery manifest —
//! with the run-time truth — the [`TraceEvent`] stream captured by a
//! `RingSink` — and produces a [`LaunchProfile`]:
//!
//! - per-link wire occupancy and utilization ([`LinkUsage`]),
//! - per-chip busy/stall/idle breakdowns ([`ChipUsage`]),
//! - the critical path through the delivery dependency chains with
//!   per-transfer slack ([`CriticalPath`], [`TransferSlack`]),
//! - and a [`Conformance`] report diffing every observed delivery cycle
//!   against its planned cycle. On a fault-free run every skew is zero
//!   and the launch is *certified*; replayed attempts land whole epoch
//!   windows late and show up as itemized, per-link deviations with exact
//!   cycle coordinates.
//!
//! Observed delivery cycles are normalized by the launch's first replay
//! epoch (the start of attempt 0 on the runtime's virtual timeline), so
//! the same join works for a bare executor run (no runtime events, epoch
//! starts at 0) and a full `Runtime::launch` timeline (attempt 0 starts
//! after the alignment window).
//!
//! The profiler refuses a lossy trace ([`ProfileError::LossyTrace`]):
//! certifying conformance from a ring that evicted events would read
//! truncation as truth.

use crate::event::{EventKind, TraceEvent};
use crate::json::escape_json;

/// One planned hop: vector `vector` of transfer `transfer` crosses `link`,
/// occupying the wire over `[wire_start, wire_end)` and landing on the
/// destination chip (`dest_lane`) at `cycle`. Raw integer identifiers keep
/// this crate a dependency leaf; the plan layer fills them from its typed
/// ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedHop {
    /// Physical link index.
    pub link: u32,
    /// Transfer index within the plan.
    pub transfer: u32,
    /// Vector index within the transfer.
    pub vector: u32,
    /// Scheduled delivery cycle at the receiving chip.
    pub cycle: u64,
    /// First cycle the vector occupies the wire.
    pub wire_start: u64,
    /// One past the last cycle the vector occupies the wire.
    pub wire_end: u64,
    /// Receiving chip lane (`TspId.0`).
    pub dest_lane: u32,
}

/// One chip's planned execution window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedChip {
    /// Chip lane (`TspId.0`).
    pub lane: u32,
    /// Scheduled issue cycle of the chip's first instruction.
    pub start: u64,
    /// Scheduled issue cycle of the chip's last instruction.
    pub end: u64,
    /// Instructions in the chip's program.
    pub instructions: u32,
}

/// The compile-time half of the join: everything the profiler needs from a
/// compiled plan, flattened to raw integers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlannedTimeline {
    /// Every planned hop of every transfer.
    pub hops: Vec<PlannedHop>,
    /// Planned per-chip execution windows.
    pub chips: Vec<PlannedChip>,
    /// Scheduled span of the whole plan in cycles (its utilization
    /// denominator).
    pub span: u64,
    /// Per-transfer scheduled arrival cycle of the last vector.
    pub arrivals: Vec<u64>,
}

/// Wire occupancy of one link over the planned schedule, with the
/// observed delivery count next to the planned one.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkUsage {
    /// Physical link index.
    pub link: u32,
    /// Cycles the link's wire is occupied (planned intervals, merged).
    pub busy: u64,
    /// `busy / span`.
    pub utilization: f64,
    /// Deliveries the plan schedules across this link.
    pub planned: u32,
    /// Delivery events observed on this link (all attempts).
    pub observed: u32,
}

/// Busy/stall/idle breakdown of one chip's observed execution, taken from
/// the final (successful) attempt's `ChipExec` span.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipUsage {
    /// Chip lane (`TspId.0`).
    pub lane: u32,
    /// Cycles from its epoch's start until the chip issued its first
    /// instruction (schedule-imposed wait).
    pub stall: u64,
    /// Cycles between the chip's first issue and last retirement.
    pub busy: u64,
    /// `span - stall - busy` (the chip was done early).
    pub idle: u64,
    /// `busy / span`.
    pub utilization: f64,
    /// Instructions the chip executed.
    pub instructions: u32,
}

/// One hop of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalHop {
    /// Physical link index.
    pub link: u32,
    /// First wire cycle of the path-closing vector on this hop.
    pub wire_start: u64,
    /// Its delivery cycle at the hop's receiving chip.
    pub delivery: u64,
}

/// The longest delivery dependency chain in the plan: the transfer whose
/// last vector arrives latest, hop by hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// The transfer that closes the schedule.
    pub transfer: u32,
    /// Arrival cycle of its last vector — the length of the path from
    /// launch start.
    pub length: u64,
    /// The chain of hops its last vector traversed, in wire order.
    pub hops: Vec<CriticalHop>,
}

/// How much later a transfer could have finished without extending the
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferSlack {
    /// Transfer index.
    pub transfer: u32,
    /// Scheduled arrival of its last vector.
    pub arrival: u64,
    /// `critical_path.length - arrival` (zero on the critical path).
    pub slack: u64,
}

/// One observed delivery whose cycle differs from the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deviation {
    /// Physical link index.
    pub link: u32,
    /// Transfer index.
    pub transfer: u32,
    /// Vector index.
    pub vector: u32,
    /// The cycle the plan promised (relative to epoch start).
    pub planned: u64,
    /// The cycle observed (normalized to the first epoch's start).
    pub observed: u64,
    /// `observed - planned`. Replays skew by whole attempt windows.
    pub skew: i64,
}

/// The machine-checked verdict on "did the run follow the plan?".
#[derive(Debug, Clone, PartialEq)]
pub enum Conformance {
    /// Every planned delivery was observed exactly once, at exactly its
    /// planned cycle. The paper's determinism claim, checked.
    Certified {
        /// Deliveries matched (== the plan's delivery count).
        deliveries: u64,
    },
    /// The run deviated from the plan: replayed attempts, missing
    /// deliveries (aborted windows), duplicated observations, or
    /// deliveries the plan never scheduled (a failover's recompiled
    /// plan).
    Deviant {
        /// Observations that landed exactly on plan.
        matched: u64,
        /// Observations at the wrong cycle, itemized with coordinates.
        deviations: Vec<Deviation>,
        /// Planned `(link, transfer, vector)` keys never observed.
        missing: Vec<(u32, u32, u32)>,
        /// Planned keys observed more than once (replayed attempts).
        duplicates: u64,
        /// Observations with no planned counterpart at all.
        unplanned: u64,
    },
}

impl Conformance {
    /// True only for [`Conformance::Certified`].
    pub fn certified(&self) -> bool {
        matches!(self, Conformance::Certified { .. })
    }
}

/// Why a profile could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// The sink evicted events; a truncated timeline cannot certify
    /// anything.
    LossyTrace {
        /// Events the sink reported dropped.
        dropped: u64,
    },
    /// No events at all — nothing was traced.
    EmptyTrace,
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::LossyTrace { dropped } => write!(
                f,
                "refusing to profile a lossy trace: sink dropped {dropped} event(s); \
                 raise the ring capacity and re-run"
            ),
            ProfileError::EmptyTrace => write!(f, "refusing to profile an empty trace"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// The joined plan-vs-actual picture of one launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchProfile {
    /// Planned schedule span in cycles.
    pub span: u64,
    /// Per-link usage, ascending link index.
    pub links: Vec<LinkUsage>,
    /// Per-chip breakdowns, ascending lane.
    pub chips: Vec<ChipUsage>,
    /// The longest delivery chain (absent for plans with no transfers).
    pub critical_path: Option<CriticalPath>,
    /// Per-transfer slack against the critical path, ascending transfer.
    pub slack: Vec<TransferSlack>,
    /// The conformance verdict.
    pub conformance: Conformance,
    /// Observed epoch-window start cycles (`ReplayEpoch` events), one per
    /// attempt; empty for bare executor traces.
    pub epochs: Vec<u64>,
}

/// Joins `planned` against `events` and renders the verdict.
///
/// `dropped` is the sink's eviction count ([`crate::TraceSink::dropped`]);
/// any nonzero value is a typed refusal — certifying conformance from a
/// lossy trace would read truncation as truth.
pub fn profile(
    planned: &PlannedTimeline,
    events: &[TraceEvent],
    dropped: u64,
) -> Result<LaunchProfile, ProfileError> {
    if dropped > 0 {
        return Err(ProfileError::LossyTrace { dropped });
    }
    if events.is_empty() {
        return Err(ProfileError::EmptyTrace);
    }
    let span = planned.span.max(1);

    // Epoch windows: the runtime emits one ReplayEpoch span per attempt on
    // its virtual timeline. Observed delivery cycles normalize against the
    // FIRST epoch's start, so attempt 0 of a launch compares at the same
    // coordinates as a bare executor run (which has no epochs: start 0).
    let mut epochs: Vec<u64> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ReplayEpoch { .. }))
        .map(|e| e.cycle)
        .collect();
    epochs.sort_unstable();
    epochs.dedup();
    let epoch0 = epochs.first().copied().unwrap_or(0);
    let final_epoch = epochs.last().copied().unwrap_or(0);

    // --- Conformance: join observed deliveries against the manifest. ---
    // Planned keys are unique: a minimal route crosses each link at most
    // once, so (link, transfer, vector) identifies one hop.
    let mut by_key: Vec<(&PlannedHop, u64)> = planned.hops.iter().map(|h| (h, 0u64)).collect();
    by_key.sort_by_key(|(h, _)| (h.link, h.transfer, h.vector));
    let find = |key: (u32, u32, u32), v: &[(&PlannedHop, u64)]| {
        v.binary_search_by_key(&key, |(h, _)| (h.link, h.transfer, h.vector))
            .ok()
    };

    let mut matched = 0u64;
    let mut deviations = Vec::new();
    let mut unplanned = 0u64;
    let mut observed_per_link: Vec<(u32, u32)> = Vec::new();
    for e in events {
        let EventKind::Delivery {
            link,
            transfer,
            vector,
        } = e.kind
        else {
            continue;
        };
        match observed_per_link.iter_mut().find(|(l, _)| *l == link) {
            Some((_, n)) => *n += 1,
            None => observed_per_link.push((link, 1)),
        }
        let Some(i) = find((link, transfer, vector), &by_key) else {
            unplanned += 1;
            continue;
        };
        by_key[i].1 += 1;
        let normalized = e.cycle.saturating_sub(epoch0);
        let skew = normalized as i64 - by_key[i].0.cycle as i64;
        if skew == 0 {
            matched += 1;
        } else {
            deviations.push(Deviation {
                link,
                transfer,
                vector,
                planned: by_key[i].0.cycle,
                observed: normalized,
                skew,
            });
        }
    }
    deviations.sort_by_key(|d| (d.link, d.transfer, d.vector, d.observed));
    let missing: Vec<(u32, u32, u32)> = by_key
        .iter()
        .filter(|(_, seen)| *seen == 0)
        .map(|(h, _)| (h.link, h.transfer, h.vector))
        .collect();
    let duplicates: u64 = by_key.iter().map(|(_, seen)| seen.saturating_sub(1)).sum();
    let conformance = if deviations.is_empty()
        && missing.is_empty()
        && duplicates == 0
        && unplanned == 0
        && matched == planned.hops.len() as u64
    {
        Conformance::Certified {
            deliveries: matched,
        }
    } else {
        Conformance::Deviant {
            matched,
            deviations,
            missing,
            duplicates,
            unplanned,
        }
    };

    // --- Per-link occupancy from the planned wire windows. ---
    let mut links: Vec<LinkUsage> = Vec::new();
    {
        let mut hops: Vec<&PlannedHop> = planned.hops.iter().collect();
        hops.sort_by_key(|h| (h.link, h.wire_start, h.wire_end));
        let mut i = 0;
        while i < hops.len() {
            let link = hops[i].link;
            let mut busy = 0u64;
            let mut planned_count = 0u32;
            // Merge overlapping/abutting wire intervals of this link.
            let mut cur = (hops[i].wire_start, hops[i].wire_end);
            while i < hops.len() && hops[i].link == link {
                let h = hops[i];
                planned_count += 1;
                if h.wire_start > cur.1 {
                    busy += cur.1 - cur.0;
                    cur = (h.wire_start, h.wire_end);
                } else {
                    cur.1 = cur.1.max(h.wire_end);
                }
                i += 1;
            }
            busy += cur.1 - cur.0;
            let observed = observed_per_link
                .iter()
                .find(|(l, _)| *l == link)
                .map_or(0, |(_, n)| *n);
            links.push(LinkUsage {
                link,
                busy,
                utilization: busy as f64 / span as f64,
                planned: planned_count,
                observed,
            });
        }
    }

    // --- Per-chip breakdown from the final attempt's ChipExec spans. ---
    let mut chips: Vec<ChipUsage> = Vec::new();
    for e in events {
        let EventKind::ChipExec { instructions, .. } = e.kind else {
            continue;
        };
        if e.cycle < final_epoch {
            continue; // an aborted attempt's pass
        }
        let stall = e.cycle - final_epoch;
        let busy = e.dur;
        chips.push(ChipUsage {
            lane: e.lane,
            stall,
            busy,
            idle: span.saturating_sub(stall + busy),
            utilization: busy as f64 / span as f64,
            instructions,
        });
    }
    chips.sort_by_key(|c| c.lane);

    // --- Critical path and slack over the scheduled arrivals. ---
    let critical_path = planned
        .arrivals
        .iter()
        .enumerate()
        .max_by_key(|&(t, &a)| (a, std::cmp::Reverse(t)))
        .map(|(transfer, &length)| {
            let last_vector = planned
                .hops
                .iter()
                .filter(|h| h.transfer == transfer as u32)
                .map(|h| h.vector)
                .max()
                .unwrap_or(0);
            let mut hops: Vec<CriticalHop> = planned
                .hops
                .iter()
                .filter(|h| h.transfer == transfer as u32 && h.vector == last_vector)
                .map(|h| CriticalHop {
                    link: h.link,
                    wire_start: h.wire_start,
                    delivery: h.cycle,
                })
                .collect();
            hops.sort_by_key(|h| h.wire_start);
            CriticalPath {
                transfer: transfer as u32,
                length,
                hops,
            }
        });
    let critical_len = critical_path.as_ref().map_or(0, |c| c.length);
    let slack: Vec<TransferSlack> = planned
        .arrivals
        .iter()
        .enumerate()
        .map(|(t, &arrival)| TransferSlack {
            transfer: t as u32,
            arrival,
            slack: critical_len.saturating_sub(arrival),
        })
        .collect();

    Ok(LaunchProfile {
        span: planned.span,
        links,
        chips,
        critical_path,
        slack,
        conformance,
        epochs,
    })
}

impl LaunchProfile {
    /// True when the run followed the plan cycle-exactly.
    pub fn certified(&self) -> bool {
        self.conformance.certified()
    }

    /// The `k` busiest links by planned wire occupancy, descending.
    pub fn top_links(&self, k: usize) -> Vec<&LinkUsage> {
        let mut v: Vec<&LinkUsage> = self.links.iter().collect();
        v.sort_by_key(|l| (std::cmp::Reverse(l.busy), l.link));
        v.truncate(k);
        v
    }

    /// Renders the profile as a terminal report: conformance verdict,
    /// link-utilization bars, chip breakdowns, critical path, slack.
    pub fn render(&self) -> String {
        const BAR: usize = 32;
        let bar = |frac: f64| {
            let filled = ((frac * BAR as f64).round() as usize).min(BAR);
            let mut b = String::with_capacity(BAR);
            for i in 0..BAR {
                b.push(if i < filled { '#' } else { '.' });
            }
            b
        };
        let mut out = String::new();
        out.push_str(&format!(
            "launch profile — span {} cycles, {} link(s), {} chip(s), {} epoch(s)\n",
            self.span,
            self.links.len(),
            self.chips.len(),
            self.epochs.len().max(1),
        ));
        match &self.conformance {
            Conformance::Certified { deliveries } => {
                out.push_str(&format!(
                    "conformance: CERTIFIED — all {deliveries} deliveries on their planned cycle (skew 0)\n"
                ));
            }
            Conformance::Deviant {
                matched,
                deviations,
                missing,
                duplicates,
                unplanned,
            } => {
                out.push_str(&format!(
                    "conformance: DEVIANT — {matched} on plan, {} skewed, {} missing, \
                     {duplicates} duplicated, {unplanned} unplanned\n",
                    deviations.len(),
                    missing.len(),
                ));
                for d in deviations.iter().take(16) {
                    out.push_str(&format!(
                        "  link {:>3}  transfer {} vector {:>3}  planned @{}  observed @{}  skew {:+}\n",
                        d.link, d.transfer, d.vector, d.planned, d.observed, d.skew
                    ));
                }
                if deviations.len() > 16 {
                    out.push_str(&format!(
                        "  … {} more deviation(s)\n",
                        deviations.len() - 16
                    ));
                }
            }
        }
        out.push_str("links by occupancy:\n");
        for l in self.top_links(self.links.len()) {
            out.push_str(&format!(
                "  link {:>3} |{}| {:>5.1}%  busy={} deliveries={}/{}\n",
                l.link,
                bar(l.utilization),
                l.utilization * 100.0,
                l.busy,
                l.observed,
                l.planned,
            ));
        }
        out.push_str("chips (final attempt):\n");
        for c in &self.chips {
            out.push_str(&format!(
                "  chip {:>3} |{}| {:>5.1}%  stall={} busy={} idle={} instrs={}\n",
                c.lane,
                bar(c.utilization),
                c.utilization * 100.0,
                c.stall,
                c.busy,
                c.idle,
                c.instructions,
            ));
        }
        match &self.critical_path {
            Some(cp) => {
                out.push_str(&format!(
                    "critical path: transfer {} — {} cycles over {} hop(s)\n",
                    cp.transfer,
                    cp.length,
                    cp.hops.len()
                ));
                for h in &cp.hops {
                    out.push_str(&format!(
                        "  link {:>3}  wire @{}  delivered @{}\n",
                        h.link, h.wire_start, h.delivery
                    ));
                }
            }
            None => out.push_str("critical path: (no transfers)\n"),
        }
        if self.slack.len() > 1 {
            out.push_str("slack:\n");
            for s in &self.slack {
                out.push_str(&format!(
                    "  transfer {:>3}  arrival @{}  slack {}\n",
                    s.transfer, s.arrival, s.slack
                ));
            }
        }
        out
    }

    /// Compact hand-rolled JSON summary for embedding in bench reports
    /// (`BENCH_cosim.json`): verdict, top links, critical path.
    pub fn summary_json(&self) -> String {
        let (verdict, matched, skewed, missing, unplanned) = match &self.conformance {
            Conformance::Certified { deliveries } => ("certified", *deliveries, 0, 0, 0),
            Conformance::Deviant {
                matched,
                deviations,
                missing,
                unplanned,
                ..
            } => (
                "deviant",
                *matched,
                deviations.len() as u64,
                missing.len() as u64,
                *unplanned,
            ),
        };
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"verdict\": \"{}\", \"span_cycles\": {}, \"matched\": {matched}, \
             \"skewed\": {skewed}, \"missing\": {missing}, \"unplanned\": {unplanned}",
            escape_json(verdict),
            self.span
        ));
        match &self.critical_path {
            Some(cp) => s.push_str(&format!(
                ", \"critical_path\": {{\"transfer\": {}, \"length_cycles\": {}, \"hops\": {}}}",
                cp.transfer,
                cp.length,
                cp.hops.len()
            )),
            None => s.push_str(", \"critical_path\": null"),
        }
        s.push_str(", \"top_links\": [");
        for (i, l) in self.top_links(4).iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"link\": {}, \"busy_cycles\": {}, \"utilization\": {:.4}, \
                 \"deliveries\": {}}}",
                l.link, l.busy, l.utilization, l.planned
            ));
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RUNTIME_LANE;

    /// Two transfers: t0 over links 0→1 (two hops, 2 vectors), t1 over
    /// link 2 (one hop, 1 vector). t0 arrives last → critical.
    fn planned() -> PlannedTimeline {
        let hop = |link, transfer, vector, wire_start: u64, latency: u64| PlannedHop {
            link,
            transfer,
            vector,
            cycle: wire_start + 10 + latency,
            wire_start,
            wire_end: wire_start + 10,
            dest_lane: link + 1,
        };
        PlannedTimeline {
            hops: vec![
                hop(0, 0, 0, 5, 3),
                hop(0, 0, 1, 15, 3),
                hop(1, 0, 0, 40, 3),
                hop(1, 0, 1, 50, 3),
                hop(2, 1, 0, 5, 3),
            ],
            chips: vec![
                PlannedChip {
                    lane: 0,
                    start: 0,
                    end: 25,
                    instructions: 4,
                },
                PlannedChip {
                    lane: 1,
                    start: 18,
                    end: 60,
                    instructions: 8,
                },
            ],
            span: 100,
            arrivals: vec![63, 18],
        }
    }

    fn delivery(h: &PlannedHop, cycle: u64, seq: u32) -> TraceEvent {
        TraceEvent {
            cycle,
            lane: h.dest_lane,
            seq,
            dur: 0,
            kind: EventKind::Delivery {
                link: h.link,
                transfer: h.transfer,
                vector: h.vector,
            },
        }
    }

    fn exact_events(p: &PlannedTimeline) -> Vec<TraceEvent> {
        p.hops
            .iter()
            .enumerate()
            .map(|(i, h)| delivery(h, h.cycle, i as u32))
            .collect()
    }

    #[test]
    fn exact_replay_of_the_plan_is_certified() {
        let p = planned();
        let prof = profile(&p, &exact_events(&p), 0).unwrap();
        assert_eq!(prof.conformance, Conformance::Certified { deliveries: 5 });
        assert!(prof.certified());
    }

    #[test]
    fn epoch_offset_normalizes_away() {
        // Same deliveries, relocated 1000 cycles later with a ReplayEpoch
        // marking the window start — still certified.
        let p = planned();
        let mut ev = vec![TraceEvent {
            cycle: 1000,
            lane: RUNTIME_LANE,
            seq: 0,
            dur: 90,
            kind: EventKind::ReplayEpoch { attempt: 0 },
        }];
        ev.extend(
            p.hops
                .iter()
                .enumerate()
                .map(|(i, h)| delivery(h, h.cycle + 1000, i as u32 + 1)),
        );
        let prof = profile(&p, &ev, 0).unwrap();
        assert!(prof.certified());
        assert_eq!(prof.epochs, vec![1000]);
    }

    #[test]
    fn skewed_delivery_is_itemized_with_cycle_coordinates() {
        let p = planned();
        let mut ev = exact_events(&p);
        ev[2].cycle += 7; // link 1, t0 v0
        let prof = profile(&p, &ev, 0).unwrap();
        let Conformance::Deviant {
            matched,
            deviations,
            missing,
            duplicates,
            unplanned,
        } = &prof.conformance
        else {
            panic!("expected deviant, got {:?}", prof.conformance);
        };
        assert_eq!((*matched, *duplicates, *unplanned), (4, 0, 0));
        assert!(missing.is_empty());
        assert_eq!(
            deviations,
            &vec![Deviation {
                link: 1,
                transfer: 0,
                vector: 0,
                planned: 53,
                observed: 60,
                skew: 7,
            }]
        );
    }

    #[test]
    fn missing_and_unplanned_deliveries_break_certification() {
        let p = planned();
        let mut ev = exact_events(&p);
        ev.pop(); // drop link 2's delivery
        ev.push(TraceEvent {
            cycle: 99,
            lane: 9,
            seq: 40,
            dur: 0,
            kind: EventKind::Delivery {
                link: 7,
                transfer: 5,
                vector: 0,
            },
        });
        let prof = profile(&p, &ev, 0).unwrap();
        let Conformance::Deviant {
            missing, unplanned, ..
        } = &prof.conformance
        else {
            panic!("expected deviant");
        };
        assert_eq!(missing, &vec![(2, 1, 0)]);
        assert_eq!(*unplanned, 1);
    }

    #[test]
    fn duplicate_observation_of_one_key_is_counted() {
        let p = planned();
        let mut ev = exact_events(&p);
        let dup = delivery(&p.hops[0], p.hops[0].cycle, 50);
        ev.push(dup);
        let prof = profile(&p, &ev, 0).unwrap();
        let Conformance::Deviant { duplicates, .. } = &prof.conformance else {
            panic!("expected deviant");
        };
        assert_eq!(*duplicates, 1);
    }

    #[test]
    fn lossy_and_empty_traces_are_refused() {
        let p = planned();
        assert_eq!(
            profile(&p, &exact_events(&p), 3),
            Err(ProfileError::LossyTrace { dropped: 3 })
        );
        assert_eq!(profile(&p, &[], 0), Err(ProfileError::EmptyTrace));
    }

    #[test]
    fn link_occupancy_merges_abutting_wire_windows() {
        let p = planned();
        let prof = profile(&p, &exact_events(&p), 0).unwrap();
        // link 0: [5,15) and [15,25) abut → 20 busy cycles.
        let l0 = prof.links.iter().find(|l| l.link == 0).unwrap();
        assert_eq!(l0.busy, 20);
        assert_eq!(l0.planned, 2);
        assert_eq!(l0.observed, 2);
        assert!((l0.utilization - 0.2).abs() < 1e-9);
        // link 1: [40,50) and [50,60) → 20.
        assert_eq!(prof.links.iter().find(|l| l.link == 1).unwrap().busy, 20);
        // link 2: one 10-cycle window.
        assert_eq!(prof.links.iter().find(|l| l.link == 2).unwrap().busy, 10);
    }

    #[test]
    fn critical_path_is_the_latest_arrival_with_slack_against_it() {
        let p = planned();
        let prof = profile(&p, &exact_events(&p), 0).unwrap();
        let cp = prof.critical_path.as_ref().unwrap();
        assert_eq!(cp.transfer, 0);
        assert_eq!(cp.length, 63);
        // Last vector (v1) of t0: hops on links 0 then 1, wire order.
        assert_eq!(
            cp.hops,
            vec![
                CriticalHop {
                    link: 0,
                    wire_start: 15,
                    delivery: 28
                },
                CriticalHop {
                    link: 1,
                    wire_start: 50,
                    delivery: 63
                },
            ]
        );
        assert_eq!(
            prof.slack,
            vec![
                TransferSlack {
                    transfer: 0,
                    arrival: 63,
                    slack: 0
                },
                TransferSlack {
                    transfer: 1,
                    arrival: 18,
                    slack: 45
                },
            ]
        );
    }

    #[test]
    fn chip_breakdown_reads_final_epoch_exec_spans() {
        let p = planned();
        let mut ev = exact_events(&p);
        // Two attempts: a ChipExec in epoch 0 (aborted) and one in epoch 1.
        ev.push(TraceEvent {
            cycle: 0,
            lane: RUNTIME_LANE,
            seq: 30,
            dur: 90,
            kind: EventKind::ReplayEpoch { attempt: 0 },
        });
        ev.push(TraceEvent {
            cycle: 200,
            lane: RUNTIME_LANE,
            seq: 31,
            dur: 90,
            kind: EventKind::ReplayEpoch { attempt: 1 },
        });
        ev.push(TraceEvent {
            cycle: 10,
            lane: 0,
            seq: 32,
            dur: 50,
            kind: EventKind::ChipExec {
                depth: 0,
                instructions: 4,
            },
        });
        ev.push(TraceEvent {
            cycle: 218,
            lane: 1,
            seq: 33,
            dur: 42,
            kind: EventKind::ChipExec {
                depth: 1,
                instructions: 8,
            },
        });
        let prof = profile(&p, &ev, 0).unwrap();
        // Only the final epoch's span is profiled.
        assert_eq!(prof.chips.len(), 1);
        let c = &prof.chips[0];
        assert_eq!((c.lane, c.stall, c.busy), (1, 18, 42));
        assert_eq!(c.idle, 100 - 18 - 42);
        assert_eq!(c.instructions, 8);
    }

    #[test]
    fn render_and_summary_cover_the_verdict() {
        let p = planned();
        let prof = profile(&p, &exact_events(&p), 0).unwrap();
        let text = prof.render();
        assert!(text.contains("CERTIFIED"));
        assert!(text.contains("critical path: transfer 0"));
        let json = prof.summary_json();
        assert!(json.contains("\"verdict\": \"certified\""));
        assert!(json.contains("\"length_cycles\": 63"));

        let mut ev = exact_events(&p);
        ev[0].cycle += 3;
        let bad = profile(&p, &ev, 0).unwrap();
        assert!(bad.render().contains("DEVIANT"));
        assert!(bad.summary_json().contains("\"verdict\": \"deviant\""));
    }
}
