//! Cycle-resolved tracing and metrics for the TSM simulator.
//!
//! The paper's system is software-scheduled and fully deterministic, so its
//! execution is *perfectly explainable* — this crate is the layer that does
//! the explaining. It provides two complementary artifacts:
//!
//! - **Structured trace events** ([`TraceEvent`]) keyed by
//!   `(cycle, lane, seq)` and pushed through a [`TraceSink`]. The default
//!   [`NullSink`] makes tracing zero-cost when disabled (a single branch per
//!   emission point); [`RingSink`] buffers events in memory;
//!   [`chrome_trace_json`] renders any event slice as a Chrome-trace /
//!   Perfetto JSON timeline.
//! - **Deterministic metrics** ([`Metrics`]) — counters, gauges, and
//!   cycle-bucketed histograms keyed by static `&str` names — snapshotted
//!   into a serializable, order-independent [`RunMetrics`] that higher
//!   layers attach to their reports as the single source of tally truth.
//! - **Windowed telemetry** ([`telemetry`]) — a [`Sampler`] buckets
//!   counter deltas and gauge levels into fixed virtual-cycle windows,
//!   sealing them into mergeable [`Telemetry`] time series (per-tenant
//!   SLO attainment, per-link/per-chip occupancy heatmaps) that export as
//!   Perfetto counter tracks ([`chrome_trace_json_telemetry`]) and a
//!   deterministic JSON block.
//! - **Causal latency attribution** ([`attribution`]) — joins each served
//!   request's lifetime into a [`LatencyBreakdown`] whose stage components
//!   (window wait, queue wait, alignment, replay, execute, drain) sum
//!   *exactly* to its end-to-end latency — a typed [`AttributionError`] on
//!   any gap or overlap — aggregated into per-tenant/per-stage
//!   [`RunMetrics`] by [`AttributionReport`] and rendered as per-request
//!   span tracks by [`chrome_trace_json_attribution`].
//! - **Plan-vs-actual profiling** ([`profile::profile`]) — joins a
//!   compiled plan's predicted per-hop schedule ([`PlannedTimeline`])
//!   with the observed event stream into a [`LaunchProfile`]: link
//!   utilization, chip busy/stall/idle, the critical path with
//!   per-transfer slack, and a machine-checked [`Conformance`] verdict
//!   (zero skew on fault-free runs; itemized per-link skew on replays).
//!
//! Determinism discipline: every emission point in the simulator sits on a
//! serial code path (plan binding, the post-level merge loop, the runtime's
//! launch loop), so the event *sequence* — not just the sorted set — is
//! bit-identical between serial and parallel execution. Tests in `tsm-core`
//! enforce this, which makes the trace itself a correctness oracle.
//!
//! This crate is a leaf: it speaks raw `u32`/`u64` lane, link, and node
//! identifiers so every other crate in the workspace can depend on it
//! without cycles.

pub mod attribution;
pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod telemetry;

pub use attribution::{AttributionError, AttributionReport, LatencyBreakdown, Stage};
pub use chrome::{
    chrome_trace_json, chrome_trace_json_attribution, chrome_trace_json_overlay,
    chrome_trace_json_telemetry, chrome_trace_json_with,
};
pub use event::{EventKind, ShedReason, TraceEvent, Tracer, RUNTIME_LANE, SERVING_LANE};
pub use json::{escape_json, unescape_json, Cursor, JsonWriter};
pub use metrics::{names, CounterEntry, CycleHistogram, GaugeEntry, Metrics, RunMetrics};
pub use profile::{
    Conformance, LaunchProfile, PlannedChip, PlannedHop, PlannedTimeline, ProfileError,
};
pub use sink::{NullSink, RingSink, TraceSink};
pub use telemetry::{sparkline, Sampler, SeriesKind, Telemetry, TelemetryConfig, TimeSeries};
