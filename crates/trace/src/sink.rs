//! Trace sinks: where emitted events go.

use std::collections::VecDeque;
use std::fmt::Debug;
use std::sync::Mutex;

use crate::event::TraceEvent;

/// Receiver for trace events. Implementations must be `Send + Sync` because
/// a sink may be shared (behind `Arc`) between the runtime and its executor;
/// they are only ever *called* from serial code paths, so a plain `Mutex`
/// suffices internally.
pub trait TraceSink: Send + Sync + Debug {
    /// False lets emission points skip event construction entirely —
    /// [`NullSink`] returns false, making disabled tracing one branch.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Accepts one event. Events arrive in emission order, which the
    /// simulator guarantees is deterministic.
    fn record(&self, event: TraceEvent);

    /// Events this sink had to discard (bounded buffers evict, the rest
    /// never drop). Consumers that interpret a timeline as *complete* —
    /// the conformance profiler above all — must check this and refuse a
    /// lossy trace rather than silently reading truncation as truth.
    fn dropped(&self) -> u64 {
        0
    }
}

/// The zero-cost disabled sink: reports itself disabled, records nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TraceEvent) {}
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// In-memory bounded sink. Keeps the most recent `capacity` events,
/// counting (not silently discarding) anything older that had to be
/// evicted.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    inner: Mutex<Ring>,
}

impl RingSink {
    /// A sink retaining at most `capacity` events (oldest evicted first).
    /// Capacity 0 is honored literally: every record is counted as
    /// dropped and nothing is buffered — a pure drop counter.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity,
            inner: Mutex::new(Ring::default()),
        }
    }

    /// Events currently buffered, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap().events.iter().copied().collect()
    }

    /// Events sorted by the canonical `(cycle, lane, seq)` merge key.
    pub fn sorted_events(&self) -> Vec<TraceEvent> {
        let mut ev = self.events();
        ev.sort_by_key(|e| e.key());
        ev
    }

    /// Events evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all buffered events and resets the eviction counter.
    pub fn clear(&self) {
        let mut g = self.inner.lock().unwrap();
        g.events.clear();
        g.dropped = 0;
    }

    /// Renders the buffered events as Chrome-trace JSON (see
    /// [`crate::chrome_trace_json`]). A lossy buffer gets a warning banner
    /// at the head of the timeline so truncation is visible in the viewer.
    pub fn chrome_trace(&self) -> String {
        crate::chrome::chrome_trace_json_with(&self.events(), RingSink::dropped(self))
    }
}

impl Default for RingSink {
    /// 64 Ki events — enough for every workload in this repo with room to
    /// spare, small enough to never matter (each event is a few words).
    fn default() -> Self {
        RingSink::new(1 << 16)
    }
}

impl TraceSink for RingSink {
    fn record(&self, event: TraceEvent) {
        let mut g = self.inner.lock().unwrap();
        if self.capacity == 0 {
            g.dropped += 1;
            return;
        }
        if g.events.len() == self.capacity {
            g.events.pop_front();
            g.dropped += 1;
        }
        g.events.push_back(event);
    }

    fn dropped(&self) -> u64 {
        RingSink::dropped(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(seq: u32) -> TraceEvent {
        TraceEvent {
            cycle: seq as u64,
            lane: 0,
            seq,
            dur: 0,
            kind: EventKind::Align,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let ring = RingSink::new(3);
        for s in 0..5 {
            ring.record(ev(s));
        }
        assert_eq!(ring.dropped(), 2);
        let seqs: Vec<u32> = ring.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn capacity_zero_drops_everything_and_buffers_nothing() {
        let ring = RingSink::new(0);
        for s in 0..4 {
            ring.record(ev(s));
        }
        assert!(ring.is_empty(), "capacity 0 never buffers");
        assert_eq!(ring.dropped(), 4, "every record is accounted as dropped");
        // The exporter banner must agree with the drop counter.
        let json = ring.chrome_trace();
        assert!(json.contains("WARNING: trace truncated — 4 event(s) dropped"));
        assert!(json.contains("\"dropped\":4"));
    }

    #[test]
    fn exactly_at_capacity_drops_nothing_one_past_drops_one() {
        let ring = RingSink::new(3);
        for s in 0..3 {
            ring.record(ev(s));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 0, "filling to capacity exactly is lossless");
        assert!(!ring.chrome_trace().contains("WARNING"));
        ring.record(ev(3));
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 1, "one past capacity evicts exactly one");
        let seqs: Vec<u32> = ring.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3], "oldest event is the one evicted");
        assert!(ring
            .chrome_trace()
            .contains("WARNING: trace truncated — 1 event(s) dropped"));
    }

    #[test]
    fn clear_resets_everything() {
        let ring = RingSink::new(2);
        ring.record(ev(0));
        ring.record(ev(1));
        ring.record(ev(2));
        assert!(!ring.is_empty());
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn sorted_events_orders_by_merge_key() {
        let ring = RingSink::new(8);
        ring.record(TraceEvent {
            cycle: 9,
            lane: 1,
            seq: 0,
            dur: 0,
            kind: EventKind::Align,
        });
        ring.record(TraceEvent {
            cycle: 3,
            lane: 0,
            seq: 1,
            dur: 0,
            kind: EventKind::Align,
        });
        let sorted = ring.sorted_events();
        assert_eq!(sorted[0].cycle, 3);
        assert_eq!(sorted[1].cycle, 9);
    }
}
