//! JSON string escaping for the workspace's hand-rolled emitters.
//!
//! The offline toolchain stubs out serde_json, so every serializer in this
//! repo writes JSON by hand — and a hand-rolled emitter that interpolates
//! a label containing `"` or `\` corrupts the whole document. Every
//! emitter (chrome traces, metrics snapshots, schedule dumps, bench
//! reports) routes its strings through [`escape_json`]; [`unescape_json`]
//! is the exact inverse, used by the hand-rolled parsers and by the
//! round-trip tests that pin the pair together.

/// Escapes `s` for placement between double quotes in a JSON document.
///
/// Handles the two structurally dangerous characters (`"`, `\`), the
/// named control escapes, and falls back to `\u00XX` for the remaining
/// C0 control characters. Everything else (including non-ASCII) passes
/// through unchanged — JSON strings are Unicode.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Inverts [`escape_json`]: decodes the escape sequences of a JSON string
/// body (the text *between* the quotes). Errors on malformed escapes so a
/// corrupted document is reported rather than silently misread.
pub fn unescape_json(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('b') => out.push('\u{0008}'),
            Some('f') => out.push('\u{000C}'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return Err(format!("truncated \\u escape: \\u{hex}"));
                }
                let code =
                    u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u escape: {hex}"))?;
                // Surrogates can't appear in this workspace's output
                // (escape_json only \u-encodes C0 controls), so a lone
                // surrogate is a corruption, not a case to paper over.
                let c = char::from_u32(code).ok_or(format!("invalid code point U+{code:04X}"))?;
                out.push(c);
            }
            Some(other) => return Err(format!("unknown escape: \\{other}")),
            None => return Err("dangling backslash".to_string()),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dangerous_characters_are_escaped() {
        assert_eq!(escape_json(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_json(r"a\b"), r"a\\b");
        assert_eq!(escape_json("a\nb\tc"), r"a\nb\tc");
        assert_eq!(escape_json("\u{0001}"), "\\u0001");
    }

    #[test]
    fn plain_text_passes_through() {
        assert_eq!(escape_json("link.fec.corrected#5"), "link.fec.corrected#5");
        assert_eq!(escape_json("héllo ↔ wörld"), "héllo ↔ wörld");
    }

    #[test]
    fn round_trips_exactly() {
        for s in [
            "",
            "plain",
            r#"qu"ote"#,
            r"back\slash",
            "new\nline tab\t cr\r",
            "ctrl \u{0002}\u{001f} bytes",
            "unicode … ok",
            r#"\" already-escaped-looking input \\ "#,
        ] {
            let escaped = escape_json(s);
            assert_eq!(unescape_json(&escaped).unwrap(), s, "input {s:?}");
        }
    }

    #[test]
    fn unescape_rejects_malformed_input() {
        assert!(unescape_json("\\").is_err());
        assert!(unescape_json("\\q").is_err());
        assert!(unescape_json("\\u12").is_err());
        assert!(unescape_json("\\uzzzz").is_err());
        assert!(unescape_json("\\ud800").is_err(), "lone surrogate");
    }
}
