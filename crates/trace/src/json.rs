//! JSON string escaping for the workspace's hand-rolled emitters.
//!
//! The offline toolchain stubs out serde_json, so every serializer in this
//! repo writes JSON by hand — and a hand-rolled emitter that interpolates
//! a label containing `"` or `\` corrupts the whole document. Every
//! emitter (chrome traces, metrics snapshots, schedule dumps, bench
//! reports) routes its strings through [`escape_json`]; [`unescape_json`]
//! is the exact inverse, used by the hand-rolled parsers and by the
//! round-trip tests that pin the pair together.

/// Escapes `s` for placement between double quotes in a JSON document.
///
/// Handles the two structurally dangerous characters (`"`, `\`), the
/// named control escapes, and falls back to `\u00XX` for the remaining
/// C0 control characters. Everything else (including non-ASCII) passes
/// through unchanged — JSON strings are Unicode.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Inverts [`escape_json`]: decodes the escape sequences of a JSON string
/// body (the text *between* the quotes). Errors on malformed escapes so a
/// corrupted document is reported rather than silently misread.
pub fn unescape_json(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('b') => out.push('\u{0008}'),
            Some('f') => out.push('\u{000C}'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return Err(format!("truncated \\u escape: \\u{hex}"));
                }
                let code =
                    u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u escape: {hex}"))?;
                // Surrogates can't appear in this workspace's output
                // (escape_json only \u-encodes C0 controls), so a lone
                // surrogate is a corruption, not a case to paper over.
                let c = char::from_u32(code).ok_or(format!("invalid code point U+{code:04X}"))?;
                out.push(c);
            }
            Some(other) => return Err(format!("unknown escape: \\{other}")),
            None => return Err("dangling backslash".to_string()),
        }
    }
    Ok(out)
}

/// Incremental JSON emitter shared by the workspace's hand-rolled
/// serializers (bench records, compiled-plan snapshots).
///
/// Tracks the object/array nesting stack so commas, indentation, and
/// string escaping are structural guarantees rather than per-emitter
/// format-string discipline. Pretty output uses two-space indentation
/// (`"key": value`), matching the tracked JSON artifacts; compact output
/// has no whitespace at all.
#[derive(Debug)]
pub struct JsonWriter {
    out: String,
    pretty: bool,
    /// One frame per open container: number of entries written so far.
    stack: Vec<usize>,
    /// True right after a key: the next value attaches to it, no comma.
    pending_key: bool,
}

impl JsonWriter {
    /// A writer producing two-space-indented output.
    pub fn pretty() -> JsonWriter {
        JsonWriter {
            out: String::new(),
            pretty: true,
            stack: Vec::new(),
            pending_key: false,
        }
    }

    /// A writer producing whitespace-free output.
    pub fn compact() -> JsonWriter {
        JsonWriter {
            out: String::new(),
            pretty: false,
            stack: Vec::new(),
            pending_key: false,
        }
    }

    /// Comma/indent bookkeeping before a key or a bare value.
    fn sep(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(count) = self.stack.last_mut() {
            if *count > 0 {
                self.out.push(',');
            }
            *count += 1;
            if self.pretty {
                self.out.push('\n');
                for _ in 0..self.stack.len() {
                    self.out.push_str("  ");
                }
            }
        }
    }

    /// Writes `"key":` inside the current object; the next call writes its
    /// value.
    pub fn key(&mut self, key: &str) -> &mut Self {
        self.sep();
        self.out.push('"');
        self.out.push_str(&escape_json(key));
        self.out.push_str(if self.pretty { "\": " } else { "\":" });
        self.pending_key = true;
        self
    }

    /// Opens an object (as a value or array element).
    pub fn begin_object(&mut self) -> &mut Self {
        self.sep();
        self.out.push('{');
        self.stack.push(0);
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        let count = self.stack.pop().expect("end_object without begin_object");
        if count > 0 && self.pretty {
            self.out.push('\n');
            for _ in 0..self.stack.len() {
                self.out.push_str("  ");
            }
        }
        self.out.push('}');
        self
    }

    /// Opens an array (as a value or array element).
    pub fn begin_array(&mut self) -> &mut Self {
        self.sep();
        self.out.push('[');
        self.stack.push(0);
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        let count = self.stack.pop().expect("end_array without begin_array");
        if count > 0 && self.pretty {
            self.out.push('\n');
            for _ in 0..self.stack.len() {
                self.out.push_str("  ");
            }
        }
        self.out.push(']');
        self
    }

    /// Writes an escaped string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.sep();
        self.out.push('"');
        self.out.push_str(&escape_json(s));
        self.out.push('"');
        self
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.sep();
        self.out.push_str(&v.to_string());
        self
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.sep();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes a pre-formatted value verbatim (callers own float
    /// precision; the writer owns separators only).
    pub fn raw(&mut self, v: &str) -> &mut Self {
        self.sep();
        self.out.push_str(v);
        self
    }

    /// Shorthand for `key(k)` + `u64(v)`.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).u64(v)
    }

    /// Shorthand for `key(k)` + `string(v)`.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).string(v)
    }

    /// Shorthand for `key(k)` + `raw(v)`.
    pub fn field_raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).raw(v)
    }

    /// Finishes the document. Panics on unbalanced containers — that is a
    /// serializer bug, not an input condition.
    pub fn finish(self) -> String {
        assert!(
            self.stack.is_empty() && !self.pending_key,
            "unbalanced JSON writer: {} open containers",
            self.stack.len()
        );
        self.out
    }
}

/// Recursive-descent cursor over the workspace's fixed JSON schemas,
/// shared by every hand-rolled parser (schedule dumps, compiled plans).
///
/// Field order is not significant in the `object` combinator; strings
/// decode through [`unescape_json`], the exact inverse of the emitters'
/// escaping. Errors carry byte offsets so corrupted documents are
/// reported, never silently misread.
pub struct Cursor<'a> {
    s: &'a str,
    i: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `s`.
    pub fn new(s: &'a str) -> Cursor<'a> {
        Cursor { s, i: 0 }
    }

    /// Skips JSON whitespace.
    pub fn skip_ws(&mut self) {
        while self.s[self.i..].starts_with([' ', '\n', '\r', '\t']) {
            self.i += 1;
        }
    }

    /// Consumes `c` (after whitespace) or errors.
    pub fn eat(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.s[self.i..].starts_with(c) {
            self.i += c.len_utf8();
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.i))
        }
    }

    /// The next non-whitespace character, if any.
    pub fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.s[self.i..].chars().next()
    }

    /// Parses a quoted, escaped string.
    pub fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let start = self.i;
        let bytes = self.s.as_bytes();
        let mut escaped = false;
        while self.i < bytes.len() {
            match bytes[self.i] {
                b'\\' if !escaped => escaped = true,
                b'"' if !escaped => {
                    let raw = &self.s[start..self.i];
                    self.i += 1;
                    return unescape_json(raw);
                }
                _ => escaped = false,
            }
            self.i += 1;
        }
        Err("unterminated string".to_string())
    }

    /// Parses a non-negative integer.
    pub fn u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.i;
        let bytes = self.s.as_bytes();
        while self.i < bytes.len() && bytes[self.i].is_ascii_digit() {
            self.i += 1;
        }
        self.s[start..self.i]
            .parse()
            .map_err(|e| format!("bad integer at byte {start}: {e}"))
    }

    /// Parses `true` or `false`.
    pub fn bool(&mut self) -> Result<bool, String> {
        self.skip_ws();
        if self.s[self.i..].starts_with("true") {
            self.i += 4;
            Ok(true)
        } else if self.s[self.i..].starts_with("false") {
            self.i += 5;
            Ok(false)
        } else {
            Err(format!("expected boolean at byte {}", self.i))
        }
    }

    /// Parses `{"k": v, ...}`, handing each key to `field`.
    pub fn object(
        &mut self,
        mut field: impl FnMut(&mut Cursor<'a>, &str) -> Result<(), String>,
    ) -> Result<(), String> {
        self.eat('{')?;
        if self.peek() == Some('}') {
            return self.eat('}');
        }
        loop {
            let key = self.string()?;
            self.eat(':')?;
            field(self, &key)?;
            match self.peek() {
                Some(',') => self.eat(',')?,
                _ => return self.eat('}'),
            }
        }
    }

    /// Parses `[item, ...]`.
    pub fn array(
        &mut self,
        mut item: impl FnMut(&mut Cursor<'a>) -> Result<(), String>,
    ) -> Result<(), String> {
        self.eat('[')?;
        if self.peek() == Some(']') {
            return self.eat(']');
        }
        loop {
            item(self)?;
            match self.peek() {
                Some(',') => self.eat(',')?,
                _ => return self.eat(']'),
            }
        }
    }

    /// Skips one complete JSON value — scalar, object, or array — and
    /// returns its exact source slice, for nested documents that a
    /// different parser owns (e.g. an embedded compiled-plan dump).
    pub fn raw_value(&mut self) -> Result<&'a str, String> {
        self.skip_ws();
        let start = self.i;
        let bytes = self.s.as_bytes();
        let mut i = self.i;
        let mut depth = 0usize;
        let mut in_str = false;
        let mut escape = false;
        while i < bytes.len() {
            let c = bytes[i];
            if in_str {
                if escape {
                    escape = false;
                } else if c == b'\\' {
                    escape = true;
                } else if c == b'"' {
                    in_str = false;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
                continue;
            }
            match c {
                b'"' => {
                    in_str = true;
                    i += 1;
                }
                b'{' | b'[' => {
                    depth += 1;
                    i += 1;
                }
                b'}' | b']' if depth == 0 => break,
                b'}' | b']' => {
                    depth -= 1;
                    i += 1;
                    if depth == 0 {
                        break;
                    }
                }
                b',' if depth == 0 => break,
                _ => i += 1,
            }
        }
        if i == start || depth != 0 || in_str {
            return Err(format!("malformed value at byte {start}"));
        }
        self.i = i;
        Ok(&self.s[start..i])
    }

    /// Errors unless only whitespace remains.
    pub fn expect_end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.i != self.s.len() {
            return Err(format!("trailing garbage at byte {}", self.i));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dangerous_characters_are_escaped() {
        assert_eq!(escape_json(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_json(r"a\b"), r"a\\b");
        assert_eq!(escape_json("a\nb\tc"), r"a\nb\tc");
        assert_eq!(escape_json("\u{0001}"), "\\u0001");
    }

    #[test]
    fn plain_text_passes_through() {
        assert_eq!(escape_json("link.fec.corrected#5"), "link.fec.corrected#5");
        assert_eq!(escape_json("héllo ↔ wörld"), "héllo ↔ wörld");
    }

    #[test]
    fn round_trips_exactly() {
        for s in [
            "",
            "plain",
            r#"qu"ote"#,
            r"back\slash",
            "new\nline tab\t cr\r",
            "ctrl \u{0002}\u{001f} bytes",
            "unicode … ok",
            r#"\" already-escaped-looking input \\ "#,
        ] {
            let escaped = escape_json(s);
            assert_eq!(unescape_json(&escaped).unwrap(), s, "input {s:?}");
        }
    }

    #[test]
    fn unescape_rejects_malformed_input() {
        assert!(unescape_json("\\").is_err());
        assert!(unescape_json("\\q").is_err());
        assert!(unescape_json("\\u12").is_err());
        assert!(unescape_json("\\uzzzz").is_err());
        assert!(unescape_json("\\ud800").is_err(), "lone surrogate");
    }

    #[test]
    fn writer_emits_pretty_nested_document() {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field_str("name", "be\"nch");
        w.field_u64("count", 3);
        w.key("items").begin_array();
        w.begin_object();
        w.field_u64("x", 1).field_raw("r", "0.500");
        w.end_object();
        w.u64(7);
        w.end_array();
        w.key("empty").begin_array();
        w.end_array();
        w.end_object();
        let s = w.finish();
        assert_eq!(
            s,
            "{\n  \"name\": \"be\\\"nch\",\n  \"count\": 3,\n  \"items\": [\n    {\n      \
             \"x\": 1,\n      \"r\": 0.500\n    },\n    7\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn writer_compact_has_no_whitespace() {
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.field_u64("a", 1);
        w.key("b").begin_array();
        w.bool(true).bool(false);
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), "{\"a\":1,\"b\":[true,false]}");
    }

    #[test]
    fn cursor_parses_what_writer_emits() {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.field_str("label", "h\u{0001}i\\there");
        w.field_u64("n", 42);
        w.key("flags").begin_array();
        w.bool(true);
        w.end_array();
        w.end_object();
        let doc = w.finish();

        let mut label = String::new();
        let mut n = 0u64;
        let mut flags = Vec::new();
        let mut c = Cursor::new(&doc);
        c.object(|c, key| {
            match key {
                "label" => label = c.string()?,
                "n" => n = c.u64()?,
                "flags" => c.array(|c| {
                    flags.push(c.bool()?);
                    Ok(())
                })?,
                other => return Err(format!("unknown key {other:?}")),
            }
            Ok(())
        })
        .unwrap();
        c.expect_end().unwrap();
        assert_eq!(label, "h\u{0001}i\\there");
        assert_eq!(n, 42);
        assert_eq!(flags, [true]);
    }

    #[test]
    fn cursor_rejects_malformed_documents() {
        assert!(Cursor::new("{\"a\": 1")
            .object(|c, _| c.u64().map(|_| ()))
            .is_err());
        let mut c = Cursor::new("{} x");
        c.object(|_, _| Ok(())).unwrap();
        assert!(c.expect_end().is_err());
    }
}
