//! Request-scoped causal latency attribution.
//!
//! The serving trace already records *what* happened to every request
//! (`RequestEnqueue → BatchBegin → … → RequestComplete`); this module
//! answers *why the request took that long*. A [`LatencyBreakdown`] joins
//! one request's lifetime with the launch that served it and splits the
//! end-to-end enqueue→complete latency into causal stages:
//!
//! - **batch-window wait** — cycles spent while the dispatcher was
//!   deliberately holding the batch window open,
//! - **queue wait** — cycles spent queued behind a busy server,
//! - **alignment** — the launch's one-time hardware-alignment window,
//! - **replay** — execution windows of aborted attempts,
//! - **execute** — the final (successful) attempt's execution window,
//! - **drain** — the inter-epoch drain gaps, one per attempt.
//!
//! The decomposition is *exact*: the six components sum to the measured
//! latency with zero gaps and zero overlaps, or construction fails with a
//! typed [`AttributionError`]. Compile-vs-reuse is recorded as counts
//! ([`LatencyBreakdown::compiles`]/[`LatencyBreakdown::reuses`]) rather
//! than cycles — the launch engine's virtual timeline assigns zero width
//! to plan compilation, so the flag tells you *which path* the batch took
//! while the cycle identity stays exact.
//!
//! Everything here is virtual-cycle arithmetic over values the serving
//! loop already computed, so attribution is observation-only and fully
//! deterministic: the same serve run produces byte-identical
//! [`LatencyBreakdown::to_json`] output every time.

use std::fmt;

use crate::json::{Cursor, JsonWriter};
use crate::metrics::{Metrics, RunMetrics};

/// One causal stage of a request's latency, in stitched-timeline order
/// (the order the cycles were actually spent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// The dispatcher held the batch window open.
    WindowWait,
    /// The request sat queued behind a busy server.
    QueueWait,
    /// The launch's one-time hardware-alignment window.
    Alignment,
    /// Execution windows of aborted attempts (replays).
    Replay,
    /// The final attempt's execution window.
    Execute,
    /// Inter-epoch drain gaps, one per attempt.
    Drain,
}

impl Stage {
    /// Every stage, in stitched-timeline order. The per-request span
    /// tracks render in this order, and [`LatencyBreakdown::critical_stage`]
    /// breaks ties toward the earlier stage.
    pub const ALL: [Stage; 6] = [
        Stage::WindowWait,
        Stage::QueueWait,
        Stage::Alignment,
        Stage::Replay,
        Stage::Execute,
        Stage::Drain,
    ];

    /// Stable display / metric name.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::WindowWait => "window_wait",
            Stage::QueueWait => "queue_wait",
            Stage::Alignment => "alignment",
            Stage::Replay => "replay",
            Stage::Execute => "execute",
            Stage::Drain => "drain",
        }
    }

    /// Name of the per-stage latency histogram in an
    /// [`AttributionReport`]'s metrics.
    pub fn histogram_metric(self) -> &'static str {
        match self {
            Stage::WindowWait => "attr.window_wait",
            Stage::QueueWait => "attr.queue_wait",
            Stage::Alignment => "attr.alignment",
            Stage::Replay => "attr.replay",
            Stage::Execute => "attr.execute",
            Stage::Drain => "attr.drain",
        }
    }

    /// Name of the per-tenant cycle-total counter for this stage
    /// (labelled by tenant id).
    pub fn total_metric(self) -> &'static str {
        match self {
            Stage::WindowWait => "attr.total.window_wait",
            Stage::QueueWait => "attr.total.queue_wait",
            Stage::Alignment => "attr.total.alignment",
            Stage::Replay => "attr.total.replay",
            Stage::Execute => "attr.total.execute",
            Stage::Drain => "attr.total.drain",
        }
    }

    /// Name of the per-tenant critical-verdict counter for this stage
    /// (labelled by tenant id): how many of the tenant's requests had
    /// this stage as their largest component.
    pub fn critical_metric(self) -> &'static str {
        match self {
            Stage::WindowWait => "attr.critical.window_wait",
            Stage::QueueWait => "attr.critical.queue_wait",
            Stage::Alignment => "attr.critical.alignment",
            Stage::Replay => "attr.critical.replay",
            Stage::Execute => "attr.critical.execute",
            Stage::Drain => "attr.critical.drain",
        }
    }

    fn from_str(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|st| st.as_str() == s)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a latency decomposition failed. The sum identity is a structural
/// guarantee of the serving loop's arithmetic, so any of these indicates
/// a bug in the caller's bookkeeping — they are surfaced as typed errors
/// (and asserted across every request in `repro serve`) rather than
/// silently clamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttributionError {
    /// The stage components sum to less than the end-to-end latency:
    /// `missing` cycles are unaccounted for.
    Gap {
        /// Request the breakdown belongs to.
        request: u32,
        /// Sum of the stage components.
        total: u64,
        /// Measured end-to-end latency.
        latency: u64,
        /// `latency - total`.
        missing: u64,
    },
    /// The stage components sum to more than the end-to-end latency:
    /// `excess` cycles were double-counted.
    Overlap {
        /// Request the breakdown belongs to.
        request: u32,
        /// Sum of the stage components.
        total: u64,
        /// Measured end-to-end latency.
        latency: u64,
        /// `total - latency`.
        excess: u64,
    },
    /// A stage's width came out negative during construction (e.g. the
    /// launch timeline is narrower than its own alignment + attempt
    /// windows) — the inputs are inconsistent.
    Underflow {
        /// Request the breakdown belongs to.
        request: u32,
        /// Stage whose width underflowed.
        stage: Stage,
    },
}

impl fmt::Display for AttributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AttributionError::Gap {
                request,
                total,
                latency,
                missing,
            } => write!(
                f,
                "request {request}: stage components sum to {total} but latency is {latency} \
                 ({missing} cycles unattributed)"
            ),
            AttributionError::Overlap {
                request,
                total,
                latency,
                excess,
            } => write!(
                f,
                "request {request}: stage components sum to {total} but latency is {latency} \
                 ({excess} cycles double-counted)"
            ),
            AttributionError::Underflow { request, stage } => write!(
                f,
                "request {request}: stage {stage} width underflowed — inconsistent launch inputs"
            ),
        }
    }
}

impl std::error::Error for AttributionError {}

/// The exact causal decomposition of one served request's latency.
///
/// Invariant (checked at construction and by [`LatencyBreakdown::verify`]):
/// the six stage components sum to `completion - arrival` with zero gaps
/// and zero overlaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Serving-frontend request id (index into the offered slice).
    pub request: u32,
    /// Tenant the request belongs to.
    pub tenant: u32,
    /// Batch that carried the request.
    pub batch: u32,
    /// Arrival (enqueue) cycle.
    pub arrival: u64,
    /// Completion cycle.
    pub completion: u64,
    /// Cycles the dispatcher deliberately held the batch window open.
    pub window_wait: u64,
    /// Cycles spent queued behind a busy server.
    pub queue_wait: u64,
    /// The launch's one-time alignment window.
    pub alignment: u64,
    /// Execution windows of aborted attempts.
    pub replay: u64,
    /// The final attempt's execution window.
    pub execute: u64,
    /// Inter-epoch drain gaps (one per attempt).
    pub drain: u64,
    /// Plan compilations the batch's launch performed (0 on a warm path).
    pub compiles: u32,
    /// Compile-cache reuses the batch's launch took.
    pub reuses: u32,
}

impl LatencyBreakdown {
    /// Joins one request's dispatch bookkeeping with its batch's launch
    /// record into an exact decomposition.
    ///
    /// `dispatch` is the batch's dispatch cycle
    /// (`max(server_free_at, window_deadline)`), `window_deadline` the
    /// batch-window deadline in force at dispatch, `final_span` the
    /// compiled span of the launch's final program, `attempts` the
    /// execution attempts consumed, and `epoch_gap` the per-attempt drain
    /// gap. The replay component is derived as the timeline residual, so
    /// it stays exact even when a mid-launch failover recompile changes
    /// the program span between attempts.
    #[allow(clippy::too_many_arguments)]
    pub fn from_dispatch(
        request: u32,
        tenant: u32,
        batch: u32,
        arrival: u64,
        dispatch: u64,
        window_deadline: u64,
        completion: u64,
        alignment: u64,
        final_span: u64,
        attempts: u32,
        epoch_gap: u64,
        compiles: u32,
        reuses: u32,
    ) -> Result<LatencyBreakdown, AttributionError> {
        let wait = dispatch
            .checked_sub(arrival)
            .ok_or(AttributionError::Underflow {
                request,
                stage: Stage::QueueWait,
            })?;
        // The window portion of the wait ends when the batch window
        // closes; a stale deadline (from a previous batch) contributes
        // nothing. Clamped into the wait so the pair always partitions it.
        let window_wait = dispatch
            .min(window_deadline)
            .saturating_sub(arrival)
            .min(wait);
        let queue_wait = wait - window_wait;
        let service = completion
            .checked_sub(dispatch)
            .ok_or(AttributionError::Underflow {
                request,
                stage: Stage::Execute,
            })?;
        // The launch timeline is alignment + one (span+gap) window per
        // attempt; the final attempt's window is `final_span.max(1)` (the
        // engine widens zero-span programs to one cycle). Everything the
        // earlier attempts consumed is the residual — exact by
        // construction, even across failover recompiles.
        let execute = final_span.max(1);
        let drain = epoch_gap.saturating_mul(u64::from(attempts));
        let replay = service
            .checked_sub(alignment)
            .and_then(|r| r.checked_sub(drain))
            .and_then(|r| r.checked_sub(execute))
            .ok_or(AttributionError::Underflow {
                request,
                stage: Stage::Replay,
            })?;
        let b = LatencyBreakdown {
            request,
            tenant,
            batch,
            arrival,
            completion,
            window_wait,
            queue_wait,
            alignment,
            replay,
            execute,
            drain,
            compiles,
            reuses,
        };
        b.verify()?;
        Ok(b)
    }

    /// The measured end-to-end latency (`completion - arrival`).
    pub fn latency(&self) -> u64 {
        self.completion - self.arrival
    }

    /// The width of one stage.
    pub fn component(&self, stage: Stage) -> u64 {
        match stage {
            Stage::WindowWait => self.window_wait,
            Stage::QueueWait => self.queue_wait,
            Stage::Alignment => self.alignment,
            Stage::Replay => self.replay,
            Stage::Execute => self.execute,
            Stage::Drain => self.drain,
        }
    }

    /// Sum of the six stage components.
    pub fn total(&self) -> u64 {
        Stage::ALL.iter().map(|&s| self.component(s)).sum()
    }

    /// Checks the exactness invariant: components sum to the latency, no
    /// gap, no overlap.
    pub fn verify(&self) -> Result<(), AttributionError> {
        let total = self.total();
        let latency = self.latency();
        if total < latency {
            return Err(AttributionError::Gap {
                request: self.request,
                total,
                latency,
                missing: latency - total,
            });
        }
        if total > latency {
            return Err(AttributionError::Overlap {
                request: self.request,
                total,
                latency,
                excess: total - latency,
            });
        }
        Ok(())
    }

    /// The critical-stage verdict: the stage that consumed the most
    /// cycles, ties broken toward the earlier stage in timeline order.
    pub fn critical_stage(&self) -> Stage {
        let mut best = Stage::ALL[0];
        for &s in &Stage::ALL[1..] {
            if self.component(s) > self.component(best) {
                best = s;
            }
        }
        best
    }

    /// Compact, byte-deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::compact();
        w.begin_object()
            .field_u64("request", u64::from(self.request))
            .field_u64("tenant", u64::from(self.tenant))
            .field_u64("batch", u64::from(self.batch))
            .field_u64("arrival", self.arrival)
            .field_u64("completion", self.completion)
            .field_u64("window_wait", self.window_wait)
            .field_u64("queue_wait", self.queue_wait)
            .field_u64("alignment", self.alignment)
            .field_u64("replay", self.replay)
            .field_u64("execute", self.execute)
            .field_u64("drain", self.drain)
            .field_u64("compiles", u64::from(self.compiles))
            .field_u64("reuses", u64::from(self.reuses))
            .field_str("critical", self.critical_stage().as_str());
        w.end_object();
        w.finish()
    }

    /// Parses what [`LatencyBreakdown::to_json`] emits (the `critical`
    /// field is derived and merely validated against the components).
    pub fn from_json(s: &str) -> Result<LatencyBreakdown, String> {
        let mut c = Cursor::new(s);
        let b = Self::parse(&mut c)?;
        c.expect_end()?;
        Ok(b)
    }

    /// Parses one breakdown object at the cursor (for embedding in larger
    /// documents).
    pub fn parse(c: &mut Cursor<'_>) -> Result<LatencyBreakdown, String> {
        let mut b = LatencyBreakdown {
            request: 0,
            tenant: 0,
            batch: 0,
            arrival: 0,
            completion: 0,
            window_wait: 0,
            queue_wait: 0,
            alignment: 0,
            replay: 0,
            execute: 0,
            drain: 0,
            compiles: 0,
            reuses: 0,
        };
        let mut critical = None;
        c.object(|c, key| {
            match key {
                "request" => b.request = parse_u32(c, "request")?,
                "tenant" => b.tenant = parse_u32(c, "tenant")?,
                "batch" => b.batch = parse_u32(c, "batch")?,
                "arrival" => b.arrival = c.u64()?,
                "completion" => b.completion = c.u64()?,
                "window_wait" => b.window_wait = c.u64()?,
                "queue_wait" => b.queue_wait = c.u64()?,
                "alignment" => b.alignment = c.u64()?,
                "replay" => b.replay = c.u64()?,
                "execute" => b.execute = c.u64()?,
                "drain" => b.drain = c.u64()?,
                "compiles" => b.compiles = parse_u32(c, "compiles")?,
                "reuses" => b.reuses = parse_u32(c, "reuses")?,
                "critical" => {
                    let s = c.string()?;
                    critical = Some(Stage::from_str(&s).ok_or(format!("unknown stage {s:?}"))?);
                }
                other => return Err(format!("unknown breakdown key {other:?}")),
            }
            Ok(())
        })?;
        b.verify().map_err(|e| e.to_string())?;
        if let Some(cs) = critical {
            if cs != b.critical_stage() {
                return Err(format!(
                    "critical verdict {cs} disagrees with components ({})",
                    b.critical_stage()
                ));
            }
        }
        Ok(b)
    }
}

fn parse_u32(c: &mut Cursor<'_>, what: &str) -> Result<u32, String> {
    u32::try_from(c.u64()?).map_err(|_| format!("{what} out of range"))
}

/// The aggregated attribution record of one serve run: every served
/// request's verified [`LatencyBreakdown`] (in completion order, the
/// order the serving loop retired them) plus the per-stage / per-tenant
/// aggregation as [`RunMetrics`]:
///
/// - one `attr.<stage>` histogram per stage over all requests,
/// - one `attr.total.<stage>` counter per stage, labelled by tenant id,
///   holding the tenant's total cycles in that stage,
/// - one `attr.critical.<stage>` counter per stage, labelled by tenant
///   id, counting the tenant's requests whose verdict was that stage.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionReport {
    /// Verified breakdowns, one per served request, in retirement order.
    pub breakdowns: Vec<LatencyBreakdown>,
    /// Per-stage histograms and per-tenant stage totals / critical
    /// verdicts (see the struct docs for the metric names).
    pub metrics: RunMetrics,
}

impl AttributionReport {
    /// Verifies every breakdown and aggregates the run's metrics. The
    /// first gap/overlap aborts the whole report — a partially attributed
    /// run is a bookkeeping bug, not data.
    pub fn from_breakdowns(
        breakdowns: Vec<LatencyBreakdown>,
    ) -> Result<AttributionReport, AttributionError> {
        let m = Metrics::default();
        for b in &breakdowns {
            b.verify()?;
            for s in Stage::ALL {
                let width = b.component(s);
                m.observe_cycles(s.histogram_metric(), width);
                m.inc_labeled(s.total_metric(), b.tenant, width);
            }
            m.inc_labeled(b.critical_stage().critical_metric(), b.tenant, 1);
        }
        Ok(AttributionReport {
            breakdowns,
            metrics: m.snapshot(),
        })
    }

    /// Requests attributed.
    pub fn len(&self) -> usize {
        self.breakdowns.len()
    }

    /// True when no request was attributed.
    pub fn is_empty(&self) -> bool {
        self.breakdowns.is_empty()
    }

    /// How many requests had `stage` as their critical-stage verdict
    /// (all tenants).
    pub fn critical_count(&self, stage: Stage) -> u64 {
        self.metrics.counter(stage.critical_metric())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean(request: u32) -> LatencyBreakdown {
        // window 100 + queue 50, then align 30 + 1 attempt of span 400
        // with gap 64: latency = 150 + 30 + 400 + 64 = 644.
        LatencyBreakdown::from_dispatch(
            request,
            1,
            0,
            1_000,
            1_150,
            1_100,
            1_150 + 30 + 400 + 64,
            30,
            400,
            1,
            64,
            1,
            0,
        )
        .unwrap()
    }

    #[test]
    fn clean_dispatch_sums_exactly() {
        let b = clean(7);
        assert_eq!(b.window_wait, 100);
        assert_eq!(b.queue_wait, 50);
        assert_eq!(b.alignment, 30);
        assert_eq!(b.replay, 0);
        assert_eq!(b.execute, 400);
        assert_eq!(b.drain, 64);
        assert_eq!(b.total(), b.latency());
        b.verify().unwrap();
        assert_eq!(b.critical_stage(), Stage::Execute);
    }

    #[test]
    fn replay_is_the_timeline_residual() {
        // 3 attempts: two aborted at span 400 each, final at span 380
        // (failover recompile shrank the program).
        let service = 30 + (400 + 64) + (400 + 64) + (380 + 64);
        let b = LatencyBreakdown::from_dispatch(0, 0, 2, 0, 0, 0, service, 30, 380, 3, 64, 2, 1)
            .unwrap();
        assert_eq!(b.replay, 800, "both aborted attempt windows");
        assert_eq!(b.drain, 3 * 64);
        assert_eq!(b.execute, 380);
        assert_eq!(b.total(), b.latency());
        assert_eq!(b.critical_stage(), Stage::Replay);
    }

    #[test]
    fn stale_window_deadline_attributes_pure_queue_wait() {
        // The window closed long before this request arrived: all wait is
        // queue wait.
        let b = LatencyBreakdown::from_dispatch(
            3,
            0,
            1,
            5_000,
            5_200,
            100,
            5_200 + 495,
            30,
            400,
            1,
            64,
            0,
            1,
        )
        .unwrap();
        assert_eq!(b.window_wait, 0);
        assert_eq!(b.queue_wait, 200);
        b.verify().unwrap();
    }

    #[test]
    fn inconsistent_inputs_underflow_typed() {
        // Timeline narrower than alignment + attempt windows.
        let err = LatencyBreakdown::from_dispatch(9, 0, 0, 0, 0, 0, 10, 30, 400, 1, 64, 0, 0)
            .unwrap_err();
        assert!(matches!(
            err,
            AttributionError::Underflow {
                request: 9,
                stage: Stage::Replay
            }
        ));
    }

    #[test]
    fn verify_reports_gap_and_overlap() {
        let mut b = clean(4);
        b.execute -= 10;
        let err = b.verify().unwrap_err();
        assert!(
            matches!(err, AttributionError::Gap { missing: 10, .. }),
            "{err}"
        );
        b.execute += 25;
        let err = b.verify().unwrap_err();
        assert!(
            matches!(err, AttributionError::Overlap { excess: 15, .. }),
            "{err}"
        );
    }

    #[test]
    fn critical_stage_breaks_ties_toward_earlier_timeline_order() {
        let mut b = clean(0);
        // QueueWait precedes Execute in timeline order, so on an exact
        // tie the earlier stage takes the verdict.
        b.queue_wait = b.execute;
        b.window_wait = 0;
        b.completion = b.arrival + b.total();
        b.verify().unwrap();
        assert_eq!(b.critical_stage(), Stage::QueueWait);
    }

    #[test]
    fn json_round_trips() {
        let b = clean(11);
        let json = b.to_json();
        let back = LatencyBreakdown::from_json(&json).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.to_json(), json, "re-serialization is byte-identical");
    }

    #[test]
    fn from_json_rejects_inconsistent_documents() {
        let mut b = clean(0);
        b.drain += 1; // break the sum identity
        let mut w = JsonWriter::compact();
        w.begin_object()
            .field_u64("arrival", b.arrival)
            .field_u64("completion", b.completion)
            .field_u64("window_wait", b.window_wait)
            .field_u64("queue_wait", b.queue_wait)
            .field_u64("alignment", b.alignment)
            .field_u64("replay", b.replay)
            .field_u64("execute", b.execute)
            .field_u64("drain", b.drain);
        w.end_object();
        assert!(LatencyBreakdown::from_json(&w.finish()).is_err());
        assert!(LatencyBreakdown::from_json("{\"bogus\":1}").is_err());
    }

    #[test]
    fn report_aggregates_per_stage_and_per_tenant() {
        let mut b2 = clean(2);
        b2.tenant = 2;
        let report = AttributionReport::from_breakdowns(vec![clean(1), b2]).unwrap();
        assert_eq!(report.len(), 2);
        let h = report
            .metrics
            .histogram(Stage::Execute.histogram_metric())
            .unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(
            report
                .metrics
                .counter_labeled(Stage::QueueWait.total_metric(), 1),
            50
        );
        assert_eq!(
            report
                .metrics
                .counter_labeled(Stage::QueueWait.total_metric(), 2),
            50
        );
        assert_eq!(report.critical_count(Stage::Execute), 2);
        assert_eq!(
            report
                .metrics
                .counter_labeled(Stage::Execute.critical_metric(), 2),
            1
        );
    }

    #[test]
    fn report_refuses_a_single_bad_breakdown() {
        let mut bad = clean(5);
        bad.alignment += 3;
        let err = AttributionReport::from_breakdowns(vec![clean(0), bad]).unwrap_err();
        assert!(matches!(err, AttributionError::Overlap { request: 5, .. }));
    }
}
