//! Deterministic metrics registry and its serializable snapshot.
//!
//! A [`Metrics`] registry is created per instrumented run; counters,
//! gauges, and histograms are keyed by `&'static str` names (see
//! [`names`]) plus an optional numeric label (per-link counters use the
//! link index). [`Metrics::snapshot`] freezes the registry into a
//! [`RunMetrics`] — sorted vectors with value equality — which reports
//! attach as their single source of tally truth.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Well-known metric names. One flat namespace, dot-separated by layer.
pub mod names {
    /// Packets that crossed a link without any bit error.
    pub const LINK_CLEAN: &str = "link.fec.clean";
    /// Packets whose single-bit flip FEC corrected in situ.
    pub const LINK_CORRECTED: &str = "link.fec.corrected";
    /// Packets FEC flagged uncorrectable.
    pub const LINK_UNCORRECTABLE: &str = "link.fec.uncorrectable";
    /// Claimed corrections demoted to uncorrectable because the decoded
    /// bytes did not match the transmitted payload.
    pub const LINK_DEMOTED: &str = "link.fec.demoted";

    /// Instructions across all chip programs in a co-simulated run.
    pub const COSIM_INSTRUCTIONS: &str = "cosim.instructions";
    /// Chips that participated in the run (gauge).
    pub const COSIM_CHIPS: &str = "cosim.chips";
    /// Deliveries bound across all chips in the run.
    pub const COSIM_DELIVERIES: &str = "cosim.deliveries";
    /// Per-chip retirement cycles (histogram).
    pub const COSIM_RETIRE_CYCLES: &str = "cosim.retire_cycles";

    /// Graph compilations performed by the runtime.
    pub const RT_COMPILES: &str = "runtime.compiles";
    /// Cached-plan reuses.
    pub const RT_REUSES: &str = "runtime.reuses";
    /// Execution attempts (first tries plus replays).
    pub const RT_ATTEMPTS: &str = "runtime.attempts";
    /// Replays (attempts beyond each episode's first).
    pub const RT_REPLAYS: &str = "runtime.replays";
    /// Blame votes held by the health monitor.
    pub const RT_BLAME_VOTES: &str = "runtime.blame_votes";
    /// Spare failovers executed.
    pub const RT_FAILOVERS: &str = "runtime.failovers";

    /// FEC tally of the launch's final, successful attempt only.
    pub const FINAL_CLEAN: &str = "launch.final.fec.clean";
    /// See [`FINAL_CLEAN`].
    pub const FINAL_CORRECTED: &str = "launch.final.fec.corrected";
    /// See [`FINAL_CLEAN`].
    pub const FINAL_UNCORRECTABLE: &str = "launch.final.fec.uncorrectable";

    /// Events the attached trace sink evicted (gauge; set only when
    /// nonzero). A nonzero value means the captured timeline is
    /// incomplete — the conformance profiler refuses to certify from it.
    pub const TRACE_DROPPED: &str = "trace.dropped";

    /// Requests admitted into the serving work queue (per-tenant cells use
    /// the tenant id as the label).
    pub const SERVE_ENQUEUED: &str = "serve.enqueued";
    /// Requests rejected by admission control (backpressure or tenant
    /// quota), labeled by tenant.
    pub const SERVE_SHED: &str = "serve.shed";
    /// Requests served to completion, labeled by tenant.
    pub const SERVE_SERVED: &str = "serve.served";
    /// Batches dispatched as launches.
    pub const SERVE_BATCHES: &str = "serve.batches";
    /// Per-request enqueue→complete latency in virtual cycles (histogram).
    pub const SERVE_LATENCY: &str = "serve.latency_cycles";
    /// Requests per dispatched batch (histogram).
    pub const SERVE_BATCH_SIZE: &str = "serve.batch_size";
    /// Queue depth observed at each batch dispatch (histogram).
    pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Sheds whose admission failure was queue backpressure.
    pub const SERVE_SHED_QUEUE_FULL: &str = "serve.shed_queue_full";
    /// Sheds whose admission failure was the tenant quota.
    pub const SERVE_SHED_QUOTA: &str = "serve.shed_over_quota";
    /// Requests dropped at dispatch time because their deadline had
    /// already passed in virtual time.
    pub const SERVE_EXPIRED: &str = "serve.expired";

    /// Compiled-plan residency: launches that found their plan resident.
    pub const RES_HITS: &str = "residency.hits";
    /// Launches that had to compile (no resident plan for the key).
    pub const RES_MISSES: &str = "residency.misses";
    /// Resident plans evicted by the byte budget (LRU order).
    pub const RES_EVICTIONS: &str = "residency.evictions";
    /// Resident plans dropped because their mapping epoch went stale
    /// after a spare failover.
    pub const RES_STALE_DROPS: &str = "residency.stale_drops";
    /// Datapath plans adopted from the serde warm-start tier instead of
    /// being recompiled.
    pub const RES_WARM_STARTS: &str = "residency.warm_starts";
    /// Estimated bytes held by resident plans (gauge).
    pub const RES_RESIDENT_BYTES: &str = "residency.resident_bytes";
    /// Number of resident plans (gauge).
    pub const RES_RESIDENT_PLANS: &str = "residency.resident_plans";
}

/// Number of power-of-two histogram buckets: bucket 0 holds zero-cycle
/// observations, bucket `k` holds `[2^(k-1), 2^k)`, the last bucket
/// absorbs everything at or above `2^31`.
pub const CYCLE_BUCKETS: usize = 33;

/// A power-of-two-bucketed histogram of cycle counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleHistogram {
    /// Observation counts per bucket; see [`CYCLE_BUCKETS`].
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Default for CycleHistogram {
    fn default() -> Self {
        CycleHistogram {
            buckets: vec![0; CYCLE_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl CycleHistogram {
    fn bucket_index(value: u64) -> usize {
        ((u64::BITS - value.leading_zeros()) as usize).min(CYCLE_BUCKETS - 1)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &CycleHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean observed value, zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value range covered by bucket `i`: bucket 0 holds exactly the value
    /// 0, bucket `k ≥ 1` holds `[2^(k-1), 2^k)`. The returned pair is
    /// `(lo, hi)` with `hi` exclusive.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 1)
        } else {
            (1u64 << (i - 1), 1u64 << i)
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) with linear interpolation inside
    /// the power-of-two bucket that contains it: the smallest value `v`
    /// such that `q · count` observations fall at or below `v`, assuming
    /// observations spread uniformly within their bucket.
    ///
    /// `percentile(0.5)` is the median estimate, `percentile(0.999)` the
    /// p999; `q` outside `[0, 1]` is clamped and an empty histogram
    /// reports `0.0`. The estimate is exact for buckets holding a single
    /// representable value (0 and 1) and never exceeds the containing
    /// bucket's upper bound, so `percentile` is monotone in `q` and
    /// stays monotone across [`CycleHistogram::merge`].
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut below = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let through = below + c;
            if through as f64 >= target {
                let (lo, hi) = Self::bucket_bounds(i);
                if hi - lo <= 1 {
                    // Single-value bucket: no interpolation possible.
                    return lo as f64;
                }
                let into = (target - below as f64).max(0.0);
                return lo as f64 + (hi - lo) as f64 * (into / c as f64);
            }
            below = through;
        }
        // Unreachable while count > 0 (the cumulative walk covers every
        // observation), but the compiler cannot know that.
        0.0
    }
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<(&'static str, Option<u32>), u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, CycleHistogram>,
}

/// Interior-mutable metrics registry for one instrumented run. All mutation
/// happens on serial code paths; the `Mutex` exists only so the registry is
/// `Sync` and can be referenced from scoped-thread contexts without care.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Registry>,
}

impl Metrics {
    /// Adds `by` to the unlabeled counter `name`.
    pub fn inc(&self, name: &'static str, by: u64) {
        if by == 0 {
            return;
        }
        *self
            .inner
            .lock()
            .unwrap()
            .counters
            .entry((name, None))
            .or_insert(0) += by;
    }

    /// Adds `by` to counter `name` labeled with `label` (e.g. a link index).
    pub fn inc_labeled(&self, name: &'static str, label: u32, by: u64) {
        if by == 0 {
            return;
        }
        *self
            .inner
            .lock()
            .unwrap()
            .counters
            .entry((name, Some(label)))
            .or_insert(0) += by;
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &'static str, value: u64) {
        self.inner.lock().unwrap().gauges.insert(name, value);
    }

    /// Records one observation into histogram `name`.
    pub fn observe_cycles(&self, name: &'static str, value: u64) {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(name)
            .or_default()
            .observe(value);
    }

    /// Merges a locally accumulated histogram into histogram `name` in one
    /// lock acquisition (hot paths tally locally, then fold here).
    pub fn merge_histogram(&self, name: &'static str, hist: &CycleHistogram) {
        if hist.count == 0 {
            return;
        }
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(name)
            .or_default()
            .merge(hist);
    }

    /// Freezes the registry into a sorted, order-independent snapshot.
    pub fn snapshot(&self) -> RunMetrics {
        let g = self.inner.lock().unwrap();
        RunMetrics {
            counters: g
                .counters
                .iter()
                .map(|(&(name, label), &value)| CounterEntry {
                    name: name.to_string(),
                    label,
                    value,
                })
                .collect(),
            gauges: g
                .gauges
                .iter()
                .map(|(&name, &value)| GaugeEntry {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(&name, hist)| (name.to_string(), hist.clone()))
                .collect(),
        }
    }
}

/// One counter cell of a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterEntry {
    /// Metric name (see [`names`]).
    pub name: String,
    /// Numeric label (per-link counters carry the link index), or `None`
    /// for the global cell.
    pub label: Option<u32>,
    /// Accumulated count.
    pub value: u64,
}

/// One gauge cell of a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeEntry {
    /// Metric name (see [`names`]).
    pub name: String,
    /// Last value written.
    pub value: u64,
}

/// A frozen, serializable metrics snapshot. Entries are sorted by name
/// (then label), so two runs that did the same work compare equal with
/// `==` regardless of emission order — reports derive their tally views
/// (`fec()`, `attempts()`, …) from this one structure.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunMetrics {
    /// Counter cells, sorted by `(name, label)`.
    pub counters: Vec<CounterEntry>,
    /// Gauge cells, sorted by name.
    pub gauges: Vec<GaugeEntry>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, CycleHistogram)>,
}

impl RunMetrics {
    /// Sum of counter `name` across all labels.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Value of counter `name` for one specific label (zero if absent).
    pub fn counter_labeled(&self, name: &str, label: u32) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name && c.label == Some(label))
            .map_or(0, |c| c.value)
    }

    /// All labeled cells of counter `name` as `(label, value)` pairs, in
    /// label order.
    pub fn labeled(&self, name: &str) -> Vec<(u32, u64)> {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .filter_map(|c| c.label.map(|l| (l, c.value)))
            .collect()
    }

    /// Gauge `name`, or `None` if never set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Histogram `name`, if any observations were recorded.
    pub fn histogram(&self, name: &str) -> Option<&CycleHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges `other` into `self`: counters and histograms add, gauges
    /// take `other`'s value (last write wins). Sorted order is restored, so
    /// absorption is associative and order-independent for counters.
    pub fn absorb(&mut self, other: &RunMetrics) {
        for c in &other.counters {
            match self
                .counters
                .iter_mut()
                .find(|m| m.name == c.name && m.label == c.label)
            {
                Some(m) => m.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        self.counters
            .sort_by(|a, b| (&a.name, a.label).cmp(&(&b.name, b.label)));
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|m| m.name == g.name) {
                Some(m) => m.value = g.value,
                None => self.gauges.push(g.clone()),
            }
        }
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        for (name, hist) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, h)) => h.merge(hist),
                None => self.histograms.push((name.clone(), hist.clone())),
            }
        }
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Hand-rolled JSON rendering (the offline toolchain stubs out
    /// serde_json, so every serializer in this workspace is explicit).
    /// Deterministic: entries are already sorted. Names are escaped via
    /// [`crate::json::escape_json`], so a label containing quotes or
    /// backslashes cannot corrupt the document.
    pub fn to_json(&self) -> String {
        use crate::json::escape_json;
        let mut s = String::from("{\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let key = match c.label {
                Some(l) => format!("{}#{}", c.name, l),
                None => c.name.clone(),
            };
            s.push_str(&format!("\n    \"{}\": {}", escape_json(&key), c.value));
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\": {}", escape_json(&g.name), g.value));
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            s.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                escape_json(name),
                h.count,
                h.sum,
                buckets.join(",")
            ));
        }
        s.push_str("\n  }\n}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(CycleHistogram::bucket_index(0), 0);
        assert_eq!(CycleHistogram::bucket_index(1), 1);
        assert_eq!(CycleHistogram::bucket_index(2), 2);
        assert_eq!(CycleHistogram::bucket_index(3), 2);
        assert_eq!(CycleHistogram::bucket_index(4), 3);
        assert_eq!(CycleHistogram::bucket_index(u64::MAX), CYCLE_BUCKETS - 1);
    }

    #[test]
    fn snapshot_is_order_independent() {
        let a = Metrics::default();
        a.inc(names::RT_COMPILES, 1);
        a.inc_labeled(names::LINK_CORRECTED, 3, 2);
        a.inc_labeled(names::LINK_CORRECTED, 1, 5);
        let b = Metrics::default();
        b.inc_labeled(names::LINK_CORRECTED, 1, 5);
        b.inc(names::RT_COMPILES, 1);
        b.inc_labeled(names::LINK_CORRECTED, 3, 2);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn counter_sums_across_labels() {
        let m = Metrics::default();
        m.inc_labeled(names::LINK_CLEAN, 0, 10);
        m.inc_labeled(names::LINK_CLEAN, 4, 5);
        m.inc(names::LINK_CLEAN, 1);
        let snap = m.snapshot();
        assert_eq!(snap.counter(names::LINK_CLEAN), 16);
        assert_eq!(snap.counter_labeled(names::LINK_CLEAN, 4), 5);
        assert_eq!(snap.labeled(names::LINK_CLEAN), vec![(0, 10), (4, 5)]);
    }

    #[test]
    fn zero_increments_leave_no_cells() {
        let m = Metrics::default();
        m.inc(names::RT_REPLAYS, 0);
        m.inc_labeled(names::LINK_CLEAN, 2, 0);
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn absorb_adds_counters_and_merges_histograms() {
        let a = Metrics::default();
        a.inc(names::RT_ATTEMPTS, 1);
        a.observe_cycles(names::COSIM_RETIRE_CYCLES, 100);
        let b = Metrics::default();
        b.inc(names::RT_ATTEMPTS, 2);
        b.inc_labeled(names::LINK_CLEAN, 0, 7);
        b.observe_cycles(names::COSIM_RETIRE_CYCLES, 200);
        b.set_gauge(names::COSIM_CHIPS, 4);

        let mut total = a.snapshot();
        total.absorb(&b.snapshot());
        assert_eq!(total.counter(names::RT_ATTEMPTS), 3);
        assert_eq!(total.counter_labeled(names::LINK_CLEAN, 0), 7);
        assert_eq!(total.gauge(names::COSIM_CHIPS), Some(4));
        let h = total.histogram(names::COSIM_RETIRE_CYCLES).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 300);
    }

    #[test]
    fn absorb_is_counter_commutative() {
        let a = Metrics::default();
        a.inc(names::RT_ATTEMPTS, 1);
        a.inc_labeled(names::LINK_CLEAN, 1, 3);
        let b = Metrics::default();
        b.inc(names::RT_REPLAYS, 4);
        b.inc_labeled(names::LINK_CLEAN, 1, 2);

        let mut ab = a.snapshot();
        ab.absorb(&b.snapshot());
        let mut ba = b.snapshot();
        ba.absorb(&a.snapshot());
        assert_eq!(ab, ba);
    }

    #[test]
    fn json_rendering_is_deterministic_and_structured() {
        let m = Metrics::default();
        m.inc(names::RT_COMPILES, 2);
        m.inc_labeled(names::LINK_CORRECTED, 5, 1);
        m.set_gauge(names::COSIM_CHIPS, 3);
        m.observe_cycles(names::COSIM_RETIRE_CYCLES, 7);
        let snap = m.snapshot();
        let json = snap.to_json();
        assert_eq!(json, snap.to_json());
        assert!(json.contains("\"runtime.compiles\": 2"));
        assert!(json.contains("\"link.fec.corrected#5\": 1"));
        assert!(json.contains("\"cosim.chips\": 3"));
        assert!(json.contains("\"cosim.retire_cycles\""));
    }

    #[test]
    fn percentile_pins_exact_interpolated_values() {
        // {1, 2, 3, 4}: buckets [_, {1}, {2,3}, {4}, ...].
        let mut h = CycleHistogram::default();
        for v in [1u64, 2, 3, 4] {
            h.observe(v);
        }
        // Bucket 1 holds the single representable value 1 — exact.
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(0.25), 1.0);
        // target 2.0 lands halfway through bucket [2, 4) of count 2.
        assert_eq!(h.percentile(0.5), 3.0);
        // target 3.0 exhausts bucket [2, 4): its upper bound.
        assert_eq!(h.percentile(0.75), 4.0);
        // target 4.0 exhausts bucket [4, 8): its upper bound.
        assert_eq!(h.percentile(1.0), 8.0);
        // out-of-range q clamps
        assert_eq!(h.percentile(-3.0), h.percentile(0.0));
        assert_eq!(h.percentile(7.0), h.percentile(1.0));
    }

    #[test]
    fn percentile_handles_zero_and_empty() {
        let empty = CycleHistogram::default();
        assert_eq!(empty.percentile(0.5), 0.0);
        let mut zeros = CycleHistogram::default();
        for _ in 0..3 {
            zeros.observe(0);
        }
        assert_eq!(zeros.percentile(0.5), 0.0);
        assert_eq!(zeros.percentile(1.0), 0.0);
    }

    #[test]
    fn percentile_single_bucket_interpolates_within_its_bounds() {
        // Every observation in one multi-value bucket [64, 128): the
        // boundaries pin to the bucket bounds and q interpolates linearly
        // (and therefore monotonically) between them.
        let mut h = CycleHistogram::default();
        for _ in 0..5 {
            h.observe(100);
        }
        assert_eq!(h.percentile(0.0), 64.0, "q=0 is the bucket's lower bound");
        assert_eq!(h.percentile(1.0), 128.0, "q=1 is the bucket's upper bound");
        let mut prev = h.percentile(0.0);
        for i in 1..=10 {
            let p = h.percentile(i as f64 / 10.0);
            assert!(p >= prev, "monotone in q: {p} >= {prev}");
            assert!((64.0..=128.0).contains(&p), "inside the bucket: {p}");
            prev = p;
        }

        // A single observation in a single-value bucket is exact at every
        // q — bucket 1 holds only the value 1.
        let mut one = CycleHistogram::default();
        one.observe(1);
        assert_eq!(one.percentile(0.0), 1.0);
        assert_eq!(one.percentile(0.5), 1.0);
        assert_eq!(one.percentile(1.0), 1.0);
    }

    #[test]
    fn percentile_spread_tail_is_ordered() {
        // 990 fast observations at 100 cycles, 10 slow ones at ~1e6: the
        // p50 sits in the fast bucket, p999 in the slow one.
        let mut h = CycleHistogram::default();
        for _ in 0..990 {
            h.observe(100);
        }
        for _ in 0..10 {
            h.observe(1_000_000);
        }
        let (p50, p99, p999) = (h.percentile(0.5), h.percentile(0.99), h.percentile(0.999));
        assert!((64.0..128.0).contains(&p50), "p50 {p50}");
        assert!(p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
        assert!((524_288.0..2_097_152.0).contains(&p999), "p999 {p999}");
    }

    #[test]
    fn histogram_mean_handles_empty() {
        let h = CycleHistogram::default();
        assert_eq!(h.mean(), 0.0);
        let mut h2 = CycleHistogram::default();
        h2.observe(10);
        h2.observe(20);
        assert_eq!(h2.mean(), 15.0);
    }
}
