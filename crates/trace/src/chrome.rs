//! Chrome-trace / Perfetto JSON export.
//!
//! Renders a slice of [`TraceEvent`]s as the Trace Event Format JSON that
//! `chrome://tracing` and <https://ui.perfetto.dev> open directly. One
//! timestamp unit equals one *simulated* cycle (the viewer labels it "µs";
//! read it as cycles). Runtime-lane events render under process
//! `"runtime"`, chip lanes under process `"chips"` with one thread row per
//! chip. Hand-rolled because the offline toolchain stubs out serde_json —
//! and the format is simple enough not to miss it.

use crate::event::{EventKind, TraceEvent, RUNTIME_LANE};

fn name_and_args(kind: &EventKind) -> (&'static str, String) {
    match *kind {
        EventKind::ChipExec {
            depth,
            instructions,
        } => (
            "chip.exec",
            format!("\"depth\":{depth},\"instructions\":{instructions}"),
        ),
        EventKind::Deliveries { count } => ("chip.deliveries", format!("\"count\":{count}")),
        EventKind::Emissions { count } => ("chip.emissions", format!("\"count\":{count}")),
        EventKind::LinkCorrected { link, bit } => {
            ("link.corrected", format!("\"link\":{link},\"bit\":{bit}"))
        }
        EventKind::LinkUncorrectable { link } => ("link.uncorrectable", format!("\"link\":{link}")),
        EventKind::LinkDemoted { link } => ("link.demoted", format!("\"link\":{link}")),
        EventKind::LaunchBegin { graph_fp } => {
            ("launch.begin", format!("\"graph_fp\":\"{graph_fp:016x}\""))
        }
        EventKind::Align => ("launch.align", String::new()),
        EventKind::Compile { epoch } => ("runtime.compile", format!("\"epoch\":{epoch}")),
        EventKind::Reuse { epoch } => ("runtime.reuse", format!("\"epoch\":{epoch}")),
        EventKind::ReplayEpoch { attempt } => {
            ("runtime.replay_epoch", format!("\"attempt\":{attempt}"))
        }
        EventKind::BlameVote { node, votes } => (
            "runtime.blame_vote",
            format!("\"node\":{node},\"votes\":{votes}"),
        ),
        EventKind::Failover { node, epoch } => (
            "runtime.failover",
            format!("\"node\":{node},\"epoch\":{epoch}"),
        ),
        EventKind::LaunchEnd { attempts } => ("launch.end", format!("\"attempts\":{attempts}")),
    }
}

/// Renders `events` as a complete Chrome-trace JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"runtime\"}},\n",
    );
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"chips\"}}",
    );
    for e in events {
        let (name, args) = name_and_args(&e.kind);
        let (pid, tid) = if e.lane == RUNTIME_LANE {
            (0, 0)
        } else {
            (1, e.lane)
        };
        let sep = if args.is_empty() { "" } else { "," };
        out.push_str(",\n");
        if e.dur > 0 {
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
                 \"ts\":{},\"dur\":{},\"args\":{{{args}{sep}\"seq\":{}}}}}",
                e.cycle, e.dur, e.seq
            ));
        } else {
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\
                 \"tid\":{tid},\"ts\":{},\"args\":{{{args}{sep}\"seq\":{}}}}}",
                e.cycle, e.seq
            ));
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cycle: 0,
                lane: RUNTIME_LANE,
                seq: 0,
                dur: 0,
                kind: EventKind::LaunchBegin { graph_fp: 0xabcd },
            },
            TraceEvent {
                cycle: 10,
                lane: 2,
                seq: 1,
                dur: 40,
                kind: EventKind::ChipExec {
                    depth: 0,
                    instructions: 6,
                },
            },
            TraceEvent {
                cycle: 15,
                lane: 2,
                seq: 2,
                dur: 0,
                kind: EventKind::LinkCorrected { link: 3, bit: 17 },
            },
        ]
    }

    #[test]
    fn renders_spans_instants_and_metadata() {
        let json = chrome_trace_json(&sample());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"chip.exec\",\"ph\":\"X\""));
        assert!(json.contains("\"dur\":40"));
        assert!(json.contains("\"name\":\"link.corrected\",\"ph\":\"i\""));
        assert!(json.contains("\"graph_fp\":\"000000000000abcd\""));
    }

    #[test]
    fn runtime_lane_maps_to_pid_zero_chips_to_pid_one() {
        let json = chrome_trace_json(&sample());
        assert!(json.contains("\"name\":\"launch.begin\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0"));
        assert!(json.contains("\"pid\":1,\"tid\":2"));
    }

    #[test]
    fn empty_event_list_is_still_valid() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("traceEvents"));
        assert!(json.trim_end().ends_with("]}"));
    }
}
