//! Chrome-trace / Perfetto JSON export.
//!
//! Renders a slice of [`TraceEvent`]s as the Trace Event Format JSON that
//! `chrome://tracing` and <https://ui.perfetto.dev> open directly. One
//! timestamp unit equals one *simulated* cycle (the viewer labels it "µs";
//! read it as cycles). Runtime-lane events render under process
//! `"runtime"`, chip lanes under process `"chips"` with one thread row per
//! chip. Hand-rolled because the offline toolchain stubs out serde_json —
//! and the format is simple enough not to miss it.

use crate::attribution::{LatencyBreakdown, Stage};
use crate::event::{EventKind, TraceEvent, RUNTIME_LANE, SERVING_LANE};
use crate::profile::PlannedTimeline;
use crate::telemetry::{SeriesKind, Telemetry};

/// Process id of the runtime lane in the exported document.
const PID_RUNTIME: u32 = 0;
/// Process id of the chip lanes.
const PID_CHIPS: u32 = 1;
/// Process id of the per-link planned-vs-actual overlay tracks.
const PID_LINKS: u32 = 2;
/// Process id of the serving-frontend lane.
const PID_SERVING: u32 = 3;
/// Process id of the windowed-telemetry counter tracks.
const PID_TELEMETRY: u32 = 4;
/// Process id of the per-request attribution span tracks.
const PID_REQUESTS: u32 = 5;

fn name_and_args(kind: &EventKind) -> (&'static str, String) {
    let args = match *kind {
        EventKind::ChipExec {
            depth,
            instructions,
        } => format!("\"depth\":{depth},\"instructions\":{instructions}"),
        EventKind::Deliveries { count } | EventKind::Emissions { count } => {
            format!("\"count\":{count}")
        }
        EventKind::Delivery {
            link,
            transfer,
            vector,
        } => format!("\"link\":{link},\"transfer\":{transfer},\"vector\":{vector}"),
        EventKind::LinkCorrected { link, bit } => format!("\"link\":{link},\"bit\":{bit}"),
        EventKind::LinkUncorrectable { link } | EventKind::LinkDemoted { link } => {
            format!("\"link\":{link}")
        }
        EventKind::LaunchBegin { graph_fp } => format!("\"graph_fp\":\"{graph_fp:016x}\""),
        EventKind::Align => String::new(),
        EventKind::Compile { epoch } | EventKind::Reuse { epoch } => format!("\"epoch\":{epoch}"),
        EventKind::ReplayEpoch { attempt } => format!("\"attempt\":{attempt}"),
        EventKind::BlameVote { node, votes } => format!("\"node\":{node},\"votes\":{votes}"),
        EventKind::Failover { node, epoch } => format!("\"node\":{node},\"epoch\":{epoch}"),
        EventKind::LaunchEnd { attempts } => format!("\"attempts\":{attempts}"),
        EventKind::RequestEnqueue { tenant, request } => {
            format!("\"tenant\":{tenant},\"request\":{request}")
        }
        EventKind::RequestShed {
            tenant,
            request,
            reason,
        } => format!("\"tenant\":{tenant},\"request\":{request},\"reason\":\"{reason:?}\""),
        EventKind::RequestExpired {
            tenant,
            request,
            late,
        } => format!("\"tenant\":{tenant},\"request\":{request},\"late\":{late}"),
        EventKind::RequestComplete {
            tenant,
            request,
            latency,
        } => format!("\"tenant\":{tenant},\"request\":{request},\"latency\":{latency}"),
        EventKind::BatchBegin { batch, size } => format!("\"batch\":{batch},\"size\":{size}"),
        EventKind::BatchEnd { batch, attempts } => {
            format!("\"batch\":{batch},\"attempts\":{attempts}")
        }
    };
    (kind.name(), args)
}

fn push_span(out: &mut String, name: &str, pid: u32, tid: u32, ts: u64, dur: u64, args: &str) {
    out.push_str(&format!(
        ",\n{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
         \"ts\":{ts},\"dur\":{dur},\"args\":{{{args}}}}}",
        crate::json::escape_json(name),
    ));
}

fn push_instant(out: &mut String, name: &str, pid: u32, tid: u32, ts: u64, args: &str) {
    out.push_str(&format!(
        ",\n{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\
         \"tid\":{tid},\"ts\":{ts},\"args\":{{{args}}}}}",
        crate::json::escape_json(name),
    ));
}

fn push_counter(out: &mut String, track: &str, ts: u64, value: u64) {
    out.push_str(&format!(
        ",\n{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":{PID_TELEMETRY},\"tid\":0,\
         \"ts\":{ts},\"args\":{{\"value\":{value}}}}}",
        crate::json::escape_json(track),
    ));
}

fn push_thread_name(out: &mut String, pid: u32, tid: u32, name: &str) {
    out.push_str(&format!(
        ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        crate::json::escape_json(name),
    ));
}

/// Renders `events` as a complete Chrome-trace JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    render(events, 0, None, None, &[])
}

/// [`chrome_trace_json`] plus a warning banner when `dropped > 0`: a lossy
/// ring's timeline must never be read as complete.
pub fn chrome_trace_json_with(events: &[TraceEvent], dropped: u64) -> String {
    render(events, dropped, None, None, &[])
}

/// [`chrome_trace_json_with`] plus the plan-vs-actual overlay: a `"links"`
/// process with two tracks per link — the planned wire windows of
/// `planned` above the observed [`EventKind::Delivery`] instants — so
/// skew is visible as vertical misalignment in Perfetto.
pub fn chrome_trace_json_overlay(
    events: &[TraceEvent],
    planned: &PlannedTimeline,
    dropped: u64,
) -> String {
    render(events, dropped, Some(planned), None, &[])
}

/// [`chrome_trace_json_with`] plus Perfetto counter tracks (`ph:"C"`)
/// under a dedicated `"telemetry"` process: one track per recorded time
/// series (named `series[label]`), sampled at each window boundary in
/// simulated cycles. Counter tracks are dropped back to zero after a gap
/// so per-window deltas read as pulses, not plateaus; gauge tracks hold
/// their level.
pub fn chrome_trace_json_telemetry(
    events: &[TraceEvent],
    dropped: u64,
    telemetry: &Telemetry,
) -> String {
    render(events, dropped, None, Some(telemetry), &[])
}

/// The combined observability export: [`chrome_trace_json_with`] plus the
/// optional telemetry counter tracks plus per-request attribution span
/// tracks under a dedicated `"requests"` process — one thread row per
/// request, its stage spans laid out in stitched-timeline order from
/// arrival to completion (each span exactly as wide as the stage's
/// component, so the row ends at the request's completion cycle). An
/// empty `requests` slice adds nothing: the document is byte-identical to
/// the plain export, which is what keeps attribution-off runs comparable.
pub fn chrome_trace_json_attribution(
    events: &[TraceEvent],
    dropped: u64,
    telemetry: Option<&Telemetry>,
    requests: &[LatencyBreakdown],
) -> String {
    render(events, dropped, None, telemetry, requests)
}

fn render(
    events: &[TraceEvent],
    dropped: u64,
    planned: Option<&PlannedTimeline>,
    telemetry: Option<&Telemetry>,
    requests: &[LatencyBreakdown],
) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"runtime\"}},\n",
    );
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"chips\"}}",
    );
    if events.iter().any(|e| e.lane == SERVING_LANE) {
        out.push_str(
            ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,\"tid\":0,\
             \"args\":{\"name\":\"serving\"}}",
        );
    }
    if dropped > 0 {
        push_instant(
            &mut out,
            &format!("WARNING: trace truncated — {dropped} event(s) dropped"),
            PID_RUNTIME,
            0,
            0,
            &format!("\"dropped\":{dropped}"),
        );
    }
    for e in events {
        let (name, args) = name_and_args(&e.kind);
        let (pid, tid) = if e.lane == RUNTIME_LANE {
            (PID_RUNTIME, 0)
        } else if e.lane == SERVING_LANE {
            (PID_SERVING, 0)
        } else {
            (PID_CHIPS, e.lane)
        };
        let sep = if args.is_empty() { "" } else { "," };
        let args = format!("{args}{sep}\"seq\":{}", e.seq);
        if e.dur > 0 {
            push_span(&mut out, name, pid, tid, e.cycle, e.dur, &args);
        } else {
            push_instant(&mut out, name, pid, tid, e.cycle, &args);
        }
    }
    if let Some(planned) = planned {
        out.push_str(
            ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
             \"args\":{\"name\":\"links\"}}",
        );
        let mut links: Vec<u32> = planned.hops.iter().map(|h| h.link).collect();
        links.sort_unstable();
        links.dedup();
        for &link in &links {
            push_thread_name(
                &mut out,
                PID_LINKS,
                link * 2,
                &format!("link {link} planned"),
            );
            push_thread_name(
                &mut out,
                PID_LINKS,
                link * 2 + 1,
                &format!("link {link} observed"),
            );
        }
        for h in &planned.hops {
            push_span(
                &mut out,
                "link.slot",
                PID_LINKS,
                h.link * 2,
                h.wire_start,
                (h.wire_end.saturating_sub(h.wire_start)).max(1),
                &format!(
                    "\"transfer\":{},\"vector\":{},\"delivery\":{}",
                    h.transfer, h.vector, h.cycle
                ),
            );
        }
        for e in events {
            if let EventKind::Delivery {
                link,
                transfer,
                vector,
            } = e.kind
            {
                push_instant(
                    &mut out,
                    "link.delivery",
                    PID_LINKS,
                    link * 2 + 1,
                    e.cycle,
                    &format!("\"transfer\":{transfer},\"vector\":{vector}"),
                );
            }
        }
    }
    if let Some(t) = telemetry {
        if !t.series.is_empty() {
            out.push_str(&format!(
                ",\n{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID_TELEMETRY},\"tid\":0,\
                 \"args\":{{\"name\":\"telemetry\"}}}}"
            ));
            for s in &t.series {
                let track = if s.label.is_empty() {
                    s.name.clone()
                } else {
                    format!("{}[{}]", s.name, s.label)
                };
                for (i, &(win, v)) in s.points.iter().enumerate() {
                    push_counter(&mut out, &track, win.saturating_mul(t.window), v);
                    if s.kind == SeriesKind::Counter {
                        let next = s.points.get(i + 1).map(|p| p.0);
                        if next != Some(win + 1) {
                            push_counter(
                                &mut out,
                                &track,
                                win.saturating_add(1).saturating_mul(t.window),
                                0,
                            );
                        }
                    }
                }
            }
        }
    }
    if !requests.is_empty() {
        out.push_str(&format!(
            ",\n{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID_REQUESTS},\"tid\":0,\
             \"args\":{{\"name\":\"requests\"}}}}"
        ));
        for b in requests {
            push_thread_name(
                &mut out,
                PID_REQUESTS,
                b.request,
                &format!("req {} (tenant {})", b.request, b.tenant),
            );
            // Stage spans tile [arrival, completion] exactly — the sum
            // identity LatencyBreakdown::verify pins is what makes this
            // rendering gap-free.
            let mut ts = b.arrival;
            for stage in Stage::ALL {
                let dur = b.component(stage);
                if dur == 0 {
                    continue;
                }
                push_span(
                    &mut out,
                    &format!("attr.{}", stage.as_str()),
                    PID_REQUESTS,
                    b.request,
                    ts,
                    dur,
                    &format!(
                        "\"batch\":{},\"compiles\":{},\"reuses\":{}",
                        b.batch, b.compiles, b.reuses
                    ),
                );
                ts += dur;
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cycle: 0,
                lane: RUNTIME_LANE,
                seq: 0,
                dur: 0,
                kind: EventKind::LaunchBegin { graph_fp: 0xabcd },
            },
            TraceEvent {
                cycle: 10,
                lane: 2,
                seq: 1,
                dur: 40,
                kind: EventKind::ChipExec {
                    depth: 0,
                    instructions: 6,
                },
            },
            TraceEvent {
                cycle: 15,
                lane: 2,
                seq: 2,
                dur: 0,
                kind: EventKind::LinkCorrected { link: 3, bit: 17 },
            },
        ]
    }

    #[test]
    fn renders_spans_instants_and_metadata() {
        let json = chrome_trace_json(&sample());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"chip.exec\",\"ph\":\"X\""));
        assert!(json.contains("\"dur\":40"));
        assert!(json.contains("\"name\":\"link.corrected\",\"ph\":\"i\""));
        assert!(json.contains("\"graph_fp\":\"000000000000abcd\""));
    }

    #[test]
    fn runtime_lane_maps_to_pid_zero_chips_to_pid_one() {
        let json = chrome_trace_json(&sample());
        assert!(json.contains("\"name\":\"launch.begin\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0"));
        assert!(json.contains("\"pid\":1,\"tid\":2"));
    }

    #[test]
    fn empty_event_list_is_still_valid() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("traceEvents"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn serving_lane_gets_its_own_process() {
        let without = chrome_trace_json(&sample());
        assert!(!without.contains("\"name\":\"serving\""));
        let mut events = sample();
        events.push(TraceEvent {
            cycle: 42,
            lane: SERVING_LANE,
            seq: 3,
            dur: 0,
            kind: EventKind::RequestComplete {
                tenant: 1,
                request: 9,
                latency: 1234,
            },
        });
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"args\":{\"name\":\"serving\"}"));
        assert!(json
            .contains("\"name\":\"serve.complete\",\"ph\":\"i\",\"s\":\"t\",\"pid\":3,\"tid\":0"));
        assert!(json.contains("\"latency\":1234"));
    }

    #[test]
    fn dropped_events_render_a_warning_banner() {
        let clean = chrome_trace_json_with(&sample(), 0);
        assert!(!clean.contains("WARNING"));
        let lossy = chrome_trace_json_with(&sample(), 17);
        assert!(lossy.contains("WARNING: trace truncated — 17 event(s) dropped"));
        assert!(lossy.contains("\"dropped\":17"));
    }

    #[test]
    fn telemetry_renders_counter_tracks_under_their_own_process() {
        use crate::telemetry::{Sampler, TelemetryConfig};
        let mut s = Sampler::new(TelemetryConfig {
            window: 100,
            slo_permille: 990,
        });
        s.count("serve.throughput", "tenant0", 5, 3);
        s.count("serve.throughput", "tenant0", 310, 1);
        s.level("serve.queue_depth", "", 150, 7);
        let t = s.finish();
        let json = chrome_trace_json_telemetry(&sample(), 0, &t);
        assert!(json.contains("\"args\":{\"name\":\"telemetry\"}"));
        // Counter pulse at window 0 with a zero-return before the gap.
        assert!(json.contains(
            "\"name\":\"serve.throughput[tenant0]\",\"ph\":\"C\",\"pid\":4,\"tid\":0,\
             \"ts\":0,\"args\":{\"value\":3}"
        ));
        assert!(json.contains("\"ts\":100,\"args\":{\"value\":0}"));
        assert!(json.contains("\"ts\":300,\"args\":{\"value\":1}"));
        // Gauge holds its level: no zero-return after its point.
        assert!(json.contains(
            "\"name\":\"serve.queue_depth\",\"ph\":\"C\",\"pid\":4,\"tid\":0,\
             \"ts\":100,\"args\":{\"value\":7}"
        ));
        assert!(!json.contains(
            "\"name\":\"serve.queue_depth\",\"ph\":\"C\",\"pid\":4,\"tid\":0,\"ts\":200"
        ));
    }

    #[test]
    fn telemetry_off_exports_stay_byte_identical() {
        use crate::telemetry::{Telemetry, TelemetryConfig};
        let events = sample();
        let base = chrome_trace_json_with(&events, 2);
        let with_empty =
            chrome_trace_json_telemetry(&events, 2, &Telemetry::empty(TelemetryConfig::default()));
        assert_eq!(
            base, with_empty,
            "an empty telemetry record adds nothing to the document"
        );
    }

    #[test]
    fn hostile_track_names_are_escaped_in_counter_tracks() {
        use crate::telemetry::{Sampler, TelemetryConfig};
        let mut s = Sampler::new(TelemetryConfig {
            window: 10,
            slo_permille: 990,
        });
        s.count("serve.throughput", "ten\"ant\\zero\n", 0, 1);
        let json = chrome_trace_json_telemetry(&[], 0, &s.finish());
        assert!(
            json.contains(r#"serve.throughput[ten\"ant\\zero\n]"#),
            "quote, backslash, and newline all escape: {json}"
        );
        // The document stays structurally valid: every quote inside the
        // track name is escaped, so raw_value can skim the whole thing.
        let mut c = crate::json::Cursor::new(&json);
        assert!(c.raw_value().is_ok());
        c.expect_end().unwrap();
    }

    fn breakdown(request: u32, tenant: u32) -> crate::attribution::LatencyBreakdown {
        crate::attribution::LatencyBreakdown::from_dispatch(
            request,
            tenant,
            0,
            1_000,
            1_150,
            1_100,
            1_150 + 30 + 400 + 64,
            30,
            400,
            1,
            64,
            1,
            0,
        )
        .unwrap()
    }

    #[test]
    fn attribution_spans_render_under_their_own_process() {
        let json = chrome_trace_json_attribution(&sample(), 0, None, &[breakdown(5, 1)]);
        assert!(json.contains("\"args\":{\"name\":\"requests\"}"));
        assert!(json.contains("req 5 (tenant 1)"));
        // The stage spans tile the request's lifetime on tid 5: window
        // wait starts at arrival, execute follows alignment, and the last
        // span ends exactly at completion.
        assert!(json.contains("\"name\":\"attr.window_wait\",\"ph\":\"X\",\"pid\":5,\"tid\":5,\"ts\":1000,\"dur\":100"));
        assert!(json.contains(
            "\"name\":\"attr.queue_wait\",\"ph\":\"X\",\"pid\":5,\"tid\":5,\"ts\":1100,\"dur\":50"
        ));
        assert!(json.contains(
            "\"name\":\"attr.execute\",\"ph\":\"X\",\"pid\":5,\"tid\":5,\"ts\":1180,\"dur\":400"
        ));
        assert!(json.contains(
            "\"name\":\"attr.drain\",\"ph\":\"X\",\"pid\":5,\"tid\":5,\"ts\":1580,\"dur\":64"
        ));
        // Zero-width stages (replay on a clean launch) render nothing.
        assert!(!json.contains("attr.replay"));
    }

    #[test]
    fn attribution_absent_is_byte_identical() {
        let events = sample();
        assert_eq!(
            chrome_trace_json_attribution(&events, 3, None, &[]),
            chrome_trace_json_with(&events, 3),
            "no requests, no telemetry: plain export bytes"
        );
        use crate::telemetry::{Sampler, TelemetryConfig};
        let mut s = Sampler::new(TelemetryConfig::default());
        s.count("serve.throughput", "t0", 5, 1);
        let t = s.finish();
        assert_eq!(
            chrome_trace_json_attribution(&events, 0, Some(&t), &[]),
            chrome_trace_json_telemetry(&events, 0, &t),
            "no requests: telemetry export bytes"
        );
    }

    #[test]
    fn combined_export_joins_serving_telemetry_and_requests() {
        use crate::telemetry::{Sampler, TelemetryConfig};
        let mut events = sample();
        events.push(TraceEvent {
            cycle: 1_000,
            lane: SERVING_LANE,
            seq: 3,
            dur: 0,
            kind: EventKind::RequestEnqueue {
                tenant: 0,
                request: 5,
            },
        });
        let mut s = Sampler::new(TelemetryConfig {
            window: 100,
            slo_permille: 990,
        });
        s.count("serve.throughput", "ten\"ant\\zero\n", 5, 3);
        let t = s.finish();
        let render = || chrome_trace_json_attribution(&events, 0, Some(&t), &[breakdown(5, 0)]);
        let json = render();
        // All three observability surfaces share one document.
        assert!(json.contains("\"args\":{\"name\":\"serving\"}"));
        assert!(json.contains("\"args\":{\"name\":\"telemetry\"}"));
        assert!(json.contains("\"args\":{\"name\":\"requests\"}"));
        // The hostile tenant label is escaped, not interpolated raw.
        assert!(json.contains(r#"serve.throughput[ten\"ant\\zero\n]"#));
        // Structurally valid despite the hostile label, and byte-stable
        // across reruns.
        let mut c = crate::json::Cursor::new(&json);
        assert!(c.raw_value().is_ok());
        c.expect_end().unwrap();
        assert_eq!(render(), json, "rerun is byte-identical");
    }

    #[test]
    fn overlay_renders_two_tracks_per_link() {
        use crate::profile::{PlannedHop, PlannedTimeline};
        let planned = PlannedTimeline {
            hops: vec![PlannedHop {
                link: 3,
                transfer: 0,
                vector: 0,
                cycle: 30,
                wire_start: 10,
                wire_end: 20,
                dest_lane: 1,
            }],
            chips: vec![],
            span: 40,
            arrivals: vec![30],
        };
        let observed = vec![TraceEvent {
            cycle: 30,
            lane: 1,
            seq: 0,
            dur: 0,
            kind: EventKind::Delivery {
                link: 3,
                transfer: 0,
                vector: 0,
            },
        }];
        let json = chrome_trace_json_overlay(&observed, &planned, 0);
        assert!(json.contains("\"args\":{\"name\":\"links\"}"));
        assert!(json.contains("link 3 planned"));
        assert!(json.contains("link 3 observed"));
        // Planned wire window on tid 6, observed instant on tid 7.
        assert!(json.contains("\"name\":\"link.slot\",\"ph\":\"X\",\"pid\":2,\"tid\":6"));
        assert!(json
            .contains("\"name\":\"link.delivery\",\"ph\":\"i\",\"s\":\"t\",\"pid\":2,\"tid\":7"));
    }
}
