//! Algebraic laws of [`RunMetrics::absorb`]: merging snapshots is a
//! commutative monoid over counters and histograms (with the empty
//! snapshot as identity), so the order attempt metrics are folded in can
//! never change a launch profile. Gauges are last-write-wins, which is
//! associative but not commutative — the commutativity property therefore
//! generates gauge names from disjoint pools, mirroring how the workspace
//! actually uses gauges (each layer owns its own names).

// In offline dev environments the proptest stub's `proptest!` macro
// expands to nothing, which makes the generator helpers look dead to
// lints; the real proptest uses all of them.
#![allow(dead_code, unused_imports)]

use tsm_trace::telemetry::{Sampler, SeriesKind, Telemetry, TelemetryConfig, TimeSeries};
use tsm_trace::{names, CounterEntry, CycleHistogram, GaugeEntry, Metrics, RunMetrics};

use proptest::prelude::*;

/// Raw generator output for one snapshot: counter cells as
/// `(name_pick, label_pick, value)`, histogram observations, and gauge
/// cells as `(name_pick, value)`.
type RawSnapshot = (Vec<(u8, u8, u64)>, Vec<u64>, Vec<(u8, u64)>);

const COUNTER_NAMES: [&str; 4] = [
    names::LINK_CLEAN,
    names::LINK_CORRECTED,
    names::RT_ATTEMPTS,
    names::COSIM_DELIVERIES,
];

const HIST_NAMES: [&str; 2] = [names::COSIM_RETIRE_CYCLES, names::LINK_CLEAN];

/// Builds a snapshot from raw picks. `gauge_pool` selects which half of a
/// disjoint gauge-name space this snapshot may write, so two snapshots
/// built with different pools never race on a gauge.
fn build(raw: &RawSnapshot, gauge_pool: &[&'static str]) -> RunMetrics {
    let m = Metrics::default();
    for &(name, label, value) in &raw.0 {
        let name = COUNTER_NAMES[name as usize % COUNTER_NAMES.len()];
        if label % 3 == 0 {
            m.inc(name, value % 1000);
        } else {
            m.inc_labeled(name, (label % 8) as u32, value % 1000);
        }
    }
    for (i, &v) in raw.1.iter().enumerate() {
        m.observe_cycles(HIST_NAMES[i % HIST_NAMES.len()], v % 100_000);
    }
    for &(name, value) in &raw.2 {
        m.set_gauge(gauge_pool[name as usize % gauge_pool.len()], value);
    }
    m.snapshot()
}

fn raw_snapshot() -> impl Strategy<Value = RawSnapshot> {
    (
        prop::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 0..12),
        prop::collection::vec(any::<u64>(), 0..12),
        prop::collection::vec((any::<u8>(), any::<u64>()), 0..4),
    )
}

const POOL_A: [&str; 2] = [names::COSIM_CHIPS, names::TRACE_DROPPED];
const POOL_B: [&str; 2] = [names::RT_REUSES, names::RT_FAILOVERS];

fn absorbed(mut a: RunMetrics, b: &RunMetrics) -> RunMetrics {
    a.absorb(b);
    a
}

/// Builds a histogram from raw observations (capped so buckets stay in a
/// sane range but still cross many powers of two).
fn hist_of(obs: &[u64]) -> CycleHistogram {
    let mut h = CycleHistogram::default();
    for &v in obs {
        h.observe(v % 5_000_000);
    }
    h
}

// ---- TimeSeries::merge laws, mirroring the absorb suite above. A
// telemetry record merges counter windows by sum and gauge windows by
// max — both commutative and associative with the empty record as
// identity, so the order per-batch launch telemetry is folded into a
// serving run can never change the sealed time series. ----

const TS_CFG: TelemetryConfig = TelemetryConfig {
    window: 64,
    slo_permille: 990,
};

const TS_NAMES: [&str; 3] = ["serve.throughput", "link.deliveries", "chip.busy_cycles"];
const TS_LABELS: [&str; 3] = ["tenant0", "link3", ""];

/// Raw generator output for one telemetry record: counter samples as
/// `(series_pick, cycle, by)` and gauge samples as `(cycle, level)`.
type RawTelemetry = (Vec<(u8, u64, u64)>, Vec<(u64, u64)>);

/// Builds a sealed record from raw picks. Cycles wrap into a few windows
/// so samples actually collide; `by` wraps small so sums stay far from
/// saturation.
fn build_telemetry(raw: &RawTelemetry) -> Telemetry {
    let mut s = Sampler::new(TS_CFG);
    for &(pick, cycle, by) in &raw.0 {
        let name = TS_NAMES[pick as usize % TS_NAMES.len()];
        let label = TS_LABELS[(pick as usize / TS_NAMES.len()) % TS_LABELS.len()];
        s.count(name, label, cycle % 1024, by % 1000);
    }
    for &(cycle, level) in &raw.1 {
        s.level("serve.queue_depth", "", cycle % 1024, level % 1000);
    }
    s.finish()
}

fn raw_telemetry() -> impl Strategy<Value = RawTelemetry> {
    (
        prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..16),
        prop::collection::vec((any::<u64>(), any::<u64>()), 0..8),
    )
}

fn merged(mut a: Telemetry, b: &Telemetry) -> Telemetry {
    a.merge(b);
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identity: the empty record merges to and from anything without
    /// changing it.
    #[test]
    fn timeseries_merge_identity(raw in raw_telemetry()) {
        let x = build_telemetry(&raw);
        prop_assert_eq!(merged(x.clone(), &Telemetry::empty(TS_CFG)), x.clone());
        prop_assert_eq!(merged(Telemetry::empty(TS_CFG), &x), x);
    }

    /// Commutativity: a ⊕ b == b ⊕ a. Unlike RunMetrics gauges
    /// (last-write-wins), telemetry gauges merge by per-window max, so no
    /// disjoint-pool carve-out is needed — the law holds on collisions.
    #[test]
    fn timeseries_merge_commutative(ra in raw_telemetry(), rb in raw_telemetry()) {
        let a = build_telemetry(&ra);
        let b = build_telemetry(&rb);
        prop_assert_eq!(merged(a.clone(), &b), merged(b.clone(), &a));
    }

    /// Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn timeseries_merge_associative(
        ra in raw_telemetry(),
        rb in raw_telemetry(),
        rc in raw_telemetry(),
    ) {
        let a = build_telemetry(&ra);
        let b = build_telemetry(&rb);
        let c = build_telemetry(&rc);
        let left = merged(merged(a.clone(), &b), &c);
        let right = merged(a, &merged(b, &c));
        prop_assert_eq!(left, right);
    }

    /// Merging conserves counter mass: every series total in a ⊕ b is the
    /// sum of its totals in a and b (gauges take the max instead).
    #[test]
    fn timeseries_merge_conserves_counter_totals(ra in raw_telemetry(), rb in raw_telemetry()) {
        let a = build_telemetry(&ra);
        let b = build_telemetry(&rb);
        let m = merged(a.clone(), &b);
        for s in &m.series {
            let ta = a.get(&s.name, &s.label).map_or(0, TimeSeries::total);
            let tb = b.get(&s.name, &s.label).map_or(0, TimeSeries::total);
            match s.kind {
                SeriesKind::Counter => prop_assert_eq!(s.total(), ta + tb),
                SeriesKind::Gauge => prop_assert_eq!(s.total(), ta.max(tb)),
            }
        }
    }

    /// Percentiles are monotone non-decreasing in `q`.
    #[test]
    fn percentile_monotone_in_q(obs in prop::collection::vec(any::<u64>(), 1..64)) {
        let h = hist_of(&obs);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        for w in qs.windows(2) {
            prop_assert!(
                h.percentile(w[0]) <= h.percentile(w[1]),
                "p({}) > p({})", w[0], w[1]
            );
        }
    }

    /// Percentiles of a merged histogram are bracketed by the two halves'
    /// percentiles, and merging with an empty histogram changes nothing.
    #[test]
    fn percentile_survives_merge(
        oa in prop::collection::vec(any::<u64>(), 1..48),
        ob in prop::collection::vec(any::<u64>(), 1..48),
        q in 0.0f64..=1.0,
    ) {
        let (a, b) = (hist_of(&oa), hist_of(&ob));
        let mut merged = a.clone();
        merged.merge(&b);
        let (pa, pb) = (a.percentile(q), b.percentile(q));
        let pm = merged.percentile(q);
        prop_assert!(pm >= pa.min(pb) && pm <= pa.max(pb),
            "merged p({q}) = {pm} outside [{}, {}]", pa.min(pb), pa.max(pb));
        let mut with_empty = a.clone();
        with_empty.merge(&CycleHistogram::default());
        prop_assert_eq!(with_empty.percentile(q), pa);
    }

    /// Identity: the empty snapshot absorbs to and from anything without
    /// changing it.
    #[test]
    fn absorb_identity(raw in raw_snapshot()) {
        let x = build(&raw, &POOL_A);
        prop_assert_eq!(absorbed(x.clone(), &RunMetrics::default()), x.clone());
        prop_assert_eq!(absorbed(RunMetrics::default(), &x), x);
    }

    /// Commutativity over counters, histograms, and disjoint gauges:
    /// a ⊕ b == b ⊕ a.
    #[test]
    fn absorb_commutative(ra in raw_snapshot(), rb in raw_snapshot()) {
        let a = build(&ra, &POOL_A);
        let b = build(&rb, &POOL_B);
        prop_assert_eq!(absorbed(a.clone(), &b), absorbed(b.clone(), &a));
    }

    /// Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), gauges included
    /// (last-write-wins is associative even when names collide).
    #[test]
    fn absorb_associative(ra in raw_snapshot(), rb in raw_snapshot(), rc in raw_snapshot()) {
        let a = build(&ra, &POOL_A);
        let b = build(&rb, &POOL_A);
        let c = build(&rc, &POOL_B);
        let left = absorbed(absorbed(a.clone(), &b), &c);
        let right = absorbed(a, &absorbed(b, &c));
        prop_assert_eq!(left, right);
    }
}

// ---- Deterministic pins of the same laws, so the suite still exercises
// them under the offline proptest stub. ----

fn pinned(seed: u64, pool: &[&'static str]) -> RunMetrics {
    let raw: RawSnapshot = (
        (0..6)
            .map(|i| {
                let x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(i * 7);
                (x as u8, (x >> 8) as u8, x >> 16)
            })
            .collect(),
        (0..5).map(|i| seed.rotate_left(i * 11) % 7919).collect(),
        vec![(seed as u8, seed % 97), ((seed >> 3) as u8, seed % 89)],
    );
    build(&raw, pool)
}

#[test]
fn absorb_identity_pinned() {
    for seed in [1u64, 42, 0xdead_beef] {
        let x = pinned(seed, &POOL_A);
        assert!(!x.is_empty());
        assert_eq!(absorbed(x.clone(), &RunMetrics::default()), x);
        assert_eq!(absorbed(RunMetrics::default(), &x), x);
    }
}

#[test]
fn absorb_commutative_pinned() {
    for (sa, sb) in [(1u64, 2u64), (7, 1000), (0xabc, 0xdef)] {
        let a = pinned(sa, &POOL_A);
        let b = pinned(sb, &POOL_B);
        assert_eq!(absorbed(a.clone(), &b), absorbed(b, &a));
    }
}

#[test]
fn absorb_associative_pinned() {
    for (sa, sb, sc) in [(1u64, 2u64, 3u64), (10, 20, 30), (0x123, 0x456, 0x789)] {
        let a = pinned(sa, &POOL_A);
        let b = pinned(sb, &POOL_A); // same pool: gauge collisions on purpose
        let c = pinned(sc, &POOL_B);
        let left = absorbed(absorbed(a.clone(), &b), &c);
        let right = absorbed(a, &absorbed(b, &c));
        assert_eq!(left, right);
    }
}

fn pinned_telemetry(seed: u64) -> Telemetry {
    let raw: RawTelemetry = (
        (0..8)
            .map(|i| {
                let x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(i * 5);
                (x as u8, x >> 8, x >> 40)
            })
            .collect(),
        (0..4)
            .map(|i| (seed.rotate_left(i * 13) % 1024, seed % 31))
            .collect(),
    );
    build_telemetry(&raw)
}

#[test]
fn timeseries_merge_identity_pinned() {
    for seed in [1u64, 42, 0xdead_beef] {
        let x = pinned_telemetry(seed);
        assert!(!x.is_empty());
        assert_eq!(merged(x.clone(), &Telemetry::empty(TS_CFG)), x);
        assert_eq!(merged(Telemetry::empty(TS_CFG), &x), x);
    }
}

#[test]
fn timeseries_merge_commutative_pinned() {
    for (sa, sb) in [(1u64, 2u64), (7, 1000), (0xabc, 0xdef)] {
        let a = pinned_telemetry(sa);
        let b = pinned_telemetry(sb);
        assert_eq!(merged(a.clone(), &b), merged(b, &a));
    }
}

#[test]
fn timeseries_merge_associative_pinned() {
    for (sa, sb, sc) in [(1u64, 2u64, 3u64), (10, 20, 30), (0x123, 0x456, 0x789)] {
        let a = pinned_telemetry(sa);
        let b = pinned_telemetry(sb);
        let c = pinned_telemetry(sc);
        let left = merged(merged(a.clone(), &b), &c);
        let right = merged(a, &merged(b, &c));
        assert_eq!(left, right);
    }
}

#[test]
fn timeseries_merge_conserves_counter_totals_pinned() {
    for (sa, sb) in [(3u64, 5u64), (0x111, 0x222)] {
        let a = pinned_telemetry(sa);
        let b = pinned_telemetry(sb);
        let m = merged(a.clone(), &b);
        assert!(!m.is_empty());
        for s in &m.series {
            let ta = a.get(&s.name, &s.label).map_or(0, TimeSeries::total);
            let tb = b.get(&s.name, &s.label).map_or(0, TimeSeries::total);
            match s.kind {
                SeriesKind::Counter => assert_eq!(s.total(), ta + tb),
                SeriesKind::Gauge => assert_eq!(s.total(), ta.max(tb)),
            }
        }
    }
}

/// The non-commutative corner, documented as a test: two snapshots writing
/// the *same* gauge disagree under order reversal — which is exactly why
/// the runtime folds attempts in chronological order and layers own
/// disjoint gauge names.
#[test]
fn gauge_collisions_are_last_write_wins() {
    let m1 = Metrics::default();
    m1.set_gauge(names::COSIM_CHIPS, 1);
    let m2 = Metrics::default();
    m2.set_gauge(names::COSIM_CHIPS, 2);
    let (a, b) = (m1.snapshot(), m2.snapshot());
    assert_eq!(absorbed(a.clone(), &b).gauge(names::COSIM_CHIPS), Some(2));
    assert_eq!(absorbed(b, &a).gauge(names::COSIM_CHIPS), Some(1));
}
