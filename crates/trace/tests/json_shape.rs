//! Structural validation of the hand-rolled JSON emitters.
//!
//! The offline toolchain stubs out serde_json, so this harness carries its
//! own minimal JSON syntax checker: a single-pass scanner that verifies
//! string escaping plus brace/bracket balance — enough to guarantee the
//! documents parse in any real JSON reader (Perfetto included).

use tsm_trace::{chrome_trace_json, EventKind, Metrics, TraceEvent, RUNTIME_LANE};

/// Returns `Err` with a position if `s` is not structurally valid JSON
/// (balanced `{}`/`[]` outside strings, properly terminated strings, no
/// trailing garbage).
fn check_json_shape(s: &str) -> Result<(), String> {
    let mut stack = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    let mut depth_hit_zero_at = None;
    for (i, c) in s.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => {
                if depth_hit_zero_at.is_some() {
                    return Err(format!("content after document end at byte {i}"));
                }
                stack.push(c);
            }
            '}' => {
                if stack.pop() != Some('{') {
                    return Err(format!("unbalanced '}}' at byte {i}"));
                }
                if stack.is_empty() {
                    depth_hit_zero_at = Some(i);
                }
            }
            ']' => {
                if stack.pop() != Some('[') {
                    return Err(format!("unbalanced ']' at byte {i}"));
                }
                if stack.is_empty() {
                    depth_hit_zero_at = Some(i);
                }
            }
            c if c.is_whitespace() || "0123456789.,:+-eE".contains(c) => {}
            c if c.is_ascii_alphabetic() => {} // true/false/null tokens
            c => return Err(format!("unexpected character {c:?} at byte {i}")),
        }
    }
    if in_string {
        return Err("unterminated string".to_string());
    }
    if !stack.is_empty() {
        return Err(format!("{} unclosed scopes", stack.len()));
    }
    if depth_hit_zero_at.is_none() {
        return Err("no top-level value".to_string());
    }
    Ok(())
}

fn every_kind() -> Vec<TraceEvent> {
    let kinds = vec![
        EventKind::ChipExec {
            depth: 2,
            instructions: 9,
        },
        EventKind::Deliveries { count: 4 },
        EventKind::Emissions { count: 4 },
        EventKind::Delivery {
            link: 1,
            transfer: 0,
            vector: 3,
        },
        EventKind::LinkCorrected { link: 1, bit: 2047 },
        EventKind::LinkUncorrectable { link: 1 },
        EventKind::LinkDemoted { link: 1 },
        EventKind::LaunchBegin { graph_fp: u64::MAX },
        EventKind::Align,
        EventKind::Compile { epoch: 0 },
        EventKind::Reuse { epoch: 1 },
        EventKind::ReplayEpoch { attempt: 3 },
        EventKind::BlameVote { node: 1, votes: 2 },
        EventKind::Failover { node: 1, epoch: 2 },
        EventKind::LaunchEnd { attempts: 4 },
    ];
    kinds
        .into_iter()
        .enumerate()
        .map(|(i, kind)| TraceEvent {
            cycle: i as u64 * 10,
            lane: if i % 3 == 0 { RUNTIME_LANE } else { i as u32 },
            seq: i as u32,
            dur: if i % 2 == 0 { 5 } else { 0 },
            kind,
        })
        .collect()
}

#[test]
fn validator_accepts_known_good_and_rejects_known_bad() {
    check_json_shape(r#"{"a": [1, 2, {"b": "c\"d"}], "e": true}"#).unwrap();
    assert!(check_json_shape(r#"{"a": [1, 2}"#).is_err());
    assert!(check_json_shape(r#"{"a": "unterminated}"#).is_err());
    assert!(check_json_shape(r#"{} trailing {"#).is_err());
}

#[test]
fn chrome_trace_of_every_event_kind_is_valid_json() {
    let json = chrome_trace_json(&every_kind());
    check_json_shape(&json).unwrap_or_else(|e| panic!("invalid chrome trace: {e}\n{json}"));
    // Every kind must appear with its own name.
    for name in [
        "chip.exec",
        "chip.deliveries",
        "chip.emissions",
        "link.delivery",
        "link.corrected",
        "link.uncorrectable",
        "link.demoted",
        "launch.begin",
        "launch.align",
        "runtime.compile",
        "runtime.reuse",
        "runtime.replay_epoch",
        "runtime.blame_vote",
        "runtime.failover",
        "launch.end",
    ] {
        assert!(json.contains(name), "missing event name {name}");
    }
}

#[test]
fn run_metrics_json_is_valid() {
    use tsm_trace::names;
    let m = Metrics::default();
    m.inc(names::RT_COMPILES, 1);
    m.inc_labeled(names::LINK_CORRECTED, 7, 3);
    m.set_gauge(names::COSIM_CHIPS, 16);
    m.observe_cycles(names::COSIM_RETIRE_CYCLES, 1234);
    let json = m.snapshot().to_json();
    check_json_shape(&json).unwrap_or_else(|e| panic!("invalid metrics json: {e}\n{json}"));
}

#[test]
fn empty_metrics_json_is_valid() {
    check_json_shape(&Metrics::default().snapshot().to_json()).unwrap();
}

/// A metric name carrying every structurally dangerous character must not
/// corrupt the document — the emitter escapes through
/// [`tsm_trace::escape_json`].
#[test]
fn hostile_metric_names_cannot_corrupt_the_document() {
    use tsm_trace::{CounterEntry, CycleHistogram, GaugeEntry, RunMetrics};
    let hostile = "evil\"name\\with\nnasties\t\u{0001}";
    let mut hist = CycleHistogram::default();
    hist.observe(42);
    let snap = RunMetrics {
        counters: vec![CounterEntry {
            name: hostile.to_string(),
            label: Some(7),
            value: 1,
        }],
        gauges: vec![GaugeEntry {
            name: hostile.to_string(),
            value: 2,
        }],
        histograms: vec![(hostile.to_string(), hist)],
    };
    let json = snap.to_json();
    check_json_shape(&json).unwrap_or_else(|e| panic!("hostile names broke the json: {e}\n{json}"));
    assert!(json.contains("evil\\\"name\\\\with"), "escapes applied");
}

/// The escape/unescape pair is an exact inverse over the emitters' string
/// space, so a parser reading the documents back recovers the labels
/// byte-for-byte.
#[test]
fn escape_round_trip_recovers_hostile_labels() {
    use tsm_trace::{escape_json, unescape_json};
    for s in [
        "plain.name",
        "qu\"ote",
        "back\\slash",
        "multi\nline\tlabel",
        "ctrl\u{0002}chars\u{001f}",
    ] {
        let escaped = escape_json(s);
        check_json_shape(&format!("{{\"{escaped}\": 1}}")).unwrap();
        assert_eq!(unescape_json(&escaped).unwrap(), s);
    }
}

/// The lossy-trace banner and the plan overlay are valid JSON too.
#[test]
fn banner_and_overlay_documents_are_valid_json() {
    use tsm_trace::{
        chrome_trace_json_overlay, chrome_trace_json_with, PlannedHop, PlannedTimeline,
    };
    let events = every_kind();
    let lossy = chrome_trace_json_with(&events, 123);
    check_json_shape(&lossy).unwrap_or_else(|e| panic!("invalid lossy trace: {e}\n{lossy}"));
    assert!(lossy.contains("WARNING"));
    let planned = PlannedTimeline {
        hops: vec![PlannedHop {
            link: 1,
            transfer: 0,
            vector: 3,
            cycle: 40,
            wire_start: 20,
            wire_end: 30,
            dest_lane: 2,
        }],
        chips: vec![],
        span: 50,
        arrivals: vec![40],
    };
    let overlay = chrome_trace_json_overlay(&events, &planned, 0);
    check_json_shape(&overlay).unwrap_or_else(|e| panic!("invalid overlay: {e}\n{overlay}"));
    assert!(overlay.contains("link 1 planned"));
    assert!(overlay.contains("link 1 observed"));
}
