//! Error injection across a scheduled program's transmissions.
//!
//! Every link reservation in an SSN schedule is one wire packet. Driving
//! each of them through the FEC channel with a bit-error-rate model yields
//! the program's fault profile: how many packets arrived clean, how many
//! were silently repaired, and whether any uncorrectable error forces a
//! software replay (paper §4.5).

use rand::Rng;
use tsm_isa::packet::WirePacket;
use tsm_isa::Vector;
use tsm_link::{Channel, FecOutcome, LatencyModel};
use tsm_net::ssn::Reservation;
use tsm_topology::Topology;

/// Injection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionConfig {
    /// Bit error rate applied to every link.
    pub bit_error_rate: f64,
}

impl Default for InjectionConfig {
    fn default() -> Self {
        // A pessimistic serdes BER; real links with FEC budget for 1e-12
        // or better. The default exists to exercise the machinery, not to
        // claim a field failure rate.
        InjectionConfig {
            bit_error_rate: 1e-9,
        }
    }
}

/// Tally of FEC outcomes over a set of transmissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FecStats {
    /// Packets delivered without error.
    pub clean: u64,
    /// Packets with a single-bit error corrected in situ.
    pub corrected: u64,
    /// Packets with a detected multi-bit error (forces replay).
    pub uncorrectable: u64,
}

impl FecStats {
    /// Total packets observed.
    pub fn total(&self) -> u64 {
        self.clean + self.corrected + self.uncorrectable
    }

    /// True if the program's data survived without replay: every error was
    /// corrected in situ.
    pub fn is_clean_run(&self) -> bool {
        self.uncorrectable == 0
    }

    /// Observed packet error rate (corrected + uncorrectable).
    pub fn packet_error_rate(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.corrected + self.uncorrectable) as f64 / self.total() as f64
    }

    /// Merge two tallies.
    pub fn merge(&self, other: &FecStats) -> FecStats {
        FecStats {
            clean: self.clean + other.clean,
            corrected: self.corrected + other.corrected,
            uncorrectable: self.uncorrectable + other.uncorrectable,
        }
    }

    /// The paper's coarse triple as a *view* over a metrics snapshot: sums
    /// the per-link `link.fec.*` counters, folding demoted miscorrections
    /// into `uncorrectable` (neither may deliver bytes, both force replay).
    pub fn from_metrics(metrics: &tsm_trace::RunMetrics) -> FecStats {
        use tsm_trace::names;
        FecStats {
            clean: metrics.counter(names::LINK_CLEAN),
            corrected: metrics.counter(names::LINK_CORRECTED),
            uncorrectable: metrics.counter(names::LINK_UNCORRECTABLE)
                + metrics.counter(names::LINK_DEMOTED),
        }
    }

    /// Adds this tally into a registry's global (unlabeled) `link.fec.*`
    /// cells — the inverse of [`FecStats::from_metrics`] for code that has
    /// only the coarse triple (statistical injection, aborted attempts).
    pub fn record_into(&self, metrics: &tsm_trace::Metrics) {
        use tsm_trace::names;
        metrics.inc(names::LINK_CLEAN, self.clean);
        metrics.inc(names::LINK_CORRECTED, self.corrected);
        metrics.inc(names::LINK_UNCORRECTABLE, self.uncorrectable);
    }
}

/// Packet-count threshold below which every wire packet is driven through
/// the full channel/codec individually; larger flit trains use aggregate
/// sampling with identical per-packet statistics.
const EXACT_PACKET_LIMIT: u64 = 2048;

/// Pushes each reservation's flit train through a BER-afflicted channel
/// and tallies the FEC outcomes.
///
/// Small trains exercise the real codec packet by packet (payloads are
/// synthetic — the FEC layer's behaviour depends only on the error
/// process). Long trains are sampled in aggregate: per packet, the flip
/// count is Poisson(λ = BER × payload bits), so the counts of corrected
/// (k = 1) and uncorrectable (k ≥ 2) packets over `n` packets are Poisson
/// with means `n·λe^{−λ}` and `n·(1 − e^{−λ} − λe^{−λ})` — the same
/// distribution the per-packet path draws, at O(1) per train.
pub fn inject_schedule<R: Rng>(
    topo: &Topology,
    reservations: &[Reservation],
    config: InjectionConfig,
    rng: &mut R,
) -> FecStats {
    inject_schedule_with(topo, reservations, |_| config.bit_error_rate, rng).0
}

/// Like [`inject_schedule`], but with a per-link bit error rate — the
/// "marginal cable" scenario of paper §4.5 — and returning the links on
/// which uncorrectable errors were observed, which is exactly the signal
/// the runtime's health monitor uses to blame hardware.
pub fn inject_schedule_with<R: Rng>(
    topo: &Topology,
    reservations: &[Reservation],
    ber_for_link: impl Fn(tsm_topology::LinkId) -> f64,
    rng: &mut R,
) -> (FecStats, Vec<tsm_topology::LinkId>) {
    let mut stats = FecStats::default();
    let mut culprits = Vec::new();
    for r in reservations {
        let ber = ber_for_link(r.link);
        let before = stats.uncorrectable;
        inject_one(topo, r, ber, rng, &mut stats);
        if stats.uncorrectable > before && !culprits.contains(&r.link) {
            culprits.push(r.link);
        }
    }
    (stats, culprits)
}

fn inject_one<R: Rng>(
    topo: &Topology,
    r: &Reservation,
    ber: f64,
    rng: &mut R,
    stats: &mut FecStats,
) {
    {
        let config = InjectionConfig {
            bit_error_rate: ber,
        };
        if config.bit_error_rate == 0.0 {
            stats.clean += r.vectors;
            return;
        }
        if r.vectors <= EXACT_PACKET_LIMIT {
            let model = LatencyModel::for_class(topo.link(r.link).class);
            let channel = Channel::new(model, config.bit_error_rate);
            for v in 0..r.vectors {
                let payload = Vector::splat((r.transfer as u8) ^ (v as u8));
                let packet = WirePacket::data(v as u16, payload);
                let delivery = channel.transmit(&packet, r.start, rng);
                match delivery.outcome {
                    FecOutcome::Clean => stats.clean += 1,
                    FecOutcome::Corrected { .. } => stats.corrected += 1,
                    FecOutcome::Uncorrectable => stats.uncorrectable += 1,
                }
            }
        } else {
            let lambda = config.bit_error_rate * tsm_link::fec::PAYLOAD_BITS as f64;
            let p_single = lambda * (-lambda).exp();
            let p_multi = 1.0 - (-lambda).exp() - p_single;
            let corrected = sample_poisson(r.vectors as f64 * p_single, rng).min(r.vectors);
            let uncorrectable =
                sample_poisson(r.vectors as f64 * p_multi, rng).min(r.vectors - corrected);
            stats.corrected += corrected;
            stats.uncorrectable += uncorrectable;
            stats.clean += r.vectors - corrected - uncorrectable;
        }
    }
}

/// Draws a Poisson variate: inversion for small means, a rounded Gaussian
/// (clamped at 0) for large ones.
fn sample_poisson<R: Rng>(mean: f64, rng: &mut R) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 64.0 {
        let u: f64 = rng.gen();
        let mut cdf = 0.0;
        let mut p = (-mean).exp();
        let mut k = 0u64;
        loop {
            cdf += p;
            if u < cdf || k > 8 * mean as u64 + 64 {
                return k;
            }
            k += 1;
            p *= mean / k as f64;
        }
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mean + z * mean.sqrt()).round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsm_net::ssn::LinkOccupancy;
    use tsm_topology::route::shortest_path;
    use tsm_topology::{Topology, TspId};

    fn schedule(vectors: u64) -> (Topology, Vec<Reservation>) {
        let topo = Topology::single_node();
        let path = shortest_path(&topo, TspId(0), TspId(1)).unwrap();
        let mut occ = LinkOccupancy::new();
        occ.schedule_transfer(&topo, &path, vectors, 0).unwrap();
        let r = occ.reservations().to_vec();
        (topo, r)
    }

    #[test]
    fn zero_ber_is_always_clean() {
        let (topo, res) = schedule(500);
        let mut rng = StdRng::seed_from_u64(1);
        let stats = inject_schedule(
            &topo,
            &res,
            InjectionConfig {
                bit_error_rate: 0.0,
            },
            &mut rng,
        );
        assert_eq!(stats.clean, 500);
        assert_eq!(stats.total(), 500);
        assert!(stats.is_clean_run());
        assert_eq!(stats.packet_error_rate(), 0.0);
    }

    #[test]
    fn moderate_ber_mostly_corrected() {
        let (topo, res) = schedule(3000);
        let mut rng = StdRng::seed_from_u64(2);
        // λ ≈ 2560e-6 ≈ 0.0026 errors/packet: singles dominate.
        let stats = inject_schedule(
            &topo,
            &res,
            InjectionConfig {
                bit_error_rate: 1e-6,
            },
            &mut rng,
        );
        assert!(stats.corrected > 0, "{stats:?}");
        assert!(stats.corrected > stats.uncorrectable * 10, "{stats:?}");
    }

    #[test]
    fn harsh_ber_forces_replay() {
        let (topo, res) = schedule(500);
        let mut rng = StdRng::seed_from_u64(3);
        let stats = inject_schedule(
            &topo,
            &res,
            InjectionConfig {
                bit_error_rate: 1e-3,
            },
            &mut rng,
        );
        assert!(!stats.is_clean_run(), "{stats:?}");
    }

    #[test]
    fn stats_merge_adds_fields() {
        let a = FecStats {
            clean: 1,
            corrected: 2,
            uncorrectable: 3,
        };
        let b = FecStats {
            clean: 10,
            corrected: 20,
            uncorrectable: 30,
        };
        let m = a.merge(&b);
        assert_eq!(
            m,
            FecStats {
                clean: 11,
                corrected: 22,
                uncorrectable: 33
            }
        );
        assert_eq!(m.total(), 66);
    }

    #[test]
    fn metrics_round_trip_preserves_the_triple_and_folds_demotions() {
        use tsm_trace::{names, Metrics};
        let stats = FecStats {
            clean: 10,
            corrected: 3,
            uncorrectable: 2,
        };
        let m = Metrics::default();
        stats.record_into(&m);
        assert_eq!(FecStats::from_metrics(&m.snapshot()), stats);

        // Demotions (recorded per-link by the link meter) fold into
        // uncorrectable in the view.
        m.inc_labeled(names::LINK_DEMOTED, 4, 1);
        let folded = FecStats::from_metrics(&m.snapshot());
        assert_eq!(folded.uncorrectable, 3);
        assert_eq!(folded.clean, 10);
    }

    #[test]
    fn injection_is_seed_deterministic() {
        let (topo, res) = schedule(200);
        let cfg = InjectionConfig {
            bit_error_rate: 1e-5,
        };
        let a = inject_schedule(&topo, &res, cfg, &mut StdRng::seed_from_u64(9));
        let b = inject_schedule(&topo, &res, cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
