//! N+1 hot-spare provisioning and failover (paper §4.5, Fig 6).
//!
//! "The system reliability strategy uses N+1 redundancy by provisioning a
//! *hot spare* node in every deployed rack … the network remains
//! fully-connected" — when a node fails, the runtime remaps the failed
//! node's logical role onto the spare and replays the inference.

use tsm_topology::route::shortest_path;
use tsm_topology::{NodeId, Topology, TspId, NODES_PER_RACK};

/// Errors from spare management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpareError {
    /// All spares are already consumed.
    NoSpareAvailable,
    /// The node is not part of this plan.
    UnknownNode(NodeId),
    /// The requested provisioning policy would reserve zero spares on this
    /// topology — the plan would silently provide no redundancy, so
    /// construction refuses instead of deferring the surprise to the
    /// first failover.
    NoSparesProvisioned {
        /// Nodes in the topology the policy was asked to cover.
        nodes: usize,
    },
}

impl std::fmt::Display for SpareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpareError::NoSpareAvailable => write!(f, "no spare node available"),
            SpareError::UnknownNode(n) => write!(f, "{n} is not managed by this plan"),
            SpareError::NoSparesProvisioned { nodes } => {
                write!(f, "policy reserves zero spares on a {nodes}-node topology")
            }
        }
    }
}

impl std::error::Error for SpareError {}

/// A mapping from logical nodes (what the program was compiled against) to
/// physical nodes, with spares held in reserve.
#[derive(Debug, Clone)]
pub struct SparePlan {
    /// Physical node backing each logical node.
    mapping: Vec<NodeId>,
    /// Unused spare nodes.
    spares: Vec<NodeId>,
    /// Physical nodes consumed by failures.
    failed: Vec<NodeId>,
}

impl SparePlan {
    /// Reserves one spare node per rack ("a hot spare node in every
    /// deployed rack", 1/9 ≈ 11 % overhead): the last node of each rack is
    /// the spare.
    ///
    /// Fails with [`SpareError::NoSparesProvisioned`] on a topology
    /// smaller than one full rack, where the policy would reserve nothing:
    /// the old constructor returned such a plan silently, and the first
    /// failover then surprised the operator with `NoSpareAvailable`. Use
    /// [`SparePlan::per_system`] on sub-rack systems.
    pub fn per_rack(topo: &Topology) -> Result<Self, SpareError> {
        let n = topo.num_nodes();
        let mut mapping = Vec::new();
        let mut spares = Vec::new();
        for i in 0..n {
            let node = NodeId(i as u32);
            if node.slot() == NODES_PER_RACK - 1 && n >= NODES_PER_RACK {
                spares.push(node);
            } else {
                mapping.push(node);
            }
        }
        if spares.is_empty() {
            return Err(SpareError::NoSparesProvisioned { nodes: n });
        }
        Ok(SparePlan {
            mapping,
            spares,
            failed: Vec::new(),
        })
    }

    /// Reserves a single spare for the whole system ("a redundant node per
    /// *system* … reducing the overhead from 11% to 3%"): the last node.
    pub fn per_system(topo: &Topology) -> Self {
        let n = topo.num_nodes();
        assert!(n >= 2, "need at least two nodes to hold a spare");
        SparePlan {
            mapping: (0..n as u32 - 1).map(NodeId).collect(),
            spares: vec![NodeId(n as u32 - 1)],
            failed: Vec::new(),
        }
    }

    /// Logical node count available to programs.
    pub fn logical_nodes(&self) -> usize {
        self.mapping.len()
    }

    /// Spares still in reserve.
    pub fn spares_left(&self) -> usize {
        self.spares.len()
    }

    /// Fraction of nodes held back as spares.
    pub fn overhead(&self) -> f64 {
        let total = self.mapping.len() + self.spares.len() + self.failed.len();
        (self.spares.len() + self.failed.len()) as f64 / total as f64
    }

    /// Physical node currently backing logical node `l`.
    pub fn physical(&self, l: usize) -> NodeId {
        self.mapping[l]
    }

    /// Physical TSP currently backing logical TSP `l` (slot-preserving).
    pub fn physical_tsp(&self, l: TspId) -> TspId {
        let node = self.physical(l.index() / tsm_topology::TSPS_PER_NODE);
        TspId(node.0 * tsm_topology::TSPS_PER_NODE as u32 + l.slot() as u32)
    }

    /// Handles a physical node failure: marks it failed in `topo` and
    /// remaps its logical role onto a spare.
    ///
    /// Returns the spare that took over.
    pub fn fail_over(&mut self, topo: &mut Topology, failed: NodeId) -> Result<NodeId, SpareError> {
        let Some(slot) = self.mapping.iter().position(|&m| m == failed) else {
            return Err(SpareError::UnknownNode(failed));
        };
        let spare = self.spares.pop().ok_or(SpareError::NoSpareAvailable)?;
        topo.fail_node(failed);
        self.mapping[slot] = spare;
        self.failed.push(failed);
        Ok(spare)
    }

    /// Verifies every pair of *logical* TSPs still has a route — the
    /// "edge and node symmetric" property that makes N+1 practicable.
    pub fn verify_connectivity(&self, topo: &Topology) -> bool {
        let first = self.physical_tsp(TspId(0));
        for l in 0..self.logical_nodes() {
            for t in self.physical(l).tsps() {
                if shortest_path(topo, first, t).is_err() {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsm_topology::Topology;

    #[test]
    fn per_rack_overhead_is_11_percent() {
        let topo = Topology::rack_dragonfly(4).unwrap();
        let plan = SparePlan::per_rack(&topo).unwrap();
        assert_eq!(plan.logical_nodes(), 32);
        assert_eq!(plan.spares_left(), 4);
        assert!((plan.overhead() - 1.0 / 9.0).abs() < 1e-12);
    }

    /// A topology smaller than one rack cannot honor the per-rack policy:
    /// construction reports it instead of reserving zero spares and
    /// failing at the first failover.
    #[test]
    fn per_rack_on_sub_rack_topology_is_refused() {
        for n in [2usize, 4, NODES_PER_RACK - 1] {
            let topo = Topology::fully_connected_nodes(n).unwrap();
            assert_eq!(
                SparePlan::per_rack(&topo).unwrap_err(),
                SpareError::NoSparesProvisioned { nodes: n },
                "{n} nodes"
            );
            // the per-system policy covers the same topology
            let fallback = SparePlan::per_system(&topo);
            assert_eq!(fallback.spares_left(), 1);
            assert_eq!(fallback.logical_nodes(), n - 1);
        }
    }

    /// One full rack is the smallest topology the per-rack policy accepts.
    #[test]
    fn per_rack_on_exactly_one_rack_reserves_one_spare() {
        let topo = Topology::fully_connected_nodes(NODES_PER_RACK).unwrap();
        let plan = SparePlan::per_rack(&topo).unwrap();
        assert_eq!(plan.spares_left(), 1);
        assert_eq!(plan.logical_nodes(), NODES_PER_RACK - 1);
    }

    #[test]
    fn per_system_overhead_is_3_percent_at_33_nodes() {
        // "a 33 node system … 1 of 33 nodes as the spare (reducing the
        // overhead from 11% to 3%, leaving 32 nodes (256 TSPs)"
        let topo = Topology::fully_connected_nodes(33).unwrap();
        let plan = SparePlan::per_system(&topo);
        assert_eq!(plan.logical_nodes(), 32);
        assert_eq!(plan.logical_nodes() * 8, 256);
        assert!((plan.overhead() - 1.0 / 33.0).abs() < 1e-12);
        assert!(plan.overhead() < 0.04);
    }

    #[test]
    fn failover_remaps_and_preserves_connectivity() {
        let mut topo = Topology::fully_connected_nodes(33).unwrap();
        let mut plan = SparePlan::per_system(&topo);
        let spare = plan.fail_over(&mut topo, NodeId(5)).unwrap();
        assert_eq!(spare, NodeId(32));
        assert_eq!(plan.physical(5), NodeId(32));
        assert_eq!(plan.spares_left(), 0);
        assert!(topo.is_failed(TspId(5 * 8)));
        assert!(
            plan.verify_connectivity(&topo),
            "Dragonfly must stay connected"
        );
    }

    #[test]
    fn physical_tsp_preserves_slot() {
        let mut topo = Topology::fully_connected_nodes(3).unwrap();
        let mut plan = SparePlan::per_system(&topo);
        assert_eq!(plan.physical_tsp(TspId(3)), TspId(3));
        plan.fail_over(&mut topo, NodeId(0)).unwrap();
        // logical node 0 now lives on physical node 2
        assert_eq!(plan.physical_tsp(TspId(3)), TspId(2 * 8 + 3));
    }

    #[test]
    fn second_failure_without_spares_errors() {
        let mut topo = Topology::fully_connected_nodes(3).unwrap();
        let mut plan = SparePlan::per_system(&topo);
        plan.fail_over(&mut topo, NodeId(0)).unwrap();
        assert_eq!(
            plan.fail_over(&mut topo, NodeId(1)),
            Err(SpareError::NoSpareAvailable)
        );
    }

    #[test]
    fn failing_unknown_node_errors() {
        let mut topo = Topology::fully_connected_nodes(3).unwrap();
        let mut plan = SparePlan::per_system(&topo);
        // node 2 is the spare itself, not a mapped node
        assert_eq!(
            plan.fail_over(&mut topo, NodeId(2)),
            Err(SpareError::UnknownNode(NodeId(2)))
        );
    }
}
