//! Fault tolerance: FEC statistics, N+1 hot-spare failover, and software
//! replay (paper §4.5, Fig 6).
//!
//! The paper's reliability strategy has three tiers:
//!
//! 1. **FEC on every link** corrects single-bit errors in situ and detects
//!    multi-bit bursts ([`inject`] drives a whole schedule's worth of
//!    transmissions through the `tsm-link` codec and tallies outcomes);
//! 2. **software replay**: on an uncorrectable error the runtime replays
//!    the inference to distinguish transient from persistent faults
//!    ([`replay`]);
//! 3. **N+1 hot spares**: a spare node per rack (11 % overhead) or per
//!    system (3 %) replaces a failed node, exploiting the Dragonfly's
//!    edge/node symmetry so the network stays fully connected
//!    ([`spare`]).

pub mod inject;
pub mod replay;
pub mod spare;

pub use inject::{FecStats, InjectionConfig};
pub use replay::{ReplayOutcome, ReplayPolicy};
pub use spare::SparePlan;
