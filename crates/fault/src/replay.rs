//! The software replay runtime (paper §4.5).
//!
//! On a critical (uncorrectable) error the runtime replays the inference
//! "to determine if the fault is *transient* and disappears after
//! replaying … or persists after a retry and requires physical
//! intervention". The policy below is that state machine: replay up to a
//! budget, then fail over to a spare and replay once more.

use crate::inject::FecStats;

/// Replay policy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayPolicy {
    /// Replays to attempt before declaring the fault persistent.
    pub max_replays: u32,
}

impl Default for ReplayPolicy {
    fn default() -> Self {
        ReplayPolicy { max_replays: 2 }
    }
}

/// How a monitored inference concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// First execution was clean (possibly with in-situ corrections).
    CleanFirstTry {
        /// FEC tally of the run.
        stats: FecStats,
    },
    /// A transient fault: some replay succeeded.
    RecoveredAfterReplay {
        /// Replays consumed before success.
        replays: u32,
        /// FEC tally of the successful run.
        stats: FecStats,
    },
    /// The fault persisted across the replay budget: physical intervention
    /// (cable/PSU/card swap) or spare failover required.
    Persistent {
        /// Total executions attempted.
        attempts: u32,
    },
}

impl ReplayOutcome {
    /// True if the inference ultimately produced trustworthy output.
    pub fn succeeded(&self) -> bool {
        !matches!(self, ReplayOutcome::Persistent { .. })
    }
}

/// Runs `execute` (which returns the run's FEC tally) under the replay
/// policy.
pub fn run_with_replay(
    policy: ReplayPolicy,
    mut execute: impl FnMut(u32) -> FecStats,
) -> ReplayOutcome {
    let first = execute(0);
    if first.is_clean_run() {
        return ReplayOutcome::CleanFirstTry { stats: first };
    }
    for replay in 1..=policy.max_replays {
        let stats = execute(replay);
        if stats.is_clean_run() {
            return ReplayOutcome::RecoveredAfterReplay {
                replays: replay,
                stats,
            };
        }
    }
    ReplayOutcome::Persistent {
        attempts: policy.max_replays + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> FecStats {
        FecStats {
            clean: 100,
            corrected: 0,
            uncorrectable: 0,
        }
    }

    fn corrected() -> FecStats {
        FecStats {
            clean: 99,
            corrected: 1,
            uncorrectable: 0,
        }
    }

    fn broken() -> FecStats {
        FecStats {
            clean: 99,
            corrected: 0,
            uncorrectable: 1,
        }
    }

    #[test]
    fn clean_run_needs_no_replay() {
        let mut calls = 0;
        let out = run_with_replay(ReplayPolicy::default(), |_| {
            calls += 1;
            clean()
        });
        assert!(matches!(out, ReplayOutcome::CleanFirstTry { .. }));
        assert_eq!(calls, 1);
    }

    #[test]
    fn corrected_errors_do_not_trigger_replay() {
        // In-situ FEC correction is invisible to the runtime — exactly the
        // point of FEC over link-layer retry.
        let out = run_with_replay(ReplayPolicy::default(), |_| corrected());
        assert!(matches!(out, ReplayOutcome::CleanFirstTry { .. }));
        assert!(out.succeeded());
    }

    #[test]
    fn transient_fault_recovers_on_replay() {
        let out = run_with_replay(ReplayPolicy::default(), |attempt| {
            if attempt == 0 {
                broken()
            } else {
                clean()
            }
        });
        assert_eq!(
            out,
            ReplayOutcome::RecoveredAfterReplay {
                replays: 1,
                stats: clean()
            }
        );
        assert!(out.succeeded());
    }

    #[test]
    fn persistent_fault_exhausts_budget() {
        let mut calls = 0;
        let out = run_with_replay(ReplayPolicy { max_replays: 3 }, |_| {
            calls += 1;
            broken()
        });
        assert_eq!(out, ReplayOutcome::Persistent { attempts: 4 });
        assert_eq!(calls, 4);
        assert!(!out.succeeded());
    }
}
