//! The software replay runtime (paper §4.5).
//!
//! On a critical (uncorrectable) error the runtime replays the inference
//! "to determine if the fault is *transient* and disappears after
//! replaying … or persists after a retry and requires physical
//! intervention". The policy below is that state machine: replay up to a
//! budget, then fail over to a spare and replay once more.

use crate::inject::FecStats;

/// Replay policy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayPolicy {
    /// Replays to attempt before declaring the fault persistent.
    pub max_replays: u32,
}

impl Default for ReplayPolicy {
    fn default() -> Self {
        ReplayPolicy { max_replays: 2 }
    }
}

/// How a monitored inference concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// First execution was clean (possibly with in-situ corrections).
    CleanFirstTry {
        /// FEC tally of the run.
        stats: FecStats,
    },
    /// A transient fault: some replay succeeded.
    RecoveredAfterReplay {
        /// Replays consumed before success.
        replays: u32,
        /// FEC tally of the successful run.
        stats: FecStats,
    },
    /// The fault persisted across the replay budget: physical intervention
    /// (cable/PSU/card swap) or spare failover required.
    Persistent {
        /// Total executions attempted.
        attempts: u32,
    },
}

impl ReplayOutcome {
    /// True if the inference ultimately produced trustworthy output.
    pub fn succeeded(&self) -> bool {
        !matches!(self, ReplayOutcome::Persistent { .. })
    }
}

/// Outcome of a fallible execution run under the replay policy.
///
/// The datapath execution engine reports an uncorrectable error as a typed
/// `Err`, not as a statistics field — this is the [`run_with_replay`]
/// state machine generalized to that shape. `value` is whatever a
/// successful attempt produced (e.g. a co-simulation report); `last_error`
/// is the failure of the final attempt, which the runtime's health monitor
/// mines for the culprit link before failing over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FallibleReplayOutcome<T, E> {
    /// Some attempt succeeded after `replays` replays (0 = first try).
    Recovered {
        /// Replays consumed before success.
        replays: u32,
        /// What the successful attempt produced.
        value: T,
    },
    /// Every attempt in the budget failed: the fault is persistent.
    Persistent {
        /// Total executions attempted.
        attempts: u32,
        /// The failure of the last attempt.
        last_error: E,
    },
}

impl<T, E> FallibleReplayOutcome<T, E> {
    /// True if some attempt produced trustworthy output.
    pub fn succeeded(&self) -> bool {
        matches!(self, FallibleReplayOutcome::Recovered { .. })
    }
}

/// Runs a fallible `execute` under the replay policy: retry until an
/// attempt returns `Ok` or the budget is exhausted.
pub fn run_with_replay_fallible<T, E>(
    policy: ReplayPolicy,
    mut execute: impl FnMut(u32) -> Result<T, E>,
) -> FallibleReplayOutcome<T, E> {
    let mut last = match execute(0) {
        Ok(value) => return FallibleReplayOutcome::Recovered { replays: 0, value },
        Err(e) => e,
    };
    for replay in 1..=policy.max_replays {
        match execute(replay) {
            Ok(value) => {
                return FallibleReplayOutcome::Recovered {
                    replays: replay,
                    value,
                }
            }
            Err(e) => last = e,
        }
    }
    FallibleReplayOutcome::Persistent {
        attempts: policy.max_replays + 1,
        last_error: last,
    }
}

/// Runs `execute` (which returns the run's FEC tally) under the replay
/// policy.
pub fn run_with_replay(
    policy: ReplayPolicy,
    mut execute: impl FnMut(u32) -> FecStats,
) -> ReplayOutcome {
    let first = execute(0);
    if first.is_clean_run() {
        return ReplayOutcome::CleanFirstTry { stats: first };
    }
    for replay in 1..=policy.max_replays {
        let stats = execute(replay);
        if stats.is_clean_run() {
            return ReplayOutcome::RecoveredAfterReplay {
                replays: replay,
                stats,
            };
        }
    }
    ReplayOutcome::Persistent {
        attempts: policy.max_replays + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> FecStats {
        FecStats {
            clean: 100,
            corrected: 0,
            uncorrectable: 0,
        }
    }

    fn corrected() -> FecStats {
        FecStats {
            clean: 99,
            corrected: 1,
            uncorrectable: 0,
        }
    }

    fn broken() -> FecStats {
        FecStats {
            clean: 99,
            corrected: 0,
            uncorrectable: 1,
        }
    }

    #[test]
    fn clean_run_needs_no_replay() {
        let mut calls = 0;
        let out = run_with_replay(ReplayPolicy::default(), |_| {
            calls += 1;
            clean()
        });
        assert!(matches!(out, ReplayOutcome::CleanFirstTry { .. }));
        assert_eq!(calls, 1);
    }

    #[test]
    fn corrected_errors_do_not_trigger_replay() {
        // In-situ FEC correction is invisible to the runtime — exactly the
        // point of FEC over link-layer retry.
        let out = run_with_replay(ReplayPolicy::default(), |_| corrected());
        assert!(matches!(out, ReplayOutcome::CleanFirstTry { .. }));
        assert!(out.succeeded());
    }

    #[test]
    fn transient_fault_recovers_on_replay() {
        let out = run_with_replay(ReplayPolicy::default(), |attempt| {
            if attempt == 0 {
                broken()
            } else {
                clean()
            }
        });
        assert_eq!(
            out,
            ReplayOutcome::RecoveredAfterReplay {
                replays: 1,
                stats: clean()
            }
        );
        assert!(out.succeeded());
    }

    #[test]
    fn persistent_fault_exhausts_budget() {
        let mut calls = 0;
        let out = run_with_replay(ReplayPolicy { max_replays: 3 }, |_| {
            calls += 1;
            broken()
        });
        assert_eq!(out, ReplayOutcome::Persistent { attempts: 4 });
        assert_eq!(calls, 4);
        assert!(!out.succeeded());
    }

    #[test]
    fn fallible_first_try_success_consumes_one_attempt() {
        let mut calls = 0;
        let out = run_with_replay_fallible(ReplayPolicy::default(), |_| -> Result<u32, ()> {
            calls += 1;
            Ok(7)
        });
        assert_eq!(
            out,
            FallibleReplayOutcome::Recovered {
                replays: 0,
                value: 7
            }
        );
        assert!(out.succeeded());
        assert_eq!(calls, 1);
    }

    #[test]
    fn fallible_transient_error_recovers_on_replay() {
        let out = run_with_replay_fallible(ReplayPolicy::default(), |attempt| {
            if attempt == 0 {
                Err("uncorrectable")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(
            out,
            FallibleReplayOutcome::Recovered {
                replays: 1,
                value: 1
            }
        );
    }

    #[test]
    fn fallible_persistent_error_reports_the_last_failure() {
        let out = run_with_replay_fallible(ReplayPolicy { max_replays: 2 }, |attempt| {
            Err::<(), _>(format!("attempt {attempt} lost a packet"))
        });
        assert_eq!(
            out,
            FallibleReplayOutcome::Persistent {
                attempts: 3,
                last_error: "attempt 2 lost a packet".to_string()
            }
        );
        assert!(!out.succeeded());
    }
}
