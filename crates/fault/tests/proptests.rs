//! Property-based tests for fault handling.

// In offline dev environments the proptest stub's `proptest!` macro
// expands to nothing, making the helpers and imports below look unused;
// the real proptest uses all of them.
#![allow(dead_code, unused_imports)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tsm_fault::inject::{inject_schedule, FecStats, InjectionConfig};
use tsm_fault::replay::{run_with_replay, ReplayOutcome, ReplayPolicy};
use tsm_fault::spare::SparePlan;
use tsm_net::ssn::LinkOccupancy;
use tsm_topology::route::shortest_path;
use tsm_topology::{NodeId, Topology, TspId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FEC stats always account for every packet exactly once.
    #[test]
    fn stats_conserve_packets(vectors in 1u64..20_000, ber_exp in 0u32..8, seed: u64) {
        let topo = Topology::single_node();
        let path = shortest_path(&topo, TspId(0), TspId(1)).unwrap();
        let mut occ = LinkOccupancy::new();
        occ.schedule_transfer(&topo, &path, vectors, 0).unwrap();
        let ber = if ber_exp == 0 { 0.0 } else { 10f64.powi(-(ber_exp as i32 + 2)) };
        let mut rng = StdRng::seed_from_u64(seed);
        let stats = inject_schedule(
            &topo,
            occ.reservations(),
            InjectionConfig { bit_error_rate: ber },
            &mut rng,
        );
        prop_assert_eq!(stats.total(), vectors);
        prop_assert!(stats.packet_error_rate() <= 1.0);
    }

    /// The replay policy always terminates within max_replays + 1 attempts
    /// and classifies outcomes exhaustively.
    #[test]
    fn replay_terminates(outcomes in prop::collection::vec(prop::bool::ANY, 1..10), budget in 0u32..8) {
        let mut calls = 0usize;
        let out = run_with_replay(ReplayPolicy { max_replays: budget }, |attempt| {
            calls += 1;
            let clean = outcomes.get(attempt as usize).copied().unwrap_or(true);
            FecStats {
                clean: 10,
                corrected: 0,
                uncorrectable: if clean { 0 } else { 1 },
            }
        });
        prop_assert!(calls <= budget as usize + 1);
        match out {
            ReplayOutcome::CleanFirstTry { .. } => prop_assert!(outcomes[0]),
            ReplayOutcome::RecoveredAfterReplay { replays, .. } => {
                prop_assert!(!outcomes[0]);
                prop_assert!(replays <= budget);
            }
            ReplayOutcome::Persistent { attempts } => {
                prop_assert_eq!(attempts, budget + 1);
            }
        }
    }

    /// Any sequence of distinct failovers within the spare budget keeps
    /// the network connected and the mapping total.
    #[test]
    fn failover_sequences_stay_connected(kills in prop::collection::vec(0u32..8, 0..4)) {
        let mut topo = Topology::rack_dragonfly(2).unwrap();
        let mut plan = SparePlan::per_rack(&topo).unwrap();
        let spares = plan.spares_left();
        let mut killed = Vec::new();
        for k in kills {
            let victim = NodeId(k);
            if killed.contains(&victim) {
                continue;
            }
            match plan.fail_over(&mut topo, victim) {
                Ok(_) => killed.push(victim),
                Err(_) => break, // out of spares or not mapped — both legal
            }
        }
        prop_assert!(killed.len() <= spares);
        prop_assert!(plan.verify_connectivity(&topo), "killed {killed:?}");
        // every logical node still has a healthy physical backing
        for l in 0..plan.logical_nodes() {
            prop_assert!(!topo.is_failed(plan.physical(l).tsps().next().unwrap()));
        }
    }
}
