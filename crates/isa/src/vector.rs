//! The 320-byte vector: SIMD register value and network flit.
//!
//! The TSP's functional units operate on 320-element vectors (paper §2) and
//! the same unit is the network's flow-control unit (paper §2.3: "a *vector*
//! is the flow control unit (flit)").

/// Number of byte lanes in a vector (320-element SIMD, paper §2).
pub const VECTOR_BYTES: usize = 320;

/// Number of streams per direction across the chip.
pub const MAX_STREAMS: usize = 32;

/// Element type carried by a vector.
///
/// The vector length in *elements* depends on the element width: 320 int8
/// elements or 160 FP16 elements (paper §5.2: "K=\[160,320\] i.e. the vector
/// lengths of the hardware for FP16 and int8 respectively").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// 16-bit floating point; 160 elements per vector.
    F16,
    /// 8-bit integer; 320 elements per vector.
    I8,
    /// 32-bit floating point; 80 elements per vector (used for accumulators).
    F32,
}

impl ElemType {
    /// Width of one element in bytes.
    pub fn bytes(self) -> usize {
        match self {
            ElemType::F16 => 2,
            ElemType::I8 => 1,
            ElemType::F32 => 4,
        }
    }

    /// Number of elements of this type that fit in one vector.
    pub fn lanes(self) -> usize {
        VECTOR_BYTES / self.bytes()
    }

    /// Number of matrix-multiply sub-operations the MXM can retire per
    /// cycle for this element type (paper §5.2: "a TSP can run two FP16 or
    /// four int8 sub-operations each cycle").
    pub fn mxm_subops_per_cycle(self) -> usize {
        match self {
            ElemType::F16 => 2,
            ElemType::I8 => 4,
            ElemType::F32 => 1,
        }
    }
}

/// A 320-byte vector value.
///
/// This is deliberately a plain value type: the architecture exposes all
/// state, and a vector has no identity beyond its bytes.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Vector {
    bytes: [u8; VECTOR_BYTES],
}

impl Vector {
    /// A vector of all zeros.
    pub fn zeroed() -> Self {
        Vector {
            bytes: [0; VECTOR_BYTES],
        }
    }

    /// Builds a vector by repeating `pattern` across all 320 bytes.
    pub fn splat(pattern: u8) -> Self {
        Vector {
            bytes: [pattern; VECTOR_BYTES],
        }
    }

    /// Builds a vector whose byte `i` equals `f(i)`.
    pub fn from_fn(mut f: impl FnMut(usize) -> u8) -> Self {
        let mut bytes = [0u8; VECTOR_BYTES];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = f(i);
        }
        Vector { bytes }
    }

    /// Builds a vector from a byte slice, which must be exactly 320 bytes.
    pub fn from_slice(slice: &[u8]) -> Option<Self> {
        if slice.len() != VECTOR_BYTES {
            return None;
        }
        let mut bytes = [0u8; VECTOR_BYTES];
        bytes.copy_from_slice(slice);
        Some(Vector { bytes })
    }

    /// The raw bytes of the vector.
    pub fn as_bytes(&self) -> &[u8; VECTOR_BYTES] {
        &self.bytes
    }

    /// Mutable access to the raw bytes.
    pub fn as_bytes_mut(&mut self) -> &mut [u8; VECTOR_BYTES] {
        &mut self.bytes
    }

    /// Lane-wise wrapping byte addition — the cheapest possible model of a
    /// VXM ALU op, used by tests and the all-reduce reduction model.
    pub fn wrapping_add(&self, other: &Vector) -> Vector {
        Vector::from_fn(|i| self.bytes[i].wrapping_add(other.bytes[i]))
    }

    /// XOR combine, used by integrity checks in tests.
    pub fn xor(&self, other: &Vector) -> Vector {
        Vector::from_fn(|i| self.bytes[i] ^ other.bytes[i])
    }

    /// A cheap 64-bit digest of the contents, for deterministic
    /// end-to-end data-integrity assertions.
    ///
    /// FNV-1a over the 40 little-endian u64 words of the vector rather
    /// than its 320 bytes: one serial multiply per word instead of per
    /// byte keeps digesting off the critical path of warm plan
    /// executions, which fingerprint every destination payload.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in self.bytes.chunks_exact(8) {
            h ^= u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

impl Default for Vector {
    fn default() -> Self {
        Vector::zeroed()
    }
}

impl core::fmt::Debug for Vector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Vector(digest={:016x})", self.digest())
    }
}

/// Number of vectors needed to carry `bytes` of payload (ceiling division).
pub fn vectors_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(VECTOR_BYTES as u64)
}

/// Number of vectors needed to carry a tensor of `elems` elements of type
/// `ty`.
pub fn vectors_for_elems(elems: u64, ty: ElemType) -> u64 {
    vectors_for_bytes(elems * ty.bytes() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_type_lanes_match_paper() {
        assert_eq!(ElemType::F16.lanes(), 160);
        assert_eq!(ElemType::I8.lanes(), 320);
        assert_eq!(ElemType::F32.lanes(), 80);
    }

    #[test]
    fn mxm_subops_match_paper() {
        assert_eq!(ElemType::F16.mxm_subops_per_cycle(), 2);
        assert_eq!(ElemType::I8.mxm_subops_per_cycle(), 4);
    }

    #[test]
    fn from_slice_validates_length() {
        assert!(Vector::from_slice(&[0u8; 319]).is_none());
        assert!(Vector::from_slice(&[0u8; 320]).is_some());
    }

    #[test]
    fn splat_and_from_fn_agree() {
        assert_eq!(Vector::splat(7), Vector::from_fn(|_| 7));
    }

    #[test]
    fn digest_distinguishes_contents() {
        assert_ne!(Vector::splat(1).digest(), Vector::splat(2).digest());
        assert_eq!(Vector::splat(1).digest(), Vector::splat(1).digest());
    }

    #[test]
    fn wrapping_add_wraps() {
        let a = Vector::splat(200);
        let b = Vector::splat(100);
        assert_eq!(a.wrapping_add(&b), Vector::splat(44));
    }

    #[test]
    fn vectors_for_bytes_rounds_up() {
        assert_eq!(vectors_for_bytes(0), 0);
        assert_eq!(vectors_for_bytes(1), 1);
        assert_eq!(vectors_for_bytes(320), 1);
        assert_eq!(vectors_for_bytes(321), 2);
        assert_eq!(vectors_for_bytes(8192), 26);
    }

    #[test]
    fn vectors_for_elems_accounts_for_width() {
        assert_eq!(vectors_for_elems(320, ElemType::I8), 1);
        assert_eq!(vectors_for_elems(320, ElemType::F16), 2);
    }
}
