//! On-wire framing of a vector: the 328-byte packet of paper Fig 11.
//!
//! Because all routing and flow-control decisions are made at compile time,
//! the wire format needs no destination address, no length field and no
//! footer — only a small header carrying a sequence number (for FEC burst
//! detection), a lane tag and check bits. The payload efficiency is
//! 320 / 328 = 97.56 % ("2.5% encoding overhead", paper §4.4 / Fig 11).

use crate::vector::{Vector, VECTOR_BYTES};
use crate::IsaError;

/// Total size of one vector on the wire, in bytes.
pub const WIRE_BYTES: usize = 328;

/// Header size in bytes (sequence, channel tag, and FEC check symbols).
pub const HEADER_BYTES: usize = WIRE_BYTES - VECTOR_BYTES;

/// Payload efficiency of the wire format (paper Fig 11: 97.5 %).
pub const ENCODING_EFFICIENCY: f64 = VECTOR_BYTES as f64 / WIRE_BYTES as f64;

/// A vector framed for transmission on a C2C link.
///
/// The header layout (8 bytes) is:
///
/// | bytes | field |
/// |-------|-------|
/// | 0..2  | 16-bit sequence number (wraps) |
/// | 2     | virtual lane / control tag |
/// | 3     | header checksum (XOR of bytes 0..3) |
/// | 4..8  | FEC check symbols over the payload |
///
/// Real hardware interleaves FEC symbols across the four physical lanes;
/// this model keeps them contiguous, which preserves the *rates* (overhead,
/// correctable/detectable error classes) that the rest of the system
/// depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePacket {
    /// Sequence number within the flow; lets the receiver detect a dropped
    /// packet as an uncorrectable event rather than silently misordering.
    pub sequence: u16,
    /// Virtual lane / control tag (0 for data; nonzero values carry HAC
    /// control codes, see [`crate::timing::HAC_RESERVED_CODES`]).
    pub tag: u8,
    /// The 320-byte payload vector.
    pub payload: Vector,
}

impl WirePacket {
    /// Frames a data vector with the given sequence number.
    pub fn data(sequence: u16, payload: Vector) -> Self {
        WirePacket {
            sequence,
            tag: 0,
            payload,
        }
    }

    /// Frames a control packet (e.g. a HAC exchange) with a nonzero tag.
    pub fn control(sequence: u16, tag: u8, payload: Vector) -> Self {
        WirePacket {
            sequence,
            tag,
            payload,
        }
    }

    /// True if this packet carries a control code rather than tensor data.
    pub fn is_control(&self) -> bool {
        self.tag != 0
    }

    /// Serializes the packet to its 328-byte wire form.
    pub fn encode(&self) -> [u8; WIRE_BYTES] {
        let mut out = [0u8; WIRE_BYTES];
        out[0] = (self.sequence & 0xff) as u8;
        out[1] = (self.sequence >> 8) as u8;
        out[2] = self.tag;
        out[3] = out[0] ^ out[1] ^ out[2];
        let fec = payload_check_symbols(self.payload.as_bytes());
        out[4..8].copy_from_slice(&fec);
        out[8..].copy_from_slice(self.payload.as_bytes());
        out
    }

    /// Parses a 328-byte wire buffer back into a packet.
    ///
    /// Returns [`IsaError::CorruptHeader`] if the header checksum fails, and
    /// [`IsaError::BadPacketLength`] if the buffer is the wrong size. The
    /// payload check symbols are *not* validated here — that is the FEC
    /// layer's job (`tsm-link`), which can also correct errors.
    pub fn decode(buf: &[u8]) -> Result<Self, IsaError> {
        if buf.len() != WIRE_BYTES {
            return Err(IsaError::BadPacketLength { got: buf.len() });
        }
        if buf[3] != buf[0] ^ buf[1] ^ buf[2] {
            return Err(IsaError::CorruptHeader);
        }
        let sequence = buf[0] as u16 | ((buf[1] as u16) << 8);
        let tag = buf[2];
        let payload = Vector::from_slice(&buf[8..]).expect("length checked");
        Ok(WirePacket {
            sequence,
            tag,
            payload,
        })
    }

    /// The stored FEC check symbols for `buf` (a full encoded packet).
    pub fn stored_check_symbols(buf: &[u8; WIRE_BYTES]) -> [u8; 4] {
        [buf[4], buf[5], buf[6], buf[7]]
    }
}

/// Computes the 4 check symbols over a 320-byte payload.
///
/// This is a simple interleaved parity: symbol `k` is the XOR of payload
/// bytes whose index ≡ k (mod 4) — exactly the per-physical-lane parity a
/// 4-lane link would compute. A single corrupted byte flips exactly one
/// symbol (locatable → correctable); a burst across lanes flips several
/// (detectable, not correctable). The real system uses a stronger code, but
/// the *classification* of errors into correctable/uncorrectable is what the
/// determinism argument needs (paper §4.5).
pub fn payload_check_symbols(payload: &[u8; VECTOR_BYTES]) -> [u8; 4] {
    let mut sym = [0u8; 4];
    for (i, &b) in payload.iter().enumerate() {
        sym[i % 4] ^= b;
    }
    sym
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the claim
    fn efficiency_is_97_5_percent() {
        assert_eq!(WIRE_BYTES, 328);
        assert_eq!(HEADER_BYTES, 8);
        assert!((ENCODING_EFFICIENCY - 320.0 / 328.0).abs() < 1e-12);
        assert!(ENCODING_EFFICIENCY > 0.975 && ENCODING_EFFICIENCY < 0.976);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = WirePacket::data(0xBEEF, Vector::from_fn(|i| i as u8));
        let wire = p.encode();
        let q = WirePacket::decode(&wire).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn decode_rejects_wrong_length() {
        assert_eq!(
            WirePacket::decode(&[0u8; 100]),
            Err(IsaError::BadPacketLength { got: 100 })
        );
    }

    #[test]
    fn decode_rejects_corrupt_header() {
        let mut wire = WirePacket::data(1, Vector::zeroed()).encode();
        wire[2] ^= 0x40;
        assert_eq!(WirePacket::decode(&wire), Err(IsaError::CorruptHeader));
    }

    #[test]
    fn control_packets_are_flagged() {
        let p = WirePacket::control(0, 3, Vector::zeroed());
        assert!(p.is_control());
        assert!(!WirePacket::data(0, Vector::zeroed()).is_control());
    }

    #[test]
    fn single_byte_error_flips_exactly_one_symbol() {
        let payload = Vector::from_fn(|i| (i * 7) as u8);
        let clean = payload_check_symbols(payload.as_bytes());
        let mut corrupted = *payload.as_bytes();
        corrupted[17] ^= 0xA5;
        let dirty = payload_check_symbols(&corrupted);
        let differing = clean
            .iter()
            .zip(dirty.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(differing, 1);
    }

    #[test]
    fn sequence_wraps_at_u16() {
        let p = WirePacket::data(u16::MAX, Vector::zeroed());
        let q = WirePacket::decode(&p.encode()).unwrap();
        assert_eq!(q.sequence, u16::MAX);
    }
}
