//! Instruction-set-architecture layer of the tensor streaming multiprocessor.
//!
//! This crate defines the architecturally visible vocabulary shared by every
//! other layer of the system:
//!
//! * [`Vector`] — the 320-byte SIMD register value that is also the network
//!   flow-control unit (flit),
//! * [`packet::WirePacket`] — the 328-byte on-wire framing of a vector
//!   (97.5 % encoding efficiency, paper Fig 11),
//! * [`Instruction`] — the deterministic instruction set of paper Table 1
//!   plus the compute/stream operations referenced by §5,
//! * [`timing`] — the fixed clock/epoch constants the synchronization layer
//!   depends on.
//!
//! Everything here is plain data with statically known costs; there is no
//! dynamic behaviour. That is the point: the paper's system exposes *all*
//! architecturally visible state so a compiler can schedule the machine to
//! the clock cycle (paper §3).

pub mod encode;
pub mod instr;
pub mod packet;
pub mod timing;
pub mod vector;

pub use instr::{FunctionalUnit, Instruction};
pub use packet::WirePacket;
pub use vector::{ElemType, Vector};

/// Errors produced when decoding or validating ISA-level data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A wire packet had a length other than [`packet::WIRE_BYTES`].
    BadPacketLength {
        /// Length of the buffer that was presented.
        got: usize,
    },
    /// A wire packet header failed its integrity check.
    CorruptHeader,
    /// A stream identifier was out of range.
    BadStream {
        /// The offending stream number.
        got: u8,
    },
}

impl core::fmt::Display for IsaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IsaError::BadPacketLength { got } => {
                write!(
                    f,
                    "wire packet must be {} bytes, got {got}",
                    packet::WIRE_BYTES
                )
            }
            IsaError::CorruptHeader => write!(f, "wire packet header failed integrity check"),
            IsaError::BadStream { got } => {
                write!(
                    f,
                    "stream id {got} out of range (max {})",
                    vector::MAX_STREAMS - 1
                )
            }
        }
    }
}

impl std::error::Error for IsaError {}

/// Identifier of one of the 32 stream registers flowing in each direction
/// across the chip (paper §2: the chip carries 32 streams eastward and 32
/// westward).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct StreamId(u8);

impl StreamId {
    /// Creates a stream id, validating it against [`vector::MAX_STREAMS`].
    pub fn new(id: u8) -> Result<Self, IsaError> {
        if (id as usize) < vector::MAX_STREAMS {
            Ok(StreamId(id))
        } else {
            Err(IsaError::BadStream { got: id })
        }
    }

    /// Returns the raw stream number.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Direction a stream flows across the chip's superlanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Direction {
    /// Toward increasing slice numbers.
    East,
    /// Toward decreasing slice numbers.
    West,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Self {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_id_validates_range() {
        assert!(StreamId::new(0).is_ok());
        assert!(StreamId::new(31).is_ok());
        assert_eq!(StreamId::new(32), Err(IsaError::BadStream { got: 32 }));
    }

    #[test]
    fn direction_reverse_is_involutive() {
        assert_eq!(Direction::East.reverse().reverse(), Direction::East);
        assert_eq!(Direction::West.reverse(), Direction::East);
    }

    #[test]
    fn errors_display() {
        let e = IsaError::BadPacketLength { got: 100 };
        assert!(e.to_string().contains("328"));
        assert!(IsaError::CorruptHeader.to_string().contains("header"));
    }
}
