//! Fixed timing constants of the TSP and its C2C fabric.
//!
//! These values come straight from the paper text and footnotes; every other
//! crate derives its cycle arithmetic from this single module so the numbers
//! cannot drift apart.

/// TSP core clock frequency in Hz (paper §5.2: "each TSP operating at
/// 900MHz").
pub const CLOCK_HZ: u64 = 900_000_000;

/// Length of one core clock cycle in seconds.
pub const CYCLE_SECONDS: f64 = 1.0 / CLOCK_HZ as f64;

/// Width of the hardware-aligned counter in bits (paper §3.2 footnote: "The
/// HAC is an 8-bit counter").
pub const HAC_BITS: u32 = 8;

/// Counter values reserved for control codes (paper §3.2 footnote: "4 values
/// are reserved for special control codes").
pub const HAC_RESERVED_CODES: u64 = 4;

/// The HAC overflow period, also called an *epoch*, in core clock cycles
/// (paper §3.2 footnote: "the period is the epoch length or 252 clock
/// cycles" — 2^8 minus the 4 reserved codes).
pub const HAC_PERIOD: u64 = (1 << HAC_BITS) - HAC_RESERVED_CODES;

/// Interval at which peer TSPs exchange HAC values, in cycles (paper §3:
/// counters are "continuously (every 256 cycles) exchanged").
pub const HAC_EXCHANGE_INTERVAL: u64 = 256;

/// Per-lane line rate used in deployment, in bits per second (paper
/// footnote 2: "we operate all the links at the same data rate of 25 Gbps").
pub const LANE_GBPS: f64 = 25.0;

/// Maximum per-lane line rate the serdes supports (paper §2.3: "operating up
/// to 30 Gbps").
pub const LANE_MAX_GBPS: f64 = 30.0;

/// Lanes per C2C link (paper §2.2: "Each C2C link consist of four (4)
/// lanes").
pub const LANES_PER_LINK: usize = 4;

/// Combined payload bandwidth of one C2C link in bytes per second
/// (4 lanes × 25 Gbps = 100 Gbps = 12.5 GB/s).
pub const LINK_BYTES_PER_SECOND: f64 = LANE_GBPS * 1e9 * LANES_PER_LINK as f64 / 8.0;

/// Serialization time of one wire packet (328 bytes) on a link, in seconds.
pub fn wire_packet_serialization_seconds() -> f64 {
    crate::packet::WIRE_BYTES as f64 / LINK_BYTES_PER_SECOND
}

/// Serialization time of one wire packet on a link, in core clock cycles
/// (rounded up: the schedule may not start the next vector earlier).
pub fn wire_packet_serialization_cycles() -> u64 {
    (wire_packet_serialization_seconds() * CLOCK_HZ as f64).ceil() as u64
}

/// Per-hop latency of a vector through a TSP acting as a switch, in
/// nanoseconds (paper §5.6: "a pipelined network latency of 722 ns per
/// hop").
pub const HOP_LATENCY_NS: f64 = 722.0;

/// Per-hop latency in core clock cycles.
pub fn hop_latency_cycles() -> u64 {
    (HOP_LATENCY_NS * 1e-9 * CLOCK_HZ as f64).round() as u64
}

/// Converts a cycle count at the core clock to seconds.
pub fn cycles_to_seconds(cycles: u64) -> f64 {
    cycles as f64 * CYCLE_SECONDS
}

/// Converts seconds to core clock cycles (rounded to nearest).
pub fn seconds_to_cycles(seconds: f64) -> u64 {
    (seconds * CLOCK_HZ as f64).round() as u64
}

/// SRAM capacity contributed by each TSP to the global memory, in bytes
/// (paper abstract: "Each TSP contributes 220 MiBytes").
pub const SRAM_BYTES_PER_TSP: u64 = 220 * 1024 * 1024;

/// Host interface bandwidth: PCIe Gen4 ×16, in bytes per second (~31.5 GB/s
/// usable; paper §5.2 assumes "PCIe Gen4 ×16 host CPU interface").
pub const PCIE_GEN4_X16_BYTES_PER_SECOND: f64 = 31.5e9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hac_period_matches_paper() {
        // 2^8 - 4 reserved codes = 252 cycles, exactly the footnote value.
        assert_eq!(HAC_PERIOD, 252);
    }

    #[test]
    fn link_bandwidth_is_100_gbps() {
        assert!((LINK_BYTES_PER_SECOND - 12.5e9).abs() < 1.0);
    }

    #[test]
    fn serialization_time_is_about_26ns() {
        // 328 B / 12.5 GB/s = 26.24 ns -> 24 cycles at 900 MHz.
        let s = wire_packet_serialization_seconds();
        assert!((s - 26.24e-9).abs() < 1e-12);
        assert_eq!(wire_packet_serialization_cycles(), 24);
    }

    #[test]
    fn hop_latency_cycles_rounds_722ns() {
        // 722 ns * 0.9 GHz = 649.8 -> 650 cycles.
        assert_eq!(hop_latency_cycles(), 650);
    }

    #[test]
    fn cycle_conversions_roundtrip() {
        let c = 123_456;
        assert_eq!(seconds_to_cycles(cycles_to_seconds(c)), c);
    }

    #[test]
    fn sram_capacity_scales_to_paper_claims() {
        // 264 TSPs -> ~56 GiB (paper §2.2), 10,440 -> >2 TB (abstract).
        let gib_264 = 264 * SRAM_BYTES_PER_TSP / (1024 * 1024 * 1024);
        assert_eq!(gib_264, 56); // 56 GiB
        let tb_max = 10_440 * SRAM_BYTES_PER_TSP as u128 / 1_000_000_000_000u128;
        assert!(tb_max >= 2);
    }
}
