//! Binary instruction encoding — the assembler's target format.
//!
//! The software stack of paper Fig 12 passes scheduled programs through an
//! *assembler* that emits a machine-code binary per TSP. This module
//! defines that binary: a fixed 8-byte word per instruction
//! (opcode, three operand bytes, and a 32-bit immediate), chosen so a
//! schedule's issue cycles live *outside* the instruction stream — the
//! ICUs replay words in order, and timing comes from the deterministic
//! pipeline, exactly as the statically-scheduled hardware works.

use crate::instr::{Instruction, VectorOpcode};
use crate::{Direction, IsaError, StreamId};

/// Encoded size of one instruction word.
pub const WORD_BYTES: usize = 8;

/// Opcode byte values (stable ABI for the binary format).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Opcode {
    Nop = 0x00,
    Sync = 0x01,
    Notify = 0x02,
    Deskew = 0x03,
    RuntimeDeskew = 0x04,
    Transmit = 0x05,
    Receive = 0x06,
    Send = 0x07,
    Read = 0x08,
    Write = 0x09,
    MatMul = 0x0A,
    InstallWeight = 0x0D,
    VectorOp = 0x0B,
    Permute = 0x0C,
}

fn vop_code(op: VectorOpcode) -> u8 {
    match op {
        VectorOpcode::Add => 0,
        VectorOpcode::Sub => 1,
        VectorOpcode::Mul => 2,
        VectorOpcode::Rsqrt => 3,
        VectorOpcode::Splat => 4,
    }
}

fn vop_decode(code: u8) -> Result<VectorOpcode, IsaError> {
    Ok(match code {
        0 => VectorOpcode::Add,
        1 => VectorOpcode::Sub,
        2 => VectorOpcode::Mul,
        3 => VectorOpcode::Rsqrt,
        4 => VectorOpcode::Splat,
        _ => return Err(IsaError::CorruptHeader),
    })
}

/// Encodes one instruction into its 8-byte word.
pub fn encode(instr: &Instruction) -> [u8; WORD_BYTES] {
    let mut w = [0u8; WORD_BYTES];
    match instr {
        Instruction::Nop => w[0] = Opcode::Nop as u8,
        Instruction::Sync => w[0] = Opcode::Sync as u8,
        Instruction::Notify => w[0] = Opcode::Notify as u8,
        Instruction::Deskew => w[0] = Opcode::Deskew as u8,
        Instruction::RuntimeDeskew { target_cycles } => {
            w[0] = Opcode::RuntimeDeskew as u8;
            w[4..8].copy_from_slice(&(*target_cycles as u32).to_le_bytes());
        }
        Instruction::Transmit { port } => {
            w[0] = Opcode::Transmit as u8;
            w[1] = *port;
        }
        Instruction::Receive { port, stream } => {
            w[0] = Opcode::Receive as u8;
            w[1] = *port;
            w[2] = stream.index() as u8;
        }
        Instruction::Send { port, stream } => {
            w[0] = Opcode::Send as u8;
            w[1] = *port;
            w[2] = stream.index() as u8;
        }
        Instruction::Read {
            slice,
            offset,
            stream,
            dir,
        } => {
            w[0] = Opcode::Read as u8;
            w[1] = *slice;
            w[2] = stream.index() as u8;
            w[3] = matches!(dir, Direction::West) as u8;
            w[4..6].copy_from_slice(&offset.to_le_bytes());
        }
        Instruction::Write {
            slice,
            offset,
            stream,
        } => {
            w[0] = Opcode::Write as u8;
            w[1] = *slice;
            w[2] = stream.index() as u8;
            w[4..6].copy_from_slice(&offset.to_le_bytes());
        }
        Instruction::MatMul { input, output } => {
            w[0] = Opcode::MatMul as u8;
            w[1] = input.index() as u8;
            w[2] = output.index() as u8;
        }
        Instruction::InstallWeight { stream } => {
            w[0] = Opcode::InstallWeight as u8;
            w[1] = stream.index() as u8;
        }
        Instruction::VectorOp { op, a, b, dest } => {
            w[0] = Opcode::VectorOp as u8;
            w[1] = a.index() as u8;
            w[2] = b.index() as u8;
            w[3] = dest.index() as u8;
            w[4] = vop_code(*op);
        }
        Instruction::Permute { input, output } => {
            w[0] = Opcode::Permute as u8;
            w[1] = input.index() as u8;
            w[2] = output.index() as u8;
        }
    }
    w
}

/// Decodes one 8-byte word back into an instruction.
pub fn decode(w: &[u8; WORD_BYTES]) -> Result<Instruction, IsaError> {
    let stream = |b: u8| StreamId::new(b);
    Ok(match w[0] {
        x if x == Opcode::Nop as u8 => Instruction::Nop,
        x if x == Opcode::Sync as u8 => Instruction::Sync,
        x if x == Opcode::Notify as u8 => Instruction::Notify,
        x if x == Opcode::Deskew as u8 => Instruction::Deskew,
        x if x == Opcode::RuntimeDeskew as u8 => Instruction::RuntimeDeskew {
            target_cycles: u32::from_le_bytes(w[4..8].try_into().expect("4 bytes")) as u64,
        },
        x if x == Opcode::Transmit as u8 => Instruction::Transmit { port: w[1] },
        x if x == Opcode::Receive as u8 => Instruction::Receive {
            port: w[1],
            stream: stream(w[2])?,
        },
        x if x == Opcode::Send as u8 => Instruction::Send {
            port: w[1],
            stream: stream(w[2])?,
        },
        x if x == Opcode::Read as u8 => Instruction::Read {
            slice: w[1],
            offset: u16::from_le_bytes(w[4..6].try_into().expect("2 bytes")),
            stream: stream(w[2])?,
            dir: if w[3] == 0 {
                Direction::East
            } else {
                Direction::West
            },
        },
        x if x == Opcode::Write as u8 => Instruction::Write {
            slice: w[1],
            offset: u16::from_le_bytes(w[4..6].try_into().expect("2 bytes")),
            stream: stream(w[2])?,
        },
        x if x == Opcode::MatMul as u8 => Instruction::MatMul {
            input: stream(w[1])?,
            output: stream(w[2])?,
        },
        x if x == Opcode::InstallWeight as u8 => Instruction::InstallWeight {
            stream: stream(w[1])?,
        },
        x if x == Opcode::VectorOp as u8 => Instruction::VectorOp {
            op: vop_decode(w[4])?,
            a: stream(w[1])?,
            b: stream(w[2])?,
            dest: stream(w[3])?,
        },
        x if x == Opcode::Permute as u8 => Instruction::Permute {
            input: stream(w[1])?,
            output: stream(w[2])?,
        },
        _ => return Err(IsaError::CorruptHeader),
    })
}

/// Assembles a timed program into a flat binary: a 16-byte record per
/// instruction — the 64-bit issue cycle followed by the instruction word.
pub fn assemble(program: &[(u64, Instruction)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(program.len() * 16);
    for (cycle, instr) in program {
        out.extend_from_slice(&cycle.to_le_bytes());
        out.extend_from_slice(&encode(instr));
    }
    out
}

/// Disassembles a binary produced by [`assemble`].
pub fn disassemble(binary: &[u8]) -> Result<Vec<(u64, Instruction)>, IsaError> {
    if !binary.len().is_multiple_of(16) {
        return Err(IsaError::BadPacketLength { got: binary.len() });
    }
    binary
        .chunks_exact(16)
        .map(|rec| {
            let cycle = u64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
            let word: [u8; WORD_BYTES] = rec[8..].try_into().expect("8 bytes");
            decode(&word).map(|i| (cycle, i))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u8) -> StreamId {
        StreamId::new(n).unwrap()
    }

    fn all_instructions() -> Vec<Instruction> {
        vec![
            Instruction::Nop,
            Instruction::Sync,
            Instruction::Notify,
            Instruction::Deskew,
            Instruction::RuntimeDeskew {
                target_cycles: 123_456,
            },
            Instruction::Transmit { port: 10 },
            Instruction::Receive {
                port: 3,
                stream: sid(5),
            },
            Instruction::Send {
                port: 7,
                stream: sid(31),
            },
            Instruction::Read {
                slice: 87,
                offset: 4095,
                stream: sid(1),
                dir: Direction::West,
            },
            Instruction::Write {
                slice: 0,
                offset: 0,
                stream: sid(0),
            },
            Instruction::MatMul {
                input: sid(2),
                output: sid(3),
            },
            Instruction::InstallWeight { stream: sid(11) },
            Instruction::VectorOp {
                op: VectorOpcode::Rsqrt,
                a: sid(4),
                b: sid(5),
                dest: sid(6),
            },
            Instruction::Permute {
                input: sid(8),
                output: sid(9),
            },
        ]
    }

    #[test]
    fn every_instruction_roundtrips() {
        for instr in all_instructions() {
            let w = encode(&instr);
            let back = decode(&w).unwrap();
            assert_eq!(instr, back, "{instr:?}");
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut w = [0u8; WORD_BYTES];
        w[0] = 0xFF;
        assert!(decode(&w).is_err());
    }

    #[test]
    fn invalid_stream_rejected() {
        let mut w = encode(&Instruction::Send {
            port: 0,
            stream: sid(0),
        });
        w[2] = 77; // stream out of range
        assert!(decode(&w).is_err());
    }

    #[test]
    fn assemble_disassemble_roundtrip() {
        let program: Vec<(u64, Instruction)> = all_instructions()
            .into_iter()
            .enumerate()
            .map(|(i, instr)| (i as u64 * 24, instr))
            .collect();
        let binary = assemble(&program);
        assert_eq!(binary.len(), program.len() * 16);
        assert_eq!(disassemble(&binary).unwrap(), program);
    }

    #[test]
    fn truncated_binary_rejected() {
        let binary = assemble(&[(0, Instruction::Nop)]);
        assert!(disassemble(&binary[..10]).is_err());
    }
}
